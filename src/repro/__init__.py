"""repro — reproduction of "Reducing Data Motion and Energy Consumption of
Geospatial Modeling Applications Using Automated Precision Conversion"
(Cao et al., IEEE CLUSTER 2023).

The package implements, in pure Python/NumPy:

* a precision-emulation substrate for the GPU floating-point formats the
  paper mixes (FP64, FP32, TF32, FP16_32, BF16_32, FP16);
* a PaRSEC-like task runtime with a discrete-event simulator calibrated
  to V100/A100/H100 characteristics;
* the adaptive mixed-precision tile Cholesky (Algorithm 1) with the
  automated STC/TTC precision conversion strategy (Algorithm 2);
* an ExaGeoStat-like geospatial statistics layer (synthetic fields,
  squared-exponential and Matérn covariances, maximum likelihood
  estimation, kriging).

Quickstart::

    from repro import geostats

    field = geostats.SyntheticField.matern_2d(n=400, variance=1.0,
                                              range_=0.1, smoothness=0.5, seed=1)
    dataset = field.sample()
    result = geostats.fit_mle(dataset, accuracy=1e-9)
    print(result.theta_hat)
"""

from .core import (
    CholeskyResult,
    ConversionStrategy,
    FactorizationPlan,
    KernelPrecisionMap,
    MPCholeskySolver,
    MPConfig,
    build_precision_map,
    mp_cholesky,
    simulate_cholesky,
)
from .precision import ADAPTIVE_FORMATS, Precision

__version__ = "0.1.0"

__all__ = [
    "ADAPTIVE_FORMATS",
    "CholeskyResult",
    "ConversionStrategy",
    "FactorizationPlan",
    "KernelPrecisionMap",
    "MPCholeskySolver",
    "MPConfig",
    "Precision",
    "__version__",
    "build_precision_map",
    "mp_cholesky",
    "simulate_cholesky",
]
