"""repro.faults — deterministic fault injection and retry.

Production-scale runs lose ranks, drop messages, and straggle; this
package makes those failures *schedulable* so the recovery paths of the
execution layers are tested code instead of hope:

* **fault plans** (:mod:`repro.faults.plan`) — a seeded, picklable
  script of failures (:class:`FaultPlan` of :class:`FaultSpec`) that
  :mod:`repro.runtime.distributed`, :mod:`repro.sweep.engine`, and
  :mod:`repro.geostats.montecarlo` consult at their injection points,
  with per-process runtime state in a :class:`FaultInjector`;
* **retry** (:mod:`repro.faults.retry`) — :class:`RetryPolicy`
  (exponential backoff, capped, seeded jitter) driven through
  :func:`call_with_retry` / the :func:`retry` decorator.

Everything reports through :mod:`repro.obs`: ``faults.injected``,
``retry.attempts``, ``retry.gave_up`` counters and ``fault`` /
``retry`` / ``retry.gave_up`` events.  See ``docs/RESILIENCE.md``.
"""

from .plan import (
    FAULT_KINDS,
    FAULT_MODES,
    FaultInjectedError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from .retry import RetryError, RetryPolicy, call_with_retry, retry

__all__ = [
    "FAULT_KINDS",
    "FAULT_MODES",
    "FaultInjectedError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryError",
    "RetryPolicy",
    "call_with_retry",
    "retry",
]
