"""Deterministic fault plans: *which* failure happens *where*, on purpose.

The paper's runs survive Summit-scale realities — ranks die, links
stall, workers straggle — and a reproduction that only ever executes on
a healthy laptop never exercises the recovery paths it claims to have.
A :class:`FaultPlan` is a declarative, seeded script of failures that
the execution layers (:mod:`repro.runtime.distributed`,
:mod:`repro.sweep.engine`, :mod:`repro.geostats.montecarlo`) consult at
well-defined points: *kill rank 2 when it reaches task 17*, *drop the
third message rank 0 sends*, *crash the sweep worker on point X twice*,
*fail the first attempt of every matching point with probability 0.5*.

Determinism is the design constraint: the same plan with the same seed
fires the same faults in the same places on every run, so a recovery
test is a regression test rather than a flake generator.  Probabilistic
faults draw from a :class:`random.Random` keyed on ``(seed, spec index,
occasion index)`` — no global RNG state, no cross-run drift.

Runtime state (how many times each fault has fired) lives in a
:class:`FaultInjector`, one per process; plans themselves are frozen and
picklable so they cross process boundaries with the work.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Mapping

from ..obs import emit_event, get_registry

__all__ = [
    "FAULT_KINDS",
    "FAULT_MODES",
    "FaultInjectedError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
]

#: supported fault kinds
FAULT_KINDS = ("kill_rank", "drop_message", "delay_message", "crash_point", "transient")

#: how a ``kill_rank`` fault terminates the rank: ``sigkill`` (hard kill,
#: non-zero exit), ``exit0`` (exits cleanly without reporting — the
#: nastiest case for a parent that only checks non-zero exit codes), or
#: ``exception`` (raises, so the rank reports its own failure)
FAULT_MODES = ("sigkill", "exit0", "exception")


class FaultInjectedError(RuntimeError):
    """Raised (or reported) where an injected fault fires as an exception."""


@dataclass(frozen=True)
class FaultSpec:
    """One scripted failure.

    ``kind`` decides which fields matter:

    * ``kill_rank`` — kill ``rank`` when it is about to execute global
      task id ``task`` (``mode`` picks how it dies);
    * ``drop_message`` / ``delay_message`` — the ``message``-th outbound
      payload of ``rank`` is dropped / delayed by ``delay_s`` seconds;
    * ``crash_point`` — raise :class:`FaultInjectedError` when a sweep /
      Monte Carlo worker starts a point whose label or key contains
      ``point`` (empty string matches every point);
    * ``transient`` — like ``crash_point`` but framed as a recoverable
      blip: typically ``times=1`` so the first attempt fails and the
      retry succeeds.

    ``times`` caps how often the fault fires per process (``None`` means
    unlimited); ``probability`` < 1 makes each occasion a deterministic
    seeded coin flip.
    """

    kind: str
    rank: int | None = None
    task: int | None = None
    message: int | None = None
    point: str | None = None
    times: int | None = 1
    probability: float = 1.0
    delay_s: float = 0.05
    mode: str = "sigkill"
    note: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.mode not in FAULT_MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; expected one of {FAULT_MODES}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must lie in [0, 1], got {self.probability}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be positive or None, got {self.times}")
        if self.delay_s < 0.0:
            raise ValueError(f"delay_s must be non-negative, got {self.delay_s}")
        if self.kind == "kill_rank" and (self.rank is None or self.task is None):
            raise ValueError("kill_rank needs both rank and task")
        if self.kind in ("drop_message", "delay_message") and (
            self.rank is None or self.message is None
        ):
            raise ValueError(f"{self.kind} needs both rank and message")
        if self.kind in ("crash_point", "transient") and self.point is None:
            raise ValueError(f"{self.kind} needs point (use '' to match every point)")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "FaultSpec":
        return cls(**dict(d))


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable script of :class:`FaultSpec` failures."""

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def with_fault(self, spec: FaultSpec) -> "FaultPlan":
        return replace(self, faults=self.faults + (spec,))

    def to_dict(self) -> dict:
        return {
            "schema": "repro.faults/1",
            "seed": self.seed,
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "FaultPlan":
        faults = tuple(FaultSpec.from_dict(f) for f in d.get("faults", ()))
        return cls(faults=faults, seed=int(d.get("seed", 0)))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


class FaultInjector:
    """Per-process runtime state of a :class:`FaultPlan`.

    The execution layers ask it at their injection points (``kill_at``,
    ``message_fault``, ``point_fault``); a spec that matches, has fires
    left, and wins its seeded coin flip is *armed* and returned.  The
    caller then acts on it via :meth:`fire` (which records the fault in
    the obs layer) before carrying out the failure.
    """

    def __init__(self, plan: FaultPlan | Mapping | None, *, use_metrics: bool = True) -> None:
        if plan is not None and not isinstance(plan, FaultPlan):
            plan = FaultPlan.from_dict(plan)
        self.plan = plan or FaultPlan()
        self.use_metrics = use_metrics  # False in worker subprocesses: the
        # parent re-counts fired faults from returned metadata instead
        self._fired: dict[int, int] = {}   # spec index -> times fired
        self._occasions: dict[int, int] = {}  # spec index -> matches seen

    def _arm(self, idx: int, spec: FaultSpec) -> FaultSpec | None:
        """Decide whether occasion ``k`` of spec ``idx`` fires (deterministic)."""
        occasion = self._occasions.get(idx, 0)
        self._occasions[idx] = occasion + 1
        if spec.times is not None and self._fired.get(idx, 0) >= spec.times:
            return None
        if spec.probability < 1.0:
            coin = random.Random(f"fault:{self.plan.seed}:{idx}:{occasion}").random()
            if coin >= spec.probability:
                return None
        self._fired[idx] = self._fired.get(idx, 0) + 1
        return spec

    def fired(self, spec: FaultSpec | None = None) -> int:
        """Total faults fired so far (or fires of one spec)."""
        if spec is None:
            return sum(self._fired.values())
        return sum(
            n for idx, n in self._fired.items() if self.plan.faults[idx] == spec
        )

    def kill_at(self, rank: int, task: int) -> FaultSpec | None:
        """The armed ``kill_rank`` fault for (rank, task), if any."""
        for idx, spec in enumerate(self.plan.faults):
            if spec.kind == "kill_rank" and spec.rank == rank and spec.task == task:
                armed = self._arm(idx, spec)
                if armed is not None:
                    return armed
        return None

    def message_fault(self, rank: int, message: int) -> FaultSpec | None:
        """The armed drop/delay fault for the ``message``-th send of ``rank``."""
        for idx, spec in enumerate(self.plan.faults):
            if spec.kind in ("drop_message", "delay_message") and (
                spec.rank == rank and spec.message == message
            ):
                armed = self._arm(idx, spec)
                if armed is not None:
                    return armed
        return None

    def point_fault(self, *labels: str) -> FaultSpec | None:
        """The armed ``crash_point``/``transient`` fault matching any label.

        ``labels`` are the point's identifiers (cache key, human label);
        a spec matches when its ``point`` is a substring of any of them.
        """
        for idx, spec in enumerate(self.plan.faults):
            if spec.kind not in ("crash_point", "transient"):
                continue
            if any(spec.point in label for label in labels if label):
                armed = self._arm(idx, spec)
                if armed is not None:
                    return armed
        return None

    def fire(self, spec: FaultSpec, **attrs: object) -> None:
        """Record one injected fault in metrics and the event log."""
        if not self.use_metrics:
            return
        get_registry().counter(
            "faults.injected", "faults fired from the active fault plan"
        ).inc(kind=spec.kind)
        emit_event("fault", {"kind": spec.kind, "mode": spec.mode,
                             "note": spec.note, **attrs})

    def raise_fault(self, spec: FaultSpec, where: str, **attrs: object) -> None:
        """Fire ``spec`` and raise it as a :class:`FaultInjectedError`."""
        self.fire(spec, where=where, **attrs)
        raise FaultInjectedError(
            f"injected {spec.kind} at {where}" + (f" ({spec.note})" if spec.note else "")
        )


def _coerce_plan(plan: "FaultPlan | Mapping | None") -> FaultPlan | None:
    """Accept a plan, its dict form, or None (for kwargs crossing pickles)."""
    if plan is None or isinstance(plan, FaultPlan):
        return plan
    return FaultPlan.from_dict(plan)
