"""Retry with exponential backoff, deterministic jitter, and telemetry.

The execution layers retry *transient* failures — a worker process that
died on one sweep point, an injected blip from a
:class:`~repro.faults.plan.FaultPlan`, a flaky replicate fit — with the
classic policy: delay ``base * multiplier**k``, capped at ``max_delay``,
plus seeded jitter so a fleet of workers does not retry in lock-step.
Jitter is drawn from :class:`random.Random` keyed on ``(seed, attempt)``
— the same policy produces the same delays on every run, which keeps
recovery tests deterministic.

Every retry increments ``retry.attempts`` (labeled by ``op``) and emits
a ``retry`` event; exhausting the policy increments ``retry.gave_up``
and emits ``retry.gave_up`` before the last exception propagates.
Worker subprocesses pass ``use_metrics=False`` and report attempt counts
back to the parent instead, so campaign telemetry is counted exactly
once, in one registry.
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass
from typing import Callable, Mapping

from ..obs import emit_event, get_registry

__all__ = ["RetryError", "RetryPolicy", "call_with_retry", "retry"]


class RetryError(RuntimeError):
    """Raised when a policy is exhausted; chains the last failure."""

    def __init__(self, message: str, attempts: int, last: BaseException) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded, seeded jitter.

    ``max_retries`` counts *re*-attempts: a policy with ``max_retries=2``
    makes at most three calls.  ``jitter`` is the fraction of each delay
    drawn uniformly at random (seeded) on top of the deterministic part.
    """

    max_retries: int = 2
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {self.max_retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must lie in [0, 1], got {self.jitter}")

    def delay(self, attempt: int) -> float:
        """Backoff before re-attempt ``attempt`` (1-based), jitter included."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        base = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter == 0.0 or base == 0.0:
            return base
        frac = random.Random(f"retry:{self.seed}:{attempt}").random()
        return base * (1.0 + self.jitter * frac)

    def delays(self) -> list[float]:
        """The full deterministic backoff schedule."""
        return [self.delay(k) for k in range(1, self.max_retries + 1)]

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "RetryPolicy":
        return cls(**dict(d))


def call_with_retry(
    fn: Callable,
    policy: RetryPolicy | None = None,
    *,
    op: str = "call",
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
    use_metrics: bool = True,
) -> object:
    """Call ``fn()`` under ``policy``; raise :class:`RetryError` when exhausted.

    ``sleep`` is injectable so tests run the schedule against a fake
    clock; ``on_retry(attempt, exc)`` observes each failure before the
    backoff.  ``use_metrics=False`` silences the registry/event log (for
    worker subprocesses whose telemetry the parent re-counts).
    """
    policy = policy or RetryPolicy()
    attempts = 0
    while True:
        attempts += 1
        try:
            return fn()
        except retry_on as exc:
            if attempts > policy.max_retries:
                if use_metrics:
                    get_registry().counter(
                        "retry.gave_up", "calls that exhausted their retry policy"
                    ).inc(op=op)
                    emit_event("retry.gave_up",
                               {"op": op, "attempts": attempts, "error": repr(exc)})
                raise RetryError(
                    f"{op}: gave up after {attempts} attempt(s): {exc!r}",
                    attempts=attempts,
                    last=exc,
                ) from exc
            if on_retry is not None:
                on_retry(attempts, exc)
            if use_metrics:
                get_registry().counter(
                    "retry.attempts", "re-attempts performed by retry policies"
                ).inc(op=op)
                emit_event("retry", {"op": op, "attempt": attempts, "error": repr(exc)})
            sleep(policy.delay(attempts))


def retry(
    policy: RetryPolicy | None = None,
    *,
    op: str | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
) -> Callable:
    """Decorator form of :func:`call_with_retry`."""

    def decorate(fn: Callable) -> Callable:
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            return call_with_retry(
                lambda: fn(*args, **kwargs),
                policy,
                op=op or fn.__qualname__,
                retry_on=retry_on,
            )

        return wrapper

    return decorate
