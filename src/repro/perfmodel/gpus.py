"""Hardware specifications of the evaluated GPUs, nodes, and clusters.

Table I of the paper lists theoretical peak performance per precision for
the three Nvidia generations it evaluates (V100 NVLink on Summit, A100 SXM
on Guyot, H100 PCIe on Haxane).  This module encodes those peaks together
with the link bandwidths, memory sizes, and power envelopes the simulator
needs.  Where the paper does not state a number explicitly, the value is
taken from the vendor datasheet of the exact SKU named in Section VII-A
and marked accordingly.

Calibration anchors from the paper itself:

* Table II implies a 50 GB/s host↔device effective bandwidth on Summit's
  V100 (33.55 MB FP64 tile in 0.67 ms) and GEMM execution at the
  theoretical peak rate for 2048-sized tiles.
* Fig. 8c notes that the H100's *sustained* GEMM is "marginally lower"
  than peak (the Cholesky reaches 62 % of peak but >82 % of sustained).
* Section VII-E: FP64 on A100/H100 runs on tensor cores, so FP64 and FP32
  share a peak there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..precision.formats import Precision

__all__ = ["GPUSpec", "NodeSpec", "ClusterSpec", "V100", "A100", "H100", "SUMMIT_NODE", "GUYOT_NODE", "HAXANE_NODE", "SUMMIT", "GPU_BY_NAME"]

_TFLOP = 1e12


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU model.

    ``peak_flops`` maps each precision format to the theoretical peak of
    the *execution unit the adaptive framework uses for it* (Table I):
    tensor cores where available, otherwise the vector pipeline.
    ``sustained_fraction`` scales peak down to the achievable large-tile
    GEMM rate (Fig. 1 bottom row), and ``half_perf_size`` is the tile edge
    at which a GEMM reaches half of that sustained rate — tensor-core
    formats need larger tiles to saturate.
    """

    name: str
    peak_flops: dict[Precision, float]
    sustained_fraction: dict[Precision, float]
    half_perf_size: dict[Precision, int]
    memory_bytes: float
    memory_bandwidth: float  # HBM, bytes/s
    host_link_bandwidth: float  # H2D/D2H per direction, bytes/s
    host_link_latency: float  # seconds per transfer
    tdp_watts: float
    idle_fraction: float = 0.12  # idle power as a fraction of TDP
    copy_power_fraction: float = 0.08  # adder while a copy engine is busy
    #: fraction of HBM bandwidth a datatype-conversion kernel achieves
    #: (strided narrow-word traffic + launch overheads keep it well below
    #: the streaming peak; Fig. 1 of the paper shows the conversion cost
    #: is a first-order effect)
    conversion_efficiency: float = 0.45
    #: fixed launch overhead of one conversion kernel (seconds)
    conversion_launch: float = 5e-6
    #: active compute power as a fraction of TDP, per precision
    compute_power_fraction: dict[Precision, float] = field(default_factory=dict)

    def peak(self, precision: Precision) -> float:
        """Theoretical peak flop/s for ``precision`` (Table I)."""
        return self.peak_flops[precision]

    def sustained_gemm_rate(self, precision: Precision, nb: int) -> float:
        """Achievable GEMM flop/s for an ``nb``-sized tile (Fig. 1d model).

        A saturating curve ``R(nb) = R_sus / (1 + (n_half/nb)^2)``-style
        law:  small tiles are launch/memory bound, large tiles approach the
        sustained fraction of peak.
        """
        r_sus = self.peak_flops[precision] * self.sustained_fraction[precision]
        n_half = self.half_perf_size[precision]
        x = nb / n_half
        return r_sus * x * x / (1.0 + x * x)

    def compute_power(self, precision: Precision) -> float:
        """Active board power (W) while running kernels in ``precision``."""
        frac = self.compute_power_fraction.get(precision, 0.9)
        return self.tdp_watts * frac

    @property
    def idle_power(self) -> float:
        return self.tdp_watts * self.idle_fraction


def _shared_fp64_tensor(peak64: float, peak_low: float, peak_tf32: float) -> dict[Precision, float]:
    """Peak table for A100/H100-style GPUs where FP64 uses tensor cores."""
    return {
        Precision.FP64: peak64,
        Precision.FP32: peak64,  # FP32 runs on regular cores; equals FP64-TC peak
        Precision.TF32: peak_tf32,
        Precision.FP16_32: peak_low,
        Precision.BF16_32: peak_low,
        Precision.FP16: peak_low,
    }


V100 = GPUSpec(
    name="V100",
    peak_flops={
        Precision.FP64: 7.8 * _TFLOP,
        Precision.FP32: 15.7 * _TFLOP,
        Precision.TF32: 15.7 * _TFLOP,  # no TF32 unit on Volta; falls back to FP32
        Precision.FP16_32: 125.0 * _TFLOP,
        Precision.BF16_32: 125.0 * _TFLOP,  # no BF16 on Volta; modeled as FP16 TC
        Precision.FP16: 125.0 * _TFLOP,
    },
    sustained_fraction={
        Precision.FP64: 0.97,
        Precision.FP32: 0.96,
        Precision.TF32: 0.96,
        Precision.FP16_32: 0.93,
        Precision.BF16_32: 0.93,
        Precision.FP16: 0.95,
    },
    half_perf_size={
        Precision.FP64: 192,
        Precision.FP32: 224,
        Precision.TF32: 224,
        Precision.FP16_32: 640,
        Precision.BF16_32: 640,
        Precision.FP16: 576,
    },
    memory_bytes=16e9,
    memory_bandwidth=900e9,
    host_link_bandwidth=50e9,  # NVLink2 CPU<->GPU on Summit (Table II anchor)
    host_link_latency=10e-6,
    tdp_watts=300.0,
    compute_power_fraction={
        Precision.FP64: 0.97,
        Precision.FP32: 0.90,
        Precision.TF32: 0.90,
        Precision.FP16_32: 0.84,
        Precision.BF16_32: 0.84,
        Precision.FP16: 0.78,
    },
)

A100 = GPUSpec(
    name="A100",
    peak_flops={
        **_shared_fp64_tensor(19.5 * _TFLOP, 312.0 * _TFLOP, 156.0 * _TFLOP),
    },
    sustained_fraction={
        Precision.FP64: 0.95,
        Precision.FP32: 0.95,
        Precision.TF32: 0.92,
        Precision.FP16_32: 0.90,
        Precision.BF16_32: 0.90,
        Precision.FP16: 0.92,
    },
    half_perf_size={
        Precision.FP64: 224,
        Precision.FP32: 224,
        Precision.TF32: 640,
        Precision.FP16_32: 768,
        Precision.BF16_32: 768,
        Precision.FP16: 704,
    },
    memory_bytes=80e9,
    memory_bandwidth=2039e9,
    host_link_bandwidth=25e9,  # PCIe gen4 host link on Guyot
    host_link_latency=10e-6,
    tdp_watts=400.0,
    compute_power_fraction={
        Precision.FP64: 0.95,
        Precision.FP32: 0.88,
        Precision.TF32: 0.85,
        Precision.FP16_32: 0.82,
        Precision.BF16_32: 0.82,
        Precision.FP16: 0.76,
    },
)

H100 = GPUSpec(
    name="H100",
    peak_flops={
        **_shared_fp64_tensor(51.2 * _TFLOP, 756.0 * _TFLOP, 378.0 * _TFLOP),
    },
    # Fig. 1d / Fig. 8c: practical GEMM on the PCIe H100 is noticeably
    # below peak (power-capped SKU); Cholesky reaches 62 % of peak yet
    # >82 % of the sustained rate.
    sustained_fraction={
        Precision.FP64: 0.75,
        Precision.FP32: 0.75,
        Precision.TF32: 0.72,
        Precision.FP16_32: 0.70,
        Precision.BF16_32: 0.70,
        Precision.FP16: 0.72,
    },
    half_perf_size={
        Precision.FP64: 256,
        Precision.FP32: 256,
        Precision.TF32: 704,
        Precision.FP16_32: 832,
        Precision.BF16_32: 832,
        Precision.FP16: 768,
    },
    memory_bytes=80e9,
    memory_bandwidth=2000e9,
    host_link_bandwidth=28e9,  # PCIe gen5 x16 effective on Haxane
    host_link_latency=10e-6,
    tdp_watts=350.0,
    compute_power_fraction={
        Precision.FP64: 0.85,
        Precision.FP32: 0.80,
        Precision.TF32: 0.78,
        Precision.FP16_32: 0.75,
        Precision.BF16_32: 0.75,
        Precision.FP16: 0.70,
    },
)

GPU_BY_NAME: dict[str, GPUSpec] = {"V100": V100, "A100": A100, "H100": H100}


@dataclass(frozen=True)
class NodeSpec:
    """One compute node: GPUs plus host memory and an injection NIC."""

    name: str
    gpu: GPUSpec
    gpus_per_node: int
    host_memory_bytes: float
    nic_bandwidth: float  # injection bandwidth per direction, bytes/s
    nic_latency: float  # per-message latency, seconds
    cpu_memory_bandwidth: float = 100e9  # host-side staging copies
    disk_bandwidth: float = 2e9  # NVMe spill tier, bytes/s per direction
    disk_latency: float = 100e-6  # per-transfer latency, seconds

    @property
    def total_gpu_memory(self) -> float:
        return self.gpu.memory_bytes * self.gpus_per_node


SUMMIT_NODE = NodeSpec(
    name="summit-node",
    gpu=V100,
    gpus_per_node=6,
    host_memory_bytes=256e9,
    nic_bandwidth=25e9,  # dual-rail EDR InfiniBand
    nic_latency=1.5e-6,
)

GUYOT_NODE = NodeSpec(
    name="guyot",
    gpu=A100,
    gpus_per_node=8,
    host_memory_bytes=2063e9,
    nic_bandwidth=25e9,
    nic_latency=1.5e-6,
)

HAXANE_NODE = NodeSpec(
    name="haxane",
    gpu=H100,
    gpus_per_node=1,
    host_memory_bytes=63e9,
    nic_bandwidth=25e9,
    nic_latency=1.5e-6,
)


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of :class:`NodeSpec` nodes."""

    name: str
    node: NodeSpec
    max_nodes: int

    def gpus(self, nodes: int) -> int:
        return nodes * self.node.gpus_per_node


SUMMIT = ClusterSpec(name="summit", node=SUMMIT_NODE, max_nodes=4356)
