"""Execution-time model for the tile kernels of Algorithm 1.

Times are derived from flop counts and the per-GPU sustained GEMM rate
(:meth:`GPUSpec.sustained_gemm_rate`).  Non-GEMM kernels achieve a
kernel-specific fraction of that rate: POTRF is a small, partially
sequential panel kernel; TRSM and SYRK are closer to GEMM-shaped.

The model also prices datatype conversions (Section VI): converting a
tile between precisions on the GPU is a bandwidth-bound pass reading the
source and writing the destination encoding through HBM.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..precision.formats import Precision, bytes_per_element
from .gpus import GPUSpec

__all__ = [
    "KernelKind",
    "kernel_flops",
    "kernel_flops_rect",
    "kernel_time",
    "gemm_time",
    "conversion_time",
    "KernelTimeModel",
]


class KernelKind:
    """String constants for the four Cholesky kernels."""

    POTRF = "POTRF"
    TRSM = "TRSM"
    SYRK = "SYRK"
    GEMM = "GEMM"

    ALL = (POTRF, TRSM, SYRK, GEMM)


#: fraction of the sustained GEMM rate each kernel achieves
_KERNEL_EFFICIENCY = {
    KernelKind.POTRF: 0.30,
    KernelKind.TRSM: 0.60,
    KernelKind.SYRK: 0.90,
    KernelKind.GEMM: 1.00,
}


def kernel_flops(kind: str, nb: int) -> float:
    """Flop count of one tile kernel on an ``nb`` × ``nb`` tile.

    Standard tile-algorithm counts: POTRF nb³/3, TRSM nb³, SYRK nb³
    (nb²·(nb+1) ≈ nb³), GEMM 2·nb³.
    """
    n3 = float(nb) ** 3
    if kind == KernelKind.POTRF:
        return n3 / 3.0
    if kind == KernelKind.TRSM:
        return n3
    if kind == KernelKind.SYRK:
        return n3 + float(nb) ** 2
    if kind == KernelKind.GEMM:
        return 2.0 * n3
    raise ValueError(f"unknown kernel kind {kind!r}")


def kernel_flops_rect(kind: str, *dims: int) -> float:
    """Flop count of one tile kernel on a rectangular tile.

    When ``nb ∤ n`` the last tile row/column is ragged, so TRSM, SYRK,
    and GEMM operate on rectangular blocks; cubing a single edge (what
    :func:`kernel_flops` does) misprices them.  Per-dimension counts:

    * ``POTRF(n)``       → n³/3
    * ``TRSM(m, k)``     → m·k²  (m×k block solved against the k×k triangle)
    * ``SYRK(m, k)``     → m²·k + m²  (m×m update from an m×k panel)
    * ``GEMM(m, n, k)``  → 2·m·n·k

    Each reduces exactly to ``kernel_flops(kind, nb)`` when every
    dimension equals ``nb``, so square-tile pricing is unchanged.
    """
    if kind == KernelKind.POTRF:
        (n,) = dims
        return float(n) ** 3 / 3.0
    if kind == KernelKind.TRSM:
        m, k = dims
        return float(m) * float(k) ** 2
    if kind == KernelKind.SYRK:
        m, k = dims
        return float(m) ** 2 * float(k) + float(m) ** 2
    if kind == KernelKind.GEMM:
        m, n, k = dims
        return 2.0 * float(m) * float(n) * float(k)
    raise ValueError(f"unknown kernel kind {kind!r}")


def kernel_time(gpu: GPUSpec, kind: str, nb: int, precision: Precision) -> float:
    """Seconds to execute one tile kernel on ``gpu`` in ``precision``."""
    rate = gpu.sustained_gemm_rate(precision, nb) * _KERNEL_EFFICIENCY[kind]
    return kernel_flops(kind, nb) / rate


def gemm_time(gpu: GPUSpec, n: int, precision: Precision) -> float:
    """Seconds for a square n×n×n GEMM — the Section IV benchmark."""
    return kernel_time(gpu, KernelKind.GEMM, n, precision)


def conversion_time(gpu: GPUSpec, elements: int, src: Precision, dst: Precision) -> float:
    """Seconds to convert ``elements`` values between precisions on-device.

    Bandwidth-bound: read the source encoding, write the destination
    encoding, both through HBM.  A no-op when the formats share an
    encoding (e.g. FP32 → TF32 inputs are re-read natively by the tensor
    core and cost nothing extra here; that cost lives inside the GEMM
    sustained rate).
    """
    if src == dst:
        return 0.0
    nbytes = elements * (bytes_per_element(src) + bytes_per_element(dst))
    return gpu.conversion_launch + nbytes / (
        gpu.memory_bandwidth * gpu.conversion_efficiency
    )


@dataclass(frozen=True)
class KernelTimeModel:
    """Convenience bundle binding a :class:`GPUSpec` and a tile size."""

    gpu: GPUSpec
    nb: int

    def time(self, kind: str, precision: Precision) -> float:
        return kernel_time(self.gpu, kind, self.nb, precision)

    def flops(self, kind: str) -> float:
        return kernel_flops(kind, self.nb)

    def convert(self, src: Precision, dst: Precision) -> float:
        return conversion_time(self.gpu, self.nb * self.nb, src, dst)
