"""Analytic (panel-wise) performance model for cluster-scale Cholesky.

The discrete-event simulator walks every task, which is exact but
O(#tasks) — at the paper's Summit scale (matrix 798,720, NT = 390,
≈10M tasks, 384 GPUs) that is out of reach for a Python event loop.  The
weak/strong-scaling study (Fig. 12) therefore uses this closed-form
panel model, the standard first-order analysis of right-looking tile
Cholesky on a P×Q grid:

for each iteration k with trailing width w = NT−k−1:

* ``t_compute`` — the per-rank share of the iteration's TRSM/SYRK/GEMM
  flops, each priced at its precision's sustained rate, plus the
  receiver-side conversion passes the strategy implies;
* ``t_h2d``     — the per-rank host→device payload traffic (each panel
  tile lands on the P+Q−2 remote ranks that consume it, plus its own);
* ``t_net``     — the aggregate broadcast volume over the node NICs with
  a binomial-tree step factor;
* ``t_latency`` — the pipeline-fill critical path (POTRF + one TRSM).

Iteration time is ``max(t_compute, t_h2d, t_net) + t_latency`` — engines
overlap, the serial panel does not.  The same per-precision kernel rates
and byte counts as the event simulator are used, so small cases agree
with :func:`repro.runtime.simulator.simulate` to within the model's
~10–20 % coarseness (asserted in the integration tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.config import ConversionStrategy
from ..core.conversion import build_comm_precision_map, needs_conversion
from ..core.precision_map import KernelPrecisionMap
from ..precision.formats import Precision, bytes_per_element
from ..runtime.platform import Platform
from .kernels import KernelKind, conversion_time, kernel_time

__all__ = ["AnalyticReport", "analytic_cholesky"]


@dataclass
class AnalyticReport:
    """Closed-form estimate for one configuration."""

    seconds: float
    total_flops: float
    compute_seconds: float
    h2d_seconds: float
    network_seconds: float
    latency_seconds: float
    nic_bytes: float
    h2d_bytes: float

    @property
    def gflops(self) -> float:
        if self.seconds <= 0.0:
            return 0.0
        return self.total_flops / self.seconds / 1e9

    @property
    def tflops(self) -> float:
        return self.gflops / 1e3


def analytic_cholesky(
    n: int,
    nb: int,
    kernel_map: KernelPrecisionMap,
    platform: Platform,
    *,
    strategy: ConversionStrategy = ConversionStrategy.AUTO,
) -> AnalyticReport:
    """Estimate the mixed-precision Cholesky makespan on ``platform``."""
    nt = kernel_map.nt
    if nt != -(-n // nb):
        raise ValueError("kernel map NT inconsistent with n, nb")
    gpu = platform.gpu
    grid = platform.process_grid()
    p, q = grid.p, grid.q
    ranks = platform.n_ranks
    nodes = platform.n_nodes
    cmap = build_comm_precision_map(kernel_map)

    # per-precision kernel times at this tile size (cache)
    t_kernel: dict[tuple[str, Precision], float] = {}

    def tk(kind: str, prec: Precision) -> float:
        key = (kind, prec)
        if key not in t_kernel:
            t_kernel[key] = kernel_time(gpu, kind, nb, prec)
        return t_kernel[key]

    codes = kernel_map.codes
    elements = nb * nb
    remote_consumers = min(p + q - 2, ranks - 1)
    # Destination *nodes* of a panel broadcast: the Q row consumers are
    # rank-consecutive (share nodes); the P column consumers are strided
    # by Q (distinct nodes when Q ≥ gpus/node).
    gpn = platform.node.gpus_per_node
    if nodes > 1:
        row_nodes = math.ceil(q / gpn)
        col_nodes = min(p, nodes)
        dest_nodes = max(0, min(nodes - 1, row_nodes + col_nodes - 1))
    else:
        dest_nodes = 0
    bcast_steps = max(1, math.ceil(math.log2(dest_nodes + 1))) if dest_nodes else 0
    #: forwarding overhead of the binomial tree on aggregate NIC traffic
    tree_volume_factor = 1.5

    total = 0.0
    total_flops = 0.0
    acc_compute = acc_h2d = acc_net = acc_lat = 0.0
    nic_bytes_total = 0.0
    h2d_bytes_total = 0.0

    for k in range(nt):
        w = nt - k - 1
        # serial panel latency: POTRF plus the first TRSM of the column
        t_lat = tk(KernelKind.POTRF, Precision.FP64)
        if w > 0:
            first_prec = Precision(int(codes[k + 1, k]))
            t_lat += tk(
                KernelKind.TRSM,
                Precision.FP32 if first_prec < Precision.FP64 else Precision.FP64,
            )
        total_flops += (nb**3) / 3.0

        if w == 0:
            total += t_lat
            acc_lat += t_lat
            continue

        # --- compute share of this iteration -----------------------------
        t_work = 0.0
        # TRSMs of column k (exec floor FP32)
        col = codes[k + 1 : nt, k]
        n_trsm64 = int(np.sum(col == int(Precision.FP64)))
        t_work += n_trsm64 * tk(KernelKind.TRSM, Precision.FP64)
        t_work += (w - n_trsm64) * tk(KernelKind.TRSM, Precision.FP32)
        total_flops += w * float(nb) ** 3
        # SYRKs (always FP64) + their payload up-cast conversions
        t_work += w * tk(KernelKind.SYRK, Precision.FP64)
        total_flops += w * (float(nb) ** 3)
        # GEMMs of the trailing submatrix, priced per precision
        sub = codes[k + 1 : nt, k + 1 : nt]
        tri = np.tril(np.ones_like(sub, dtype=bool), k=-1)
        gemm_codes = sub[tri]
        n_gemm = gemm_codes.size
        for code in np.unique(gemm_codes):
            prec = Precision(int(code))
            count = int(np.sum(gemm_codes == code))
            t_work += count * tk(KernelKind.GEMM, prec)
            # receiver conversions: two panel payloads + the C accumulator
            pay = _column_payload(cmap, k, nt, strategy)
            n_conv = 2 * int(needs_conversion(pay, prec, "in"))
            n_conv += int(needs_conversion(cmap.storage(k + 1, k + 1), prec, "inout"))
            t_work += count * n_conv * conversion_time(gpu, elements, pay, prec)
            total_flops += count * 2.0 * float(nb) ** 3
        t_compute = t_work / ranks

        # --- communication ------------------------------------------------
        pay = _column_payload(cmap, k, nt, strategy)
        pay_bytes = elements * bytes_per_element(pay)
        # every panel tile must reach its P+Q−2 remote consumer ranks
        h2d_bytes = w * (remote_consumers + 1) * pay_bytes
        t_h2d = h2d_bytes / ranks / gpu.host_link_bandwidth
        net_bytes = w * dest_nodes * pay_bytes * tree_volume_factor
        t_net = net_bytes / (nodes * platform.node.nic_bandwidth) if net_bytes else 0.0
        # tree-depth latency of one panel broadcast sits on the critical path
        if dest_nodes:
            t_lat += bcast_steps * (
                platform.node.nic_latency + pay_bytes / platform.node.nic_bandwidth
            )

        step = max(t_compute, t_h2d, t_net) + t_lat
        total += step
        acc_compute += t_compute
        acc_h2d += t_h2d
        acc_net += t_net
        acc_lat += t_lat
        nic_bytes_total += net_bytes
        h2d_bytes_total += h2d_bytes

    return AnalyticReport(
        seconds=total,
        total_flops=total_flops,
        compute_seconds=acc_compute,
        h2d_seconds=acc_h2d,
        network_seconds=acc_net,
        latency_seconds=acc_lat,
        nic_bytes=nic_bytes_total,
        h2d_bytes=h2d_bytes_total,
    )


def _column_payload(
    cmap, k: int, nt: int, strategy: ConversionStrategy
) -> Precision:
    """Representative payload precision of panel column k (its median tile)."""
    mid = min(nt - 1, k + 1 + (nt - k - 1) // 2)
    return cmap.payload(mid, k, strategy)
