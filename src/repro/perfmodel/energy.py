"""Activity-based power and energy model (Section VII-E).

The paper samples board power with Nvidia tools while the factorization
runs and reports power-versus-time traces, total joules, and Gflops/Watt
(Fig. 10).  Our substitute integrates an activity-based model over the
simulated timeline: a GPU draws its idle power always, adds the
per-precision compute power while its compute engine is busy, and a small
adder while a copy engine is moving data.  Lower precision draws less
power per second *and* finishes sooner — the two effects that produce the
paper's energy savings.

The model consumes duck-typed trace events carrying ``t_start``,
``t_end``, ``engine`` (``"compute"`` / ``"h2d"`` / ``"d2h"`` / ``"nic"``)
and, for compute events, ``precision``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..precision.formats import Precision
from .gpus import GPUSpec

__all__ = ["PowerSample", "EnergyReport", "power_trace", "energy_report"]


@dataclass(frozen=True)
class PowerSample:
    """One sampled point of the simulated power trace."""

    time: float
    watts: float


@dataclass
class EnergyReport:
    """Aggregated energy metrics for one run on one GPU."""

    gpu_name: str
    makespan: float
    total_joules: float
    total_flops: float
    samples: list[PowerSample] = field(default_factory=list)

    @property
    def gflops_per_watt(self) -> float:
        """Performance per watt: Gflop/s divided by average watts.

        Algebraically this reduces to ``total Gflop / total joules``.
        """
        if self.total_joules <= 0.0:
            return 0.0
        return (self.total_flops / 1e9) / self.total_joules

    @property
    def average_watts(self) -> float:
        if self.makespan <= 0.0:
            return 0.0
        return self.total_joules / self.makespan


def _event_power(gpu: GPUSpec, event) -> float:
    """Incremental power (above idle) drawn while ``event`` is active."""
    engine = getattr(event, "engine", "compute")
    if engine == "compute":
        precision = getattr(event, "precision", Precision.FP64)
        return gpu.compute_power(precision) - gpu.idle_power
    if engine in ("h2d", "d2h"):
        return gpu.tdp_watts * gpu.copy_power_fraction
    return 0.0


def power_trace(
    gpu: GPUSpec,
    events: Sequence,
    makespan: float,
    *,
    sample_dt: float | None = None,
    n_samples: int = 200,
) -> list[PowerSample]:
    """Sample the simulated board power at regular intervals (Fig. 10 dots).

    Power at time t = idle + Σ incremental power of events active at t,
    clamped at 1.1 × TDP (the paper notes samples occasionally exceed TDP
    due to short spikes; the clamp bounds pathological stacking).
    """
    if makespan <= 0.0:
        return []
    if sample_dt is None:
        sample_dt = makespan / n_samples
    times = np.arange(0.0, makespan + sample_dt * 0.5, sample_dt)
    watts = np.full(times.shape, gpu.idle_power)
    for ev in events:
        t0 = getattr(ev, "t_start")
        t1 = getattr(ev, "t_end")
        inc = _event_power(gpu, ev)
        if inc == 0.0:
            # zero increment is a no-op; negative increments are real
            # (a precision whose compute power sits below idle draws
            # *less* than an idle board) and must subtract, not vanish
            continue
        # half-open [t0, t1) so abutting events don't double-count at
        # their shared boundary — except at the makespan, where the
        # trace is closed so an event ending exactly there still shows
        # in the final sample(s)
        t1_eff = t1 if t1 < makespan else np.inf
        mask = (times >= t0) & (times < t1_eff)
        watts[mask] += inc
    np.clip(watts, 0.0, gpu.tdp_watts * 1.1, out=watts)
    return [PowerSample(float(t), float(w)) for t, w in zip(times, watts)]


def energy_report(
    gpu: GPUSpec,
    events: Iterable,
    makespan: float,
    *,
    total_flops: float | None = None,
    n_samples: int = 200,
) -> EnergyReport:
    """Integrate the power model into total joules and Gflops/Watt.

    Energy is integrated exactly from event durations (not from the
    sampled trace): ``E = idle·makespan + Σ_events inc_power·duration``.
    """
    events = list(events)
    joules = gpu.idle_power * makespan
    flops = 0.0
    for ev in events:
        duration = max(0.0, getattr(ev, "t_end") - getattr(ev, "t_start"))
        joules += _event_power(gpu, ev) * duration
        flops += float(getattr(ev, "flops", 0.0) or 0.0)
    if total_flops is not None:
        flops = total_flops
    report = EnergyReport(
        gpu_name=gpu.name,
        makespan=makespan,
        total_joules=joules,
        total_flops=flops,
        samples=power_trace(gpu, events, makespan, n_samples=n_samples),
    )
    return report
