"""Inter-node network model for the Summit-scale experiments.

Messages between nodes follow the classical alpha–beta (latency +
bytes/bandwidth) model on each node's injection NIC.  Broadcasts — the
dominant pattern in tile Cholesky (POTRF → column of TRSMs, TRSM → row and
column of GEMMs, Section VI) — use a binomial tree over the participating
nodes, so a broadcast to ``p`` peers costs ``ceil(log2(p+1))`` sequential
message steps on the critical path while each node's NIC is charged only
for the messages it actually forwards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .gpus import NodeSpec

__all__ = ["message_time", "broadcast_steps", "broadcast_time", "NetworkModel"]


def message_time(node: NodeSpec, nbytes: float) -> float:
    """Point-to-point message time under the alpha-beta model."""
    return node.nic_latency + nbytes / node.nic_bandwidth


def broadcast_steps(n_destinations: int) -> int:
    """Number of sequential rounds of a binomial-tree broadcast."""
    if n_destinations <= 0:
        return 0
    return int(math.ceil(math.log2(n_destinations + 1)))


def broadcast_time(node: NodeSpec, nbytes: float, n_destinations: int) -> float:
    """Critical-path time to broadcast ``nbytes`` to ``n_destinations`` nodes."""
    return broadcast_steps(n_destinations) * message_time(node, nbytes)


@dataclass(frozen=True)
class NetworkModel:
    """Network model bound to one node type."""

    node: NodeSpec

    def p2p(self, nbytes: float) -> float:
        return message_time(self.node, nbytes)

    def bcast(self, nbytes: float, n_destinations: int) -> float:
        return broadcast_time(self.node, nbytes, n_destinations)
