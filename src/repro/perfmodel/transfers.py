"""Host↔device and host↔host transfer-time models (Table II anchor).

Table II of the paper measures, on one Summit V100, the time to move one
tile/matrix to the GPU in each precision and the time to execute a GEMM on
it.  Moving a 2048² FP64 tile takes 0.67 ms — exactly 33.55 MB at 50 GB/s
— and halves with each precision step down, which is precisely the
bytes/bandwidth model implemented here.  The data-motion argument of the
automated conversion strategy (send in the *lowest adequate* precision so
fewer bytes cross the link) falls directly out of this model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..precision.formats import Precision, bytes_per_element
from .gpus import GPUSpec, NodeSpec

__all__ = ["tile_bytes", "h2d_time", "d2h_time", "host_copy_time", "TransferModel"]


def tile_bytes(nb: int, precision: Precision) -> int:
    """Bytes of one ``nb`` × ``nb`` tile encoded in ``precision``."""
    return nb * nb * bytes_per_element(precision)


def h2d_time(gpu: GPUSpec, nb: int, precision: Precision) -> float:
    """Seconds to move one tile host → device over the GPU's host link."""
    return gpu.host_link_latency + tile_bytes(nb, precision) / gpu.host_link_bandwidth


def d2h_time(gpu: GPUSpec, nb: int, precision: Precision) -> float:
    """Seconds to move one tile device → host (symmetric link)."""
    return h2d_time(gpu, nb, precision)


def host_copy_time(node: NodeSpec, nbytes: float) -> float:
    """Seconds for a host-memory staging copy of ``nbytes``."""
    return nbytes / node.cpu_memory_bandwidth


@dataclass(frozen=True)
class TransferModel:
    """Bundle binding a :class:`GPUSpec` and a tile size (Table II rows)."""

    gpu: GPUSpec
    nb: int

    def bytes(self, precision: Precision) -> int:
        return tile_bytes(self.nb, precision)

    def h2d(self, precision: Precision) -> float:
        return h2d_time(self.gpu, self.nb, precision)

    def d2h(self, precision: Precision) -> float:
        return d2h_time(self.gpu, self.nb, precision)
