"""GPU occupancy computation from simulated timelines (Fig. 9).

The paper measures "actual time occupancy" of the H100 at regular
intervals with Nvidia tools: the fraction of each sampling window during
which the GPU's compute engine was busy.  100 % means all data transfers
were fully overlapped with computation; dips indicate the GPU starving on
data motion — exactly the pathology the automated conversion strategy
attacks.

Consumes the same duck-typed trace events as :mod:`.energy` (attributes
``t_start``, ``t_end``, ``engine``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["OccupancySample", "occupancy_trace", "mean_occupancy", "busy_fraction"]


@dataclass(frozen=True)
class OccupancySample:
    """Occupancy over one sampling window ``[time, time + window)``."""

    time: float
    occupancy: float  # in [0, 1]


def _busy_intervals(events: Sequence, engine: str) -> list[tuple[float, float]]:
    """Merged busy intervals of one engine, sorted by start time."""
    spans = sorted(
        (float(ev.t_start), float(ev.t_end))
        for ev in events
        if getattr(ev, "engine", None) == engine and ev.t_end > ev.t_start
    )
    merged: list[tuple[float, float]] = []
    for t0, t1 in spans:
        if merged and t0 <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], t1))
        else:
            merged.append((t0, t1))
    return merged


def busy_fraction(events: Sequence, makespan: float, engine: str = "compute") -> float:
    """Overall fraction of the run during which ``engine`` was busy."""
    if makespan <= 0.0:
        return 0.0
    total = sum(t1 - t0 for t0, t1 in _busy_intervals(events, engine))
    return min(1.0, total / makespan)


def occupancy_trace(
    events: Sequence,
    makespan: float,
    *,
    engine: str = "compute",
    n_windows: int = 100,
) -> list[OccupancySample]:
    """Windowed occupancy samples over the run (Fig. 9 data points)."""
    if makespan <= 0.0:
        return []
    merged = _busy_intervals(events, engine)
    edges = np.linspace(0.0, makespan, n_windows + 1)
    samples: list[OccupancySample] = []
    idx = 0
    for w0, w1 in zip(edges[:-1], edges[1:]):
        busy = 0.0
        # advance past intervals that end before this window
        while idx < len(merged) and merged[idx][1] <= w0:
            idx += 1
        j = idx
        while j < len(merged) and merged[j][0] < w1:
            busy += max(0.0, min(merged[j][1], w1) - max(merged[j][0], w0))
            j += 1
        samples.append(OccupancySample(float(w0), min(1.0, busy / (w1 - w0))))
    return samples


def mean_occupancy(samples: Sequence[OccupancySample]) -> float:
    """Mean of windowed occupancy samples."""
    if not samples:
        return 0.0
    return float(np.mean([s.occupancy for s in samples]))
