"""Calibration utilities for the performance model.

The simulator is only as good as its anchors.  This module (a) verifies
the shipped model against the paper's Table II programmatically, and
(b) lets a user **re-calibrate** a :class:`GPUSpec` from their own
measured GEMM samples — fitting the two free parameters of the
sustained-rate law ``R(n) = f·P · x²/(1+x²)``, ``x = n/n_half`` by
least squares — so the reproduction can be re-anchored to real hardware
when it is available.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..precision.formats import Precision
from .gpus import GPUSpec, V100
from .kernels import gemm_time
from .transfers import h2d_time

__all__ = ["CalibrationReport", "verify_table2", "fit_gemm_curve", "calibrate_gpu"]

#: the paper's Table II (ms) — the shipped model's ground truth
TABLE2_MS = {
    ("move", Precision.FP64): (0.67, 2.68, 6.04, 10.74, 16.78),
    ("move", Precision.FP32): (0.34, 1.34, 3.02, 5.37, 8.39),
    ("move", Precision.FP16): (0.17, 0.67, 1.51, 2.68, 4.19),
    ("gemm", Precision.FP64): (2.2, 17.62, 59.47, 140.96, 275.32),
    ("gemm", Precision.FP32): (1.09, 8.75, 29.54, 70.03, 136.78),
    ("gemm", Precision.FP16): (0.14, 1.1, 3.71, 8.8, 17.18),
}
TABLE2_SIZES = (2048, 4096, 6144, 8192, 10240)


@dataclass(frozen=True)
class CalibrationReport:
    """Per-cell relative errors of the model vs a reference table."""

    max_rel_error: float
    mean_rel_error: float
    worst_cell: tuple[str, str, int]

    @property
    def ok(self) -> bool:
        return self.max_rel_error < 0.15


def verify_table2(gpu: GPUSpec = V100) -> CalibrationReport:
    """Compare the shipped model against the paper's Table II."""
    worst = ("", "", 0)
    errs = []
    max_err = 0.0
    for (kind, prec), refs in TABLE2_MS.items():
        for n, ref in zip(TABLE2_SIZES, refs):
            if kind == "move":
                got = h2d_time(gpu, n, prec) * 1e3
            else:
                got = gemm_time(gpu, n, prec) * 1e3
            rel = abs(got - ref) / ref
            errs.append(rel)
            if rel > max_err:
                max_err = rel
                worst = (kind, prec.name, n)
    return CalibrationReport(
        max_rel_error=max_err, mean_rel_error=float(np.mean(errs)), worst_cell=worst
    )


def fit_gemm_curve(
    sizes: Sequence[int],
    tflops: Sequence[float],
    peak_tflops: float,
) -> tuple[float, int]:
    """Fit (sustained_fraction, half_perf_size) to measured GEMM rates.

    Grid-searches ``n_half`` (the law is nonlinear in it) with the
    optimal ``f`` computed in closed form per candidate — robust for the
    handful of sample points a microbenchmark produces.
    """
    sizes_a = np.asarray(sizes, dtype=np.float64)
    rates = np.asarray(tflops, dtype=np.float64)
    if sizes_a.size != rates.size or sizes_a.size < 2:
        raise ValueError("need at least two (size, rate) samples")
    if np.any(rates <= 0) or np.any(sizes_a <= 0):
        raise ValueError("sizes and rates must be positive")
    best = (np.inf, 0.5, 256)
    for n_half in range(32, 4097, 16):
        x = sizes_a / n_half
        g = x * x / (1.0 + x * x)  # shape function
        denom = float(np.dot(g, g))
        if denom == 0.0:
            continue
        f = float(np.dot(g, rates)) / (peak_tflops * denom)
        f = min(max(f, 1e-3), 1.0)
        resid = float(np.sum((peak_tflops * f * g - rates) ** 2))
        if resid < best[0]:
            best = (resid, f, n_half)
    return best[1], best[2]


def calibrate_gpu(
    gpu: GPUSpec,
    precision: Precision,
    sizes: Sequence[int],
    measured_tflops: Sequence[float],
) -> GPUSpec:
    """Return a copy of ``gpu`` re-anchored to measured GEMM samples."""
    peak = gpu.peak(precision) / 1e12
    f, n_half = fit_gemm_curve(sizes, measured_tflops, peak)
    sustained = dict(gpu.sustained_fraction)
    half = dict(gpu.half_perf_size)
    sustained[precision] = f
    half[precision] = n_half
    return replace(gpu, sustained_fraction=sustained, half_perf_size=half)
