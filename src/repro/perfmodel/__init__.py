"""Calibrated performance, power, and network models for the simulator.

This subpackage replaces the paper's physical testbeds (Summit V100s,
Guyot A100s, Haxane's H100) with analytical models anchored to the
numbers the paper itself publishes: Table I peaks, Table II transfer and
GEMM times, and the Fig. 1 sustained-GEMM curves.  The discrete-event
runtime (:mod:`repro.runtime`) prices every task and transfer through
these models, and the energy/occupancy modules post-process the resulting
timelines into the paper's Fig. 9/10 observables.
"""

from .calibration import CalibrationReport, calibrate_gpu, fit_gemm_curve, verify_table2
from .energy import EnergyReport, PowerSample, energy_report, power_trace
from .gpus import (
    A100,
    GPU_BY_NAME,
    GUYOT_NODE,
    H100,
    HAXANE_NODE,
    SUMMIT,
    SUMMIT_NODE,
    V100,
    ClusterSpec,
    GPUSpec,
    NodeSpec,
)
from .kernels import (
    KernelKind,
    KernelTimeModel,
    conversion_time,
    gemm_time,
    kernel_flops,
    kernel_flops_rect,
    kernel_time,
)
from .network import NetworkModel, broadcast_steps, broadcast_time, message_time
from .occupancy import (
    OccupancySample,
    busy_fraction,
    mean_occupancy,
    occupancy_trace,
)
from .transfers import TransferModel, d2h_time, h2d_time, host_copy_time, tile_bytes

__all__ = [
    "A100",
    "GPU_BY_NAME",
    "GUYOT_NODE",
    "H100",
    "HAXANE_NODE",
    "SUMMIT",
    "SUMMIT_NODE",
    "V100",
    "CalibrationReport",
    "ClusterSpec",
    "EnergyReport",
    "GPUSpec",
    "KernelKind",
    "KernelTimeModel",
    "NetworkModel",
    "NodeSpec",
    "OccupancySample",
    "PowerSample",
    "broadcast_steps",
    "calibrate_gpu",
    "broadcast_time",
    "busy_fraction",
    "conversion_time",
    "d2h_time",
    "energy_report",
    "fit_gemm_curve",
    "gemm_time",
    "h2d_time",
    "host_copy_time",
    "kernel_flops",
    "kernel_flops_rect",
    "kernel_time",
    "mean_occupancy",
    "message_time",
    "occupancy_trace",
    "power_trace",
    "tile_bytes",
    "verify_table2",
]
