"""The campaign engine: fan a sweep grid across worker processes.

``run_sweep`` prices every :class:`~repro.sweep.grid.RunSpec` of a grid
— planning the precision maps, simulating the factorization, collecting
the counters the paper reports — and aggregates the results into a
table plus a ``BENCH_*.json`` document for the perf trajectory.

Two properties make large campaigns cheap:

* **caching** — each spec's result is persisted under its deterministic
  cache key (``<cache_dir>/<key>.json`` with the spec, the result, and
  an obs manifest); re-running an unchanged grid reads every point back
  and reports 100 % cache hits;
* **parallelism** — cache misses fan out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (one simulator run
  per process; the planner itself is vectorized, see
  :func:`repro.core.conversion.build_comm_precision_map`).

Telemetry goes through :mod:`repro.obs`: ``sweep.runs`` /
``sweep.cache_hits`` / ``sweep.cache_misses`` counters, a
``sweep.run_seconds`` timer, and ``sweep.run`` / ``sweep.complete``
events when an event log is attached.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..obs import build_manifest, emit_event, get_registry, span
from .grid import CACHE_SCHEMA, RunSpec, SweepGrid

__all__ = ["SweepRun", "SweepResult", "run_sweep", "execute_spec"]

#: columns of the aggregated results table (and the BENCH run metrics)
TABLE_COLUMNS = (
    "config", "strategy", "n", "nb", "platform",
    "makespan_s", "tflops", "h2d_gb", "nic_gb", "n_conversions", "cached",
)


def execute_spec(spec_dict: dict) -> dict:
    """Price one sweep point; module-level so worker processes can pickle it.

    Returns a JSON-ready result dict: the simulator's counters plus the
    planning statistics (STC fraction, tile fractions) and the wall-time
    split between planning and simulation.
    """
    from ..core import (
        ConversionStrategy,
        build_comm_precision_map,
        simulate_cholesky,
        two_precision_map,
        uniform_map,
    )
    from ..perfmodel import GPU_BY_NAME, NodeSpec
    from ..precision import Precision
    from ..runtime import Platform

    spec = RunSpec.from_dict(spec_dict)
    gpu = GPU_BY_NAME[spec.gpu]
    node = NodeSpec("sweep", gpu, spec.gpus_per_node, 256e9, 25e9, 1.5e-6)
    platform = Platform(node=node, n_nodes=spec.n_nodes)

    t0 = time.perf_counter()
    if spec.config == "adaptive":
        from dataclasses import replace

        from ..bench.apps import app_kernel_map, get_app

        app = get_app(spec.app)
        if spec.accuracy is not None:
            app = replace(app, accuracy=spec.accuracy)
        kmap = app_kernel_map(app, spec.n, spec.nb, samples_per_tile=32, seed=spec.seed)
    else:
        kmap = {
            "FP64": lambda nt: uniform_map(nt, Precision.FP64),
            "FP32": lambda nt: uniform_map(nt, Precision.FP32),
            "FP64/FP16_32": lambda nt: two_precision_map(nt, Precision.FP16_32),
            "FP64/FP16": lambda nt: two_precision_map(nt, Precision.FP16),
        }[spec.config](spec.nt)
    cmap = build_comm_precision_map(kmap)
    plan_seconds = time.perf_counter() - t0

    strategy = ConversionStrategy(spec.strategy)
    t1 = time.perf_counter()
    report = simulate_cholesky(
        spec.n, spec.nb, kmap, platform,
        strategy=strategy,
        enforce_memory=spec.enforce_memory,
        record_events=False,
    )
    sim_seconds = time.perf_counter() - t1

    result = report.stats.to_dict()
    result.update(
        nt=spec.nt,
        stc_fraction=cmap.stc_fraction(),
        tile_fractions={p.name: f for p, f in sorted(kmap.tile_fractions().items(), reverse=True)},
        plan_seconds=plan_seconds,
        sim_seconds=sim_seconds,
    )
    return result


@dataclass(frozen=True)
class SweepRun:
    """One completed sweep point: spec, cache key, result, provenance."""

    spec: RunSpec
    key: str
    result: dict
    cached: bool

    def row(self) -> tuple:
        """One row of the aggregated results table."""
        plat = f"{self.spec.n_nodes}x{self.spec.gpus_per_node}x{self.spec.gpu}"
        cfg = self.spec.config if self.spec.config != "adaptive" else f"adaptive({self.spec.app})"
        return (
            cfg,
            self.spec.strategy,
            self.spec.n,
            self.spec.nb,
            plat,
            self.result["makespan_seconds"],
            self.result["tflops"],
            self.result["h2d_bytes"] / 1e9,
            self.result["nic_bytes"] / 1e9,
            self.result["n_conversions"],
            "hit" if self.cached else "miss",
        )


@dataclass
class SweepResult:
    """Aggregated output of one campaign."""

    name: str
    runs: list[SweepRun] = field(default_factory=list)
    axes: dict | None = None
    wall_seconds: float = 0.0
    workers: int = 1

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def n_cache_hits(self) -> int:
        return sum(1 for r in self.runs if r.cached)

    @property
    def n_cache_misses(self) -> int:
        return self.n_runs - self.n_cache_hits

    @property
    def cache_hit_fraction(self) -> float:
        return self.n_cache_hits / self.n_runs if self.runs else 0.0

    def table(self) -> str:
        from ..bench.reporting import format_table

        title = (f"sweep '{self.name}': {self.n_runs} runs, "
                 f"{self.n_cache_hits} cache hits, {self.workers} worker(s), "
                 f"{self.wall_seconds:.2f} s wall")
        return format_table(TABLE_COLUMNS, [r.row() for r in self.runs], title=title)

    def to_bench_json(self) -> dict:
        """The ``BENCH_*.json`` document that feeds the perf trajectory."""
        makespans = [r.result["makespan_seconds"] for r in self.runs]
        tflops = [r.result["tflops"] for r in self.runs]
        return {
            "schema": "repro.bench/1",
            "cache_schema": CACHE_SCHEMA,
            "name": self.name,
            "axes": self.axes,
            "n_runs": self.n_runs,
            "n_cache_hits": self.n_cache_hits,
            "n_cache_misses": self.n_cache_misses,
            "cache_hit_fraction": self.cache_hit_fraction,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "aggregates": {
                "best_tflops": max(tflops, default=0.0),
                "total_sim_makespan_seconds": sum(makespans),
                "total_plan_seconds": sum(r.result.get("plan_seconds", 0.0) for r in self.runs),
                "total_sim_seconds": sum(r.result.get("sim_seconds", 0.0) for r in self.runs),
                "planned_tasks": sum(r.result.get("n_tasks", 0) for r in self.runs),
            },
            "runs": [
                {
                    "key": r.key,
                    "cached": r.cached,
                    "spec": r.spec.to_dict(),
                    "metrics": r.result,
                }
                for r in self.runs
            ],
        }

    def write_bench_json(self, out_dir: str | Path) -> Path:
        """Write ``BENCH_<name>.json`` under ``out_dir``; returns the path."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in self.name)
        path = out_dir / f"BENCH_{safe}.json"
        path.write_text(json.dumps(self.to_bench_json(), indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        return path


def _cache_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"{key}.json"


def _load_cached(cache_dir: Path, spec: RunSpec, key: str) -> dict | None:
    """Read a cached result, rejecting schema drift or spec mismatch."""
    path = _cache_path(cache_dir, key)
    if not path.exists():
        return None
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if doc.get("schema") != CACHE_SCHEMA or doc.get("spec") != spec.to_dict():
        return None
    result = doc.get("result")
    return result if isinstance(result, dict) else None


def _store_cached(cache_dir: Path, spec: RunSpec, key: str, result: dict) -> None:
    doc = {
        "schema": CACHE_SCHEMA,
        "key": key,
        "spec": spec.to_dict(),
        "result": result,
        "manifest": build_manifest(
            run_id=key, command="sweep.run", config=spec.to_dict(), seed=spec.seed
        ),
    }
    path = _cache_path(cache_dir, key)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    tmp.replace(path)


def run_sweep(
    grid: SweepGrid | Sequence[RunSpec] | Iterable[RunSpec],
    *,
    workers: int = 1,
    cache_dir: str | Path = ".sweep-cache",
    force: bool = False,
    name: str | None = None,
) -> SweepResult:
    """Execute a campaign: every grid point, cached and parallel.

    ``workers > 1`` fans cache misses across a process pool; ``force``
    ignores (and rewrites) existing cache entries.  Results keep the
    grid's expansion order regardless of completion order.
    """
    if isinstance(grid, SweepGrid):
        specs = grid.expand()
        axes = grid.axes_dict()
        sweep_name = name or grid.name
    else:
        specs = list(grid)
        axes = None
        sweep_name = name or "sweep"
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)

    registry = get_registry()
    runs_metric = registry.counter("sweep.runs", "sweep points priced (hits + misses)")
    hits_metric = registry.counter("sweep.cache_hits", "sweep points served from cache")
    misses_metric = registry.counter("sweep.cache_misses", "sweep points executed")
    run_timer = registry.timer("sweep.run_seconds", "wall time per executed sweep point")

    t_start = time.perf_counter()
    keys = [spec.cache_key() for spec in specs]
    results: dict[int, tuple[dict, bool]] = {}

    with span("sweep.campaign", sweep=sweep_name, n_runs=len(specs), workers=workers):
        # 1. serve everything the cache already holds; dedupe the rest so
        #    each unique key runs exactly once even inside one grid
        owner: dict[str, int] = {}  # key -> index that executes it
        for idx, (spec, key) in enumerate(zip(specs, keys)):
            cached = None if force else _load_cached(cache_dir, spec, key)
            if cached is not None:
                results[idx] = (cached, True)
                hits_metric.inc()
            elif key not in owner:
                owner[key] = idx

        # 2. execute the misses (one simulator run per unique key)
        produced: dict[str, dict] = {}
        unique = sorted(owner.values())
        if unique:
            payloads = [specs[i].to_dict() for i in unique]
            if workers > 1 and len(unique) > 1:
                from .pool import make_pool

                with make_pool(min(workers, len(unique))) as pool:
                    outputs = list(pool.map(execute_spec, payloads))
            else:
                outputs = [execute_spec(p) for p in payloads]
            for i, result in zip(unique, outputs):
                _store_cached(cache_dir, specs[i], keys[i], result)
                produced[keys[i]] = result
                misses_metric.inc()
                run_timer.observe(result.get("plan_seconds", 0.0)
                                  + result.get("sim_seconds", 0.0))
        for idx in range(len(specs)):
            if idx not in results:
                # executed here (cached=False) or shared from the point
                # that executed the same key (cached=True)
                results[idx] = (produced[keys[idx]], owner[keys[idx]] != idx)

        runs_metric.inc(len(specs))
        sweep_runs = [
            SweepRun(spec=specs[i], key=keys[i], result=results[i][0], cached=results[i][1])
            for i in range(len(specs))
        ]
        wall = time.perf_counter() - t_start
        out = SweepResult(
            name=sweep_name, runs=sweep_runs, axes=axes, wall_seconds=wall, workers=workers
        )
        for run in sweep_runs:
            emit_event(
                "sweep.run",
                {
                    "key": run.key,
                    "cached": run.cached,
                    "label": run.spec.label,
                    "makespan_seconds": run.result["makespan_seconds"],
                    "tflops": run.result["tflops"],
                },
            )
        emit_event(
            "sweep.complete",
            {
                "name": sweep_name,
                "n_runs": out.n_runs,
                "n_cache_hits": out.n_cache_hits,
                "cache_hit_fraction": out.cache_hit_fraction,
                "wall_seconds": wall,
            },
        )
    registry.gauge("sweep.cache_hit_fraction", "hit fraction of the last sweep").set(
        out.cache_hit_fraction
    )
    return out
