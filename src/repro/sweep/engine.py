"""The campaign engine: fan a sweep grid across worker processes.

``run_sweep`` prices every :class:`~repro.sweep.grid.RunSpec` of a grid
— planning the precision maps, simulating the factorization, collecting
the counters the paper reports — and aggregates the results into a
table plus a ``BENCH_*.json`` document for the perf trajectory.

Two properties make large campaigns cheap:

* **caching** — each spec's result is persisted under its deterministic
  cache key (``<cache_dir>/<key>.json`` with the spec, the result, and
  an obs manifest); re-running an unchanged grid reads every point back
  and reports 100 % cache hits;
* **parallelism** — cache misses fan out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (one simulator run
  per process; the planner itself is vectorized, see
  :func:`repro.core.conversion.build_comm_precision_map`).

Campaigns are also **resilient** (see ``docs/RESILIENCE.md``): each
point runs under a :class:`~repro.faults.RetryPolicy` (exponential
backoff, seeded jitter), a point that exhausts its retries is recorded
with ``failed=True`` instead of aborting the sweep, and unreadable or
schema-invalid cache files are quarantined with a ``.corrupt`` suffix
and treated as misses.  A :class:`~repro.faults.FaultPlan` injects
scripted crashes for testing the recovery paths.

Telemetry goes through :mod:`repro.obs`: ``sweep.runs`` /
``sweep.cache_hits`` / ``sweep.cache_misses`` / ``sweep.cache_corrupt``
/ ``sweep.failed`` counters, ``retry.attempts`` / ``retry.gave_up`` /
``faults.injected`` counters from the resilience layer, a
``sweep.run_seconds`` timer, and ``sweep.run`` / ``sweep.complete``
events when an event log is attached.
"""

from __future__ import annotations

import json
import sys
import time
from concurrent.futures import as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..faults import FaultInjector, FaultPlan, RetryPolicy
from ..obs import build_manifest, emit_event, get_registry, span
from ..obs.live import campaign, campaign_progress
from ..obs.profile import hot_region
from .grid import CACHE_SCHEMA, RunSpec, SweepGrid

__all__ = ["SweepRun", "SweepResult", "run_sweep", "execute_spec"]

#: columns of the aggregated results table (and the BENCH run metrics)
TABLE_COLUMNS = (
    "config", "strategy", "policy", "n", "nb", "platform",
    "makespan_s", "tflops", "h2d_gb", "nic_gb", "n_conversions", "cached", "failed",
)


def _count_fp64(kmap) -> int:
    """Lower-triangle tiles whose kernel runs in FP64."""
    import numpy as np

    from ..precision import Precision

    il, jl = np.tril_indices(kmap.nt)
    return int(np.sum(kmap.codes[il, jl] == int(Precision.FP64)))


def execute_spec(spec_dict: dict) -> dict:
    """Price one sweep point; module-level so worker processes can pickle it.

    Returns a JSON-ready result dict: the simulator's counters plus the
    planning statistics (STC fraction, tile fractions) and the wall-time
    split between planning and simulation.
    """
    from ..core import (
        ConversionStrategy,
        build_comm_precision_map,
        simulate_cholesky,
        two_precision_map,
        uniform_map,
    )
    from ..perfmodel import GPU_BY_NAME, NodeSpec
    from ..precision import Precision
    from ..runtime import Platform

    spec = RunSpec.from_dict(spec_dict)
    gpu = GPU_BY_NAME[spec.gpu]
    node = NodeSpec("sweep", gpu, spec.gpus_per_node, 256e9, 25e9, 1.5e-6)
    platform = Platform(node=node, n_nodes=spec.n_nodes)

    t0 = time.perf_counter()
    ordering_score: float | None = None
    if spec.config == "adaptive":
        from dataclasses import replace

        from ..bench.apps import app_kernel_map, get_app
        from ..geostats.dataplane.hilbert import check_spatial_order, order_locations
        from ..geostats.locations import generate_locations

        app = get_app(spec.app)
        if spec.accuracy is not None:
            app = replace(app, accuracy=spec.accuracy)
        locs = generate_locations(spec.n, app.model.dim, seed=spec.seed, sort=False)
        locs = order_locations(locs, spec.ordering, seed=spec.seed)
        ordering_score = check_spatial_order(locs)
        get_registry().gauge(
            "dataplane.ordering_score", "consecutive/random pair distance ratio"
        ).set(ordering_score, ordering=spec.ordering)
        kmap = app_kernel_map(
            app, spec.n, spec.nb, samples_per_tile=32, seed=spec.seed,
            locations=locs, ordering=None,
        )
    else:
        kmap = {
            "FP64": lambda nt: uniform_map(nt, Precision.FP64),
            "FP32": lambda nt: uniform_map(nt, Precision.FP32),
            "FP64/FP16_32": lambda nt: two_precision_map(nt, Precision.FP16_32),
            "FP64/FP16": lambda nt: two_precision_map(nt, Precision.FP16),
        }[spec.config](spec.nt)
    cmap = build_comm_precision_map(kmap)
    plan_seconds = time.perf_counter() - t0

    strategy = ConversionStrategy(spec.strategy)
    t1 = time.perf_counter()
    report = simulate_cholesky(
        spec.n, spec.nb, kmap, platform,
        strategy=strategy,
        enforce_memory=spec.enforce_memory,
        record_events=False,
        policy=spec.policy,
    )
    sim_seconds = time.perf_counter() - t1

    result = report.stats.to_dict()
    result.update(
        nt=spec.nt,
        policy=report.policy,
        stc_fraction=cmap.stc_fraction(),
        tile_fractions={p.name: f for p, f in sorted(kmap.tile_fractions().items(), reverse=True)},
        plan_seconds=plan_seconds,
        sim_seconds=sim_seconds,
        ordering=spec.ordering,
        ordering_score=ordering_score,
        n_low_precision_tiles=kmap.count_below(Precision.FP32),
        n_fp64_tiles=_count_fp64(kmap),
        fp64_band_width=kmap.fp64_band_width(),
    )
    return result


def _run_point(payload: dict) -> dict:
    """Execute one sweep point under retry + fault injection; never raises.

    Module-level so worker processes can pickle it.  Returns an envelope
    — ``{ok, result, attempts, faults, error}`` — rather than raising,
    so one poisoned point cannot abort the campaign (or, through a
    :class:`~concurrent.futures.process.BrokenProcessPool`, sink every
    other in-flight point).  Telemetry is *not* written here: the parent
    re-counts attempts and fault kinds from the envelope so campaign
    metrics land exactly once, in one registry.
    """
    policy = (RetryPolicy.from_dict(payload["retry"]) if payload.get("retry")
              else RetryPolicy(max_retries=0))
    injector = FaultInjector(payload.get("fault_plan"), use_metrics=False)
    key, label = payload["key"], payload["label"]
    attempts = 0
    fault_kinds: list[str] = []
    last_err: BaseException | None = None
    while attempts <= policy.max_retries:
        attempts += 1
        try:
            fault = injector.point_fault(key, label)
            if fault is not None:
                fault_kinds.append(fault.kind)
                injector.raise_fault(fault, where=f"sweep:{label}", attempt=attempts)
            result = execute_spec(payload["spec"])
            return {"ok": True, "result": result, "attempts": attempts,
                    "faults": fault_kinds, "error": None}
        except Exception as exc:
            last_err = exc
            if attempts <= policy.max_retries:
                time.sleep(policy.delay(attempts))
    return {"ok": False, "result": None, "attempts": attempts,
            "faults": fault_kinds, "error": repr(last_err)}


@dataclass(frozen=True)
class SweepRun:
    """One completed sweep point: spec, cache key, result, provenance.

    ``attempts`` counts executions spent on this point in this campaign
    (0 for cache hits and points that shared another point's execution);
    a point whose retries were exhausted carries ``failed=True`` and a
    ``{"failed": True, "error": ...}`` result instead of metrics.
    """

    spec: RunSpec
    key: str
    result: dict
    cached: bool
    attempts: int = 0

    @property
    def failed(self) -> bool:
        return bool(self.result.get("failed", False))

    def row(self) -> tuple:
        """One row of the aggregated results table."""
        plat = f"{self.spec.n_nodes}x{self.spec.gpus_per_node}x{self.spec.gpu}"
        cfg = self.spec.config if self.spec.config != "adaptive" else f"adaptive({self.spec.app})"
        if self.spec.ordering != "morton":
            cfg += f" ord={self.spec.ordering}"
        head = (cfg, self.spec.strategy, self.spec.policy, self.spec.n, self.spec.nb, plat)
        if self.failed:
            return head + ("-", "-", "-", "-", "-", "miss", "yes")
        return head + (
            self.result["makespan_seconds"],
            self.result["tflops"],
            self.result["h2d_bytes"] / 1e9,
            self.result["nic_bytes"] / 1e9,
            self.result["n_conversions"],
            "hit" if self.cached else "miss",
            "",
        )


@dataclass
class SweepResult:
    """Aggregated output of one campaign."""

    name: str
    runs: list[SweepRun] = field(default_factory=list)
    axes: dict | None = None
    wall_seconds: float = 0.0
    workers: int = 1

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def n_cache_hits(self) -> int:
        return sum(1 for r in self.runs if r.cached)

    @property
    def n_cache_misses(self) -> int:
        return self.n_runs - self.n_cache_hits

    @property
    def cache_hit_fraction(self) -> float:
        return self.n_cache_hits / self.n_runs if self.runs else 0.0

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.runs if r.failed)

    @property
    def total_retries(self) -> int:
        """Re-attempts spent across the campaign (attempts beyond the first)."""
        return sum(max(0, r.attempts - 1) for r in self.runs)

    def table(self) -> str:
        from ..bench.reporting import format_table

        title = (f"sweep '{self.name}': {self.n_runs} runs, "
                 f"{self.n_cache_hits} cache hits, {self.n_failed} failed, "
                 f"{self.workers} worker(s), {self.wall_seconds:.2f} s wall")
        return format_table(TABLE_COLUMNS, [r.row() for r in self.runs], title=title)

    def to_bench_json(self) -> dict:
        """The ``BENCH_*.json`` document that feeds the perf trajectory."""
        ok = [r for r in self.runs if not r.failed]
        makespans = [r.result["makespan_seconds"] for r in ok]
        tflops = [r.result["tflops"] for r in ok]
        return {
            "schema": "repro.bench/1",
            "cache_schema": CACHE_SCHEMA,
            "name": self.name,
            "axes": self.axes,
            "n_runs": self.n_runs,
            "n_cache_hits": self.n_cache_hits,
            "n_cache_misses": self.n_cache_misses,
            "n_failed": self.n_failed,
            "total_retries": self.total_retries,
            "cache_hit_fraction": self.cache_hit_fraction,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "aggregates": {
                "best_tflops": max(tflops, default=0.0),
                "total_sim_makespan_seconds": sum(makespans),
                "total_plan_seconds": sum(r.result.get("plan_seconds", 0.0) for r in ok),
                "total_sim_seconds": sum(r.result.get("sim_seconds", 0.0) for r in ok),
                "planned_tasks": sum(r.result.get("n_tasks", 0) for r in ok),
                "total_h2d_bytes": sum(r.result.get("h2d_bytes", 0) for r in ok),
                "total_d2h_bytes": sum(r.result.get("d2h_bytes", 0) for r in ok),
                "total_nic_bytes": sum(r.result.get("nic_bytes", 0) for r in ok),
                "total_conversions": sum(r.result.get("n_conversions", 0) for r in ok),
            },
            "runs": [
                {
                    "key": r.key,
                    "cached": r.cached,
                    "failed": r.failed,
                    "attempts": r.attempts,
                    "spec": r.spec.to_dict(),
                    "metrics": r.result,
                }
                for r in self.runs
            ],
        }

    def summary_stats(self) -> dict:
        """Campaign-level counters in run-summary form.

        A flat numeric dict (``makespan_seconds`` key included so
        :func:`repro.obs.regress.load_metric_scopes` recognizes it) for
        embedding into ``--metrics-out`` summaries, making a campaign
        diffable by ``repro compare`` just like a single run.
        """
        bench = self.to_bench_json()
        stats = dict(bench["aggregates"])
        stats.update(
            makespan_seconds=stats.pop("total_sim_makespan_seconds", 0.0),
            n_runs=self.n_runs,
            n_failed=self.n_failed,
            total_retries=self.total_retries,
            cache_hit_fraction=self.cache_hit_fraction,
        )
        return stats

    def write_bench_json(self, out_dir: str | Path) -> Path:
        """Write ``BENCH_<name>.json`` under ``out_dir``; returns the path."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in self.name)
        path = out_dir / f"BENCH_{safe}.json"
        path.write_text(json.dumps(self.to_bench_json(), indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        return path


def _cache_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"{key}.json"


def _quarantine(path: Path) -> None:
    """Move a poisoned cache file aside (``<key>.json.corrupt``) and count it."""
    try:
        path.replace(path.with_suffix(path.suffix + ".corrupt"))
    except OSError:
        pass  # a concurrent campaign may have quarantined it already
    get_registry().counter(
        "sweep.cache_corrupt", "cache entries quarantined as unreadable/invalid"
    ).inc()
    emit_event("sweep.cache_corrupt", {"path": str(path)})


def _load_cached(cache_dir: Path, spec: RunSpec, key: str) -> dict | None:
    """Read a cached result; treat anything unreadable as a miss.

    A truncated, non-UTF-8, non-object, or otherwise invalid file is
    *quarantined* (renamed with a ``.corrupt`` suffix, ``sweep.cache_corrupt``
    bumped) so the campaign re-executes the point instead of aborting —
    previously a cache entry holding a JSON array or binary garbage
    raised out of the campaign loop.  Schema drift and spec mismatch are
    well-formed non-matches: plain misses, overwritten on store.
    """
    path = _cache_path(cache_dir, key)
    if not path.exists():
        return None
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(doc, dict):
            raise ValueError(f"cache entry is {type(doc).__name__}, not an object")
    except Exception:
        _quarantine(path)
        return None
    if doc.get("schema") != CACHE_SCHEMA or doc.get("spec") != spec.to_dict():
        return None
    result = doc.get("result")
    if not isinstance(result, dict):
        _quarantine(path)
        return None
    return result


def _store_cached(cache_dir: Path, spec: RunSpec, key: str, result: dict) -> None:
    doc = {
        "schema": CACHE_SCHEMA,
        "key": key,
        "spec": spec.to_dict(),
        "result": result,
        "manifest": build_manifest(
            run_id=key, command="sweep.run", config=spec.to_dict(), seed=spec.seed,
            policy=spec.policy,
        ),
    }
    path = _cache_path(cache_dir, key)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    tmp.replace(path)


class _ProgressTracker:
    """Periodic ``completed/total`` campaign progress.

    Three sinks per update: the live plane (every completion — the
    snapshot bus and ``/progress`` see point-granular state), a
    ``sweep.progress`` obs-event, and a stderr line — the latter two
    rate-limited to one per ``every`` seconds (``every=0`` logs every
    completion, ``every=None`` silences them; the live plane always
    updates).  A campaign that runs for minutes is no longer silent.
    """

    def __init__(self, total: int, *, hits: int = 0,
                 every: float | None = 10.0, name: str = "sweep") -> None:
        self.total = total
        self.hits = hits
        self.every = every
        self.name = name
        self.completed_misses = 0
        self.retries = 0
        self.failed = 0
        self._last_report: float | None = None

    @property
    def completed(self) -> int:
        return self.hits + self.completed_misses

    def point_done(self, envelope: dict) -> None:
        self.completed_misses += 1
        self.retries += max(0, int(envelope.get("attempts", 1)) - 1)
        if not envelope.get("ok", True):
            self.failed += 1
        self.report()

    def report(self, *, force: bool = False) -> None:
        campaign_progress(
            self.completed,
            sweep_cache_hits=self.hits,
            sweep_retries=self.retries,
            sweep_failed=self.failed,
        )
        if self.every is None:
            return
        now = time.monotonic()
        if not force and self._last_report is not None and (
            now - self._last_report < self.every
        ):
            return
        self._last_report = now
        attrs = {
            "name": self.name,
            "completed": self.completed,
            "total": self.total,
            "cache_hits": self.hits,
            "retries": self.retries,
            "failed": self.failed,
        }
        emit_event("sweep.progress", attrs)
        print(
            f"sweep {self.name}: {self.completed}/{self.total} points "
            f"({self.hits} cached, {self.retries} retries"
            + (f", {self.failed} failed" if self.failed else "")
            + ")",
            file=sys.stderr,
        )


def run_sweep(
    grid: SweepGrid | Sequence[RunSpec] | Iterable[RunSpec],
    *,
    workers: int = 1,
    cache_dir: str | Path = ".sweep-cache",
    force: bool = False,
    name: str | None = None,
    retry_policy: RetryPolicy | None = None,
    fault_plan: FaultPlan | dict | None = None,
    progress_seconds: float | None = 10.0,
) -> SweepResult:
    """Execute a campaign: every grid point, cached, parallel, resilient.

    ``workers > 1`` fans cache misses across a process pool; ``force``
    ignores (and rewrites) existing cache entries.  Results keep the
    grid's expansion order regardless of completion order.

    ``retry_policy`` re-attempts crashed points with exponential backoff;
    a point that exhausts its retries is recorded with ``failed=True``
    (and left uncached, so the next campaign retries it) instead of
    aborting the sweep.  ``fault_plan`` injects scripted failures into
    matching points (see :mod:`repro.faults`).

    ``progress_seconds`` rate-limits ``completed/total`` progress
    reporting (a stderr line plus a ``sweep.progress`` event, with
    cache-hit/retry/failure counts); ``0`` reports every completion,
    ``None`` disables the lines.  Completions also land on the live
    plane's snapshot bus point-by-point when one is installed
    (``--live-port``), so ``repro watch`` tracks a campaign exactly like
    a single run.
    """
    if isinstance(grid, SweepGrid):
        specs = grid.expand()
        axes = grid.axes_dict()
        sweep_name = name or grid.name
    else:
        specs = list(grid)
        axes = None
        sweep_name = name or "sweep"
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)

    if fault_plan is not None and not isinstance(fault_plan, FaultPlan):
        fault_plan = FaultPlan.from_dict(fault_plan)

    registry = get_registry()
    runs_metric = registry.counter("sweep.runs", "sweep points priced (hits + misses)")
    hits_metric = registry.counter("sweep.cache_hits", "sweep points served from cache")
    misses_metric = registry.counter("sweep.cache_misses", "sweep points executed")
    failed_metric = registry.counter("sweep.failed", "sweep points that exhausted retries")
    faults_metric = registry.counter("faults.injected", "faults fired from the active fault plan")
    retries_metric = registry.counter("retry.attempts", "re-attempts performed by retry policies")
    gave_up_metric = registry.counter("retry.gave_up", "calls that exhausted their retry policy")
    run_timer = registry.timer("sweep.run_seconds", "wall time per executed sweep point")

    t_start = time.perf_counter()
    keys = [spec.cache_key() for spec in specs]
    results: dict[int, tuple[dict, bool]] = {}

    with span("sweep.campaign", sweep=sweep_name, n_runs=len(specs), workers=workers), \
            campaign(f"sweep:{sweep_name}", len(specs)):
        # 1. serve everything the cache already holds; dedupe the rest so
        #    each unique key runs exactly once even inside one grid
        owner: dict[str, int] = {}  # key -> index that executes it
        for idx, (spec, key) in enumerate(zip(specs, keys)):
            cached = None if force else _load_cached(cache_dir, spec, key)
            if cached is not None:
                results[idx] = (cached, True)
                hits_metric.inc()
            elif key not in owner:
                owner[key] = idx
        progress = _ProgressTracker(
            len(specs), hits=len(results), every=progress_seconds,
            name=sweep_name,
        )
        progress.report()  # the cache-served fraction, before any dispatch

        # 2. execute the misses (one simulator run per unique key), each
        #    under the retry policy and fault plan; failures are recorded,
        #    not raised
        produced: dict[str, dict] = {}
        attempts_spent: dict[int, int] = {}
        unique = sorted(owner.values())
        if unique:
            payloads = [
                {
                    "spec": specs[i].to_dict(),
                    "key": keys[i],
                    "label": specs[i].label,
                    "retry": retry_policy.to_dict() if retry_policy else None,
                    "fault_plan": fault_plan.to_dict() if fault_plan else None,
                }
                for i in unique
            ]
            with hot_region("sweep.dispatch"):
                if workers > 1 and len(unique) > 1:
                    from .pool import make_pool

                    # submit + as_completed (not pool.map): progress is
                    # observed at each completion, in completion order
                    outputs: list[dict | None] = [None] * len(payloads)
                    with make_pool(min(workers, len(unique))) as pool:
                        futures = {
                            pool.submit(_run_point, payload): pos
                            for pos, payload in enumerate(payloads)
                        }
                        for fut in as_completed(futures):
                            pos = futures[fut]
                            outputs[pos] = fut.result()
                            progress.point_done(outputs[pos])
                else:
                    outputs = []
                    for payload in payloads:
                        env = _run_point(payload)
                        outputs.append(env)
                        progress.point_done(env)
            for i, env in zip(unique, outputs):
                attempts_spent[i] = env["attempts"]
                retries_metric.inc(max(0, env["attempts"] - 1), op="sweep.point")
                for kind in env["faults"]:
                    faults_metric.inc(kind=kind)
                if env["ok"]:
                    result = env["result"]
                    _store_cached(cache_dir, specs[i], keys[i], result)
                    run_timer.observe(result.get("plan_seconds", 0.0)
                                      + result.get("sim_seconds", 0.0))
                else:
                    # a failed point stays uncached: the next campaign
                    # retries it instead of replaying the failure
                    result = {"failed": True, "error": env["error"],
                              "attempts": env["attempts"]}
                    failed_metric.inc()
                    gave_up_metric.inc(op="sweep.point")
                    emit_event("sweep.point_failed",
                               {"key": keys[i], "label": specs[i].label,
                                "attempts": env["attempts"], "error": env["error"]})
                produced[keys[i]] = result
                misses_metric.inc()
        for idx in range(len(specs)):
            if idx not in results:
                # executed here (cached=False) or shared from the point
                # that executed the same key (cached=True)
                results[idx] = (produced[keys[idx]], owner[keys[idx]] != idx)

        progress.report(force=True)  # the final completed/total line
        runs_metric.inc(len(specs))
        sweep_runs = [
            SweepRun(spec=specs[i], key=keys[i], result=results[i][0],
                     cached=results[i][1], attempts=attempts_spent.get(i, 0))
            for i in range(len(specs))
        ]
        wall = time.perf_counter() - t_start
        out = SweepResult(
            name=sweep_name, runs=sweep_runs, axes=axes, wall_seconds=wall, workers=workers
        )
        for run in sweep_runs:
            emit_event(
                "sweep.run",
                {
                    "key": run.key,
                    "cached": run.cached,
                    "failed": run.failed,
                    "label": run.spec.label,
                    "makespan_seconds": run.result.get("makespan_seconds"),
                    "tflops": run.result.get("tflops"),
                },
            )
        emit_event(
            "sweep.complete",
            {
                "name": sweep_name,
                "n_runs": out.n_runs,
                "n_cache_hits": out.n_cache_hits,
                "n_failed": out.n_failed,
                "total_retries": out.total_retries,
                "cache_hit_fraction": out.cache_hit_fraction,
                "wall_seconds": wall,
            },
        )
    registry.gauge("sweep.cache_hit_fraction", "hit fraction of the last sweep").set(
        out.cache_hit_fraction
    )
    return out
