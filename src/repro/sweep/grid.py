"""Sweep grids: declarative campaigns over simulator configurations.

The paper's headline results are all sweeps — STC-vs-TTC comparisons
across matrix sizes (Fig. 8), weak/strong scaling grids (Fig. 12),
precision-configuration panels (Figs. 1, 7) — yet a single simulator
invocation prices exactly one point.  A :class:`SweepGrid` names the
axes once (sizes, tile sizes, precision configs, conversion strategies,
platforms, seeds) and expands them into the cartesian list of
:class:`RunSpec` points the campaign engine executes.

Every :class:`RunSpec` carries a deterministic cache key: the SHA-256
of its canonical JSON form plus a schema version.  Two specs with the
same parameters hash identically across processes and sessions, which
is what makes re-running an unchanged grid free (see
:mod:`repro.sweep.engine`).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, field
from typing import Iterator, Mapping

__all__ = ["RunSpec", "SweepGrid", "KERNEL_CONFIGS", "ORDERINGS"]

#: schema version folded into every cache key — bump when the result
#: JSON layout or the simulation semantics change incompatibly
#: (3: per-precision d2h/nic byte splits + conversion-site attribution;
#:  4: scheduling policy becomes a spec field and sweep axis;
#:  5: spatial ordering becomes a spec field and sweep axis, adaptive
#:     results gain ordering/precision-map structure metrics)
CACHE_SCHEMA = 5

#: supported kernel-precision configurations; "adaptive" builds the map
#: from sampled tile norms of the named application at ``accuracy``
KERNEL_CONFIGS = ("FP64", "FP32", "FP64/FP16_32", "FP64/FP16", "adaptive")

#: spatial orderings applied to the application's locations before the
#: precision map is sampled (see repro.geostats.dataplane)
ORDERINGS = ("morton", "random", "hilbert")


@dataclass(frozen=True)
class RunSpec:
    """One point of a sweep: everything needed to price one run.

    ``config`` selects the kernel-precision map: one of the fixed
    configurations of Fig. 8 or ``"adaptive"``, in which case ``app``
    names the application whose sampled tile norms feed the Higham–Mary
    rule and ``accuracy`` (optional) overrides the application's
    ``u_req`` threshold.
    """

    n: int
    nb: int
    config: str = "FP64"
    strategy: str = "auto"
    gpu: str = "V100"
    gpus_per_node: int = 1
    n_nodes: int = 1
    app: str = "2d-matern"
    accuracy: float | None = None
    seed: int = 0
    policy: str = "panel-first"
    ordering: str = "morton"
    enforce_memory: bool = True

    def __post_init__(self) -> None:
        from ..runtime.policies import POLICY_NAMES

        if self.n <= 0 or self.nb <= 0:
            raise ValueError(f"n and nb must be positive, got n={self.n}, nb={self.nb}")
        if self.config not in KERNEL_CONFIGS:
            raise ValueError(f"unknown config {self.config!r}; expected one of {KERNEL_CONFIGS}")
        if self.strategy not in ("auto", "stc", "ttc"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.gpus_per_node < 1 or self.n_nodes < 1:
            raise ValueError("gpus_per_node and n_nodes must be positive")
        if self.policy not in POLICY_NAMES:
            raise ValueError(f"unknown policy {self.policy!r}; expected one of {POLICY_NAMES}")
        if self.ordering not in ORDERINGS:
            raise ValueError(
                f"unknown ordering {self.ordering!r}; expected one of {ORDERINGS}"
            )

    @property
    def nt(self) -> int:
        return -(-self.n // self.nb)

    @property
    def label(self) -> str:
        plat = f"{self.n_nodes}x{self.gpus_per_node}x{self.gpu}"
        cfg = self.config if self.config != "adaptive" else f"adaptive({self.app})"
        base = f"{cfg}/{self.strategy} n={self.n} nb={self.nb} {plat}"
        if self.policy != "panel-first":
            base += f" [{self.policy}]"
        if self.ordering != "morton":
            base += f" ord={self.ordering}"
        return base

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "RunSpec":
        return cls(**dict(d))

    def cache_key(self) -> str:
        """Deterministic content hash of this spec (hex, 16 chars).

        Canonical JSON (sorted keys, no whitespace variance) of the spec
        plus the cache schema version; stable across processes, runs,
        and machines.
        """
        doc = {"schema": CACHE_SCHEMA, "spec": self.to_dict()}
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class SweepGrid:
    """A cartesian grid of :class:`RunSpec` points.

    Axes with a single value may be given as scalars; expansion order is
    the documented field order (n, nb, config, strategy, gpu,
    gpus_per_node, n_nodes, app, accuracy, seed, policy, ordering),
    which keeps run numbering deterministic.
    """

    n: tuple[int, ...] = (4096,)
    nb: tuple[int, ...] = (512,)
    config: tuple[str, ...] = ("FP64",)
    strategy: tuple[str, ...] = ("auto",)
    gpu: tuple[str, ...] = ("V100",)
    gpus_per_node: tuple[int, ...] = (1,)
    n_nodes: tuple[int, ...] = (1,)
    app: tuple[str, ...] = ("2d-matern",)
    accuracy: tuple[float | None, ...] = (None,)
    seed: tuple[int, ...] = (0,)
    policy: tuple[str, ...] = ("panel-first",)
    ordering: tuple[str, ...] = ("morton",)
    enforce_memory: bool = True
    name: str = "sweep"
    extra: Mapping[str, object] = field(default_factory=dict)

    @classmethod
    def from_axes(cls, **axes) -> "SweepGrid":
        """Build a grid, lifting scalar axis values to 1-tuples."""
        norm: dict[str, object] = {}
        for key, value in axes.items():
            if key in ("enforce_memory", "name", "extra"):
                norm[key] = value
            elif isinstance(value, (list, tuple)):
                norm[key] = tuple(value)
            else:
                norm[key] = (value,)
        return cls(**norm)

    def axes_dict(self) -> dict:
        """The grid's axes as plain JSON-ready values (for manifests)."""
        return {
            "n": list(self.n),
            "nb": list(self.nb),
            "config": list(self.config),
            "strategy": list(self.strategy),
            "gpu": list(self.gpu),
            "gpus_per_node": list(self.gpus_per_node),
            "n_nodes": list(self.n_nodes),
            "app": list(self.app),
            "accuracy": list(self.accuracy),
            "seed": list(self.seed),
            "policy": list(self.policy),
            "ordering": list(self.ordering),
            "enforce_memory": self.enforce_memory,
        }

    def __len__(self) -> int:
        size = 1
        for axis in (self.n, self.nb, self.config, self.strategy, self.gpu,
                     self.gpus_per_node, self.n_nodes, self.app, self.accuracy,
                     self.seed, self.policy, self.ordering):
            size *= len(axis)
        return size

    def expand(self) -> list[RunSpec]:
        return list(iter(self))

    def __iter__(self) -> Iterator[RunSpec]:
        for (n, nb, config, strategy, gpu, gpn, nodes, app, accuracy, seed,
             policy, ordering) in itertools.product(
                self.n, self.nb, self.config, self.strategy, self.gpu,
                self.gpus_per_node, self.n_nodes, self.app, self.accuracy,
                self.seed, self.policy, self.ordering,
        ):
            yield RunSpec(
                n=n,
                nb=nb,
                config=config,
                strategy=strategy,
                gpu=gpu,
                gpus_per_node=gpn,
                n_nodes=nodes,
                app=app,
                accuracy=accuracy,
                seed=seed,
                policy=policy,
                ordering=ordering,
                enforce_memory=self.enforce_memory,
            )
