"""Process-pool plumbing shared by the campaign layers.

One place decides how worker processes are started (fork where cheap,
forkserver/spawn otherwise — see
:func:`repro.runtime.distributed.pick_mp_context`) so the sweep engine
and the Monte Carlo driver fan out identically on every platform.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from ..runtime.distributed import pick_mp_context

__all__ = ["make_pool"]


def make_pool(workers: int) -> ProcessPoolExecutor:
    """A :class:`ProcessPoolExecutor` on the best available start method.

    Raises :class:`RuntimeError` (from :func:`pick_mp_context`) when the
    platform supports no usable multiprocessing start method, so callers
    can fall back to inline execution or skip cleanly.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    return ProcessPoolExecutor(max_workers=workers, mp_context=pick_mp_context())
