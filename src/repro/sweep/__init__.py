"""repro.sweep — the campaign engine.

The paper's headline results are sweeps (Monte Carlo estimation
campaigns, STC-vs-TTC comparisons, scaling grids); this package runs
them as first-class objects: a :class:`SweepGrid` of configurations fans
out over a process pool with deterministic per-run cache keys, per-run
obs manifests/metrics, and aggregated output as a results table plus a
``BENCH_*.json`` document for the perf trajectory.  See
``docs/SWEEPS.md`` and the ``repro sweep`` CLI subcommand.
"""

from .engine import SweepResult, SweepRun, execute_spec, run_sweep
from .grid import KERNEL_CONFIGS, RunSpec, SweepGrid
from .pool import make_pool

__all__ = [
    "KERNEL_CONFIGS",
    "RunSpec",
    "SweepGrid",
    "SweepResult",
    "SweepRun",
    "execute_spec",
    "make_pool",
    "run_sweep",
]
