"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``mle``       fit a synthetic dataset at one or more accuracy levels
``maps``      print the kernel/communication precision maps for an app
``simulate``  price a mixed-precision Cholesky on a simulated platform
``simbench``  benchmark DAG build + scheduling throughput (tasks/sec,
              peak RSS) in materialize or stream (million-task) mode;
              emits the BENCH document the CI bench floors gate on
``sweep``     fan a grid of configurations across a process pool (cached)
``bench``     run one experiment driver (table/figure) and print its table
``info``      show the encoded GPU specifications (Table I)
``report``    summarise a captured run (metrics/manifest, events, trace)
``analyze``   explain a captured run: data-motion ledger, conversion-site
              attribution, critical path, utilization (trace or run dir)
``compare``   regression sentinel: diff BENCH/run-summary documents with
              per-metric thresholds; ``--fail-on-regress`` gates CI;
              ``--against-history DB --window N`` runs the windowed
              trend sentinel over warehouse history instead
``schedule-compare``
              price one configuration under several scheduling policies
              (see ``docs/SCHEDULING.md``) and diff each against a
              baseline policy via the regression-sentinel report format
``history``   the cross-run telemetry warehouse: ingest run summaries /
              BENCH / profile documents into a SQLite store and list
              the accumulated history (``docs/OBSERVABILITY.md``)
``profile``   run a symbolic simulate under the sampling wall-clock
              profiler and print the hottest frames + instrumented
              hot regions with the measured overhead
``merge-shards``
              merge the per-rank ``events-rank<k>.jsonl`` shards of a
              distributed run into one clock-aligned trace + summary
              that ``repro analyze`` accepts

Telemetry flags (see ``docs/OBSERVABILITY.md``): ``simulate`` takes
``--trace-out`` (Perfetto JSON with counter tracks), ``--metrics-out``
(metrics + manifest + trace summary), and ``--events-out`` (JSONL);
``mle`` takes ``--events-out`` for per-iteration records.

Resilience flags (see ``docs/RESILIENCE.md``): ``sweep`` takes
``--max-retries`` (per-point retry with exponential backoff) and
``--fault-plan`` (JSON :class:`repro.faults.FaultPlan` of scripted
failures for testing the recovery paths).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["main", "build_parser"]

#: exit code of a run aborted by a watchdog ``:abort`` alert rule
EXIT_WATCHDOG_ABORT = 3


def _add_live_flags(p: argparse.ArgumentParser) -> None:
    """The live-telemetry-plane flags shared by long-running verbs."""
    p.add_argument("--live-port", type=int, default=None, metavar="PORT",
                   help="serve /metrics, /progress, /healthz on "
                        "127.0.0.1:PORT while the run is in flight "
                        "(0 = ephemeral port; see docs/OBSERVABILITY.md)")
    p.add_argument("--live-port-file", default=None, metavar="PATH",
                   help="write the bound live port to PATH (for pollers "
                        "when --live-port 0 picked an ephemeral port)")
    p.add_argument("--live-interval", type=float, default=1.0, metavar="SECONDS",
                   help="snapshot-bus capture interval (default: 1.0)")
    p.add_argument("--alert", action="append", default=None, metavar="RULE",
                   help="watchdog alert rule: stall=SECONDS, "
                        "rank-silent=SECONDS, METRIC<FLOOR, METRIC>CEILING, "
                        "each optionally suffixed :abort; repeatable "
                        "(implies the live plane even without --live-port)")


def build_parser() -> argparse.ArgumentParser:
    from .runtime.policies import POLICY_NAMES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive mixed-precision Cholesky for geospatial modeling "
        "(CLUSTER 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("mle", help="fit a synthetic dataset")
    p.add_argument("--model", default="2d-matern",
                   choices=["2d-matern", "2d-sqexp", "3d-sqexp"])
    p.add_argument("--n", type=int, default=256)
    p.add_argument("--accuracy", type=float, action="append", default=None,
                   help="u_req level(s); repeatable (default: 1e-9)")
    p.add_argument("--exact", action="store_true", help="also run the FP64 reference")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--nugget", type=float, default=None,
                   help="measurement-error variance (default: 0.01 for sqexp)")
    p.add_argument("--events-out", default=None, metavar="PATH",
                   help="write per-iteration telemetry to a JSONL event log")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write metrics + run manifest as JSON")

    p = sub.add_parser("maps", help="print precision maps for an application")
    p.add_argument("--app", default="2d-matern",
                   choices=["2d-sqexp", "2d-matern", "3d-sqexp"])
    p.add_argument("--n", type=int, default=16384)
    p.add_argument("--nb", type=int, default=2048)
    p.add_argument("--accuracy", type=float, default=None,
                   help="override the application's u_req")

    p = sub.add_parser("simulate", help="price a factorization on simulated hardware")
    p.add_argument("--gpu", default="V100", choices=["V100", "A100", "H100"])
    p.add_argument("--gpus", type=int, default=1, help="GPUs per node")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--n", type=int, default=32768)
    p.add_argument("--nb", type=int, default=2048)
    p.add_argument("--config", default="FP64/FP16",
                   choices=["FP64", "FP32", "FP64/FP16_32", "FP64/FP16"])
    p.add_argument("--strategy", default="auto", choices=["auto", "stc", "ttc"])
    p.add_argument("--policy", default="panel-first", choices=list(POLICY_NAMES),
                   help="scheduling policy for the ready heap "
                        "(default: panel-first; see docs/SCHEDULING.md)")
    p.add_argument("--host-memory-gb", type=float, default=256.0,
                   help="host DRAM capacity per node in GB; tiles evicted "
                        "beyond this spill to the simulated disk tier "
                        "(default: 256)")
    p.add_argument("--schedule-out", default=None, metavar="PATH",
                   help="export the committed task order as a replayable "
                        "static schedule (.json, or .npz for compact binary)")
    p.add_argument("--replay", default=None, metavar="PATH",
                   help="replay a schedule exported with --schedule-out "
                        "instead of running a policy (bit-identical, no "
                        "ready-heap work)")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write a Perfetto/Chrome trace JSON with counter tracks")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write metrics + run manifest + trace summary as JSON")
    p.add_argument("--events-out", default=None, metavar="PATH",
                   help="write a structured JSONL event log")
    p.add_argument("--csv-out", default=None, metavar="PATH",
                   help="write the raw event trace as CSV")
    p.add_argument("--profile-out", default=None, metavar="PATH",
                   help="run under the sampling profiler and write the "
                        "repro.obs.profile/1 document (see docs/OBSERVABILITY.md)")
    p.add_argument("--run-id", default=None, help="run identifier for logs/manifest")
    _add_live_flags(p)
    p.add_argument("--live-stall-after", type=int, default=None, metavar="TASKS",
                   help="(testing) freeze the hot loop once TASKS tasks are "
                        "done, so a watchdog stall rule can be exercised")
    p.add_argument("--live-stall-seconds", type=float, default=5.0, metavar="S",
                   help="(testing) how long the synthetic stall sleeps "
                        "(default: 5.0; needs --live-stall-after)")

    p = sub.add_parser(
        "simbench",
        help="benchmark DAG build + scheduling throughput (bench floors)",
    )
    p.add_argument("--gpu", default="V100", choices=["V100", "A100", "H100"])
    p.add_argument("--gpus", type=int, default=2, help="GPUs per node")
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--nt", type=int, default=96,
                   help="tiles per dimension; the matrix size is nt*nb "
                        "(default: 96 — ~147k tasks, CI scale)")
    p.add_argument("--nb", type=int, default=512)
    p.add_argument("--config", default="FP64/FP16",
                   choices=["FP64", "FP32", "FP64/FP16_32", "FP64/FP16"])
    p.add_argument("--strategy", default="auto", choices=["auto", "stc", "ttc"])
    p.add_argument("--policy", default="panel-first", choices=list(POLICY_NAMES))
    p.add_argument("--mode", default="materialize",
                   choices=["materialize", "stream"],
                   help="materialize: build the full DAG then simulate; "
                        "stream: lazy k-major emission through "
                        "simulate_stream (million-task mode)")
    p.add_argument("--lookahead", type=int, default=None,
                   help="emission window for --mode stream "
                        "(default: max(4096, nt^2 + 4*nt))")
    p.add_argument("--host-memory-gb", type=float, default=256.0,
                   help="host DRAM capacity per node in GB (default: 256)")
    p.add_argument("--record-events", action="store_true",
                   help="record the full event trace; note this voids the "
                        "O(window) memory bound of --mode stream (the trace "
                        "grows O(n_tasks)) — a warning is printed there")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the BENCH run-summary JSON (throughput + "
                        "peak RSS floors) for repro compare / history")
    p.add_argument("--run-id", default=None, help="run identifier for the manifest")
    _add_live_flags(p)

    p = sub.add_parser("sweep", help="run a campaign over a grid of configurations")
    p.add_argument("--n", type=int, action="append", default=None,
                   help="matrix size axis; repeatable (default: 4096)")
    p.add_argument("--nb", type=int, action="append", default=None,
                   help="tile size axis; repeatable (default: 512)")
    p.add_argument("--config", action="append", default=None,
                   choices=["FP64", "FP32", "FP64/FP16_32", "FP64/FP16", "adaptive"],
                   help="kernel-precision configuration axis; repeatable (default: FP64)")
    p.add_argument("--strategy", action="append", default=None,
                   choices=["auto", "stc", "ttc"],
                   help="conversion strategy axis; repeatable (default: auto)")
    p.add_argument("--gpu", action="append", default=None,
                   choices=["V100", "A100", "H100"],
                   help="GPU model axis; repeatable (default: V100)")
    p.add_argument("--gpus", type=int, action="append", default=None,
                   help="GPUs-per-node axis; repeatable (default: 1)")
    p.add_argument("--nodes", type=int, action="append", default=None,
                   help="node-count axis; repeatable (default: 1)")
    p.add_argument("--app", action="append", default=None,
                   choices=["2d-sqexp", "2d-matern", "3d-sqexp"],
                   help="application axis for adaptive configs (default: 2d-matern)")
    p.add_argument("--accuracy", type=float, action="append", default=None,
                   help="u_req axis for adaptive configs; repeatable")
    p.add_argument("--seed", type=int, action="append", default=None,
                   help="seed axis (adaptive norm sampling); repeatable (default: 0)")
    p.add_argument("--policy", action="append", default=None,
                   choices=list(POLICY_NAMES),
                   help="scheduling-policy axis; repeatable (default: panel-first)")
    p.add_argument("--ordering", action="append", default=None,
                   choices=["morton", "random", "hilbert"],
                   help="spatial-ordering axis for adaptive configs; "
                        "repeatable (default: morton; see docs/DATAPLANE.md)")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool width for cache misses (default: 1)")
    p.add_argument("--cache-dir", default=".sweep-cache", metavar="DIR",
                   help="per-run result cache (default: .sweep-cache)")
    p.add_argument("--force", action="store_true",
                   help="ignore cached results and re-run every point")
    p.add_argument("--max-retries", type=int, default=0, metavar="N",
                   help="re-attempts per crashed point, with exponential "
                        "backoff (default: 0; see docs/RESILIENCE.md)")
    p.add_argument("--fault-plan", default=None, metavar="PATH",
                   help="JSON fault plan to inject scripted failures "
                        "(repro.faults.FaultPlan; for resilience testing)")
    p.add_argument("--name", default="sweep", help="campaign name (BENCH_<name>.json)")
    p.add_argument("--bench-out", default=None, metavar="DIR",
                   help="write BENCH_<name>.json under DIR")
    p.add_argument("--events-out", default=None, metavar="PATH",
                   help="write sweep.run/sweep.complete events to a JSONL log")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write metrics + campaign manifest as JSON")
    p.add_argument("--profile-out", default=None, metavar="PATH",
                   help="run the sweep under the sampling profiler and write "
                        "the repro.obs.profile/1 document")
    p.add_argument("--progress-every", type=float, default=10.0, metavar="SECONDS",
                   help="seconds between completed/total progress lines "
                        "(0 = every completion, negative = silent; default: 10)")
    _add_live_flags(p)

    p = sub.add_parser("report", help="summarise a captured run")
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="metrics/manifest JSON written by --metrics-out")
    p.add_argument("--events", default=None, metavar="PATH",
                   help="JSONL event log written by --events-out")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="Perfetto trace JSON written by --trace-out")
    p.add_argument("--format", default="text", choices=["text", "prom"],
                   help="output format: human text (default) or Prometheus "
                        "text exposition of the captured metrics (needs "
                        "--metrics)")

    p = sub.add_parser(
        "analyze",
        help="explain a captured run: data-motion ledger, critical path, occupancy",
    )
    p.add_argument("path", metavar="TRACE|RUN-DIR",
                   help="Perfetto trace JSON (--trace-out), run-summary JSON "
                        "(--metrics-out), or a directory holding either/both")
    p.add_argument("--buckets", type=int, default=20,
                   help="utilization-timeline buckets (default: 20)")
    p.add_argument("--json-out", default=None, metavar="PATH",
                   help="write the machine-readable analysis document")

    p = sub.add_parser(
        "compare",
        help="regression sentinel: diff BENCH/run-summary documents",
    )
    p.add_argument("baseline",
                   help="baseline BENCH_*.json or run-summary JSON (the "
                        "candidate itself when --against-history is given)")
    p.add_argument("candidates", nargs="*",
                   help="candidate document(s) compared against the baseline")
    p.add_argument("--threshold", action="append", default=None,
                   metavar="METRIC=REL[:DIRECTION]",
                   help="override a relative threshold, e.g. tflops=0.10 or "
                        "my_metric=0.05:higher; repeatable")
    p.add_argument("--against-history", default=None, metavar="DB",
                   help="windowed trend sentinel: compare the (single) "
                        "document against the last --window runs in a "
                        "warehouse DB (see repro history)")
    p.add_argument("--window", type=int, default=5, metavar="N",
                   help="history window for --against-history (default: 5)")
    p.add_argument("--policy", default=None,
                   help="restrict the --against-history window to runs with "
                        "this scheduling policy")
    p.add_argument("--nt", type=int, default=None,
                   help="restrict the --against-history window to runs with "
                        "this tile count")
    p.add_argument("--config", default=None,
                   help="restrict the --against-history window to runs with "
                        "this precision configuration")
    p.add_argument("--history-command", default=None, metavar="COMMAND",
                   help="restrict the --against-history window to runs whose "
                        "manifest command matches (e.g. simbench-stream), so "
                        "different bench modes gate against their own history")
    p.add_argument("--fail-on-regress", action="store_true",
                   help="exit non-zero when any metric regresses beyond threshold")
    p.add_argument("--all-metrics", action="store_true",
                   help="print every compared metric, not just the deltas")
    p.add_argument("--report-out", default=None, metavar="PATH",
                   help="write the machine-readable verdict JSON")

    p = sub.add_parser(
        "schedule-compare",
        help="price one configuration under several scheduling policies",
    )
    p.add_argument("--gpu", default="V100", choices=["V100", "A100", "H100"])
    p.add_argument("--gpus", type=int, default=1, help="GPUs per node")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--n", type=int, default=2048)
    p.add_argument("--nb", type=int, default=128)
    p.add_argument("--config", default="FP64/FP16_32",
                   choices=["FP64", "FP32", "FP64/FP16_32", "FP64/FP16"])
    p.add_argument("--strategy", default="auto", choices=["auto", "stc", "ttc"])
    p.add_argument("--policy", action="append", default=None,
                   choices=list(POLICY_NAMES),
                   help="policy to include; repeatable (default: all policies)")
    p.add_argument("--baseline", default="panel-first", choices=list(POLICY_NAMES),
                   help="policy the others are diffed against (default: panel-first)")
    p.add_argument("--host-memory-gb", type=float, default=256.0,
                   help="host DRAM capacity per node in GB; shrink it to "
                        "surface eviction/spill traffic differences "
                        "(default: 256)")
    p.add_argument("--gpu-memory-gb", type=float, default=None,
                   help="override device memory per GPU in GB (capacity-"
                        "constrained out-of-core studies)")
    p.add_argument("--replay-check", action="store_true",
                   help="also export the baseline's schedule and append a "
                        "replay:<baseline> row (must be bit-identical)")
    p.add_argument("--fail-on-regress", action="store_true",
                   help="exit non-zero when a policy regresses beyond threshold "
                        "against the baseline")
    p.add_argument("--report-out", default=None, metavar="PATH",
                   help="write the per-policy regression verdicts as JSON")

    p = sub.add_parser(
        "history",
        help="cross-run telemetry warehouse: ingest and list run history",
    )
    p.add_argument("db", metavar="DB",
                   help="SQLite warehouse path (created on first use)")
    p.add_argument("--ingest", action="append", default=None, metavar="PATH",
                   help="ingest a run-summary / BENCH / profile JSON document "
                        "before listing; repeatable")
    p.add_argument("--policy", default=None,
                   help="only list runs with this scheduling policy")
    p.add_argument("--nt", type=int, default=None,
                   help="only list runs with this tile count")
    p.add_argument("--config", default=None,
                   help="only list runs with this precision configuration "
                        "(e.g. FP64/FP16)")
    p.add_argument("--kind", default=None,
                   choices=["run_summary", "bench", "profile", "stats", "live"],
                   help="only list runs of this document kind")
    p.add_argument("--limit", type=int, default=None, metavar="N",
                   help="show only the newest N matching runs")
    p.add_argument("--json-out", default=None, metavar="PATH",
                   help="write the machine-readable history document")

    p = sub.add_parser(
        "profile",
        help="sampling wall-clock profile of a symbolic simulate",
    )
    p.add_argument("--gpu", default="V100", choices=["V100", "A100", "H100"])
    p.add_argument("--gpus", type=int, default=1, help="GPUs per node")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--n", type=int, default=None,
                   help="matrix size (default: nt*nb)")
    p.add_argument("--nb", type=int, default=512)
    p.add_argument("--nt", type=int, default=32,
                   help="tile count when --n is not given (default: 32)")
    p.add_argument("--config", default="FP64/FP16",
                   choices=["FP64", "FP32", "FP64/FP16_32", "FP64/FP16"])
    p.add_argument("--strategy", default="auto", choices=["auto", "stc", "ttc"])
    p.add_argument("--policy", default="panel-first", choices=list(POLICY_NAMES))
    p.add_argument("--interval", type=float, default=0.005, metavar="SECONDS",
                   help="sampling interval (default: 5 ms)")
    p.add_argument("--top", type=int, default=10,
                   help="frames to show (default: 10)")
    p.add_argument("--profile-out", default=None, metavar="PATH",
                   help="write the repro.obs.profile/1 document")

    p = sub.add_parser(
        "merge-shards",
        help="merge distributed per-rank trace shards into one trace",
    )
    p.add_argument("shard_dir", metavar="SHARD-DIR",
                   help="directory holding events-rank<k>.jsonl + "
                        "shard-manifest.json")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="write trace.json + summary.json under DIR "
                        "(default: SHARD-DIR/merged)")

    p = sub.add_parser("bench", help="run one experiment driver")
    p.add_argument("target", choices=[
        "table1", "table2", "fig1", "fig7", "fig8", "fig12",
    ])
    p.add_argument("--gpu", default="V100", choices=["V100", "A100", "H100"])

    sub.add_parser("info", help="encoded GPU specifications")

    p = sub.add_parser(
        "ingest",
        help="bring a point set into the dataplane (CSV/NPZ/Parquet or synthetic)",
    )
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--input", default=None, metavar="PATH",
                     help="source point set: .csv (x,y[,z],value), .npz, or "
                          ".parquet")
    src.add_argument("--synthetic", type=int, default=None, metavar="N",
                     help="synthesize N points (perturbed grid, unordered)")
    p.add_argument("--dim", type=int, default=2, choices=[2, 3],
                   help="coordinate dimension for --synthetic (default: 2)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for --synthetic (default: 0)")
    p.add_argument("--out", required=True, metavar="PATH",
                   help="destination point-set file (.npz or .parquet)")
    p.add_argument("--format", default=None, choices=["npz", "parquet"],
                   help="force the encoding (default: by extension, then "
                        "parquet when pyarrow exists, else npz)")

    p = sub.add_parser(
        "reorder",
        help="sort a point set along a space-filling curve (or shuffle it)",
    )
    p.add_argument("--input", required=True, metavar="PATH",
                   help="point-set file written by `repro ingest`")
    p.add_argument("--out", required=True, metavar="PATH",
                   help="destination point-set file")
    p.add_argument("--ordering", default="hilbert",
                   choices=["morton", "random", "hilbert"],
                   help="spatial ordering to apply (default: hilbert)")
    p.add_argument("--seed", type=int, default=0,
                   help="shuffle seed for --ordering random (default: 0)")
    p.add_argument("--format", default=None, choices=["npz", "parquet"],
                   help="force the output encoding")

    p = sub.add_parser(
        "partition",
        help="split a point set into per-partition files plus a manifest",
    )
    p.add_argument("--input", required=True, metavar="PATH",
                   help="point-set file (ideally already reordered)")
    p.add_argument("--out", required=True, metavar="DIR",
                   help="partition directory (manifest.json + part-*.npz)")
    p.add_argument("--scheme", default="kdtree", choices=["kdtree", "grid"],
                   help="partitioner (default: kdtree)")
    p.add_argument("--max-points", type=int, default=65536, metavar="K",
                   help="kd-tree leaf capacity (default: 65536)")
    p.add_argument("--cells", type=int, default=8, metavar="C",
                   help="grid cells per dimension for --scheme grid "
                        "(default: 8)")
    p.add_argument("--format", default=None, choices=["npz", "parquet"],
                   help="force the partition-file encoding")

    p = sub.add_parser(
        "watch",
        help="poll a live run's /progress endpoint and render its progress",
    )
    p.add_argument("url", metavar="URL",
                   help="the run's live endpoint: http://127.0.0.1:PORT, a "
                        "bare PORT, or a --live-port-file path")
    p.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                   help="poll interval (default: 1.0)")
    p.add_argument("--once", action="store_true",
                   help="print a single snapshot and exit")
    p.add_argument("--json", action="store_true",
                   help="print raw JSON snapshots instead of progress lines")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="give up after SECONDS without a reachable endpoint "
                        "(default: keep trying until the run completes)")
    p.add_argument("--json-out", default=None, metavar="PATH",
                   help="append every polled snapshot to PATH as JSONL")
    return parser


def _cmd_mle(args) -> int:
    import contextlib

    from . import obs
    from .geostats import SyntheticField, fit_mle
    from .geostats.covariance import Matern, SquaredExponential

    nugget = args.nugget
    if args.model == "2d-matern":
        field = SyntheticField(Matern(dim=2), (1.0, 0.1, 0.5), args.n, args.seed,
                               nugget or 0.0)
    elif args.model == "2d-sqexp":
        field = SyntheticField(SquaredExponential(dim=2), (1.0, 0.1), args.n,
                               args.seed, 0.01 if nugget is None else nugget)
    else:
        field = SyntheticField(SquaredExponential(dim=3), (1.0, 0.1), args.n,
                               args.seed, 0.01 if nugget is None else nugget)
    ds = field.sample()
    print(f"{field.model.name}: n={ds.n}, θ_true={field.theta}, nugget={field.nugget}")
    levels = args.accuracy or [1e-9]
    runs = [("exact", dict(exact=True))] if args.exact else []
    runs += [(f"{a:.0e}", dict(accuracy=a)) for a in levels]
    with contextlib.ExitStack() as stack:
        if args.events_out:
            log = stack.enter_context(obs.event_log(args.events_out))
            print(f"  events → {args.events_out} (run {log.run_id})")
        for label, kw in runs:
            res = fit_mle(ds, max_evals=200, xtol=1e-7, **kw)
            theta = ", ".join(f"{v:.4f}" for v in res.theta_hat)
            print(f"  {label:>8}: θ̂ = ({theta})  loglik {res.loglik:.2f}  "
                  f"[{res.n_evals} evals]")
    if args.metrics_out:
        manifest = obs.build_manifest(command="mle", config=vars(args), seed=args.seed)
        obs.write_run_summary(args.metrics_out, manifest=manifest)
        print(f"  metrics → {args.metrics_out}")
    return 0


def _cmd_maps(args) -> int:
    from .bench.apps import app_kernel_map, get_app
    from .core import build_comm_precision_map

    app = get_app(args.app)
    kmap = app_kernel_map(app, args.n, args.nb, samples_per_tile=32)
    if args.accuracy is not None:
        from dataclasses import replace

        kmap = app_kernel_map(
            replace(app, accuracy=args.accuracy), args.n, args.nb, samples_per_tile=32
        )
    cmap = build_comm_precision_map(kmap)
    print(f"{app.label}: n={args.n}, nb={args.nb} (NT={kmap.nt}), "
          f"u_req={args.accuracy or app.accuracy:g}")
    fr = kmap.tile_fractions()
    print("tile fractions:", {p.name: f"{f * 100:.1f}%" for p, f in sorted(fr.items(), reverse=True)})
    print(f"STC on {cmap.stc_fraction() * 100:.1f}% of communications")
    if kmap.nt <= 32:
        print(kmap.render())
        print(cmap.render())
    return 0


def _cmd_simulate(args) -> int:
    import contextlib

    from . import obs
    from .core import (
        ConversionStrategy,
        simulate_cholesky,
        two_precision_map,
        uniform_map,
    )
    from .perfmodel import GPU_BY_NAME, NodeSpec
    from .precision import Precision
    from .runtime import Platform

    gpu = GPU_BY_NAME[args.gpu]
    node = NodeSpec("cli", gpu, args.gpus, args.host_memory_gb * 1e9, 25e9, 1.5e-6)
    platform = Platform(node=node, n_nodes=args.nodes)
    nt = -(-args.n // args.nb)
    kmap = {
        "FP64": uniform_map(nt, Precision.FP64),
        "FP32": uniform_map(nt, Precision.FP32),
        "FP64/FP16_32": two_precision_map(nt, Precision.FP16_32),
        "FP64/FP16": two_precision_map(nt, Precision.FP16),
    }[args.config]
    strategy = {
        "auto": ConversionStrategy.AUTO,
        "stc": ConversionStrategy.STC,
        "ttc": ConversionStrategy.TTC,
    }[args.strategy]
    # events are needed whenever a trace/CSV export was requested; a
    # schedule export wants them too so the trace hash rides along for
    # replay verification
    record_events = bool(args.trace_out or args.csv_out or args.schedule_out)
    profiler = None
    with contextlib.ExitStack() as stack:
        if args.events_out:
            stack.enter_context(obs.event_log(args.events_out, run_id=args.run_id))
        if args.profile_out:
            from .obs.profile import SamplingProfiler

            profiler = stack.enter_context(SamplingProfiler())
        plane = _enter_live(stack, args, run_id=args.run_id)
        if plane is not None and args.live_stall_after is not None:
            plane.configure_stall(args.live_stall_after, args.live_stall_seconds)
        if args.replay:
            from .core import replay_cholesky
            from .runtime import StaticSchedule

            schedule = StaticSchedule.load(args.replay)
            rep = replay_cholesky(args.n, args.nb, kmap, platform,
                                  schedule, strategy=strategy,
                                  record_events=record_events)
        else:
            rep = simulate_cholesky(args.n, args.nb, kmap, platform,
                                    strategy=strategy,
                                    record_events=record_events,
                                    policy=args.policy)

    print(f"{args.config} on {args.nodes}x{args.gpus}x{args.gpu} "
          f"(n={args.n}, nb={args.nb}, {args.strategy.upper()}, "
          f"policy {rep.policy}):")
    d = rep.stats.to_dict()
    print(f"  makespan   {d['makespan_seconds']:.4f} s")
    print(f"  throughput {d['tflops']:.1f} Tflop/s")
    print(f"  h2d        {d['h2d_bytes'] / 1e9:.2f} GB")
    print(f"  d2h        {d['d2h_bytes'] / 1e9:.2f} GB  nic {d['nic_bytes'] / 1e9:.2f} GB")
    print(f"  conversions {d['n_conversions']} "
          f"({d['conversion_seconds'] * 1e3:.1f} ms)")
    print(f"  tasks      {d['n_tasks']}  evictions {d['n_evictions']}")
    if d.get("n_host_evictions") or d.get("n_spills"):
        print(f"  host evictions {d['n_host_evictions']}  spills {d['n_spills']}  "
              f"disk r/w {d['disk_read_bytes'] / 1e9:.2f}/"
              f"{d['disk_write_bytes'] / 1e9:.2f} GB")

    if args.schedule_out:
        from .runtime import StaticSchedule

        StaticSchedule.from_report(
            rep, nb=args.nb, n=args.n, platform=platform,
        ).save(args.schedule_out)
        print(f"  schedule → {args.schedule_out} ({rep.stats.n_tasks} tasks)")
    if args.replay:
        mismatch = []
        if schedule.makespan and abs(schedule.makespan - rep.makespan) > 0.0:
            mismatch.append("makespan")
        if (schedule.trace_hash and record_events
                and schedule.trace_hash != rep.trace.content_hash()):
            mismatch.append("trace hash")
        if mismatch:
            print(f"simulate: replay diverged from exported schedule "
                  f"({', '.join(mismatch)})", file=sys.stderr)
            return 1
        print(f"  replay of {args.replay} verified "
              f"(policy {schedule.policy}, bit-identical)")

    if args.trace_out:
        # fault/retry obs events (if captured) ride along as instants
        obs_events = obs.read_events(args.events_out) if args.events_out else None
        obs.write_perfetto_trace(rep.trace.events, args.trace_out, counters=True,
                                 obs_events=obs_events,
                                 metadata={"policy": rep.policy})
        print(f"  trace   → {args.trace_out}")
    if args.csv_out:
        obs.write_trace_csv(rep.trace.events, args.csv_out)
        print(f"  csv     → {args.csv_out}")
    if profiler is not None:
        from .obs.profile import write_profile

        rate = (rep.stats.n_tasks / profiler.wall_seconds
                if profiler.wall_seconds > 0.0 else 0.0)
        doc = profiler.report(extra={
            "tasks_per_second": rate,
            "manifest": obs.build_manifest(
                run_id=args.run_id, command="simulate", config=vars(args),
                policy=args.policy,
            ),
        })
        write_profile(args.profile_out, doc)
        print(f"  profile → {args.profile_out} "
              f"({doc['n_samples']} samples, {rate:,.0f} tasks/s, "
              f"overhead {doc['overhead_fraction'] * 100.0:.2f}%)")
    if args.metrics_out:
        manifest = obs.build_manifest(
            run_id=args.run_id, command="simulate", config=vars(args)
        )
        obs.write_run_summary(
            args.metrics_out,
            stats=rep.stats,
            trace=rep.trace if record_events else None,
            manifest=manifest,
        )
        print(f"  metrics → {args.metrics_out}")
    return 0


def _enter_live(stack, args, *, run_id=None):
    """Enter a live telemetry plane when ``--live-port``/``--alert`` ask
    for one (``--alert`` alone implies a plane so the watchdog has a bus
    to ride); returns the plane or ``None``."""
    port = getattr(args, "live_port", None)
    alert_specs = getattr(args, "alert", None) or []
    if port is None and not alert_specs:
        return None
    from .obs.alerts import parse_alert_arg
    from .obs.live import live_plane

    rules = [parse_alert_arg(spec) for spec in alert_specs]
    plane = stack.enter_context(live_plane(
        port=port,
        interval=getattr(args, "live_interval", 1.0),
        rules=rules,
        run_id=run_id,
    ))
    if plane.url is not None:
        print(f"live → {plane.url}", file=sys.stderr)
    port_file = getattr(args, "live_port_file", None)
    if port_file and plane.port is not None:
        Path(port_file).write_text(f"{plane.port}\n", encoding="utf-8")
    return plane


def _peak_rss_bytes() -> int:
    """Peak resident set of this process, in bytes (0 when unavailable).

    ``ru_maxrss`` is kilobytes on Linux, bytes on macOS; it is monotonic
    over the process lifetime, so comparing modes needs one process per
    mode (which is how the CI bench-floor job runs ``simbench``).
    """
    try:
        import resource
    except ImportError:  # non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


def _cmd_simbench(args) -> int:
    import contextlib
    import time

    from . import obs
    from .core import (
        ConversionStrategy,
        build_cholesky_dag,
        simulate_cholesky,
        two_precision_map,
        uniform_map,
    )
    from .perfmodel import GPU_BY_NAME, NodeSpec
    from .precision import Precision
    from .runtime import Platform
    from .runtime.simulator import simulate

    gpu = GPU_BY_NAME[args.gpu]
    node = NodeSpec("cli", gpu, args.gpus, args.host_memory_gb * 1e9, 25e9, 1.5e-6)
    platform = Platform(node=node, n_nodes=args.nodes)
    nt = args.nt
    n = nt * args.nb
    kmap = {
        "FP64": uniform_map(nt, Precision.FP64),
        "FP32": uniform_map(nt, Precision.FP32),
        "FP64/FP16_32": two_precision_map(nt, Precision.FP16_32),
        "FP64/FP16": two_precision_map(nt, Precision.FP16),
    }[args.config]
    strategy = {
        "auto": ConversionStrategy.AUTO,
        "stc": ConversionStrategy.STC,
        "ttc": ConversionStrategy.TTC,
    }[args.strategy]

    record_events = bool(args.record_events)
    with contextlib.ExitStack() as stack:
        _enter_live(stack, args, run_id=args.run_id)
        t0 = time.perf_counter()
        if args.mode == "stream":
            if record_events:
                # the O(window) live-memory bound covers Task objects only;
                # a recorded Trace still accumulates O(n_tasks) events
                print("simbench: warning: --record-events voids the O(window) "
                      "memory bound of --mode stream — the event trace grows "
                      "with every task (see docs/SCHEDULING.md)",
                      file=sys.stderr)
            # emission is interleaved with scheduling: one timed region
            rep = simulate_cholesky(
                n, args.nb, kmap, platform, strategy=strategy,
                record_events=record_events, policy=args.policy,
                stream=True, lookahead=args.lookahead,
            )
            t_build_done = t0
        else:
            dag = build_cholesky_dag(
                n, args.nb, kmap, strategy=strategy, grid=platform.process_grid(),
            )
            t_build_done = time.perf_counter()
            rep = simulate(dag.graph, platform, args.nb,
                           record_events=record_events, policy=args.policy)
        t1 = time.perf_counter()

    wall = t1 - t0
    n_tasks = rep.stats.n_tasks
    rate = n_tasks / wall if wall > 0.0 else 0.0
    rss = _peak_rss_bytes()
    stats = {
        "makespan_seconds": rep.stats.makespan,
        "n_tasks": n_tasks,
        "tasks_per_second": rate,
        "dag_build_seconds": t_build_done - t0,
        "schedule_seconds": t1 - t_build_done,
        "peak_rss_bytes": rss,
        "peak_live_tasks": rep.peak_live_tasks,
    }

    print(f"simbench {args.mode}: {args.config} on "
          f"{args.nodes}x{args.gpus}x{args.gpu} "
          f"(nt={nt}, nb={args.nb}, policy {rep.policy}):")
    print(f"  tasks      {n_tasks}  ({rate:,.0f} tasks/s over {wall:.2f} s wall)")
    print(f"  build      {stats['dag_build_seconds']:.2f} s  "
          f"schedule {stats['schedule_seconds']:.2f} s")
    print(f"  makespan   {stats['makespan_seconds']:.4f} s (simulated)")
    print(f"  peak live  {rep.peak_live_tasks} tasks  "
          f"peak rss {rss / 1e6:,.0f} MB")

    if args.metrics_out:
        # command carries the mode so `repro compare --against-history
        # --history-command simbench-<mode>` windows each mode separately
        manifest = obs.build_manifest(
            run_id=args.run_id,
            command=f"simbench-{args.mode}",
            config={**vars(args), "n": n},
            policy=args.policy,
        )
        obs.write_run_summary(args.metrics_out, stats=stats, manifest=manifest)
        print(f"  metrics → {args.metrics_out}")
    return 0


def _cmd_sweep(args) -> int:
    import contextlib

    from . import obs
    from .faults import FaultPlan, RetryPolicy
    from .sweep import SweepGrid, run_sweep

    retry_policy = (RetryPolicy(max_retries=args.max_retries)
                    if args.max_retries > 0 else None)
    fault_plan = FaultPlan.load(args.fault_plan) if args.fault_plan else None

    grid = SweepGrid.from_axes(
        n=args.n or [4096],
        nb=args.nb or [512],
        config=args.config or ["FP64"],
        strategy=args.strategy or ["auto"],
        gpu=args.gpu or ["V100"],
        gpus_per_node=args.gpus or [1],
        n_nodes=args.nodes or [1],
        app=args.app or ["2d-matern"],
        accuracy=args.accuracy or [None],
        seed=args.seed or [0],
        policy=args.policy or ["panel-first"],
        ordering=args.ordering or ["morton"],
        name=args.name,
    )
    profiler = None
    with contextlib.ExitStack() as stack:
        if args.events_out:
            stack.enter_context(obs.event_log(args.events_out))
        if args.profile_out:
            from .obs.profile import SamplingProfiler

            profiler = stack.enter_context(SamplingProfiler())
        _enter_live(stack, args)
        result = run_sweep(
            grid, workers=args.workers, cache_dir=args.cache_dir, force=args.force,
            retry_policy=retry_policy, fault_plan=fault_plan,
            progress_seconds=(None if args.progress_every < 0
                              else args.progress_every),
        )
    print(result.table())
    print(f"cache: {result.n_cache_hits}/{result.n_runs} hits "
          f"({result.cache_hit_fraction * 100:.1f}%), dir {args.cache_dir}")
    print(f"resilience: failed {result.n_failed}/{result.n_runs}, "
          f"retries {result.total_retries}")
    if args.bench_out:
        path = result.write_bench_json(args.bench_out)
        print(f"  bench   → {path}")
    if profiler is not None:
        from .obs.profile import write_profile

        n_tasks = getattr(result.summary_stats(), "n_tasks", 0)
        rate = (n_tasks / profiler.wall_seconds
                if profiler.wall_seconds > 0.0 else 0.0)
        doc = profiler.report(extra={
            "tasks_per_second": rate,
            "manifest": obs.build_manifest(command="sweep", config=vars(args)),
        })
        write_profile(args.profile_out, doc)
        print(f"  profile → {args.profile_out} "
              f"({doc['n_samples']} samples, {rate:,.0f} tasks/s, "
              f"overhead {doc['overhead_fraction'] * 100.0:.2f}%)")
    if args.metrics_out:
        manifest = obs.build_manifest(command="sweep", config=vars(args))
        obs.write_run_summary(args.metrics_out, stats=result.summary_stats(),
                              manifest=manifest)
        print(f"  metrics → {args.metrics_out}")
    return 0


def _format_metric_series(metric: dict) -> list[str]:
    lines = []
    for series in metric.get("series", []):
        labels = series.get("labels") or {}
        label_s = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        value = series.get("value")
        if isinstance(value, dict):  # histogram/timer digest
            value_s = (f"count={value.get('count')} sum={value.get('sum'):.6g} "
                       f"p50={value.get('p50')} p99={value.get('p99')}")
        else:
            value_s = f"{value:.6g}" if isinstance(value, float) else str(value)
        lines.append(f"    {metric['name']}{{{label_s}}} = {value_s}")
    return lines


def _cmd_report(args) -> int:
    import json

    from .obs import read_events

    if not (args.metrics or args.events or args.trace):
        print("report: nothing to do — pass --metrics, --events, and/or --trace",
              file=sys.stderr)
        return 2

    for path in (args.metrics, args.events, args.trace):
        if path and not Path(path).exists():
            print(f"report: no such file: {path}", file=sys.stderr)
            return 2

    if args.format == "prom":
        from .obs.exporters import to_prometheus_text

        if not args.metrics:
            print("report: --format prom needs --metrics", file=sys.stderr)
            return 2
        with open(args.metrics, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        print(to_prometheus_text(doc.get("metrics") or {}), end="")
        return 0

    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        manifest = doc.get("manifest") or {}
        print(f"== run {manifest.get('run_id') or '<unnamed>'} "
              f"({args.metrics}) ==")
        if manifest:
            versions = manifest.get("versions") or {}
            print(f"  command   {manifest.get('command')}")
            print(f"  seed      {manifest.get('seed')}")
            print(f"  git rev   {manifest.get('git_revision')}")
            print("  versions  " + ", ".join(
                f"{k} {v}" for k, v in sorted(versions.items())))
        stats = doc.get("stats")
        if stats:
            print("  -- stats --")
            for key in ("makespan_seconds", "tflops", "h2d_bytes", "d2h_bytes",
                        "nic_bytes", "n_tasks", "n_conversions", "n_evictions"):
                if key in stats:
                    print(f"    {key:<20} {stats[key]}")
        metrics = doc.get("metrics") or {}
        if metrics:
            print("  -- metrics --")
            for name in sorted(metrics):
                for line in _format_metric_series(metrics[name]):
                    print(line)

    if args.events:
        events = read_events(args.events)
        by_type: dict[str, int] = {}
        for ev in events:
            by_type[ev.get("type", "?")] = by_type.get(ev.get("type", "?"), 0) + 1
        run_ids = {ev.get("run_id") for ev in events}
        print(f"== events ({args.events}) ==")
        print(f"  {len(events)} events, run(s) {', '.join(sorted(filter(None, run_ids)))}")
        for type_, count in sorted(by_type.items()):
            print(f"    {type_:<24} {count}")
        iters = [ev for ev in events if ev.get("type") == "mle.iteration"]
        if iters:
            last = iters[-1]["attrs"]
            print(f"  last MLE iteration: k={last.get('k')} "
                  f"loglik={last.get('loglik'):.4f} theta={last.get('theta')}")

    if args.trace:
        with open(args.trace, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        trace_events = payload.get("traceEvents", [])
        slices = [e for e in trace_events if e.get("ph") == "X"]
        counters = {e["name"] for e in trace_events if e.get("ph") == "C"}
        span_us = max((e["ts"] + e.get("dur", 0.0) for e in slices), default=0.0)
        print(f"== trace ({args.trace}) ==")
        print(f"  {len(slices)} slices over {span_us / 1e3:.3f} ms, "
              f"{len({e.get('pid') for e in slices})} rank(s)")
        if counters:
            print("  counter tracks: " + ", ".join(sorted(counters)))
    return 0


def _cmd_analyze(args) -> int:
    import json

    from .obs.analysis import analyze_path, render_analysis

    try:
        doc = analyze_path(args.path, n_buckets=args.buckets)
    except ValueError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2
    source = doc.get("source") or {}
    print(f"== analysis ({source.get('trace') or source.get('path')}) ==")
    print(render_analysis(doc))
    mismatches = (doc.get("reconciliation") or {}).get("mismatches") or []
    if args.json_out:
        out = Path(args.json_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        print(f"  analysis → {args.json_out}")
    return 1 if mismatches else 0


def _cmd_compare(args) -> int:
    import json

    from .obs.regress import compare_files, parse_threshold_args

    for path in [args.baseline, *args.candidates]:
        if not Path(path).exists():
            print(f"compare: no such file: {path}", file=sys.stderr)
            return 2
    try:
        thresholds = parse_threshold_args(args.threshold)
    except ValueError as exc:
        print(f"compare: {exc}", file=sys.stderr)
        return 2

    if args.against_history:
        return _compare_against_history(args, thresholds)
    if not args.candidates:
        print("compare: need at least one candidate document "
              "(or --against-history DB)", file=sys.stderr)
        return 2

    reports = []
    for candidate in args.candidates:
        try:
            report = compare_files(args.baseline, candidate, thresholds=thresholds)
        except ValueError as exc:
            print(f"compare: {candidate}: {exc}", file=sys.stderr)
            return 2
        reports.append(report)
        print(report.table(all_metrics=args.all_metrics))
        if report.missing_in_candidate:
            print(f"  scopes missing in candidate: {', '.join(report.missing_in_candidate)}")
        if report.added_in_candidate:
            print(f"  scopes added in candidate: {', '.join(report.added_in_candidate)}")
        print()
    if args.report_out:
        out = Path(args.report_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        payload = (reports[0].to_dict() if len(reports) == 1
                   else {"schema": "repro.obs.regress/1+multi",
                         "reports": [r.to_dict() for r in reports]})
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        print(f"  verdict → {args.report_out}")
    n_regressions = sum(r.n_regressions for r in reports)
    if args.fail_on_regress and n_regressions:
        print(f"compare: {n_regressions} regression(s) beyond threshold",
              file=sys.stderr)
        return 1
    return 0


def _compare_against_history(args, thresholds) -> int:
    """``repro compare --against-history DB --window N CANDIDATE``."""
    import json

    from .obs.regress import compare_against_window
    from .obs.warehouse import Warehouse

    if args.candidates:
        print("compare: --against-history takes exactly one document "
              "(the candidate)", file=sys.stderr)
        return 2
    if not Path(args.against_history).exists():
        print(f"compare: no such warehouse: {args.against_history}",
              file=sys.stderr)
        return 2
    with open(args.baseline, "r", encoding="utf-8") as fh:
        candidate = json.load(fh)
    filters = {k: getattr(args, k) for k in ("policy", "nt", "config")
               if getattr(args, k) is not None}
    if args.history_command is not None:
        filters["command"] = args.history_command
    try:
        with Warehouse(args.against_history) as wh:
            history = wh.window_scopes(args.window, **filters)
            report = compare_against_window(
                history, candidate, thresholds=thresholds, window=args.window,
                history_name=f"{args.against_history} (last {args.window})",
                candidate_name=args.baseline,
            )
    except ValueError as exc:
        print(f"compare: {exc}", file=sys.stderr)
        return 2
    print(report.table(all_metrics=args.all_metrics))
    if args.report_out:
        out = Path(args.report_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        print(f"  verdict → {args.report_out}")
    if args.fail_on_regress and report.verdict == "regressed":
        print(f"compare: {len(report.regressions)} regression(s), "
              f"{len(report.drifts)} drifting trend(s) beyond threshold",
              file=sys.stderr)
        return 1
    return 0


def _cmd_schedule_compare(args) -> int:
    import json

    from .bench.reporting import format_table
    from .core import (
        ConversionStrategy,
        simulate_cholesky,
        two_precision_map,
        uniform_map,
    )
    from .obs.regress import compare_docs
    from .perfmodel import GPU_BY_NAME, NodeSpec
    from .perfmodel.energy import energy_report
    from .precision import Precision
    from .runtime import POLICY_NAMES, Platform

    policies = list(dict.fromkeys(args.policy)) if args.policy else list(POLICY_NAMES)
    if args.baseline not in policies:
        policies.insert(0, args.baseline)

    gpu = GPU_BY_NAME[args.gpu]
    if args.gpu_memory_gb is not None:
        from dataclasses import replace as _dc_replace

        gpu = _dc_replace(gpu, memory_bytes=args.gpu_memory_gb * 1e9)
    node = NodeSpec("cli", gpu, args.gpus, args.host_memory_gb * 1e9, 25e9, 1.5e-6)
    platform = Platform(node=node, n_nodes=args.nodes)
    nt = -(-args.n // args.nb)
    kmap = {
        "FP64": uniform_map(nt, Precision.FP64),
        "FP32": uniform_map(nt, Precision.FP32),
        "FP64/FP16_32": two_precision_map(nt, Precision.FP16_32),
        "FP64/FP16": two_precision_map(nt, Precision.FP16),
    }[args.config]
    strategy = ConversionStrategy(args.strategy)

    def _row(label: str, rep, d: dict) -> tuple:
        return (
            label,
            f"{d['makespan_seconds']:.6g}",
            f"{d['tflops']:.1f}",
            f"{d['h2d_bytes'] / 1e9:.3f}",
            f"{d['d2h_bytes'] / 1e9:.3f}",
            f"{d['nic_bytes'] / 1e9:.3f}",
            f"{(d.get('disk_read_bytes', 0) + d.get('disk_write_bytes', 0)) / 1e9:.3f}",
            d["n_evictions"],
            d.get("n_spills", 0),
            d["n_conversions"],
            f"{d['energy_joules']:.1f}",
        )

    rows = []
    metrics: dict[str, dict] = {}
    baseline_rep = None
    for pol in policies:
        rep = simulate_cholesky(args.n, args.nb, kmap, platform, strategy=strategy,
                                record_events=True, policy=pol)
        if pol == args.baseline:
            baseline_rep = rep
        energy = energy_report(gpu, rep.trace.events, rep.makespan)
        d = rep.stats.to_dict()
        d["energy_joules"] = energy.total_joules
        metrics[pol] = d
        rows.append(_row(pol, rep, d))

    if args.replay_check and baseline_rep is not None:
        from .core import replay_cholesky
        from .runtime import StaticSchedule

        schedule = StaticSchedule.from_report(
            baseline_rep, nb=args.nb, n=args.n, platform=platform,
        )
        rep = replay_cholesky(args.n, args.nb, kmap, platform, schedule,
                              strategy=strategy, record_events=True)
        energy = energy_report(gpu, rep.trace.events, rep.makespan)
        d = rep.stats.to_dict()
        d["energy_joules"] = energy.total_joules
        label = f"replay:{args.baseline}"
        metrics[label] = d
        rows.append(_row(label, rep, d))
        if (rep.makespan != baseline_rep.makespan
                or rep.trace.content_hash() != baseline_rep.trace.content_hash()):
            print(f"schedule-compare: replay of {args.baseline} diverged "
                  f"from the live run", file=sys.stderr)
            return 1

    title = (f"schedule-compare: {args.config}/{args.strategy} n={args.n} "
             f"nb={args.nb} {args.nodes}x{args.gpus}x{args.gpu}")
    print(format_table(
        ("policy", "makespan_s", "tflops", "h2d_gb", "d2h_gb", "nic_gb",
         "disk_gb", "evictions", "spills", "conversions", "energy_j"),
        rows, title=title,
    ))

    # diff every non-baseline policy against the baseline with the same
    # report format (repro.obs.regress/1) the regression sentinel emits
    reports = [
        compare_docs(metrics[args.baseline], metrics[pol],
                     baseline_name=f"policy:{args.baseline}",
                     candidate_name=f"policy:{pol}")
        for pol in policies if pol != args.baseline
    ]
    for report in reports:
        print()
        print(report.table())
    if args.report_out:
        out = Path(args.report_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": "repro.obs.regress/1+multi",
            "baseline_policy": args.baseline,
            "config": {"n": args.n, "nb": args.nb, "config": args.config,
                       "strategy": args.strategy, "gpu": args.gpu,
                       "gpus_per_node": args.gpus, "n_nodes": args.nodes},
            "metrics": metrics,
            "reports": [r.to_dict() for r in reports],
        }
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        print(f"  verdict → {args.report_out}")
    n_regressions = sum(r.n_regressions for r in reports)
    if args.fail_on_regress and n_regressions:
        print(f"schedule-compare: {n_regressions} regression(s) beyond threshold",
              file=sys.stderr)
        return 1
    return 0


def _cmd_history(args) -> int:
    import json

    from .obs.warehouse import Warehouse

    try:
        with Warehouse(args.db) as wh:
            for path in args.ingest or []:
                if not Path(path).exists():
                    print(f"history: no such file: {path}", file=sys.stderr)
                    return 2
                result = wh.ingest_file(path)
                print(f"  ingested {path} → seq {result.seq} "
                      f"({result.kind}, key {result.run_key}, "
                      f"{result.n_metrics} metrics, {result.n_points} points)")
            filters = {k: getattr(args, k) for k in ("policy", "nt", "config", "kind")
                       if getattr(args, k) is not None}
            rows = wh.runs(limit=args.limit, **filters)
            print(wh.history_table(rows))
            if args.json_out:
                out = Path(args.json_out)
                out.parent.mkdir(parents=True, exist_ok=True)
                out.write_text(
                    json.dumps(wh.history_json(rows), indent=2, sort_keys=True) + "\n",
                    encoding="utf-8",
                )
                print(f"  history → {args.json_out}")
    except ValueError as exc:
        print(f"history: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_profile(args) -> int:
    from . import obs
    from .core import (
        ConversionStrategy,
        simulate_cholesky,
        two_precision_map,
        uniform_map,
    )
    from .obs.profile import SamplingProfiler, write_profile
    from .perfmodel import GPU_BY_NAME, NodeSpec
    from .precision import Precision
    from .runtime import Platform

    gpu = GPU_BY_NAME[args.gpu]
    node = NodeSpec("cli", gpu, args.gpus, 256e9, 25e9, 1.5e-6)
    platform = Platform(node=node, n_nodes=args.nodes)
    n = args.n if args.n is not None else args.nt * args.nb
    nt = -(-n // args.nb)
    kmap = {
        "FP64": uniform_map(nt, Precision.FP64),
        "FP32": uniform_map(nt, Precision.FP32),
        "FP64/FP16_32": two_precision_map(nt, Precision.FP16_32),
        "FP64/FP16": two_precision_map(nt, Precision.FP16),
    }[args.config]
    strategy = ConversionStrategy(args.strategy)

    with SamplingProfiler(args.interval) as profiler:
        rep = simulate_cholesky(n, args.nb, kmap, platform, strategy=strategy,
                                record_events=False, policy=args.policy)

    rate = (rep.stats.n_tasks / profiler.wall_seconds
            if profiler.wall_seconds > 0.0 else 0.0)
    print(f"{args.config} on {args.nodes}x{args.gpus}x{args.gpu} "
          f"(n={n}, nb={args.nb}, NT={nt}, policy {rep.policy}): "
          f"{rep.stats.n_tasks} tasks in {profiler.wall_seconds:.3f} s wall "
          f"→ {rate:,.0f} tasks/s")
    print(profiler.render(top=args.top))
    if args.profile_out:
        doc = profiler.report(top=args.top, extra={
            "tasks_per_second": rate,
            "manifest": obs.build_manifest(
                command="profile",
                config={"n": n, "nb": args.nb, "config": args.config,
                        "strategy": args.strategy, "gpu": args.gpu,
                        "gpus": args.gpus, "nodes": args.nodes},
                policy=args.policy,
            ),
        })
        write_profile(args.profile_out, doc)
        print(f"  profile → {args.profile_out}")
    return 0


def _cmd_merge_shards(args) -> int:
    from .obs.merge import merge_shards, render_merge, write_merged

    try:
        merged = merge_shards(args.shard_dir)
    except ValueError as exc:
        print(f"merge-shards: {exc}", file=sys.stderr)
        return 2
    print(render_merge(merged))
    out_dir = args.out or str(Path(args.shard_dir) / "merged")
    paths = write_merged(merged, out_dir)
    print(f"  trace   → {paths['trace']}")
    print(f"  summary → {paths['summary']}")
    return 0


def _cmd_bench(args) -> int:
    from .bench import (
        fig1_performance_rows,
        fig7_fraction_rows,
        fig8_rows,
        fig12_mp_rows,
        format_table,
        table1_rows,
        table2_rows,
    )

    if args.target == "table1":
        print(format_table(["Precision", "V100", "A100", "H100"], table1_rows(),
                           title="Table I (Tflop/s)"))
    elif args.target == "table2":
        print(format_table(
            ["operation", "2048", "4096", "6144", "8192", "10240"],
            table2_rows(), title="Table II (ms, V100)",
        ))
    elif args.target == "fig1":
        rows = fig1_performance_rows(gpus=(args.gpu,))
        print(format_table(
            ["gpu", "n", "FP64", "FP32", "TF32", "FP16_32", "BF16_32", "FP16"],
            rows, title="Fig. 1 (bottom): GEMM Tflop/s",
        ))
    elif args.target == "fig7":
        rows = fig7_fraction_rows(n=65536, samples_per_tile=24)
        print(format_table(
            ["application", "FP64 %", "FP32 %", "FP16_32 %", "FP16 %"], rows,
            title="Fig. 7 tile fractions (n=65,536)",
        ))
    elif args.target == "fig8":
        points = fig8_rows(args.gpu, (16384, 32768))
        print(format_table(
            ["config", "gpu", "n", "strategy", "Tflop/s", "s", "H2D GB", "conv"],
            [p.row() for p in points], title=f"Fig. 8 — {args.gpu}",
        ))
    elif args.target == "fig12":
        rows = fig12_mp_rows((262144,), samples_per_tile=16)
        print(format_table(["n", "config", "Tflop/s", "speedup"], rows,
                           title="Fig. 12c — 384 GPUs"))
    return 0


def _cmd_info(_args) -> int:
    from .perfmodel import GPU_BY_NAME

    for name, gpu in GPU_BY_NAME.items():
        print(f"{name}: TDP {gpu.tdp_watts:.0f} W, {gpu.memory_bytes / 1e9:.0f} GB @ "
              f"{gpu.memory_bandwidth / 1e9:.0f} GB/s HBM, host link "
              f"{gpu.host_link_bandwidth / 1e9:.0f} GB/s")
        for prec, peak in sorted(gpu.peak_flops.items(), reverse=True):
            print(f"    {prec.name:8} {peak / 1e12:7.1f} Tflop/s "
                  f"(sustained ×{gpu.sustained_fraction[prec]:.2f})")
    return 0


def _watch_base_url(target: str) -> str:
    """Normalise a watch target: URL, ``host:port``, bare port, or a
    ``--live-port-file`` path all resolve to ``http://host:port``."""
    target = target.strip()
    if target.isdigit():
        return f"http://127.0.0.1:{target}"
    if "://" not in target:
        path = Path(target)
        if path.exists():
            port = path.read_text(encoding="utf-8").strip()
            return f"http://127.0.0.1:{port}"
        target = f"http://{target}"
    return target.rstrip("/")


def _cmd_watch(args) -> int:
    import json
    import time
    import urllib.error
    import urllib.request

    from .obs.live import render_progress_line

    url = _watch_base_url(args.url)
    if not url.endswith("/progress"):
        url += "/progress"

    out_fh = open(args.json_out, "a", encoding="utf-8") if args.json_out else None
    tty = sys.stdout.isatty() and not args.json
    deadline = (time.monotonic() + args.timeout) if args.timeout else None
    seen_ok = False
    last_len = 0

    def endline() -> None:
        if tty and last_len:
            print()

    try:
        while True:
            snap = None
            try:
                with urllib.request.urlopen(url, timeout=10) as resp:
                    snap = json.loads(resp.read())
            except (urllib.error.URLError, OSError, ValueError, json.JSONDecodeError):
                snap = None
            if snap is not None:
                seen_ok = True
                if args.timeout:
                    deadline = time.monotonic() + args.timeout
                if out_fh is not None:
                    out_fh.write(json.dumps(snap, sort_keys=True) + "\n")
                    out_fh.flush()
                if args.json:
                    print(json.dumps(snap, sort_keys=True))
                else:
                    line = render_progress_line(snap)
                    if tty and not args.once:
                        pad = max(0, last_len - len(line))
                        last_len = len(line)
                        print("\r" + line + " " * pad, end="", flush=True)
                    else:
                        print(line)
                if args.once:
                    return 0
                if snap.get("complete"):
                    endline()
                    return 0
            else:
                if args.once:
                    print(f"watch: endpoint unreachable: {url}", file=sys.stderr)
                    return 1
                if seen_ok:
                    # the run's process went away: treat as run over
                    endline()
                    print(f"watch: {url} gone — run ended", file=sys.stderr)
                    return 0
            if deadline is not None and time.monotonic() > deadline:
                endline()
                print(f"watch: no response from {url} within "
                      f"{args.timeout:g} s", file=sys.stderr)
                return 1
            time.sleep(args.interval)
    except KeyboardInterrupt:
        endline()
        return 0
    finally:
        if out_fh is not None:
            out_fh.close()


def _load_any_pointset(path: str):
    """Read a point set from CSV, NPZ, or Parquet by extension."""
    from .geostats import dataplane as dp

    if path.endswith(".csv"):
        return dp.read_pointset_csv(path)
    return dp.read_pointset(path)


def _cmd_ingest(args) -> int:
    from .geostats import dataplane as dp

    if args.synthetic is not None:
        ps = dp.synthesize_pointset(args.synthetic, args.dim, seed=args.seed)
        source = f"synthetic n={args.synthetic} dim={args.dim} seed={args.seed}"
    else:
        ps = _load_any_pointset(args.input)
        source = args.input
    out = dp.write_pointset(args.out, ps, format=args.format)
    score = dp.check_spatial_order(ps.coords)
    print(f"ingested {ps.n} points ({ps.dim}D, {ps.coords.dtype}) from {source}")
    print(f"  wrote   → {out}")
    print(f"  order score {score:.4f} (1.0 ≈ random; lower is more coherent)")
    return 0


def _cmd_reorder(args) -> int:
    from .geostats import dataplane as dp

    ps = _load_any_pointset(args.input)
    before = dp.check_spatial_order(ps.coords)
    ordered, _perm, after = dp.reorder_pointset(ps, args.ordering, seed=args.seed)
    out = dp.write_pointset(args.out, ordered, format=args.format)
    print(f"reordered {ps.n} points: {args.ordering}")
    print(f"  wrote   → {out}")
    print(f"  order score {before:.4f} → {after:.4f}")
    return 0


def _cmd_partition(args) -> int:
    from .geostats import dataplane as dp

    ps = _load_any_pointset(args.input)
    if args.scheme == "kdtree":
        parts = dp.kdtree_partition(ps.coords, args.max_points)
    else:
        parts = dp.grid_partition(ps.coords, args.cells)
    score = dp.check_spatial_order(ps.coords)
    ordering = ps.meta.get("ordering", "unknown")
    manifest = dp.write_partitions(
        ps, parts, args.out,
        scheme=args.scheme, ordering=ordering, ordering_score=score,
        format=args.format,
    )
    dp.validate_manifest(manifest, args.out)
    sizes = [p["n_points"] for p in manifest["partitions"]]
    contiguous = sum(1 for p in manifest["partitions"] if p["contiguous"])
    print(f"partitioned {ps.n} points: {args.scheme} → "
          f"{len(parts)} partitions ({manifest['format']})")
    print(f"  manifest → {args.out}/manifest.json (schema {manifest['schema']})")
    print(f"  manifest OK: totals reconcile, {ps.n} rows covered")
    if sizes:
        print(f"  sizes min/max {min(sizes)}/{max(sizes)}, "
              f"{contiguous}/{len(sizes)} row-contiguous, "
              f"ordering {ordering} (score {score:.4f})")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "mle": _cmd_mle,
        "maps": _cmd_maps,
        "simulate": _cmd_simulate,
        "simbench": _cmd_simbench,
        "sweep": _cmd_sweep,
        "bench": _cmd_bench,
        "info": _cmd_info,
        "report": _cmd_report,
        "analyze": _cmd_analyze,
        "compare": _cmd_compare,
        "schedule-compare": _cmd_schedule_compare,
        "history": _cmd_history,
        "profile": _cmd_profile,
        "merge-shards": _cmd_merge_shards,
        "watch": _cmd_watch,
        "ingest": _cmd_ingest,
        "reorder": _cmd_reorder,
        "partition": _cmd_partition,
    }[args.command]
    from .obs.alerts import WatchdogAbort

    try:
        return handler(args)
    except WatchdogAbort as exc:
        print(f"{args.command}: aborted by watchdog: {exc}", file=sys.stderr)
        return EXIT_WATCHDOG_ABORT


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
