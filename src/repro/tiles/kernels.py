"""Numeric tile kernels of Algorithm 1 with emulated precision.

The four kernels of the tile Cholesky factorization:

* ``potrf`` — Cholesky of a diagonal tile; always FP64 (the "D" prefix in
  Algorithm 1).
* ``trsm`` — triangular solve of a panel tile against the diagonal
  factor.  Nvidia GPUs expose no FP16 TRSM, so the kernel floor is FP32:
  tiles whose selected precision is FP16_32/FP16 run their TRSM in FP32
  (Section V).
* ``syrk`` — symmetric rank-k update of a diagonal tile; always FP64.
* ``gemm`` — the workhorse (>90 % of the flops); runs in any of the
  adaptive formats via the emulated mixed-precision GEMM.

All kernels take and return float64 arrays; reduced precision enters via
quantisation of inputs and emulated low-precision accumulation.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from ..precision.emulate import quantize
from ..precision.formats import Precision
from ..precision.gemm import mixed_gemm

__all__ = [
    "NotPositiveDefiniteError",
    "potrf",
    "trsm",
    "syrk",
    "gemm",
    "trsm_execution_precision",
]


class NotPositiveDefiniteError(np.linalg.LinAlgError):
    """Raised when a diagonal tile fails the Cholesky factorization.

    In the MLE driver this is a *signal*, not a bug: the optimizer probes
    parameter vectors whose covariance matrix can be numerically singular,
    and the likelihood evaluation reports -inf for them.
    """


def trsm_execution_precision(precision: Precision) -> Precision:
    """Precision at which a TRSM for ``precision``-tiles actually runs.

    FP16-family tiles execute their TRSM in FP32 (hardware limitation,
    Section V); everything else runs natively.
    """
    if precision in (Precision.FP16, Precision.FP16_32, Precision.BF16_32, Precision.TF32):
        return Precision.FP32
    return precision


def potrf(c_kk: np.ndarray) -> np.ndarray:
    """FP64 Cholesky of a diagonal tile: returns lower factor L_kk."""
    c_kk = np.asarray(c_kk, dtype=np.float64)
    try:
        return np.linalg.cholesky(c_kk)
    except np.linalg.LinAlgError as exc:
        raise NotPositiveDefiniteError(str(exc)) from exc


def trsm(l_kk: np.ndarray, c_mk: np.ndarray, precision: Precision = Precision.FP64) -> np.ndarray:
    """Triangular solve ``C_mk ← C_mk · L_kk^{-T}``.

    Runs in FP64 or FP32 depending on :func:`trsm_execution_precision`.
    """
    exec_prec = trsm_execution_precision(precision)
    l_kk = np.asarray(l_kk, dtype=np.float64)
    c_mk = np.asarray(c_mk, dtype=np.float64)
    if exec_prec == Precision.FP64:
        xt = scipy.linalg.solve_triangular(l_kk, c_mk.T, lower=True)
        return np.ascontiguousarray(xt.T)
    l32 = l_kk.astype(np.float32)
    c32 = c_mk.astype(np.float32)
    xt = scipy.linalg.solve_triangular(l32, c32.T, lower=True)
    return np.ascontiguousarray(xt.T).astype(np.float64)


def syrk(c_mk: np.ndarray, c_mm: np.ndarray, precision: Precision = Precision.FP64) -> np.ndarray:
    """Symmetric rank-k update ``C_mm ← C_mm − C_mk · C_mk^T`` (FP64).

    ``precision`` controls the quantisation of the incoming panel tile
    (its data may have travelled at reduced precision), while the update
    itself always accumulates in FP64 as in Algorithm 1.
    """
    a = quantize(np.asarray(c_mk, dtype=np.float64), precision)
    c = np.asarray(c_mm, dtype=np.float64)
    out = c - a @ a.T
    return (out + out.T) * 0.5


def gemm(
    c_mk: np.ndarray,
    c_nk: np.ndarray,
    c_mn: np.ndarray,
    precision: Precision = Precision.FP64,
) -> np.ndarray:
    """Trailing update ``C_mn ← C_mn − C_mk · C_nk^T`` in ``precision``."""
    return mixed_gemm(
        np.asarray(c_mk, dtype=np.float64),
        np.asarray(c_nk, dtype=np.float64).T,
        np.asarray(c_mn, dtype=np.float64),
        precision=precision,
        alpha=-1.0,
        beta=1.0,
    )
