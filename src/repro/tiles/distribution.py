"""2D block-cyclic data distribution over a process grid (Section VII-A).

The paper distributes tiles over a ``P × Q`` process grid chosen "as
square as possible" with ``P ≤ Q``.  Tile (i, j) lives on grid position
``(i mod P, j mod Q)``; inside a node, tiles are served round-robin to the
node's GPUs.  This module provides the grid arithmetic plus helpers the
scheduler and the analytic scaling model both use (per-rank tile counts,
load-balance statistics for a symmetric lower-triangular tile set).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

__all__ = ["ProcessGrid", "squarest_grid", "lower_triangle_tiles"]


def squarest_grid(p: int) -> tuple[int, int]:
    """Factor ``p`` into the squarest ``P × Q`` grid with ``P ≤ Q``."""
    if p < 1:
        raise ValueError("process count must be positive")
    best = (1, p)
    for cand in range(int(math.isqrt(p)), 0, -1):
        if p % cand == 0:
            best = (cand, p // cand)
            break
    return best


def lower_triangle_tiles(nt: int) -> Iterator[tuple[int, int]]:
    """Yield the (row, col) indices of the lower-triangular tile set."""
    for i in range(nt):
        for j in range(i + 1):
            yield (i, j)


@dataclass(frozen=True)
class ProcessGrid:
    """A ``P × Q`` block-cyclic process grid.

    ``rank = row_rank * Q + col_rank`` matches the row-major rank layout
    PaRSEC's two_dim_block_cyclic descriptor uses.
    """

    p: int
    q: int

    def __post_init__(self) -> None:
        if self.p < 1 or self.q < 1:
            raise ValueError("grid dimensions must be positive")

    @classmethod
    def squarest(cls, nprocs: int) -> "ProcessGrid":
        p, q = squarest_grid(nprocs)
        return cls(p, q)

    @property
    def size(self) -> int:
        return self.p * self.q

    def coords(self, rank: int) -> tuple[int, int]:
        """Grid coordinates of a rank."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside grid of size {self.size}")
        return divmod(rank, self.q)

    def owner(self, i: int, j: int) -> int:
        """Rank owning tile (i, j) under 2D block-cyclic distribution."""
        return (i % self.p) * self.q + (j % self.q)

    def owns(self, rank: int, i: int, j: int) -> bool:
        return self.owner(i, j) == rank

    def tiles_owned(self, rank: int, nt: int, *, lower_only: bool = True) -> list[tuple[int, int]]:
        """Tiles of an ``nt × nt`` tiled matrix owned by ``rank``."""
        tiles = lower_triangle_tiles(nt) if lower_only else (
            (i, j) for i in range(nt) for j in range(nt)
        )
        return [(i, j) for i, j in tiles if self.owner(i, j) == rank]

    def tile_counts(self, nt: int, *, lower_only: bool = True) -> list[int]:
        """Number of tiles owned by each rank."""
        counts = [0] * self.size
        tiles = lower_triangle_tiles(nt) if lower_only else (
            (i, j) for i in range(nt) for j in range(nt)
        )
        for i, j in tiles:
            counts[self.owner(i, j)] += 1
        return counts

    def load_imbalance(self, nt: int) -> float:
        """max/mean tile-count ratio over ranks (1.0 = perfect balance)."""
        counts = self.tile_counts(nt)
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 1.0
        return max(counts) / mean
