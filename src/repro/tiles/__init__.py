"""Tiled matrix storage, distribution, norms, and numeric tile kernels."""

from .distribution import ProcessGrid, lower_triangle_tiles, squarest_grid
from .kernels import (
    NotPositiveDefiniteError,
    gemm,
    potrf,
    syrk,
    trsm,
    trsm_execution_precision,
)
from .norms import global_norm_from_tile_norms, sampled_tile_norms, tile_norms
from .tilematrix import TiledSymmetricMatrix, tile_index_range

__all__ = [
    "NotPositiveDefiniteError",
    "ProcessGrid",
    "TiledSymmetricMatrix",
    "gemm",
    "global_norm_from_tile_norms",
    "lower_triangle_tiles",
    "potrf",
    "sampled_tile_norms",
    "squarest_grid",
    "syrk",
    "tile_index_range",
    "tile_norms",
    "trsm",
    "trsm_execution_precision",
]
