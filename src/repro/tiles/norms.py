"""Tile-level Frobenius norms and sampled estimation.

The tile-centric precision selection rule (Section V) thresholds
``‖A_ij‖_F · NT / ‖A‖_F``.  For matrices small enough to materialise we
compute the norms exactly; for the Fig. 7 scale (409,600² — 20,100 tiles
of 2048²) the paper's matrix never fits in our environment, so we provide
an unbiased sampled estimator: draw ``s`` random entries of tile (i, j)
through the covariance function and scale the root-mean-square by the
tile's element count.  The estimator's relative error decays as
``1/sqrt(s)`` for covariance tiles (smooth, positive entries), which is
ample to decide a threshold spanning orders of magnitude.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..precision.errors import combine_frobenius
from .tilematrix import TiledSymmetricMatrix, tile_index_range

__all__ = [
    "tile_norms",
    "global_norm_from_tile_norms",
    "sampled_tile_norms",
]


def tile_norms(mat: TiledSymmetricMatrix) -> np.ndarray:
    """Exact per-tile Frobenius norms (full NT×NT array, mirrored)."""
    nt = mat.nt
    out = np.zeros((nt, nt), dtype=np.float64)
    for i, j in mat.lower_indices():
        norm = float(np.linalg.norm(mat.get(i, j)))
        out[i, j] = norm
        out[j, i] = norm
    return out


def global_norm_from_tile_norms(norms: np.ndarray) -> float:
    """Global Frobenius norm from the full (mirrored) tile-norm array.

    Off-diagonal tiles appear twice in the mirrored array, which is
    exactly right: the symmetric matrix contains both (i, j) and (j, i)
    blocks.
    """
    return combine_frobenius(norms.ravel())


def sampled_tile_norms(
    n: int,
    nb: int,
    entry: Callable[[np.ndarray, np.ndarray], np.ndarray],
    *,
    samples_per_tile: int = 64,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Estimate per-tile Frobenius norms without forming the matrix.

    Parameters
    ----------
    entry:
        Vectorised element oracle ``entry(rows, cols) -> values`` giving
        matrix entries at global index pairs (e.g. the covariance kernel
        applied to location pairs).
    samples_per_tile:
        Monte Carlo sample count per tile.  Tiles smaller than this are
        evaluated exactly.

    Returns the full mirrored NT×NT norm-estimate array.
    """
    rng = rng or np.random.default_rng(0)
    nt = -(-n // nb)
    out = np.zeros((nt, nt), dtype=np.float64)
    for i in range(nt):
        ri = tile_index_range(n, nb, i)
        for j in range(i + 1):
            rj = tile_index_range(n, nb, j)
            n_rows = ri[1] - ri[0]
            n_cols = rj[1] - rj[0]
            n_elem = n_rows * n_cols
            if n_elem <= samples_per_tile:
                rows = np.repeat(np.arange(ri[0], ri[1]), n_cols)
                cols = np.tile(np.arange(rj[0], rj[1]), n_rows)
                vals = np.asarray(entry(rows, cols), dtype=np.float64)
                norm = float(np.linalg.norm(vals))
            else:
                rows = rng.integers(ri[0], ri[1], size=samples_per_tile)
                cols = rng.integers(rj[0], rj[1], size=samples_per_tile)
                vals = np.asarray(entry(rows, cols), dtype=np.float64)
                norm = float(np.sqrt(np.mean(vals**2) * n_elem))
            out[i, j] = norm
            out[j, i] = norm
    return out
