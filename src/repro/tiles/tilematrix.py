"""Tiled symmetric matrix storage.

The covariance matrix Σ(θ) of the MLE driver is symmetric positive
definite, so only the lower-triangular tile set is stored (the layout the
tile Cholesky of Algorithm 1 consumes).  Each tile is an independent
NumPy array and can carry its *own* dtype — that is exactly the paper's
mixed-precision storage map (Fig. 2b): FP64 tiles on and near the
diagonal, FP32 for everything whose kernels run at or below FP32.

Values are always materialised to float64 for computation (the emulation
layer reinstates format rounding at kernel granularity); the storage
dtype records — and enforces by an actual cast — what the tile lost when
it was generated at reduced precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from ..precision.emulate import quantize_tile
from ..precision.formats import Precision, get_storage_precision

__all__ = ["TiledSymmetricMatrix", "tile_index_range"]


def tile_index_range(n: int, nb: int, t: int) -> tuple[int, int]:
    """Global index range ``[lo, hi)`` covered by tile row/col ``t``."""
    lo = t * nb
    hi = min(n, lo + nb)
    if lo >= n:
        raise IndexError(f"tile {t} outside matrix of size {n} (nb={nb})")
    return lo, hi


@dataclass
class TiledSymmetricMatrix:
    """Lower-triangular tiled storage of a symmetric n×n matrix.

    Attributes
    ----------
    n, nb:
        Matrix size and tile size.  The last tile row/column may be
        ragged when ``n % nb != 0``.
    tiles:
        ``{(i, j): ndarray}`` for ``j ≤ i``.
    storage_precision:
        ``{(i, j): Precision}`` — dtype in which each tile rests
        (Fig. 2b).  Defaults to FP64 everywhere.
    """

    n: int
    nb: int
    tiles: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)
    storage_precision: dict[tuple[int, int], Precision] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n <= 0 or self.nb <= 0:
            raise ValueError("n and nb must be positive")

    @property
    def nt(self) -> int:
        """Number of tile rows/columns."""
        return -(-self.n // self.nb)

    def tile_shape(self, i: int, j: int) -> tuple[int, int]:
        ri = tile_index_range(self.n, self.nb, i)
        rj = tile_index_range(self.n, self.nb, j)
        return (ri[1] - ri[0], rj[1] - rj[0])

    def lower_indices(self) -> Iterator[tuple[int, int]]:
        for i in range(self.nt):
            for j in range(i + 1):
                yield (i, j)

    # -- access ---------------------------------------------------------
    def get(self, i: int, j: int) -> np.ndarray:
        """Tile (i, j) as float64 (transposing a mirrored upper access)."""
        if j > i:
            return self.get(j, i).T
        tile = self.tiles[(i, j)]
        return np.asarray(tile, dtype=np.float64)

    def set(self, i: int, j: int, value: np.ndarray, *, precision: Precision | None = None) -> None:
        """Store tile (i, j), casting to its storage precision.

        ``precision`` overrides the recorded storage precision; otherwise
        the existing entry (default FP64) is used.
        """
        if j > i:
            raise IndexError("only lower-triangular tiles are stored; set (j, i) instead")
        value = np.asarray(value, dtype=np.float64)
        if value.shape != self.tile_shape(i, j):
            raise ValueError(
                f"tile ({i},{j}) expects shape {self.tile_shape(i, j)}, got {value.shape}"
            )
        if precision is not None:
            self.storage_precision[(i, j)] = precision
        prec = self.storage_precision.get((i, j), Precision.FP64)
        self.tiles[(i, j)] = quantize_tile(value, prec)

    def precision_of(self, i: int, j: int) -> Precision:
        if j > i:
            i, j = j, i
        return self.storage_precision.get((i, j), Precision.FP64)

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_dense(
        cls,
        a: np.ndarray,
        nb: int,
        *,
        kernel_precision: Callable[[int, int], Precision] | None = None,
    ) -> "TiledSymmetricMatrix":
        """Tile a dense symmetric matrix.

        When ``kernel_precision`` is given (the Fig. 2a map as a callable),
        each tile is stored at ``get_storage_precision(kernel_precision)``,
        reproducing the generation-phase casting of Section V.
        """
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError("expected a square matrix")
        mat = cls(n=a.shape[0], nb=nb)
        for i, j in mat.lower_indices():
            ri = tile_index_range(mat.n, nb, i)
            rj = tile_index_range(mat.n, nb, j)
            prec = Precision.FP64
            if kernel_precision is not None:
                prec = get_storage_precision(kernel_precision(i, j))
            mat.set(i, j, a[ri[0] : ri[1], rj[0] : rj[1]], precision=prec)
        return mat

    @classmethod
    def from_tile_function(
        cls,
        n: int,
        nb: int,
        fill: Callable[[int, int], np.ndarray],
        *,
        kernel_precision: Callable[[int, int], Precision] | None = None,
    ) -> "TiledSymmetricMatrix":
        """Build tile-by-tile without ever forming the dense matrix."""
        mat = cls(n=n, nb=nb)
        for i, j in mat.lower_indices():
            prec = Precision.FP64
            if kernel_precision is not None:
                prec = get_storage_precision(kernel_precision(i, j))
            mat.set(i, j, fill(i, j), precision=prec)
        return mat

    # -- conversions ------------------------------------------------------
    def to_dense(self, *, symmetrize: bool = True) -> np.ndarray:
        """Materialise the full matrix as float64."""
        out = np.zeros((self.n, self.n), dtype=np.float64)
        for i, j in self.lower_indices():
            ri = tile_index_range(self.n, self.nb, i)
            rj = tile_index_range(self.n, self.nb, j)
            block = self.get(i, j)
            out[ri[0] : ri[1], rj[0] : rj[1]] = block
            if symmetrize and i != j:
                out[rj[0] : rj[1], ri[0] : ri[1]] = block.T
        return out

    def lower_dense(self) -> np.ndarray:
        """Materialise only the lower triangle (upper left at zero)."""
        out = self.to_dense(symmetrize=False)
        return np.tril(out)

    def copy(self) -> "TiledSymmetricMatrix":
        clone = TiledSymmetricMatrix(n=self.n, nb=self.nb)
        clone.storage_precision = dict(self.storage_precision)
        clone.tiles = {k: v.copy() for k, v in self.tiles.items()}
        return clone

    def storage_bytes(self) -> int:
        """Total bytes of the mixed-precision tile storage."""
        return sum(t.nbytes for t in self.tiles.values())
