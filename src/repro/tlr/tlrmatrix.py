"""TLR storage: dense diagonal tiles, low-rank off-diagonal tiles."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..tiles.tilematrix import TiledSymmetricMatrix, tile_index_range
from .compression import LowRankTile, compress

__all__ = ["TLRSymmetricMatrix"]


@dataclass
class TLRSymmetricMatrix:
    """Symmetric matrix in TLR format.

    Diagonal tiles are dense (they carry the strongest correlations and
    feed POTRF); off-diagonal lower-triangle tiles are
    :class:`LowRankTile` outer products compressed to ``tol``.
    """

    n: int
    nb: int
    tol: float
    diag: dict[int, np.ndarray] = field(default_factory=dict)
    lowrank: dict[tuple[int, int], LowRankTile] = field(default_factory=dict)

    @property
    def nt(self) -> int:
        return -(-self.n // self.nb)

    @classmethod
    def from_tiled(
        cls,
        mat: TiledSymmetricMatrix,
        tol: float,
        *,
        max_rank: int | None = None,
    ) -> "TLRSymmetricMatrix":
        """Compress a tiled dense matrix into TLR format."""
        out = cls(n=mat.n, nb=mat.nb, tol=tol)
        for i, j in mat.lower_indices():
            if i == j:
                out.diag[i] = mat.get(i, i).copy()
            else:
                out.lowrank[(i, j)] = compress(mat.get(i, j), tol, max_rank=max_rank)
        return out

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.n, self.n), dtype=np.float64)
        for t, tile in self.diag.items():
            lo, hi = tile_index_range(self.n, self.nb, t)
            out[lo:hi, lo:hi] = tile
        for (i, j), lr in self.lowrank.items():
            ri = tile_index_range(self.n, self.nb, i)
            rj = tile_index_range(self.n, self.nb, j)
            block = lr.to_dense()
            out[ri[0]: ri[1], rj[0]: rj[1]] = block
            out[rj[0]: rj[1], ri[0]: ri[1]] = block.T
        return out

    # -- statistics -------------------------------------------------------
    def memory_bytes(self) -> int:
        total = sum(t.nbytes for t in self.diag.values())
        total += sum(lr.nbytes for lr in self.lowrank.values())
        return total

    def dense_bytes(self) -> int:
        """Bytes the same matrix would occupy in dense FP64 tiles."""
        total = 0
        for t in range(self.nt):
            lo, hi = tile_index_range(self.n, self.nb, t)
            total += (hi - lo) ** 2 * 8
        for (i, j) in self.lowrank:
            ri = tile_index_range(self.n, self.nb, i)
            rj = tile_index_range(self.n, self.nb, j)
            total += (ri[1] - ri[0]) * (rj[1] - rj[0]) * 8
        return total

    def compression_ratio(self) -> float:
        """dense bytes / TLR bytes (>1 means compression wins)."""
        mem = self.memory_bytes()
        return self.dense_bytes() / mem if mem else float("inf")

    def max_rank(self) -> int:
        return max((lr.rank for lr in self.lowrank.values()), default=0)

    def mean_rank(self) -> float:
        if not self.lowrank:
            return 0.0
        return float(np.mean([lr.rank for lr in self.lowrank.values()]))

    def rank_map(self) -> np.ndarray:
        """NT×NT array of tile ranks (diag marked as full rank)."""
        nt = self.nt
        out = np.zeros((nt, nt), dtype=int)
        for t in range(nt):
            lo, hi = tile_index_range(self.n, self.nb, t)
            out[t, t] = hi - lo
        for (i, j), lr in self.lowrank.items():
            out[i, j] = lr.rank
            out[j, i] = lr.rank
        return out
