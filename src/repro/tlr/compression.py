"""Low-rank tile compression (the TLR substrate of refs [16], [17]).

The paper's future work combines adaptive mixed precision with Tile
Low-Rank (TLR) compression: off-diagonal covariance tiles are numerically
low-rank (smooth kernels ⇒ rapidly decaying singular values), so storing
them as ``U Vᵀ`` outer products shrinks both memory and flops.

This module provides the rank arithmetic: SVD truncation to a target
accuracy, the QR+SVD *recompression* (rounding) used after low-rank
additions, and the addition itself — the three primitives the TLR
Cholesky consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..precision.emulate import quantize_batch
from ..precision.formats import Precision

__all__ = ["LowRankTile", "compress", "recompress", "add_lowrank"]


@dataclass
class LowRankTile:
    """A tile stored as ``u @ v.T`` with ``u: (m, r)``, ``v: (n, r)``."""

    u: np.ndarray
    v: np.ndarray

    def __post_init__(self) -> None:
        self.u = np.asarray(self.u, dtype=np.float64)
        self.v = np.asarray(self.v, dtype=np.float64)
        if self.u.ndim != 2 or self.v.ndim != 2 or self.u.shape[1] != self.v.shape[1]:
            raise ValueError(
                f"incompatible low-rank factors {self.u.shape}, {self.v.shape}"
            )

    @property
    def rank(self) -> int:
        return self.u.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return (self.u.shape[0], self.v.shape[0])

    @property
    def nbytes(self) -> int:
        return self.u.nbytes + self.v.nbytes

    def to_dense(self) -> np.ndarray:
        return self.u @ self.v.T

    @property
    def T(self) -> "LowRankTile":
        return LowRankTile(self.v, self.u)

    def scaled(self, alpha: float) -> "LowRankTile":
        return LowRankTile(alpha * self.u, self.v)

    def quantized(self, precision: Precision) -> "LowRankTile":
        """Mixed-precision TLR: round both factors to ``precision``.

        Both factors go through one batched quantisation pass.
        """
        u, v = quantize_batch([self.u, self.v], precision)
        return LowRankTile(u, v)


def compress(tile: np.ndarray, tol: float, *, max_rank: int | None = None) -> LowRankTile:
    """SVD-truncate ``tile`` to relative accuracy ``tol``.

    Keeps the singular values with ``σ_i > tol · σ_0`` (at least one), so
    ``‖A − UVᵀ‖₂ ≤ tol · ‖A‖₂``.  ``max_rank`` optionally caps the rank.
    """
    tile = np.asarray(tile, dtype=np.float64)
    if tile.ndim != 2:
        raise ValueError("expected a 2D tile")
    u, s, vt = np.linalg.svd(tile, full_matrices=False)
    if s.size == 0 or s[0] == 0.0:
        return LowRankTile(np.zeros((tile.shape[0], 1)), np.zeros((tile.shape[1], 1)))
    r = int(np.sum(s > tol * s[0]))
    r = max(1, r)
    if max_rank is not None:
        r = min(r, max_rank)
    return LowRankTile(u[:, :r] * s[:r], vt[:r, :].T)


def recompress(lr: LowRankTile, tol: float, *, max_rank: int | None = None) -> LowRankTile:
    """Round a low-rank representation back to numerical rank.

    The standard QR+SVD rounding: orthonormalise both factors, truncate
    the small ``r × r`` core.  Cost O((m+n) r² + r³) — never touches a
    dense tile.
    """
    if lr.rank == 0:
        return lr
    qu, ru = np.linalg.qr(lr.u)
    qv, rv = np.linalg.qr(lr.v)
    core = ru @ rv.T
    uc, s, vtc = np.linalg.svd(core)
    if s.size == 0 or s[0] == 0.0:
        m, n = lr.shape
        return LowRankTile(np.zeros((m, 1)), np.zeros((n, 1)))
    r = max(1, int(np.sum(s > tol * s[0])))
    if max_rank is not None:
        r = min(r, max_rank)
    return LowRankTile(qu @ (uc[:, :r] * s[:r]), qv @ vtc[:r, :].T)


def add_lowrank(
    a: LowRankTile, b: LowRankTile, tol: float, *, max_rank: int | None = None
) -> LowRankTile:
    """``a + b`` in low-rank form with rounding (rank-truncated sum)."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    stacked = LowRankTile(np.hstack([a.u, b.u]), np.hstack([a.v, b.v]))
    return recompress(stacked, tol, max_rank=max_rank)
