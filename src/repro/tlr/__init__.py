"""Tile Low-Rank (TLR) extension — the paper's Section VIII future work.

Combines the adaptive mixed-precision framework with TLR compression
(refs [16], [17]): off-diagonal covariance tiles become ``U Vᵀ`` outer
products, the tile Cholesky runs in low-rank arithmetic, and the
mixed-precision maps quantise the low-rank factors tile-by-tile.
"""

from .cholesky import TLRCholeskyResult, tlr_cholesky
from .compression import LowRankTile, add_lowrank, compress, recompress
from .tlrmatrix import TLRSymmetricMatrix

__all__ = [
    "LowRankTile",
    "TLRCholeskyResult",
    "TLRSymmetricMatrix",
    "add_lowrank",
    "compress",
    "recompress",
    "tlr_cholesky",
]
