"""TLR Cholesky factorization, optionally combined with mixed precision.

The right-looking tile Cholesky of Algorithm 1 re-expressed on TLR
storage (refs [16], [17]; the paper's Section VIII roadmap):

* ``POTRF`` — dense FP64 on the diagonal tile, unchanged;
* ``TRSM``  — ``(U Vᵀ) L⁻ᵀ = U (L⁻¹ V)ᵀ``: a triangular solve against
  the *narrow* V factor only — O(nb²·r) instead of O(nb³);
* ``SYRK``  — ``C −= (U Vᵀ)(V Uᵀ) = U (VᵀV) Uᵀ``: a small core product
  expanded densely onto the diagonal — O(nb·r² + nb²·r);
* ``GEMM``  — ``C_mn −= U_m (V_mᵀ V_n) U_nᵀ``: a rank-``min(r_m, r_n)``
  update folded into C's low-rank representation and *recompressed* —
  never densified.

Mixed precision enters exactly as the paper envisions: each off-diagonal
tile's U/V factors are quantised to the tile's kernel precision from the
Fig. 2a map, so the TLR factors inherit the same tile-centric precision
selection (and the same accuracy argument — the perturbation is bounded
by the tile's norm share).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from ..core.precision_map import KernelPrecisionMap
from ..precision.emulate import quantize
from ..precision.formats import Precision
from ..tiles.kernels import NotPositiveDefiniteError
from .compression import LowRankTile, add_lowrank, recompress
from .tlrmatrix import TLRSymmetricMatrix

__all__ = ["TLRCholeskyResult", "tlr_cholesky"]


@dataclass
class TLRCholeskyResult:
    """Factor in TLR form plus operation statistics."""

    factor: TLRSymmetricMatrix
    flops: float
    dense_flops: float
    max_rank: int

    @property
    def flop_savings(self) -> float:
        """dense flops / TLR flops (>1 means TLR wins)."""
        return self.dense_flops / self.flops if self.flops else float("inf")

    def logdet(self) -> float:
        total = 0.0
        for t in range(self.factor.nt):
            diag = np.diag(self.factor.diag[t])
            if np.any(diag <= 0.0):
                return -np.inf
            total += float(np.sum(np.log(diag)))
        return 2.0 * total


def tlr_cholesky(
    mat: TLRSymmetricMatrix,
    *,
    kernel_map: KernelPrecisionMap | None = None,
    max_rank: int | None = None,
) -> TLRCholeskyResult:
    """Factor a TLR symmetric positive definite matrix in place (copy).

    ``kernel_map`` (optional) applies the adaptive mixed-precision map to
    the low-rank factors tile-by-tile — the mixed-precision + TLR
    combination of the paper's future work.
    """
    nt = mat.nt
    if kernel_map is not None and kernel_map.nt != nt:
        raise ValueError("kernel map NT mismatch")
    tol = mat.tol
    work = TLRSymmetricMatrix(
        n=mat.n,
        nb=mat.nb,
        tol=tol,
        diag={t: tile.copy() for t, tile in mat.diag.items()},
        lowrank={k: LowRankTile(v.u.copy(), v.v.copy()) for k, v in mat.lowrank.items()},
    )

    flops = 0.0
    dense_flops = 0.0
    peak_rank = 0

    def _prec(i: int, j: int) -> Precision | None:
        if kernel_map is None:
            return None
        return kernel_map.kernel(i, j)

    def _q(lr: LowRankTile, i: int, j: int) -> LowRankTile:
        prec = _prec(i, j)
        if prec is None or prec == Precision.FP64:
            return lr
        return lr.quantized(prec)

    for k in range(nt):
        c_kk = work.diag[k]
        nb_k = c_kk.shape[0]
        try:
            l_kk = np.linalg.cholesky(c_kk)
        except np.linalg.LinAlgError as exc:
            raise NotPositiveDefiniteError(str(exc)) from exc
        work.diag[k] = np.tril(l_kk)
        flops += nb_k**3 / 3.0
        dense_flops += nb_k**3 / 3.0

        panels: dict[int, LowRankTile] = {}
        for m in range(k + 1, nt):
            lr = work.lowrank[(m, k)]
            # TRSM: U (L⁻¹ V)ᵀ — solve against the narrow factor
            v_new = scipy.linalg.solve_triangular(l_kk, lr.v, lower=True)
            solved = LowRankTile(lr.u, v_new)
            solved = _q(solved, m, k)
            work.lowrank[(m, k)] = solved
            panels[m] = solved
            peak_rank = max(peak_rank, solved.rank)
            flops += nb_k**2 * solved.rank
            dense_flops += float(lr.shape[0]) * nb_k**2

        for m in range(k + 1, nt):
            a = panels[m]
            # SYRK: C_mm −= U (VᵀV) Uᵀ (dense diagonal update)
            core = a.v.T @ a.v
            work.diag[m] = work.diag[m] - a.u @ core @ a.u.T
            work.diag[m] = (work.diag[m] + work.diag[m].T) * 0.5
            r = a.rank
            nb_m = a.shape[0]
            flops += 2.0 * nb_m * r * r + 2.0 * nb_m * nb_m * r
            dense_flops += float(nb_m) ** 3

        for m in range(k + 2, nt):
            a = panels[m]
            for n in range(k + 1, m):
                b = panels[n]
                # GEMM: C_mn −= U_m (V_mᵀ V_n) U_nᵀ, folded into C's LR rep
                core = a.v.T @ b.v  # (r_m, r_n)
                w = a.u @ core  # (nb, r_n)
                update = LowRankTile(-w, b.u)
                c = work.lowrank[(m, n)]
                work.lowrank[(m, n)] = add_lowrank(c, update, tol, max_rank=max_rank)
                peak_rank = max(peak_rank, work.lowrank[(m, n)].rank)
                r_sum = c.rank + update.rank
                nb_m = a.shape[0]
                flops += (
                    2.0 * a.rank * b.rank * a.v.shape[0]  # core
                    + 2.0 * nb_m * a.rank * b.rank  # w
                    + 6.0 * nb_m * r_sum * r_sum  # recompression QRs + core SVD
                )
                dense_flops += 2.0 * float(nb_m) ** 3

    return TLRCholeskyResult(
        factor=work, flops=flops, dense_flops=dense_flops, max_rank=peak_rank
    )
