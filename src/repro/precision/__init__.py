"""Precision formats, emulation, and mixed-precision kernels.

This subpackage is the numerical substrate of the reproduction: it defines
the precision lattice (FP64 … FP16) used throughout the adaptive
framework, quantisation routines that emulate GPU reduced-precision
arithmetic on the host, and the emulated mixed-precision GEMM that
underpins both the Fig. 1 accuracy study and the numeric execution mode of
the mixed-precision Cholesky.
"""

from .emulate import quantize, quantize_batch, quantize_tile, storage_dtype, truncate_mantissa
from .errors import (
    combine_frobenius,
    frobenius,
    max_abs_error,
    relative_frobenius_error,
)
from .formats import (
    ADAPTIVE_FORMATS,
    FORMAT_INFO,
    FormatInfo,
    Precision,
    bytes_per_element,
    get_higher_precision,
    get_lower_precision,
    get_storage_precision,
    parse_precision,
    rule_epsilon,
    sort_by_width,
    validate_adaptive_set,
)
from .gemm import gemm_relative_error, mixed_gemm, mixed_syrk

__all__ = [
    "ADAPTIVE_FORMATS",
    "FORMAT_INFO",
    "FormatInfo",
    "Precision",
    "bytes_per_element",
    "combine_frobenius",
    "frobenius",
    "gemm_relative_error",
    "get_higher_precision",
    "get_lower_precision",
    "get_storage_precision",
    "max_abs_error",
    "mixed_gemm",
    "mixed_syrk",
    "parse_precision",
    "quantize",
    "quantize_batch",
    "quantize_tile",
    "relative_frobenius_error",
    "rule_epsilon",
    "sort_by_width",
    "storage_dtype",
    "truncate_mantissa",
    "validate_adaptive_set",
]
