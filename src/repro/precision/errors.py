"""Error-measurement helpers shared by the accuracy studies.

All accuracy comparisons in the paper use the Frobenius norm: the GEMM
benchmark compares each format against FP64 GEMM (Section IV), and the
tile-selection rule thresholds the ratio of tile to global Frobenius
norms (Section V).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "frobenius",
    "relative_frobenius_error",
    "max_abs_error",
    "combine_frobenius",
]


def frobenius(a: np.ndarray) -> float:
    """Frobenius norm of an array."""
    return float(np.linalg.norm(np.asarray(a, dtype=np.float64)))


def relative_frobenius_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """``‖approx − exact‖_F / ‖exact‖_F`` (0 when both are zero)."""
    exact = np.asarray(exact, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    denom = float(np.linalg.norm(exact))
    num = float(np.linalg.norm(approx - exact))
    if denom == 0.0:
        return 0.0 if num == 0.0 else math.inf
    return num / denom


def max_abs_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """Element-wise maximum absolute error."""
    return float(np.max(np.abs(np.asarray(approx, float) - np.asarray(exact, float))))


def combine_frobenius(partials: "list[float] | np.ndarray") -> float:
    """Combine per-tile Frobenius norms into the global matrix norm.

    ``‖A‖_F² = Σ_ij ‖A_ij‖_F²`` — used when the matrix is never formed as
    one dense array (tiled storage, or sampled-norm estimation for the
    Fig. 7 scale).
    """
    partials = np.asarray(partials, dtype=np.float64)
    return float(np.sqrt(np.sum(partials**2)))
