"""Software emulation of reduced-precision arithmetic on NumPy arrays.

We have no tensor cores in this reproduction, so the numerical behaviour
of each GPU precision format (Fig. 1's accuracy panel) is emulated on the
host in IEEE double precision:

* *quantisation* — rounding an FP64 array to the representable set of the
  target input format (FP32 and FP16 via native NumPy dtypes; TF32 and
  BF16 via round-to-nearest-even mantissa truncation of the FP32
  encoding);
* *accumulation* — matrix products are evaluated with an accumulator of
  the format's ``accum_bits``; pure FP16 uses chunked accumulation with
  partial sums re-rounded to FP16, reproducing the linear-in-k error
  growth (and eventual overflow at |x| > 65504) of genuine half-precision
  accumulation.

The emulation is deliberately value-faithful rather than bit-faithful:
tensor cores round slightly differently inside the 4×4 block FMA (Fasi et
al., 2021), but the error *scaling* — what the tile-selection rule and the
Monte Carlo accuracy study respond to — matches.
"""

from __future__ import annotations

import numpy as np

from .formats import FORMAT_INFO, Precision

__all__ = [
    "truncate_mantissa",
    "quantize",
    "quantize_batch",
    "quantize_tile",
    "storage_dtype",
]

_EXP_MASK = np.uint32(0x7F800000)


def truncate_mantissa(x: np.ndarray, keep_bits: int) -> np.ndarray:
    """Round FP32 values to ``keep_bits`` significand bits (incl. implicit).

    Implements round-to-nearest-even on the binary32 encoding, which is
    how TF32 (11 bits) and BF16 (8 bits) inputs are produced from FP32
    registers on the GPU.  Returns a float32 array.

    Non-finite lanes pass through bit-exactly: NaNs keep their payload
    (the rounding add would otherwise carry a low-payload NaN into ±inf)
    and ±inf stays ±inf (an all-ones pattern would wrap the uint32 add
    into a tiny denormal).  Finite values that round past the largest
    representable float32 overflow to ±inf, matching hardware saturation.
    """
    if keep_bits >= 24:
        return np.asarray(x, dtype=np.float32)
    x32 = np.ascontiguousarray(x, dtype=np.float32)
    bits = x32.view(np.uint32)
    drop = np.uint32(24 - keep_bits)
    one = np.uint32(1)
    # round-to-nearest-even: add half ulp (of the kept grid) plus the
    # tie-breaking bit taken from the lowest kept position
    lsb = (bits >> drop) & one
    round_bias = (one << (drop - one)) - one + lsb
    rounded = (bits + round_bias) >> drop << drop
    nonfinite = (bits & _EXP_MASK) == _EXP_MASK
    if nonfinite.any():
        rounded = np.where(nonfinite, bits, rounded)
    return rounded.view(np.float32).copy()


def quantize(x: np.ndarray, precision: Precision) -> np.ndarray:
    """Round ``x`` to the *input* format of ``precision``; returns float64.

    The result is returned widened back to float64 so downstream NumPy
    code keeps full-width arithmetic while the values live on the target
    format's grid.  FP16-family formats saturate to ±inf past 65504, like
    the hardware.
    """
    x = np.asarray(x, dtype=np.float64)
    if precision == Precision.FP64:
        return x
    if precision == Precision.FP32:
        return x.astype(np.float32).astype(np.float64)
    if precision in (Precision.FP16, Precision.FP16_32):
        with np.errstate(over="ignore"):  # saturation to ±inf is the modeled behaviour
            return x.astype(np.float16).astype(np.float64)
    if precision == Precision.TF32:
        return truncate_mantissa(x.astype(np.float32), 11).astype(np.float64)
    if precision == Precision.BF16_32:
        return truncate_mantissa(x.astype(np.float32), 8).astype(np.float64)
    raise ValueError(f"unsupported precision {precision!r}")


def quantize_batch(tiles: "list[np.ndarray]", precision: Precision) -> "list[np.ndarray]":
    """Quantise many arrays through one vectorised :func:`quantize` pass.

    Equivalent to ``[quantize(t, precision) for t in tiles]`` but pays
    the dtype casts / mantissa bit-twiddling once over the concatenated
    payload instead of once per tile — the same batching trick that
    vectorised ``build_comm_precision_map``.  Shapes may be ragged; each
    output keeps its input's shape.  Used by the numeric executors to
    seed all version-0 tiles of one storage precision in a single call,
    and by :mod:`repro.tlr.compression` for low-rank factor pairs.
    """
    arrays = [np.asarray(t, dtype=np.float64) for t in tiles]
    if not arrays:
        return []
    if precision == Precision.FP64:
        return arrays
    flat = np.concatenate([a.ravel() for a in arrays])
    q = quantize(flat, precision)
    out: list[np.ndarray] = []
    offset = 0
    for a in arrays:
        out.append(q[offset : offset + a.size].reshape(a.shape))
        offset += a.size
    return out


def storage_dtype(precision: Precision) -> np.dtype:
    """NumPy dtype used to *hold* a tile at rest in ``precision``."""
    return FORMAT_INFO[precision].rest_dtype


def quantize_tile(tile: np.ndarray, precision: Precision) -> np.ndarray:
    """Quantise a tile for storage, keeping the rest dtype of the format.

    Unlike :func:`quantize` (which widens back to float64 for in-place
    numerics), this mimics the matrix-generation phase of Section V where
    tiles are written out directly in their storage precision.
    """
    if precision == Precision.FP64:
        return np.asarray(tile, dtype=np.float64)
    if precision in (Precision.FP32, Precision.FP16_32, Precision.TF32, Precision.BF16_32):
        return np.asarray(tile, dtype=np.float32)
    if precision == Precision.FP16:
        return np.asarray(tile, dtype=np.float16)
    raise ValueError(f"unsupported precision {precision!r}")
