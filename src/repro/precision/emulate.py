"""Software emulation of reduced-precision arithmetic on NumPy arrays.

We have no tensor cores in this reproduction, so the numerical behaviour
of each GPU precision format (Fig. 1's accuracy panel) is emulated on the
host in IEEE double precision:

* *quantisation* — rounding an FP64 array to the representable set of the
  target input format (FP32 and FP16 via native NumPy dtypes; TF32 and
  BF16 via round-to-nearest-even mantissa truncation of the FP32
  encoding);
* *accumulation* — matrix products are evaluated with an accumulator of
  the format's ``accum_bits``; pure FP16 uses chunked accumulation with
  partial sums re-rounded to FP16, reproducing the linear-in-k error
  growth (and eventual overflow at |x| > 65504) of genuine half-precision
  accumulation.

The emulation is deliberately value-faithful rather than bit-faithful:
tensor cores round slightly differently inside the 4×4 block FMA (Fasi et
al., 2021), but the error *scaling* — what the tile-selection rule and the
Monte Carlo accuracy study respond to — matches.
"""

from __future__ import annotations

import numpy as np

from .formats import FORMAT_INFO, Precision

__all__ = [
    "truncate_mantissa",
    "quantize",
    "quantize_tile",
    "storage_dtype",
]


def truncate_mantissa(x: np.ndarray, keep_bits: int) -> np.ndarray:
    """Round FP32 values to ``keep_bits`` significand bits (incl. implicit).

    Implements round-to-nearest-even on the binary32 encoding, which is
    how TF32 (11 bits) and BF16 (8 bits) inputs are produced from FP32
    registers on the GPU.  Returns a float32 array.
    """
    if keep_bits >= 24:
        return np.asarray(x, dtype=np.float32)
    x32 = np.ascontiguousarray(x, dtype=np.float32)
    bits = x32.view(np.uint32)
    drop = np.uint32(24 - keep_bits)
    one = np.uint32(1)
    # round-to-nearest-even: add half ulp (of the kept grid) plus the
    # tie-breaking bit taken from the lowest kept position
    lsb = (bits >> drop) & one
    round_bias = (one << (drop - one)) - one + lsb
    rounded = (bits + round_bias) >> drop << drop
    return rounded.view(np.float32).copy()


def quantize(x: np.ndarray, precision: Precision) -> np.ndarray:
    """Round ``x`` to the *input* format of ``precision``; returns float64.

    The result is returned widened back to float64 so downstream NumPy
    code keeps full-width arithmetic while the values live on the target
    format's grid.  FP16-family formats saturate to ±inf past 65504, like
    the hardware.
    """
    x = np.asarray(x, dtype=np.float64)
    if precision == Precision.FP64:
        return x
    if precision == Precision.FP32:
        return x.astype(np.float32).astype(np.float64)
    if precision in (Precision.FP16, Precision.FP16_32):
        with np.errstate(over="ignore"):  # saturation to ±inf is the modeled behaviour
            return x.astype(np.float16).astype(np.float64)
    if precision == Precision.TF32:
        return truncate_mantissa(x.astype(np.float32), 11).astype(np.float64)
    if precision == Precision.BF16_32:
        return truncate_mantissa(x.astype(np.float32), 8).astype(np.float64)
    raise ValueError(f"unsupported precision {precision!r}")


def storage_dtype(precision: Precision) -> np.dtype:
    """NumPy dtype used to *hold* a tile at rest in ``precision``."""
    return FORMAT_INFO[precision].rest_dtype


def quantize_tile(tile: np.ndarray, precision: Precision) -> np.ndarray:
    """Quantise a tile for storage, keeping the rest dtype of the format.

    Unlike :func:`quantize` (which widens back to float64 for in-place
    numerics), this mimics the matrix-generation phase of Section V where
    tiles are written out directly in their storage precision.
    """
    if precision == Precision.FP64:
        return np.asarray(tile, dtype=np.float64)
    if precision in (Precision.FP32, Precision.FP16_32, Precision.TF32, Precision.BF16_32):
        return np.asarray(tile, dtype=np.float32)
    if precision == Precision.FP16:
        return np.asarray(tile, dtype=np.float16)
    raise ValueError(f"unsupported precision {precision!r}")
