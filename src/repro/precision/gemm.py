"""Emulated mixed-precision GEMM (Section IV's benchmark kernel).

``mixed_gemm`` computes ``C = alpha * A @ B + beta * C`` under one of the
six precision formats of the paper's GEMM study.  Inputs are quantised to
the format's input grid, the product is accumulated at the format's
accumulator width, and the result is returned in float64 so callers can
measure accuracy against the FP64 reference (Fig. 1, top row).

For the pure-FP16 format, accumulation happens in half precision.  We
emulate the error growth of an fp16 accumulator by splitting the inner
dimension into chunks: within a chunk the product is formed exactly (this
matches tensor cores, which keep a wider intermediate inside the block
FMA), and the running sum is re-rounded to fp16 after every chunk.  The
chunk width (default 16) mirrors the effective block size after which
V100-era tensor cores round the accumulator.
"""

from __future__ import annotations

import numpy as np

from .emulate import quantize
from .formats import Precision

__all__ = ["mixed_gemm", "mixed_syrk", "gemm_relative_error"]

_FP16_CHUNK = 32


def _accumulate_fp16(a: np.ndarray, b: np.ndarray, chunk: int) -> np.ndarray:
    """Chunked fp16 accumulation of ``a @ b`` (both already on fp16 grid).

    Arithmetic runs in float32 (BLAS path — products of fp16-grid values
    are exact in fp32, and tensor cores keep a wide intermediate inside
    the block FMA); the running accumulator is re-rounded to the fp16
    grid after every ``chunk`` columns, reproducing half-precision
    accumulation error growth and saturation.
    """
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    k = a32.shape[1]
    acc = np.zeros((a32.shape[0], b32.shape[1]), dtype=np.float32)
    for start in range(0, k, chunk):
        stop = min(start + chunk, k)
        acc += a32[:, start:stop] @ b32[start:stop, :]
        acc = acc.astype(np.float16).astype(np.float32)
    return acc.astype(np.float64)


def mixed_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    precision: Precision = Precision.FP64,
    alpha: float = 1.0,
    beta: float = 0.0,
    fp16_chunk: int = _FP16_CHUNK,
) -> np.ndarray:
    """Emulated ``alpha * a @ b + beta * c`` in the given precision format.

    Parameters mirror BLAS xGEMM.  ``a`` is (m, k), ``b`` is (k, n) and the
    optional ``c`` is (m, n).  The result is float64 carrying the rounding
    error of the emulated format.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible GEMM shapes {a.shape} x {b.shape}")

    if precision == Precision.FP64:
        prod = a @ b
    elif precision == Precision.FP32:
        prod = (a.astype(np.float32) @ b.astype(np.float32)).astype(np.float64)
    elif precision in (Precision.TF32, Precision.FP16_32, Precision.BF16_32):
        aq = quantize(a, precision).astype(np.float32)
        bq = quantize(b, precision).astype(np.float32)
        prod = (aq @ bq).astype(np.float64)
    elif precision == Precision.FP16:
        aq = quantize(a, precision).astype(np.float16)
        bq = quantize(b, precision).astype(np.float16)
        prod = _accumulate_fp16(aq, bq, fp16_chunk)
    else:  # pragma: no cover - exhaustive over enum
        raise ValueError(f"unsupported precision {precision!r}")

    if c is None:
        if beta != 0.0:
            raise ValueError("beta != 0 requires c")
        out = alpha * prod
    else:
        c = np.asarray(c, dtype=np.float64)
        if c.shape != prod.shape:
            raise ValueError(f"c has shape {c.shape}, expected {prod.shape}")
        if precision == Precision.FP16:
            out = (
                (np.float16(alpha) * prod.astype(np.float16)).astype(np.float32)
                + (np.float16(beta) * c.astype(np.float16)).astype(np.float32)
            ).astype(np.float16).astype(np.float64)
        elif precision == Precision.FP64:
            out = alpha * prod + beta * c
        else:
            out = (
                np.float32(alpha) * prod.astype(np.float32)
                + np.float32(beta) * c.astype(np.float32)
            ).astype(np.float64)
    return out


def mixed_syrk(
    a: np.ndarray,
    c: np.ndarray,
    *,
    precision: Precision = Precision.FP64,
    alpha: float = -1.0,
    beta: float = 1.0,
) -> np.ndarray:
    """Emulated symmetric rank-k update ``alpha * a @ a.T + beta * c``.

    The diagonal SYRK of Algorithm 1 always runs in FP64, but the helper
    accepts any format for completeness and for the GEMM-equivalence
    property tests.
    """
    return mixed_gemm(a, np.asarray(a).T, c, precision=precision, alpha=alpha, beta=beta)


def gemm_relative_error(
    n: int,
    precision: Precision,
    *,
    rng: np.random.Generator | None = None,
    scale: float = 1.0,
) -> float:
    """Relative Frobenius error of an n×n emulated GEMM vs FP64 (Fig. 1).

    Random uniform inputs in [-scale, scale], matching the paper's
    "randomly initialized" benchmark data.
    """
    rng = rng or np.random.default_rng(0)
    a = rng.uniform(-scale, scale, size=(n, n))
    b = rng.uniform(-scale, scale, size=(n, n))
    ref = a @ b
    approx = mixed_gemm(a, b, precision=precision)
    denom = float(np.linalg.norm(ref))
    if denom == 0.0:
        return 0.0
    return float(np.linalg.norm(approx - ref)) / denom
