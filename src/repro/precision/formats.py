"""Floating-point precision formats used by the adaptive framework.

The paper (Section IV) considers the precision formats supported by Nvidia
V100/A100/H100 GPUs: FP64, FP32, TF32, FP16_32 (inputs in FP16, computation
and output in FP32), BF16_32 (inputs in BF16, computation and output in
FP32), and FP16 (everything in FP16).  The adaptive framework ultimately
incorporates FP64, FP32, FP16_32, and FP16 (BF16_32 is dropped because its
measured performance matches FP16_32 on the considered GPUs).

This module defines the :class:`Precision` lattice together with the
numerical metadata each format carries:

* ``unit_roundoff`` — the classical unit roundoff ``u`` of the arithmetic
  in which products are accumulated (2^-53 for FP64, 2^-24 for FP32, ...).
* ``rule_epsilon`` — the machine epsilon ``u_low`` plugged into the
  Higham–Mary tile-selection rule ``‖A_ij‖·NT/‖A‖ ≤ u_req/u_low``
  (Section V).  For the three-way input/compute formats (FP16_32,
  BF16_32) the paper determines this experimentally because the error
  bound lies between the input format's and the accumulator's; we use the
  geometric placement suggested by the block-FMA analysis of Blanchard
  et al. (2^-13 for FP16_32, 2^-11 for BF16_32).
* ``storage_bytes`` — bytes per element when a tile *in this communication
  precision* travels over a link (host↔device or network).  This is the
  quantity the automated conversion strategy (Section VI) minimises.
* ``input_bits`` / ``accum_bits`` — significand widths of the input and
  accumulation formats, used by the emulation layer.

The lattice is totally ordered for the purposes of
``get_higher_precision`` (Algorithm 2, line 19/25): FP64 > FP32 > TF32 >
FP16_32 > BF16_32 > FP16.  The relative order of TF32/FP16_32/BF16_32 is
immaterial to the paper's framework (only FP64, FP32, FP16_32, FP16 are
adaptively mixed) but a total order keeps the conversion algorithm simple
and deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Precision",
    "FormatInfo",
    "FORMAT_INFO",
    "ADAPTIVE_FORMATS",
    "get_higher_precision",
    "get_lower_precision",
    "get_storage_precision",
    "bytes_per_element",
    "rule_epsilon",
    "parse_precision",
]


class Precision(enum.IntEnum):
    """Floating-point formats, ordered from narrowest to widest.

    The integer value encodes the lattice rank so that ``max`` /
    ``min`` implement ``get_higher_precision`` / ``get_lower_precision``
    directly.
    """

    FP16 = 0
    BF16_32 = 1
    FP16_32 = 2
    TF32 = 3
    FP32 = 4
    FP64 = 5

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name

    @property
    def is_mixed_input(self) -> bool:
        """True when inputs are stored narrower than the accumulator."""
        return self in (Precision.FP16_32, Precision.BF16_32, Precision.TF32)


@dataclass(frozen=True)
class FormatInfo:
    """Numerical metadata for one :class:`Precision` format."""

    precision: Precision
    #: unit roundoff of the accumulation arithmetic
    unit_roundoff: float
    #: machine epsilon ``u_low`` used in the tile-selection rule
    rule_epsilon: float
    #: bytes per element on the wire / in storage for this format
    storage_bytes: int
    #: significand bits (incl. implicit bit) of the *input* format
    input_bits: int
    #: significand bits (incl. implicit bit) of the *accumulation* format
    accum_bits: int
    #: exponent bits of the input format (overflow behaviour of FP16)
    input_exponent_bits: int
    #: NumPy dtype that most closely matches the storage of a tile held
    #: at rest in this precision (FP16_32/TF32 tiles rest in FP32).
    rest_dtype: np.dtype

    @property
    def dynamic_range_max(self) -> float:
        """Largest finite value representable by the input format."""
        if self.input_exponent_bits == 5:  # IEEE half
            return 65504.0
        if self.input_exponent_bits == 8 and self.input_bits <= 24:
            return float(np.finfo(np.float32).max)
        return float(np.finfo(np.float64).max)


FORMAT_INFO: dict[Precision, FormatInfo] = {
    Precision.FP64: FormatInfo(
        Precision.FP64,
        unit_roundoff=2.0**-53,
        rule_epsilon=2.0**-53,
        storage_bytes=8,
        input_bits=53,
        accum_bits=53,
        input_exponent_bits=11,
        rest_dtype=np.dtype(np.float64),
    ),
    Precision.FP32: FormatInfo(
        Precision.FP32,
        unit_roundoff=2.0**-24,
        rule_epsilon=2.0**-24,
        storage_bytes=4,
        input_bits=24,
        accum_bits=24,
        input_exponent_bits=8,
        rest_dtype=np.dtype(np.float32),
    ),
    Precision.TF32: FormatInfo(
        Precision.TF32,
        unit_roundoff=2.0**-24,
        rule_epsilon=2.0**-11,
        storage_bytes=4,
        input_bits=11,
        accum_bits=24,
        input_exponent_bits=8,
        rest_dtype=np.dtype(np.float32),
    ),
    Precision.FP16_32: FormatInfo(
        Precision.FP16_32,
        unit_roundoff=2.0**-24,
        rule_epsilon=2.0**-13,
        storage_bytes=2,
        input_bits=11,
        accum_bits=24,
        input_exponent_bits=5,
        rest_dtype=np.dtype(np.float32),
    ),
    Precision.BF16_32: FormatInfo(
        Precision.BF16_32,
        unit_roundoff=2.0**-24,
        rule_epsilon=2.0**-11,
        storage_bytes=2,
        input_bits=8,
        accum_bits=24,
        input_exponent_bits=8,
        rest_dtype=np.dtype(np.float32),
    ),
    Precision.FP16: FormatInfo(
        Precision.FP16,
        unit_roundoff=2.0**-11,
        rule_epsilon=2.0**-11,
        storage_bytes=2,
        input_bits=11,
        accum_bits=11,
        input_exponent_bits=5,
        rest_dtype=np.dtype(np.float16),
    ),
}

#: The four formats incorporated into the adaptive framework (Section IV):
#: "we incorporate FP64, FP32, FP16_32, and FP16 into our
#: adaptive-precision framework".
ADAPTIVE_FORMATS: tuple[Precision, ...] = (
    Precision.FP64,
    Precision.FP32,
    Precision.FP16_32,
    Precision.FP16,
)


def get_higher_precision(a: Precision, b: Precision) -> Precision:
    """Return the wider of two formats (Algorithm 2 helper)."""
    return a if a >= b else b


def get_lower_precision(a: Precision, b: Precision) -> Precision:
    """Return the narrower of two formats."""
    return a if a <= b else b


def get_storage_precision(kernel_precision: Precision) -> Precision:
    """Storage precision of a tile given its kernel precision (Fig. 2b).

    Nvidia GPUs only support FP16_32/FP16 in the GEMM kernel; TRSM must run
    in at least FP32.  Tiles whose kernels run in FP16_32 or FP16 are
    therefore *stored* in FP32 from the matrix generation phase onward
    (Section V).  FP64 tiles are stored in FP64; everything else rests in
    FP32.
    """
    if kernel_precision == Precision.FP64:
        return Precision.FP64
    return Precision.FP32


def bytes_per_element(precision: Precision) -> int:
    """Bytes per matrix element when communicated in ``precision``."""
    return FORMAT_INFO[precision].storage_bytes


def rule_epsilon(precision: Precision) -> float:
    """Machine epsilon ``u_low`` of ``precision`` for the selection rule."""
    return FORMAT_INFO[precision].rule_epsilon


def parse_precision(name: str | Precision) -> Precision:
    """Parse a user-facing precision name (``"fp16_32"``, ``"FP64"``...)."""
    if isinstance(name, Precision):
        return name
    key = name.strip().upper().replace("-", "_")
    aliases = {
        "DOUBLE": "FP64",
        "SINGLE": "FP32",
        "HALF": "FP16",
        "FP16_FP32": "FP16_32",
        "BF16": "BF16_32",
    }
    key = aliases.get(key, key)
    try:
        return Precision[key]
    except KeyError as exc:
        valid = ", ".join(p.name for p in Precision)
        raise ValueError(f"unknown precision {name!r}; expected one of {valid}") from exc


def sort_by_width(formats: Iterable[Precision]) -> list[Precision]:
    """Sort formats from narrowest to widest."""
    return sorted(formats)


def validate_adaptive_set(formats: Sequence[Precision]) -> tuple[Precision, ...]:
    """Validate a user-supplied set of formats for the adaptive framework.

    FP64 must be present (diagonal POTRF/SYRK always run in FP64,
    Algorithm 1) and duplicates are removed while preserving lattice
    order from widest to narrowest, which is the order in which the
    precision-map construction probes candidate formats.
    """
    uniq = sorted(set(formats), reverse=True)
    if not uniq or uniq[0] != Precision.FP64:
        raise ValueError("the adaptive format set must contain FP64 (diagonal tiles)")
    return tuple(uniq)
