"""Dataset and result persistence.

ExaGeoStat reads/writes location+measurement files; downstream users of
this reproduction need the same plumbing to run the MLE on their own
data.  Formats:

* **CSV** — ``x,y[,z],value`` (header optional), the common exchange
  format for scattered spatial data;
* **NPZ** — lossless round-trip of a :class:`Dataset` including model
  identity, true parameters, and nugget.
"""

from __future__ import annotations

import csv
import json
import os

import numpy as np

from .covariance import MODEL_REGISTRY, get_model
from .generator import Dataset

__all__ = ["save_dataset_csv", "load_dataset_csv", "save_dataset_npz", "load_dataset_npz"]


def save_dataset_csv(dataset: Dataset, path: str) -> str:
    """Write ``x,y[,z],value`` rows with a header."""
    dim = dataset.locations.shape[1]
    headers = ["x", "y", "z"][:dim] + ["value"]
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for loc, val in zip(dataset.locations, dataset.z):
            writer.writerow([*(f"{c!r}" for c in loc.tolist()), repr(float(val))])
    return path


def load_dataset_csv(path: str, model_name: str, *, nugget: float = 0.0) -> Dataset:
    """Read a ``x,y[,z],value`` CSV into a :class:`Dataset`.

    ``model_name`` picks the covariance family (``2d-sqexp``,
    ``2d-matern``, ``3d-sqexp``); its dimension must match the file.
    """
    model = get_model(model_name)
    rows: list[list[float]] = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        for row in reader:
            if not row:
                continue
            try:
                rows.append([float(c) for c in row])
            except ValueError:
                continue  # header line
    if not rows:
        raise ValueError(f"no data rows in {path}")
    data = np.asarray(rows, dtype=np.float64)
    if data.shape[1] != model.dim + 1:
        raise ValueError(
            f"{path} has {data.shape[1]} columns; model {model.name} expects "
            f"{model.dim} coordinates + 1 value"
        )
    return Dataset(locations=data[:, :-1], z=data[:, -1], model=model, nugget=nugget)


def save_dataset_npz(dataset: Dataset, path: str) -> str:
    """Lossless round-trip including model identity and θ_true."""
    key = next(k for k, factory in MODEL_REGISTRY.items()
               if factory().name == dataset.model.name)
    meta = {
        "model": key,
        "theta_true": list(dataset.theta_true) if dataset.theta_true else None,
        "nugget": dataset.nugget,
    }
    np.savez(
        path,
        locations=dataset.locations,
        z=dataset.z,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )
    return path if path.endswith(".npz") else path + ".npz"


def load_dataset_npz(path: str) -> Dataset:
    """Inverse of :func:`save_dataset_npz`."""
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode())
        theta = meta.get("theta_true")
        return Dataset(
            locations=data["locations"],
            z=data["z"],
            model=get_model(meta["model"]),
            theta_true=tuple(theta) if theta else None,
            nugget=float(meta.get("nugget", 0.0)),
        )
