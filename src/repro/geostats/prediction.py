"""Kriging prediction at unobserved locations.

Once θ̂ is estimated, the GP model predicts measurements at new locations
(Section III-A: "the model can be utilized for predicting future
measurements with unknown values").  For observation set s with data z
and prediction set s*:

    μ* = Σ*ᵀ Σ⁻¹ z
    σ²* = diag(Σ**) − diag(Σ*ᵀ Σ⁻¹ Σ*)

The Σ⁻¹ applications reuse the mixed-precision Cholesky factor, so the
predictor inherits whatever precision configuration the fit used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.cholesky import mp_cholesky, solve_with_factor
from ..core.config import MPConfig
from ..core.conversion import build_comm_precision_map
from ..core.precision_map import build_precision_map
from ..tiles.norms import tile_norms
from .generator import Dataset, build_tiled_covariance

__all__ = ["KrigingResult", "krige"]


@dataclass
class KrigingResult:
    """Predictions at the requested locations."""

    mean: np.ndarray
    variance: np.ndarray
    theta: tuple[float, ...]

    @property
    def stddev(self) -> np.ndarray:
        return np.sqrt(np.maximum(self.variance, 0.0))


def krige(
    dataset: Dataset,
    new_locations: np.ndarray,
    theta: Sequence[float],
    *,
    config: MPConfig | None = None,
) -> KrigingResult:
    """Predict the field at ``new_locations`` under parameters ``theta``."""
    config = config or MPConfig()
    model = dataset.model
    theta_t = tuple(float(t) for t in theta)
    new_locations = np.asarray(new_locations, dtype=np.float64)
    if new_locations.ndim != 2 or new_locations.shape[1] != model.dim:
        raise ValueError(f"new_locations must be (m, {model.dim})")

    nb = min(config.tile_size, dataset.n)
    cov = build_tiled_covariance(
        dataset.locations, model, theta_t, nb, nugget=dataset.nugget
    )
    kmap = build_precision_map(tile_norms(cov), config.accuracy, config.formats)
    result = mp_cholesky(
        cov, kmap, strategy=config.strategy, comm_map=build_comm_precision_map(kmap),
        overwrite=True,
    )

    cross = model.cross_cov(dataset.locations, new_locations, theta_t)  # (n, m)
    alpha = solve_with_factor(result.factor, dataset.z)  # Σ⁻¹ z
    mean = cross.T @ alpha
    solved_cross = solve_with_factor(result.factor, cross)  # Σ⁻¹ Σ*
    prior_var = model.correlation(np.zeros(new_locations.shape[0]), np.asarray(theta_t))
    variance = prior_var - np.einsum("ij,ij->j", cross, solved_cross)
    return KrigingResult(mean=mean, variance=variance, theta=theta_t)
