"""Maximum likelihood estimation driver (the paper's application layer).

``fit_mle`` is the top-level entry point: it wires the covariance model,
the mixed-precision likelihood, and the bound-constrained optimizer into
the MLE loop of Section III-A.  Paper-faithful defaults: every parameter
bounded to [0.01, 2], the search started from the lower bounds, and an
optimisation tolerance of 1e-9.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..core.config import ConversionStrategy, MPConfig
from ..obs import emit_event, get_registry, span
from ..precision.formats import ADAPTIVE_FORMATS, Precision
from .generator import Dataset
from .likelihood import log_likelihood
from .optimizer import OptimizeResult, maximize_bounded

__all__ = ["MLEResult", "fit_mle", "default_tile_size"]


def default_tile_size(n: int) -> int:
    """Heuristic tile size for laptop-scale problems.

    The paper fixes nb = 2048 on its GPUs; at our Monte Carlo scale
    (hundreds to thousands of locations) we target ~8 tile rows so the
    precision map has structure to exploit, clamped to [32, 2048].
    """
    return int(min(2048, max(16, -(-n // 8))))


@dataclass
class MLEResult:
    """Outcome of one MLE fit."""

    theta_hat: tuple[float, ...]
    loglik: float
    n_evals: int
    converged: bool
    accuracy_label: str
    model_name: str
    optimizer: OptimizeResult

    def __iter__(self):
        return iter(self.theta_hat)


def fit_mle(
    dataset: Dataset,
    *,
    accuracy: float = 1e-9,
    exact: bool = False,
    tile_size: int | None = None,
    formats: tuple[Precision, ...] = ADAPTIVE_FORMATS,
    strategy: ConversionStrategy = ConversionStrategy.AUTO,
    x0: tuple[float, ...] | None = None,
    xtol: float = 1e-9,
    max_evals: int = 600,
    restarts: int = 2,
) -> MLEResult:
    """Fit θ̂ by maximising the mixed-precision log-likelihood.

    ``exact=True`` runs the full-FP64 reference ("exact computation" in
    Figs. 5/6); otherwise ``accuracy`` is the ``u_req`` of the adaptive
    framework.  ``x0`` defaults to the paper's lower-bound start.

    After the first Nelder–Mead run the simplex is re-seeded at the
    incumbent with a smaller radius up to ``restarts`` times while the
    objective keeps improving — the standard remedy for premature simplex
    collapse, giving robustness comparable to BOBYQA's trust-region
    restarts on these 2–3 parameter surfaces.
    """
    model = dataset.model
    nb = tile_size if tile_size is not None else default_tile_size(dataset.n)
    if exact:
        config = MPConfig(accuracy=1e-15, formats=(Precision.FP64,), tile_size=nb,
                          strategy=strategy)
        label = "exact"
    else:
        config = MPConfig(accuracy=accuracy, formats=formats, tile_size=nb, strategy=strategy)
        label = f"{accuracy:.0e}"

    bounds = model.bounds()
    if x0 is None:
        x0 = tuple(lo for lo, _hi in bounds)

    eval_timer = get_registry().timer("mle.eval_seconds", "log-likelihood evaluation time")
    eval_seconds = [0.0]
    eval_count = [0]

    def objective(theta: np.ndarray) -> float:
        t0 = time.perf_counter()
        val = log_likelihood(dataset, theta, config).value
        dt = time.perf_counter() - t0
        eval_seconds[0] += dt
        eval_count[0] += 1
        eval_timer.observe(dt, accuracy=label)
        return val if math.isfinite(val) else -math.inf

    # per-iteration telemetry: one structured record per simplex iteration
    # (theta, log-likelihood, cumulative evaluation cost) — the restart
    # sweeps share one monotonically increasing index
    iteration_index = [0]

    def on_iteration(_k: int, theta: np.ndarray, loglik: float) -> None:
        iteration_index[0] += 1
        emit_event(
            "mle.iteration",
            {
                "k": iteration_index[0],
                "theta": [float(v) for v in theta],
                "loglik": float(loglik),
                "n_evals": eval_count[0],
                "eval_seconds": eval_seconds[0],
            },
        )

    with span("mle.fit", model=model.name, n=dataset.n, accuracy=label) as fit_span:
        res = maximize_bounded(objective, x0, bounds, xtol=xtol, ftol=xtol,
                               max_evals=max_evals, on_iteration=on_iteration)
        total_evals = res.n_evals
        step = 0.05
        for _ in range(max(0, restarts)):
            again = maximize_bounded(
                objective,
                tuple(res.x),
                bounds,
                xtol=xtol,
                ftol=xtol,
                max_evals=max_evals,
                initial_step=step,
                on_iteration=on_iteration,
            )
            total_evals += again.n_evals
            improved = again.fun > res.fun + abs(res.fun) * 1e-12 + 1e-12
            if again.fun >= res.fun:
                res = again
            if not improved:
                break
            step *= 0.5
        res.n_evals = total_evals
        fit_span.set(
            theta_hat=[float(v) for v in res.x],
            loglik=float(res.fun),
            n_evals=total_evals,
            converged=res.converged,
        )
    return MLEResult(
        theta_hat=tuple(float(v) for v in res.x),
        loglik=res.fun,
        n_evals=total_evals,
        converged=res.converged,
        accuracy_label=label,
        model_name=model.name,
        optimizer=res,
    )
