"""Covariance functions of the paper's Gaussian-process models (Section III-A).

Two families, exactly as the paper defines them:

* **Squared exponential** (2D/3D-sqexp): ``C(h; θ) = σ² exp(−h²/β)`` with
  ``θ = (σ², β)``.  Note the paper's parameterisation divides the
  *squared* distance by β (not β²).
* **Matérn** (2D-Matérn):
  ``C(h; θ) = σ² (2^{1−ν}/Γ(ν)) (h/β)^ν K_ν(h/β)`` with
  ``θ = (σ², β, ν)``; ν=0.5 gives the rough exponential kernel, ν=1 a
  smoother field.

Each model knows its parameter names, bounds (the paper constrains all
parameters to [0.01, 2]), and paper-calibrated "weak/strong correlation"
presets (β = 0.03 / 0.3; ν = 0.5 rough, 1.0 smooth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
import scipy.special

from .locations import cross_distances, pairwise_distances

__all__ = [
    "CovarianceModel",
    "SquaredExponential",
    "Matern",
    "MODEL_REGISTRY",
    "get_model",
]

#: paper-wide optimisation bounds for every parameter (Section VII-B)
PARAM_LOWER = 0.01
PARAM_UPPER = 2.0


@dataclass(frozen=True)
class CovarianceModel:
    """Base covariance model: stationary, isotropic, zero mean."""

    dim: int

    @property
    def name(self) -> str:
        raise NotImplementedError

    @property
    def param_names(self) -> tuple[str, ...]:
        raise NotImplementedError

    @property
    def n_params(self) -> int:
        return len(self.param_names)

    def bounds(self) -> list[tuple[float, float]]:
        """Box bounds for MLE (paper: [0.01, 2] for every parameter)."""
        return [(PARAM_LOWER, PARAM_UPPER)] * self.n_params

    def validate_theta(self, theta: Sequence[float]) -> np.ndarray:
        theta = np.asarray(theta, dtype=np.float64)
        if theta.shape != (self.n_params,):
            raise ValueError(
                f"{self.name} expects θ of length {self.n_params} {self.param_names}, got {theta.shape}"
            )
        if np.any(theta <= 0.0):
            raise ValueError(f"{self.name} parameters must be positive, got {theta}")
        return theta

    # -- evaluation ---------------------------------------------------------
    def correlation(self, h: np.ndarray, theta: np.ndarray) -> np.ndarray:
        """Covariance as a function of distances ``h`` (vectorised)."""
        raise NotImplementedError

    def cov_matrix(self, locations: np.ndarray, theta: Sequence[float]) -> np.ndarray:
        """Dense covariance matrix Σ(θ) over one location set."""
        theta = self.validate_theta(theta)
        h = pairwise_distances(locations)
        return self.correlation(h, theta)

    def cross_cov(
        self, a: np.ndarray, b: np.ndarray, theta: Sequence[float]
    ) -> np.ndarray:
        """Cross-covariance between two location sets (kriging)."""
        theta = self.validate_theta(theta)
        return self.correlation(cross_distances(a, b), theta)

    def entry_oracle(
        self, locations: np.ndarray, theta: Sequence[float]
    ) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
        """Vectorised element oracle ``(rows, cols) → Σ_ij`` for sampled norms."""
        theta = self.validate_theta(theta)
        locs = np.asarray(locations, dtype=np.float64)

        def entry(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
            d = locs[np.asarray(rows)] - locs[np.asarray(cols)]
            h = np.sqrt(np.sum(d * d, axis=-1))
            return self.correlation(h, theta)

        return entry


@dataclass(frozen=True)
class SquaredExponential(CovarianceModel):
    """2D/3D squared exponential: ``σ² exp(−h²/β)``, θ = (σ², β)."""

    @property
    def name(self) -> str:
        return f"{self.dim}D-sqexp"

    @property
    def param_names(self) -> tuple[str, ...]:
        return ("variance", "range")

    def correlation(self, h: np.ndarray, theta: np.ndarray) -> np.ndarray:
        sigma2, beta = theta
        h = np.asarray(h, dtype=np.float64)
        return sigma2 * np.exp(-(h * h) / beta)

    @staticmethod
    def weak(dim: int = 2) -> tuple["SquaredExponential", tuple[float, float]]:
        """Paper's weak-correlation preset: θ = (1, 0.03)."""
        return SquaredExponential(dim=dim), (1.0, 0.03)

    @staticmethod
    def strong(dim: int = 2) -> tuple["SquaredExponential", tuple[float, float]]:
        """Paper's strong-correlation preset: θ = (1, 0.3)."""
        return SquaredExponential(dim=dim), (1.0, 0.3)


@dataclass(frozen=True)
class Matern(CovarianceModel):
    """2D Matérn: ``σ² (2^{1−ν}/Γ(ν)) (h/β)^ν K_ν(h/β)``, θ = (σ², β, ν)."""

    @property
    def name(self) -> str:
        return f"{self.dim}D-Matern"

    @property
    def param_names(self) -> tuple[str, ...]:
        return ("variance", "range", "smoothness")

    def correlation(self, h: np.ndarray, theta: np.ndarray) -> np.ndarray:
        sigma2, beta, nu = theta
        h = np.asarray(h, dtype=np.float64)
        scaled = h / beta
        out = np.empty_like(scaled)
        zero = scaled <= 0.0
        out[zero] = sigma2
        s = scaled[~zero]
        coeff = sigma2 * (2.0 ** (1.0 - nu)) / scipy.special.gamma(nu)
        vals = coeff * np.power(s, nu) * scipy.special.kv(nu, s)
        # K_ν underflows to 0 for huge arguments; the limit is 0, which is
        # exactly what the covariance should be there.
        out[~zero] = np.nan_to_num(vals, nan=0.0, posinf=0.0, neginf=0.0)
        return out

    @staticmethod
    def preset(
        correlation: str = "weak", smoothness: str = "rough"
    ) -> tuple["Matern", tuple[float, float, float]]:
        """Paper presets: β ∈ {0.03 weak, 0.3 strong}; ν ∈ {0.5 rough, 1 smooth}."""
        beta = {"weak": 0.03, "strong": 0.3}[correlation]
        nu = {"rough": 0.5, "smooth": 1.0}[smoothness]
        return Matern(dim=2), (1.0, beta, nu)


MODEL_REGISTRY: dict[str, Callable[[], CovarianceModel]] = {
    "2d-sqexp": lambda: SquaredExponential(dim=2),
    "3d-sqexp": lambda: SquaredExponential(dim=3),
    "2d-matern": lambda: Matern(dim=2),
}


def get_model(name: str) -> CovarianceModel:
    """Look up a covariance model by its paper name (case-insensitive)."""
    key = name.strip().lower().replace("_", "-").replace("matérn", "matern")
    if key not in MODEL_REGISTRY:
        raise ValueError(f"unknown model {name!r}; expected one of {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[key]()
