"""Monte Carlo parameter-estimation study (Figs. 5 and 6).

The paper generates 100 synthetic datasets per configuration, runs the
MLE on each at several accuracy levels (1e-1 … 1e-9 plus exact FP64),
and reports boxplots of the estimated parameters against the truth.
:func:`run_monte_carlo` reproduces the pipeline at a configurable scale;
:class:`MonteCarloStudy` aggregates the replica estimates into the
quartile summaries the boxplots encode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .generator import SyntheticField
from .mle import MLEResult, fit_mle

__all__ = ["ReplicaEstimate", "BoxStats", "MonteCarloStudy", "run_monte_carlo"]


@dataclass(frozen=True)
class ReplicaEstimate:
    """θ̂ for one replica at one accuracy level."""

    replica: int
    accuracy_label: str
    theta_hat: tuple[float, ...]
    loglik: float
    n_evals: int


@dataclass(frozen=True)
class BoxStats:
    """Boxplot statistics of one parameter at one accuracy level."""

    parameter: str
    accuracy_label: str
    median: float
    q1: float
    q3: float
    mean: float
    std: float
    n: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


@dataclass
class MonteCarloStudy:
    """All replica estimates of one (model, θ_true) configuration."""

    field_name: str
    theta_true: tuple[float, ...]
    param_names: tuple[str, ...]
    estimates: list[ReplicaEstimate] = field(default_factory=list)

    def accuracy_labels(self) -> list[str]:
        seen: list[str] = []
        for est in self.estimates:
            if est.accuracy_label not in seen:
                seen.append(est.accuracy_label)
        return seen

    def box_stats(self) -> list[BoxStats]:
        """Per-parameter, per-accuracy boxplot statistics (Fig. 5/6 data)."""
        out: list[BoxStats] = []
        for label in self.accuracy_labels():
            thetas = np.array(
                [e.theta_hat for e in self.estimates if e.accuracy_label == label]
            )
            for p, name in enumerate(self.param_names):
                vals = thetas[:, p]
                out.append(
                    BoxStats(
                        parameter=name,
                        accuracy_label=label,
                        median=float(np.median(vals)),
                        q1=float(np.percentile(vals, 25)),
                        q3=float(np.percentile(vals, 75)),
                        mean=float(np.mean(vals)),
                        std=float(np.std(vals)),
                        n=vals.shape[0],
                    )
                )
        return out

    def median_bias(self, accuracy_label: str) -> dict[str, float]:
        """|median(θ̂) − θ_true| per parameter at one accuracy level."""
        out: dict[str, float] = {}
        for stat in self.box_stats():
            if stat.accuracy_label == accuracy_label:
                idx = self.param_names.index(stat.parameter)
                out[stat.parameter] = abs(stat.median - self.theta_true[idx])
        return out

    def render(self) -> str:
        """Text rendering of the boxplot table."""
        lines = [
            f"{self.field_name}  θ_true={tuple(round(t, 4) for t in self.theta_true)}",
            f"{'param':<12}{'accuracy':<10}{'median':>10}{'q1':>10}{'q3':>10}{'mean':>10}{'std':>10}",
        ]
        for s in self.box_stats():
            lines.append(
                f"{s.parameter:<12}{s.accuracy_label:<10}{s.median:>10.4f}{s.q1:>10.4f}"
                f"{s.q3:>10.4f}{s.mean:>10.4f}{s.std:>10.4f}"
            )
        return "\n".join(lines)


def _fit_replica(payload: tuple) -> MLEResult:
    """Fit one (replica, accuracy) cell; module-level so pools can pickle it."""
    dataset, level, kwargs = payload
    if level == "exact":
        return fit_mle(dataset, exact=True, **kwargs)
    return fit_mle(dataset, accuracy=float(level), **kwargs)


def run_monte_carlo(
    synth: SyntheticField,
    accuracies: Sequence[float | str],
    *,
    replicas: int = 20,
    tile_size: int | None = None,
    max_evals: int = 400,
    xtol: float = 1e-7,
    restarts: int = 1,
    workers: int = 1,
) -> MonteCarloStudy:
    """Run the Fig. 5/6 pipeline for one field configuration.

    ``accuracies`` mixes floats (``u_req`` levels) and the string
    ``"exact"`` (full-FP64 reference).  The paper uses 100 replicas of
    40,000 locations; defaults here are scaled for commodity hardware and
    can be raised via arguments.

    ``workers > 1`` fans the (replica, accuracy) cells across the same
    process pool the sweep engine uses (:func:`repro.sweep.make_pool`);
    each fit is independent and deterministic, so the study is identical
    to the sequential one regardless of worker count or completion order.
    """
    study = MonteCarloStudy(
        field_name=synth.model.name,
        theta_true=tuple(synth.theta),
        param_names=synth.model.param_names,
    )
    datasets = synth.replicas(replicas)
    kwargs = dict(tile_size=tile_size, max_evals=max_evals, xtol=xtol, restarts=restarts)
    cells = [
        (level, r, dataset)
        for level in accuracies
        for r, dataset in enumerate(datasets)
    ]
    payloads = [(dataset, level, kwargs) for level, _r, dataset in cells]
    if workers > 1 and len(payloads) > 1:
        from ..sweep.pool import make_pool  # deferred: sweep sits above geostats

        with make_pool(min(workers, len(payloads))) as pool:
            fits = list(pool.map(_fit_replica, payloads))
    else:
        fits = [_fit_replica(p) for p in payloads]
    for (_level, r, _dataset), result in zip(cells, fits):
        study.estimates.append(
            ReplicaEstimate(
                replica=r,
                accuracy_label=result.accuracy_label,
                theta_hat=result.theta_hat,
                loglik=result.loglik,
                n_evals=result.n_evals,
            )
        )
    return study
