"""Monte Carlo parameter-estimation study (Figs. 5 and 6).

The paper generates 100 synthetic datasets per configuration, runs the
MLE on each at several accuracy levels (1e-1 … 1e-9 plus exact FP64),
and reports boxplots of the estimated parameters against the truth.
:func:`run_monte_carlo` reproduces the pipeline at a configurable scale;
:class:`MonteCarloStudy` aggregates the replica estimates into the
quartile summaries the boxplots encode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..faults import FaultInjector, FaultPlan, RetryPolicy
from ..obs import emit_event, get_registry
from .generator import SyntheticField
from .mle import MLEResult, fit_mle

__all__ = [
    "ReplicaEstimate",
    "ReplicaFailure",
    "BoxStats",
    "MonteCarloStudy",
    "run_monte_carlo",
]


@dataclass(frozen=True)
class ReplicaEstimate:
    """θ̂ for one replica at one accuracy level."""

    replica: int
    accuracy_label: str
    theta_hat: tuple[float, ...]
    loglik: float
    n_evals: int


@dataclass(frozen=True)
class ReplicaFailure:
    """One (replica, accuracy) cell whose fit exhausted its retries."""

    replica: int
    accuracy_label: str
    error: str
    attempts: int


@dataclass(frozen=True)
class BoxStats:
    """Boxplot statistics of one parameter at one accuracy level."""

    parameter: str
    accuracy_label: str
    median: float
    q1: float
    q3: float
    mean: float
    std: float
    n: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


@dataclass
class MonteCarloStudy:
    """All replica estimates of one (model, θ_true) configuration."""

    field_name: str
    theta_true: tuple[float, ...]
    param_names: tuple[str, ...]
    estimates: list[ReplicaEstimate] = field(default_factory=list)
    failures: list[ReplicaFailure] = field(default_factory=list)

    def accuracy_labels(self) -> list[str]:
        seen: list[str] = []
        for est in self.estimates:
            if est.accuracy_label not in seen:
                seen.append(est.accuracy_label)
        return seen

    def box_stats(self) -> list[BoxStats]:
        """Per-parameter, per-accuracy boxplot statistics (Fig. 5/6 data)."""
        out: list[BoxStats] = []
        for label in self.accuracy_labels():
            thetas = np.array(
                [e.theta_hat for e in self.estimates if e.accuracy_label == label]
            )
            for p, name in enumerate(self.param_names):
                vals = thetas[:, p]
                out.append(
                    BoxStats(
                        parameter=name,
                        accuracy_label=label,
                        median=float(np.median(vals)),
                        q1=float(np.percentile(vals, 25)),
                        q3=float(np.percentile(vals, 75)),
                        mean=float(np.mean(vals)),
                        std=float(np.std(vals)),
                        n=vals.shape[0],
                    )
                )
        return out

    def median_bias(self, accuracy_label: str) -> dict[str, float]:
        """|median(θ̂) − θ_true| per parameter at one accuracy level."""
        out: dict[str, float] = {}
        for stat in self.box_stats():
            if stat.accuracy_label == accuracy_label:
                idx = self.param_names.index(stat.parameter)
                out[stat.parameter] = abs(stat.median - self.theta_true[idx])
        return out

    def render(self) -> str:
        """Text rendering of the boxplot table."""
        lines = [
            f"{self.field_name}  θ_true={tuple(round(t, 4) for t in self.theta_true)}",
            f"{'param':<12}{'accuracy':<10}{'median':>10}{'q1':>10}{'q3':>10}{'mean':>10}{'std':>10}",
        ]
        for s in self.box_stats():
            lines.append(
                f"{s.parameter:<12}{s.accuracy_label:<10}{s.median:>10.4f}{s.q1:>10.4f}"
                f"{s.q3:>10.4f}{s.mean:>10.4f}{s.std:>10.4f}"
            )
        return "\n".join(lines)


def _fit_replica(payload: tuple) -> MLEResult:
    """Fit one (replica, accuracy) cell; module-level so pools can pickle it."""
    dataset, level, kwargs = payload
    if level == "exact":
        return fit_mle(dataset, exact=True, **kwargs)
    return fit_mle(dataset, accuracy=float(level), **kwargs)


def _fit_replica_resilient(payload: tuple) -> dict:
    """Fit one cell under retry + fault injection; never raises.

    Returns an envelope ``{ok, result, attempts, faults, error}`` so one
    crashed worker cannot sink the whole study (telemetry is re-counted
    by the parent from the envelope — see
    :func:`repro.sweep.engine._run_point` for the same pattern).
    """
    import time

    dataset, level, kwargs, cell_label, retry_dict, plan_dict = payload
    policy = (RetryPolicy.from_dict(retry_dict) if retry_dict
              else RetryPolicy(max_retries=0))
    injector = FaultInjector(plan_dict, use_metrics=False)
    attempts = 0
    fault_kinds: list[str] = []
    last_err: BaseException | None = None
    while attempts <= policy.max_retries:
        attempts += 1
        try:
            fault = injector.point_fault(cell_label)
            if fault is not None:
                fault_kinds.append(fault.kind)
                injector.raise_fault(fault, where=f"montecarlo:{cell_label}",
                                     attempt=attempts)
            result = _fit_replica((dataset, level, kwargs))
            return {"ok": True, "result": result, "attempts": attempts,
                    "faults": fault_kinds, "error": None}
        except Exception as exc:
            last_err = exc
            if attempts <= policy.max_retries:
                time.sleep(policy.delay(attempts))
    return {"ok": False, "result": None, "attempts": attempts,
            "faults": fault_kinds, "error": repr(last_err)}


def run_monte_carlo(
    synth: SyntheticField,
    accuracies: Sequence[float | str],
    *,
    replicas: int = 20,
    tile_size: int | None = None,
    max_evals: int = 400,
    xtol: float = 1e-7,
    restarts: int = 1,
    workers: int = 1,
    retry_policy: RetryPolicy | None = None,
    fault_plan: FaultPlan | dict | None = None,
) -> MonteCarloStudy:
    """Run the Fig. 5/6 pipeline for one field configuration.

    ``accuracies`` mixes floats (``u_req`` levels) and the string
    ``"exact"`` (full-FP64 reference).  The paper uses 100 replicas of
    40,000 locations; defaults here are scaled for commodity hardware and
    can be raised via arguments.

    ``workers > 1`` fans the (replica, accuracy) cells across the same
    process pool the sweep engine uses (:func:`repro.sweep.make_pool`);
    each fit is independent and deterministic, so the study is identical
    to the sequential one regardless of worker count or completion order.

    ``retry_policy`` re-fits a crashed (replica, accuracy) cell with
    backoff; a cell that exhausts its retries lands in
    ``study.failures`` instead of sinking the whole sweep.
    ``fault_plan`` injects scripted failures into cells whose
    ``"<label>:<replica>"`` identifier matches (see :mod:`repro.faults`).
    """
    if fault_plan is not None and not isinstance(fault_plan, FaultPlan):
        fault_plan = FaultPlan.from_dict(fault_plan)
    study = MonteCarloStudy(
        field_name=synth.model.name,
        theta_true=tuple(synth.theta),
        param_names=synth.model.param_names,
    )
    datasets = synth.replicas(replicas)
    kwargs = dict(tile_size=tile_size, max_evals=max_evals, xtol=xtol, restarts=restarts)
    cells = [
        (level, r, dataset)
        for level in accuracies
        for r, dataset in enumerate(datasets)
    ]
    retry_dict = retry_policy.to_dict() if retry_policy else None
    plan_dict = fault_plan.to_dict() if fault_plan else None

    def cell_label(level, r: int) -> str:
        # matches MLEResult.accuracy_label's format ("exact" / "1e-02")
        return (level if level == "exact" else f"{float(level):.0e}") + f":{r}"

    payloads = [
        (dataset, level, kwargs, cell_label(level, r), retry_dict, plan_dict)
        for level, r, dataset in cells
    ]
    if workers > 1 and len(payloads) > 1:
        from ..sweep.pool import make_pool  # deferred: sweep sits above geostats

        with make_pool(min(workers, len(payloads))) as pool:
            envelopes = list(pool.map(_fit_replica_resilient, payloads))
    else:
        envelopes = [_fit_replica_resilient(p) for p in payloads]

    registry = get_registry()
    for (level, r, _dataset), env in zip(cells, envelopes):
        registry.counter(
            "retry.attempts", "re-attempts performed by retry policies"
        ).inc(max(0, env["attempts"] - 1), op="montecarlo.replica")
        for kind in env["faults"]:
            registry.counter(
                "faults.injected", "faults fired from the active fault plan"
            ).inc(kind=kind)
        if env["ok"]:
            result: MLEResult = env["result"]
            study.estimates.append(
                ReplicaEstimate(
                    replica=r,
                    accuracy_label=result.accuracy_label,
                    theta_hat=result.theta_hat,
                    loglik=result.loglik,
                    n_evals=result.n_evals,
                )
            )
        else:
            registry.counter(
                "retry.gave_up", "calls that exhausted their retry policy"
            ).inc(op="montecarlo.replica")
            label = level if level == "exact" else f"{float(level):.0e}"
            study.failures.append(
                ReplicaFailure(
                    replica=r,
                    accuracy_label=label,
                    error=env["error"],
                    attempts=env["attempts"],
                )
            )
            emit_event("montecarlo.replica_failed",
                       {"replica": r, "accuracy": label,
                        "attempts": env["attempts"], "error": env["error"]})
    return study
