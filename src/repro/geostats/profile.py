"""Profile likelihood over the variance parameter.

For the zero-mean Gaussian likelihood, σ² enters Σ(θ) = σ²·R(φ) as a
scale factor (R is the correlation matrix of the remaining parameters
φ).  Maximising analytically over σ² gives the closed form

    σ̂²(φ) = zᵀ R(φ)⁻¹ z / n

and the *profile* log-likelihood

    ℓ_p(φ) = −(n/2)·(log 2π + 1 + log σ̂²(φ)) − ½·log|R(φ)|

so the numerical optimisation runs over one fewer dimension — the
standard trick in large-scale geostatistics software (ExaGeoStat uses
it for its Matérn fits).  The Cholesky of R runs through the same
adaptive mixed-precision path as the full likelihood.

Note the nugget caveat: with a fixed *absolute* nugget τ², Σ = σ²R + τ²I
is no longer a pure scale family, so profiling is exact only for
nugget-free models; ``fit_mle_profile`` refuses otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.cholesky import logdet_from_factor, mp_cholesky, solve_with_factor
from ..core.config import MPConfig
from ..core.conversion import build_comm_precision_map
from ..core.precision_map import build_precision_map
from ..precision.formats import ADAPTIVE_FORMATS, Precision
from ..tiles.kernels import NotPositiveDefiniteError
from ..tiles.norms import tile_norms
from .generator import Dataset, build_tiled_covariance
from .mle import MLEResult, default_tile_size
from .optimizer import maximize_bounded

__all__ = ["profile_log_likelihood", "fit_mle_profile"]


@dataclass
class _ProfileEval:
    value: float
    sigma2_hat: float


def profile_log_likelihood(
    dataset: Dataset,
    phi: tuple[float, ...],
    config: MPConfig,
) -> _ProfileEval:
    """ℓ_p(φ) with σ̂²(φ) maximised analytically.

    ``phi`` is θ without its leading variance entry (the package's models
    all put σ² first).
    """
    if dataset.nugget != 0.0:
        raise ValueError("profile likelihood requires a nugget-free model")
    n = dataset.n
    theta = (1.0, *phi)  # unit-variance correlation matrix R(φ)
    nb = min(config.tile_size, n)
    try:
        corr = build_tiled_covariance(dataset.locations, dataset.model, theta, nb)
    except (ValueError, FloatingPointError):
        return _ProfileEval(-math.inf, math.nan)
    kmap = build_precision_map(tile_norms(corr), config.accuracy, config.formats)
    try:
        result = mp_cholesky(
            corr, kmap, strategy=config.strategy,
            comm_map=build_comm_precision_map(kmap), overwrite=True,
        )
    except NotPositiveDefiniteError:
        return _ProfileEval(-math.inf, math.nan)
    logdet_r = logdet_from_factor(result.factor)
    if not math.isfinite(logdet_r):
        return _ProfileEval(-math.inf, math.nan)
    quad = float(dataset.z @ solve_with_factor(result.factor, dataset.z))
    if not math.isfinite(quad) or quad <= 0.0:
        return _ProfileEval(-math.inf, math.nan)
    sigma2 = quad / n
    value = -0.5 * n * (math.log(2.0 * math.pi) + 1.0 + math.log(sigma2)) - 0.5 * logdet_r
    return _ProfileEval(value, sigma2)


def fit_mle_profile(
    dataset: Dataset,
    *,
    accuracy: float = 1e-9,
    exact: bool = False,
    tile_size: int | None = None,
    formats: tuple[Precision, ...] = ADAPTIVE_FORMATS,
    xtol: float = 1e-9,
    max_evals: int = 400,
) -> MLEResult:
    """MLE with the variance profiled out (one fewer search dimension).

    Same contract as :func:`repro.geostats.mle.fit_mle`; typically needs
    ~2–3× fewer likelihood evaluations for the 3-parameter Matérn.  The
    profiled σ̂² is *not* box-constrained (the paper's [0.01, 2] box is
    applied to the searched parameters only).
    """
    model = dataset.model
    nb = tile_size if tile_size is not None else default_tile_size(dataset.n)
    if exact:
        config = MPConfig(accuracy=1e-15, formats=(Precision.FP64,), tile_size=nb)
        label = "exact"
    else:
        config = MPConfig(accuracy=accuracy, formats=formats, tile_size=nb)
        label = f"{accuracy:.0e}"

    bounds = model.bounds()[1:]  # drop the variance box
    if not bounds:
        raise ValueError("the model has no non-variance parameters to profile over")
    x0 = tuple(lo for lo, _hi in bounds)
    best_sigma2: dict[tuple, float] = {}

    def objective(phi: np.ndarray) -> float:
        ev = profile_log_likelihood(dataset, tuple(phi), config)
        if math.isfinite(ev.value):
            best_sigma2[tuple(np.round(phi, 12))] = ev.sigma2_hat
        return ev.value if math.isfinite(ev.value) else -math.inf

    res = maximize_bounded(objective, x0, bounds, xtol=xtol, ftol=xtol,
                           max_evals=max_evals)
    # recover σ̂² at the optimum
    final = profile_log_likelihood(dataset, tuple(res.x), config)
    theta_hat = (final.sigma2_hat, *(float(v) for v in res.x))
    return MLEResult(
        theta_hat=theta_hat,
        loglik=final.value,
        n_evals=res.n_evals + 1,
        converged=res.converged,
        accuracy_label=label,
        model_name=model.name,
        optimizer=res,
    )
