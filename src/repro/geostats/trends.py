"""Mean-trend handling for non-zero-mean fields.

The paper's GP model assumes a zero-mean stationary field (Section
III-A); real climate data has trends (latitudinal temperature gradients,
elevation effects).  The standard pipeline removes a polynomial trend by
ordinary least squares, fits the GP on residuals, and adds the trend
back at prediction time.  This module provides that wrapper so the
reproduction is usable on non-centred data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .generator import Dataset

__all__ = ["TrendModel", "detrend", "polynomial_design"]


def polynomial_design(locations: np.ndarray, degree: int) -> np.ndarray:
    """Design matrix of the polynomial trend basis up to ``degree``.

    Degree 0 → intercept; degree 1 → intercept + coordinates; degree 2
    adds squares and pairwise products.
    """
    locs = np.asarray(locations, dtype=np.float64)
    if locs.ndim != 2:
        raise ValueError("locations must be (n, dim)")
    if degree < 0 or degree > 2:
        raise ValueError("supported trend degrees: 0, 1, 2")
    n, dim = locs.shape
    cols = [np.ones(n)]
    if degree >= 1:
        cols.extend(locs[:, d] for d in range(dim))
    if degree >= 2:
        cols.extend(locs[:, d] ** 2 for d in range(dim))
        for a in range(dim):
            for b in range(a + 1, dim):
                cols.append(locs[:, a] * locs[:, b])
    return np.stack(cols, axis=1)


@dataclass
class TrendModel:
    """A fitted polynomial trend."""

    degree: int
    coefficients: np.ndarray

    def predict(self, locations: np.ndarray) -> np.ndarray:
        return polynomial_design(locations, self.degree) @ self.coefficients


def detrend(dataset: Dataset, degree: int = 1) -> tuple[Dataset, TrendModel]:
    """OLS-remove a polynomial trend; return the residual dataset + trend.

    The residual dataset keeps the model, θ_true (if any), and nugget of
    the original, so it plugs straight into :func:`repro.geostats.mle.fit_mle`.
    """
    x = polynomial_design(dataset.locations, degree)
    coef, *_ = np.linalg.lstsq(x, dataset.z, rcond=None)
    trend = TrendModel(degree=degree, coefficients=coef)
    residual = Dataset(
        locations=dataset.locations,
        z=dataset.z - x @ coef,
        model=dataset.model,
        theta_true=dataset.theta_true,
        nugget=dataset.nugget,
    )
    return residual, trend
