"""Hilbert-curve spatial ordering (Skilling's transpose algorithm).

Morton (Z-order) ordering — the repo's original default — takes long
jumps at quadrant boundaries, so consecutive indices are occasionally
far apart in space.  The Hilbert curve visits every grid cell so that
consecutive codes are always *adjacent* cells, which tightens the
spatial coherence of tile blocks and hence the band structure of the
covariance precision map (see docs/DATAPLANE.md).

The encode/decode pair implements John Skilling's transpose-based
algorithm ("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004),
vectorized over point sets with uint64 arithmetic.  ``hilbert_order``
sorts with a canonical coordinate tie-break so the result is a function
of the point *set*, not of the input permutation — the property the
bit-identical covariance regression test relies on.
"""

from __future__ import annotations

import numpy as np

from ..locations import morton_order, pairwise_distances

__all__ = [
    "ORDERINGS",
    "check_spatial_order",
    "hilbert_decode",
    "hilbert_encode",
    "hilbert_order",
    "nn_index_distance",
    "order_indices",
    "order_locations",
]

#: grid resolution per axis (matches ``locations._MORTON_BITS``)
HILBERT_BITS = 16

#: orderings understood by :func:`order_indices` (and the sweep axis)
ORDERINGS = ("morton", "random", "hilbert")

_ONE = np.uint64(1)


def _to_grid(locations: np.ndarray, bits: int) -> np.ndarray:
    """Scale float coordinates onto the 2^bits integer grid (per axis)."""
    locs = np.asarray(locations, dtype=np.float64)
    if locs.ndim != 2:
        raise ValueError("locations must be (n, dim)")
    lo = locs.min(axis=0)
    hi = locs.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    scale = (1 << bits) - 1
    return np.clip(((locs - lo) / span * scale).astype(np.uint64), 0, scale)


def hilbert_encode(grid: np.ndarray, bits: int = HILBERT_BITS) -> np.ndarray:
    """Hilbert index of each integer grid point (vectorized Skilling).

    ``grid`` is ``(n, dim)`` with entries in ``[0, 2**bits)``; the result
    is a uint64 array of ``dim*bits``-bit Hilbert indices.  Inverse of
    :func:`hilbert_decode` on the grid — a bijection.
    """
    x = np.array(grid, dtype=np.uint64, copy=True)
    if x.ndim != 2:
        raise ValueError("grid must be (n, dim)")
    n, dim = x.shape
    if dim * bits > 64:
        raise ValueError(f"dim*bits must fit in 64 bits, got {dim}*{bits}")
    if np.any(x >> np.uint64(bits)):
        raise ValueError(f"grid coordinates must be < 2**{bits}")
    # axes -> transpose form (in place on x)
    q = np.uint64(1 << (bits - 1))
    while q > _ONE:
        p = q - _ONE
        for i in range(dim):
            invert = (x[:, i] & q) != 0
            t = np.where(invert, np.uint64(0), (x[:, 0] ^ x[:, i]) & p)
            x[:, 0] ^= np.where(invert, p, t)
            x[:, i] ^= t
        q >>= _ONE
    # Gray encode
    for i in range(1, dim):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(n, dtype=np.uint64)
    q = np.uint64(1 << (bits - 1))
    while q > _ONE:
        t = np.where((x[:, dim - 1] & q) != 0, t ^ (q - _ONE), t)
        q >>= _ONE
    for i in range(dim):
        x[:, i] ^= t
    # interleave the transpose form into a single index: bit b of axis i
    # contributes to index bit b*dim + (dim-1-i)
    code = np.zeros(n, dtype=np.uint64)
    for b in range(bits):
        for i in range(dim):
            bit = (x[:, i] >> np.uint64(b)) & _ONE
            code |= bit << np.uint64(b * dim + (dim - 1 - i))
    return code


def hilbert_decode(code: np.ndarray, dim: int, bits: int = HILBERT_BITS) -> np.ndarray:
    """Grid coordinates of each Hilbert index — inverse of :func:`hilbert_encode`."""
    code = np.asarray(code, dtype=np.uint64)
    if code.ndim != 1:
        raise ValueError("code must be 1-D")
    if dim * bits > 64:
        raise ValueError(f"dim*bits must fit in 64 bits, got {dim}*{bits}")
    n = code.shape[0]
    # deinterleave into transpose form
    x = np.zeros((n, dim), dtype=np.uint64)
    for b in range(bits):
        for i in range(dim):
            bit = (code >> np.uint64(b * dim + (dim - 1 - i))) & _ONE
            x[:, i] |= bit << np.uint64(b)
    # Gray decode
    t = x[:, dim - 1] >> _ONE
    for i in range(dim - 1, 0, -1):
        x[:, i] ^= x[:, i - 1]
    x[:, 0] ^= t
    # undo excess work: transpose -> axes
    top = np.uint64(2 << (bits - 1))
    q = np.uint64(2)
    while q != top:
        p = q - _ONE
        for i in range(dim - 1, -1, -1):
            invert = (x[:, i] & q) != 0
            t = np.where(invert, np.uint64(0), (x[:, 0] ^ x[:, i]) & p)
            x[:, 0] ^= np.where(invert, p, t)
            x[:, i] ^= t
        q <<= _ONE
    return x


def hilbert_order(locations: np.ndarray, bits: int = HILBERT_BITS) -> np.ndarray:
    """Indices sorting locations along the Hilbert curve.

    Ties (points mapping to the same grid cell) break on raw coordinates
    so any permutation of the same point set sorts to the same sequence.
    """
    locs = np.asarray(locations, dtype=np.float64)
    grid = _to_grid(locs, bits)
    code = hilbert_encode(grid, bits)
    dim = locs.shape[1]
    keys = tuple(locs[:, d] for d in range(dim - 1, -1, -1)) + (code,)
    return np.lexsort(keys)


def order_indices(
    locations: np.ndarray,
    ordering: str,
    *,
    seed: int = 0,
) -> np.ndarray:
    """Permutation realising one of the supported orderings.

    ``morton`` and ``hilbert`` are deterministic space-filling sorts;
    ``random`` is a seeded shuffle (the experiment's control arm).
    """
    locs = np.asarray(locations, dtype=np.float64)
    if ordering == "morton":
        return morton_order(locs)
    if ordering == "hilbert":
        return hilbert_order(locs)
    if ordering == "random":
        rng = np.random.default_rng(seed)
        return rng.permutation(locs.shape[0])
    raise ValueError(f"unknown ordering {ordering!r}; expected one of {ORDERINGS}")


def order_locations(locations: np.ndarray, ordering: str, *, seed: int = 0) -> np.ndarray:
    """Locations reordered per ``ordering`` (values bit-preserved)."""
    locs = np.asarray(locations)
    return locs[order_indices(locs, ordering, seed=seed)]


def check_spatial_order(locations: np.ndarray, *, sample: int = 4096, seed: int = 0) -> float:
    """Spatial-locality score of an ordering: lower is better.

    Mean consecutive-pair distance divided by the mean distance of
    random pairs.  A random permutation scores ≈ 1.0; a space-filling
    sort scores ≪ 1 (consecutive points are near-neighbours).
    Deterministic for a given ``seed``.
    """
    locs = np.asarray(locations, dtype=np.float64)
    if locs.ndim != 2:
        raise ValueError("locations must be (n, dim)")
    n = locs.shape[0]
    if n < 2:
        return 0.0
    step = np.linalg.norm(np.diff(locs, axis=0), axis=1).mean()
    rng = np.random.default_rng(seed)
    k = min(sample, n * (n - 1) // 2)
    a = rng.integers(0, n, size=k)
    b = rng.integers(0, n, size=k)
    keep = a != b
    if not np.any(keep):
        return 0.0
    baseline = np.linalg.norm(locs[a[keep]] - locs[b[keep]], axis=1).mean()
    if baseline <= 0.0:
        return 0.0
    return float(step / baseline)


def nn_index_distance(locations: np.ndarray) -> float:
    """Mean |index gap| to each point's spatial nearest neighbour.

    The locality figure of merit for the property battery: after a
    space-filling sort, spatial neighbours sit at nearby indices, so the
    mean gap is small; after a random shuffle it is O(n).  O(n²) —
    intended for test-sized point sets.
    """
    locs = np.asarray(locations, dtype=np.float64)
    n = locs.shape[0]
    if n < 2:
        return 0.0
    d = pairwise_distances(locs)
    np.fill_diagonal(d, np.inf)
    nn = np.argmin(d, axis=1)
    return float(np.mean(np.abs(np.arange(n) - nn)))
