"""Columnar point-set format: Parquet when pyarrow exists, NPZ always.

The dataplane's on-disk unit is a :class:`PointSet` — coordinates,
measurements, a CRS-ish tag, and free-form metadata.  Two encodings
share one logical schema (``repro.pointset/1``):

* **Parquet** (GeoParquet-style: one column per coordinate axis plus a
  ``value`` column, schema metadata for the rest) when ``pyarrow`` is
  importable — interoperable with the wider columnar ecosystem;
* **NPZ** — a self-describing fallback with identical fidelity, so the
  test suite and CI never require optional dependencies.

Selection order: explicit ``format=`` argument, the
``REPRO_DATAPLANE_FORMAT`` environment variable, file extension, then
"parquet if available else npz".  Readers sniff actual file content, so
either side can read what the other wrote.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass, field, replace

import numpy as np

from ...obs import get_registry

__all__ = [
    "POINTSET_SCHEMA",
    "PointSet",
    "dataset_from_pointset",
    "parquet_available",
    "pointset_from_dataset",
    "read_pointset",
    "read_pointset_csv",
    "resolve_format",
    "stream_pointset",
    "synthesize_pointset",
    "write_pointset",
]

POINTSET_SCHEMA = "repro.pointset/1"

#: env var forcing an encoding regardless of what is installed
FORMAT_ENV = "REPRO_DATAPLANE_FORMAT"

_AXIS_NAMES = ("x", "y", "z")


def parquet_available() -> bool:
    """True when pyarrow is importable (never a hard dependency)."""
    try:
        import pyarrow  # noqa: F401
        import pyarrow.parquet  # noqa: F401
    except Exception:
        return False
    return True


def resolve_format(fmt: str | None = None, path: str | None = None) -> str:
    """Pick the encoding: argument > env var > extension > availability."""
    choice = fmt or os.environ.get(FORMAT_ENV)
    if not choice and path:
        if path.endswith(".parquet"):
            choice = "parquet"
        elif path.endswith(".npz"):
            choice = "npz"
    if not choice:
        choice = "parquet" if parquet_available() else "npz"
    choice = choice.lower()
    if choice not in ("parquet", "npz"):
        raise ValueError(f"unknown dataplane format {choice!r}; expected parquet or npz")
    if choice == "parquet" and not parquet_available():
        raise RuntimeError(
            "parquet format requested but pyarrow is not installed; "
            f"use format='npz' or unset {FORMAT_ENV}"
        )
    return choice


@dataclass
class PointSet:
    """A columnar point set: coordinates, measurements, metadata.

    ``coords`` keeps its floating dtype (float32 or float64) through
    round-trips; non-floating input is promoted to float64.  Non-finite
    coordinates or values are rejected — NaN/inf poison distance
    computations silently, so they fail loudly here at the boundary.

    ``rows`` (optional) carries each point's row index in a parent
    dataset — partition files use it so per-rank ingest can place
    streamed points into global block-row coordinates.
    """

    coords: np.ndarray
    values: np.ndarray
    crs: str = "unit-cube"
    meta: dict = field(default_factory=dict)
    rows: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.coords = _as_float(self.coords, "coords")
        self.values = _as_float(self.values, "values").ravel()
        if self.coords.ndim != 2:
            raise ValueError("coords must be (n, dim)")
        if self.coords.shape[0] != self.values.shape[0]:
            raise ValueError(
                f"{self.coords.shape[0]} coordinates but {self.values.shape[0]} values"
            )
        if not 1 <= self.coords.shape[1] <= 3:
            raise ValueError(f"dim must be 1..3, got {self.coords.shape[1]}")
        if self.rows is not None:
            self.rows = np.asarray(self.rows, dtype=np.int64).ravel()
            if self.rows.shape[0] != self.coords.shape[0]:
                raise ValueError("rows must have one entry per point")

    @property
    def n(self) -> int:
        return self.coords.shape[0]

    @property
    def dim(self) -> int:
        return self.coords.shape[1]

    def bbox(self) -> tuple[list[float], list[float]]:
        """(lo, hi) corner of the axis-aligned bounding box."""
        if self.n == 0:
            zeros = [0.0] * self.dim
            return zeros, zeros
        return (
            [float(v) for v in self.coords.min(axis=0)],
            [float(v) for v in self.coords.max(axis=0)],
        )

    def take(self, indices: np.ndarray) -> "PointSet":
        """Sub-/re-ordered point set (bit-identical gathers)."""
        idx = np.asarray(indices)
        return replace(
            self,
            coords=self.coords[idx],
            values=self.values[idx],
            meta=dict(self.meta),
            rows=None if self.rows is None else self.rows[idx],
        )


def _as_float(arr, name: str) -> np.ndarray:
    out = np.asarray(arr)
    if out.dtype not in (np.float32, np.float64):
        out = out.astype(np.float64)
    if out.size and not np.all(np.isfinite(out)):
        bad = int(np.sum(~np.isfinite(out)))
        raise ValueError(
            f"{name} contain {bad} non-finite entries (NaN/inf); "
            "dataplane point sets must be finite"
        )
    return out


def _meta_doc(ps: PointSet) -> dict:
    return {
        "schema": POINTSET_SCHEMA,
        "crs": ps.crs,
        "dim": ps.dim,
        "coord_dtype": str(ps.coords.dtype),
        "value_dtype": str(ps.values.dtype),
        "meta": ps.meta,
    }


# -- write ----------------------------------------------------------------


def write_pointset(path: str, ps: PointSet, *, format: str | None = None) -> str:
    """Write a point set; returns the path actually written."""
    fmt = resolve_format(format, path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    if fmt == "parquet":
        out = _write_parquet(path, ps)
    else:
        out = _write_npz(path, ps)
    get_registry().counter(
        "dataplane.points_written", "points written by the dataplane"
    ).inc(ps.n)
    return out


def _write_npz(path: str, ps: PointSet) -> str:
    if not path.endswith(".npz"):
        path = path + ".npz"
    arrays = {
        "coords": ps.coords,
        "values": ps.values,
        "meta": np.frombuffer(json.dumps(_meta_doc(ps)).encode(), dtype=np.uint8),
    }
    if ps.rows is not None:
        arrays["rows"] = ps.rows
    np.savez(path, **arrays)
    return path


def _write_parquet(path: str, ps: PointSet) -> str:
    import pyarrow as pa
    import pyarrow.parquet as pq

    if not path.endswith(".parquet"):
        path = path + ".parquet"
    cols = {_AXIS_NAMES[d]: ps.coords[:, d] for d in range(ps.dim)}
    cols["value"] = ps.values
    if ps.rows is not None:
        cols["row"] = ps.rows
    table = pa.table(cols)
    table = table.replace_schema_metadata(
        {b"repro.pointset": json.dumps(_meta_doc(ps)).encode()}
    )
    pq.write_table(table, path)
    return path


# -- read -----------------------------------------------------------------


def read_pointset(path: str) -> PointSet:
    """Read a point set written by :func:`write_pointset` (either encoding)."""
    path = _existing(path)
    if path.endswith(".parquet"):
        ps = _read_parquet(path)
    else:
        ps = _read_npz(path)
    get_registry().counter(
        "dataplane.points_read", "points read by the dataplane"
    ).inc(ps.n)
    return ps


def _existing(path: str) -> str:
    if os.path.exists(path):
        return path
    for ext in (".npz", ".parquet"):
        if os.path.exists(path + ext):
            return path + ext
    raise FileNotFoundError(f"no point set at {path} (.npz/.parquet tried)")


def _read_npz(path: str) -> PointSet:
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode())
        _check_schema(meta, path)
        return PointSet(
            coords=data["coords"],
            values=data["values"],
            crs=meta.get("crs", "unit-cube"),
            meta=meta.get("meta", {}),
            rows=data["rows"] if "rows" in data.files else None,
        )


def _read_parquet(path: str) -> PointSet:
    import pyarrow.parquet as pq

    table = pq.read_table(path)
    meta_raw = (table.schema.metadata or {}).get(b"repro.pointset")
    meta = json.loads(meta_raw.decode()) if meta_raw else {}
    if meta:
        _check_schema(meta, path)
    names = [n for n in _AXIS_NAMES if n in table.column_names]
    coord_dtype = np.dtype(meta.get("coord_dtype", "float64"))
    coords = np.stack(
        [table.column(n).to_numpy().astype(coord_dtype, copy=False) for n in names], axis=1
    )
    value_dtype = np.dtype(meta.get("value_dtype", "float64"))
    values = table.column("value").to_numpy().astype(value_dtype, copy=False)
    rows = table.column("row").to_numpy() if "row" in table.column_names else None
    return PointSet(
        coords=coords,
        values=values,
        crs=meta.get("crs", "unit-cube"),
        meta=meta.get("meta", {}),
        rows=rows,
    )


def _check_schema(meta: dict, path: str) -> None:
    schema = meta.get("schema")
    if schema != POINTSET_SCHEMA:
        raise ValueError(f"{path}: expected schema {POINTSET_SCHEMA}, found {schema!r}")


def stream_pointset(path: str, batch_size: int = 65536):
    """Yield a point set in row-order batches of at most ``batch_size``.

    The chunked reader behind per-rank ingest: callers see bounded
    memory per batch whichever encoding is on disk.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    path = _existing(path)
    if path.endswith(".parquet"):
        yield from _stream_parquet(path, batch_size)
        return
    ps = read_pointset(path)
    for start in range(0, max(ps.n, 1), batch_size):
        if start >= ps.n and ps.n > 0:
            break
        yield ps.take(np.arange(start, min(start + batch_size, ps.n)))
        if ps.n == 0:
            break


def _stream_parquet(path: str, batch_size: int):
    import pyarrow.parquet as pq

    pf = pq.ParquetFile(path)
    meta_raw = (pf.schema_arrow.metadata or {}).get(b"repro.pointset")
    meta = json.loads(meta_raw.decode()) if meta_raw else {}
    names = [n for n in _AXIS_NAMES if n in pf.schema_arrow.names]
    coord_dtype = np.dtype(meta.get("coord_dtype", "float64"))
    value_dtype = np.dtype(meta.get("value_dtype", "float64"))
    counter = get_registry().counter(
        "dataplane.points_read", "points read by the dataplane"
    )
    empty = True
    for batch in pf.iter_batches(batch_size=batch_size):
        empty = False
        coords = np.stack(
            [batch.column(n).to_numpy().astype(coord_dtype, copy=False) for n in names],
            axis=1,
        )
        values = batch.column("value").to_numpy().astype(value_dtype, copy=False)
        rows = (
            batch.column("row").to_numpy()
            if "row" in pf.schema_arrow.names
            else None
        )
        counter.inc(coords.shape[0])
        yield PointSet(
            coords=coords,
            values=values,
            crs=meta.get("crs", "unit-cube"),
            meta=meta.get("meta", {}),
            rows=rows,
        )
    if empty:
        yield read_pointset(path)


# -- CSV ingest -----------------------------------------------------------


def read_pointset_csv(path: str) -> PointSet:
    """Read ``x,y[,z],value`` rows (header optional) into a point set."""
    rows: list[list[float]] = []
    with open(path, newline="") as fh:
        for row in csv.reader(fh):
            if not row:
                continue
            try:
                rows.append([float(c) for c in row])
            except ValueError:
                continue  # header line
    if not rows:
        raise ValueError(f"no data rows in {path}")
    data = np.asarray(rows, dtype=np.float64)
    if data.shape[1] < 2:
        raise ValueError(f"{path}: need at least one coordinate column plus a value")
    ps = PointSet(coords=data[:, :-1], values=data[:, -1], meta={"source": path})
    get_registry().counter(
        "dataplane.points_read", "points read by the dataplane"
    ).inc(ps.n)
    return ps


# -- bridges --------------------------------------------------------------


def pointset_from_dataset(dataset) -> PointSet:
    """View a :class:`repro.geostats.Dataset` as a point set."""
    meta: dict = {}
    if dataset.theta_true is not None:
        meta["theta_true"] = list(dataset.theta_true)
    meta["model"] = dataset.model.name
    if dataset.nugget:
        meta["nugget"] = dataset.nugget
    return PointSet(coords=dataset.locations, values=dataset.z, meta=meta)


def dataset_from_pointset(ps: PointSet, model_name: str, *, nugget: float = 0.0):
    """Materialise a point set as a :class:`repro.geostats.Dataset`."""
    from ..covariance import get_model
    from ..generator import Dataset

    theta = ps.meta.get("theta_true")
    return Dataset(
        locations=ps.coords,
        z=ps.values,
        model=get_model(model_name),
        theta_true=tuple(theta) if theta else None,
        nugget=nugget or float(ps.meta.get("nugget", 0.0)),
    )


def synthesize_pointset(
    n: int,
    dim: int = 2,
    *,
    seed: int = 0,
    jitter: float = 0.4,
) -> PointSet:
    """Synthetic unordered point set (perturbed grid + iid N(0,1) values).

    The coordinates come from the repo's ExaGeoStat-style generator with
    ``sort=False`` — deliberately *unordered*, so the reorder step has
    something to do.  Measurement values are iid placeholders; use
    :class:`repro.geostats.SyntheticField` when correlated replicas are
    needed.
    """
    from ..locations import generate_locations

    coords = generate_locations(n, dim, seed=seed, jitter=jitter, sort=False)
    rng = np.random.default_rng(seed + 17)
    values = rng.standard_normal(n)
    return PointSet(
        coords=coords,
        values=values,
        meta={"generator": "perturbed-grid", "seed": seed, "jitter": jitter},
    )
