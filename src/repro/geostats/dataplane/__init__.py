"""Geospatial data plane: columnar ingest, Hilbert ordering, partitioned streaming.

The input side of the pipeline (docs/DATAPLANE.md): point sets on disk
(Parquet when pyarrow exists, self-describing NPZ always), Hilbert-curve
spatial ordering so tile blocks hold neighbouring locations, and spatial
partitioners whose manifests drive per-rank streaming ingest in the
distributed executor.
"""

from .format import (
    POINTSET_SCHEMA,
    PointSet,
    dataset_from_pointset,
    parquet_available,
    pointset_from_dataset,
    read_pointset,
    read_pointset_csv,
    resolve_format,
    stream_pointset,
    synthesize_pointset,
    write_pointset,
)
from .hilbert import (
    ORDERINGS,
    check_spatial_order,
    hilbert_decode,
    hilbert_encode,
    hilbert_order,
    nn_index_distance,
    order_indices,
    order_locations,
)
from .ingest import (
    RankIngest,
    ingest_tiled_covariance,
    load_row_blocks,
    permute_dataset,
    rank_partition_plan,
    reorder_dataset,
    reorder_pointset,
)
from .partition import (
    MANIFEST_SCHEMA,
    grid_partition,
    kdtree_partition,
    load_manifest,
    read_partition,
    validate_manifest,
    write_partitions,
)

__all__ = [
    "MANIFEST_SCHEMA",
    "ORDERINGS",
    "POINTSET_SCHEMA",
    "PointSet",
    "RankIngest",
    "check_spatial_order",
    "dataset_from_pointset",
    "grid_partition",
    "hilbert_decode",
    "hilbert_encode",
    "hilbert_order",
    "ingest_tiled_covariance",
    "kdtree_partition",
    "load_manifest",
    "load_row_blocks",
    "nn_index_distance",
    "order_indices",
    "order_locations",
    "parquet_available",
    "permute_dataset",
    "pointset_from_dataset",
    "rank_partition_plan",
    "read_partition",
    "read_pointset",
    "read_pointset_csv",
    "reorder_dataset",
    "reorder_pointset",
    "resolve_format",
    "stream_pointset",
    "synthesize_pointset",
    "validate_manifest",
    "write_partitions",
]
