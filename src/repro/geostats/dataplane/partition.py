"""Spatial partitioners and the ``repro.dataplane/1`` manifest.

A partitioned dataset is a directory of per-partition point-set files
plus ``manifest.json``.  Each partition file carries its points' global
row indices, so a consumer can reconstruct any row range without
reading the whole dataset — that is what lets the distributed executor
stream only the partitions whose rows intersect a rank's 2D
block-cyclic tile footprint (:mod:`repro.geostats.dataplane.ingest`).

Two partitioners:

* **kd-tree** — recursive median split on the widest axis until leaves
  hold ≤ ``max_points``; leaves are contiguous index ranges when the
  input is already space-filling ordered;
* **grid** — fixed cells, ``cells_per_dim`` per axis, emitted in
  Hilbert order of the cell coordinates so partition files themselves
  are spatially coherent.
"""

from __future__ import annotations

import json
import os

import numpy as np

from .format import PointSet, read_pointset, resolve_format, write_pointset
from .hilbert import hilbert_encode

__all__ = [
    "MANIFEST_SCHEMA",
    "grid_partition",
    "kdtree_partition",
    "load_manifest",
    "read_partition",
    "validate_manifest",
    "write_partitions",
]

MANIFEST_SCHEMA = "repro.dataplane/1"

MANIFEST_NAME = "manifest.json"


def kdtree_partition(coords: np.ndarray, max_points: int) -> list[np.ndarray]:
    """Recursive median split on the widest axis; leaves ≤ ``max_points``.

    Returns index arrays in in-order traversal, which is itself a
    coarse space-filling order.  Deterministic (median by argsort,
    stable).
    """
    locs = np.asarray(coords, dtype=np.float64)
    if locs.ndim != 2:
        raise ValueError("coords must be (n, dim)")
    if max_points <= 0:
        raise ValueError("max_points must be positive")
    out: list[np.ndarray] = []

    def split(idx: np.ndarray) -> None:
        if idx.size <= max_points:
            out.append(idx)
            return
        sub = locs[idx]
        axis = int(np.argmax(sub.max(axis=0) - sub.min(axis=0)))
        order = np.argsort(sub[:, axis], kind="stable")
        half = idx.size // 2
        split(idx[order[:half]])
        split(idx[order[half:]])

    split(np.arange(locs.shape[0]))
    return out


def grid_partition(coords: np.ndarray, cells_per_dim: int) -> list[np.ndarray]:
    """Fixed-cell binning; non-empty cells emitted in Hilbert cell order."""
    locs = np.asarray(coords, dtype=np.float64)
    if locs.ndim != 2:
        raise ValueError("coords must be (n, dim)")
    if cells_per_dim <= 0:
        raise ValueError("cells_per_dim must be positive")
    n, dim = locs.shape
    if n == 0:
        return []
    lo = locs.min(axis=0)
    hi = locs.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    cell = np.clip(
        ((locs - lo) / span * cells_per_dim).astype(np.int64), 0, cells_per_dim - 1
    )
    bits = max(1, int(cells_per_dim - 1).bit_length())
    code = hilbert_encode(cell.astype(np.uint64), bits)
    parts: list[np.ndarray] = []
    for c in np.unique(code):
        parts.append(np.nonzero(code == c)[0])
    return parts


def write_partitions(
    ps: PointSet,
    parts: list[np.ndarray],
    out_dir: str,
    *,
    scheme: str,
    ordering: str = "unknown",
    ordering_score: float | None = None,
    format: str | None = None,
) -> dict:
    """Write per-partition files plus ``manifest.json``; returns the manifest.

    Partition files carry global row indices, so the split is lossless
    whatever the index structure of each partition.
    """
    fmt = resolve_format(format)
    os.makedirs(out_dir, exist_ok=True)
    entries = []
    base_rows = ps.rows if ps.rows is not None else np.arange(ps.n, dtype=np.int64)
    for pid, idx in enumerate(parts):
        idx = np.asarray(idx)
        sub = ps.take(idx)
        sub.rows = base_rows[idx]
        name = f"part-{pid:05d}"
        written = write_pointset(os.path.join(out_dir, name), sub, format=fmt)
        row_min = int(sub.rows.min()) if sub.n else 0
        row_max = int(sub.rows.max()) if sub.n else -1
        lo, hi = sub.bbox()
        entries.append(
            {
                "id": pid,
                "path": os.path.basename(written),
                "n_points": int(sub.n),
                "row_min": row_min,
                "row_max": row_max,
                "contiguous": bool(sub.n == 0 or row_max - row_min + 1 == sub.n),
                "bbox": [lo, hi],
            }
        )
    lo, hi = ps.bbox()
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "n_points": int(ps.n),
        "dim": int(ps.dim),
        "format": fmt,
        "scheme": scheme,
        "ordering": ordering,
        "ordering_score": None if ordering_score is None else float(ordering_score),
        "crs": ps.crs,
        "coord_dtype": str(ps.coords.dtype),
        "bbox": [lo, hi],
        "partitions": entries,
    }
    with open(os.path.join(out_dir, MANIFEST_NAME), "w") as fh:
        json.dump(manifest, fh, indent=2)
    return manifest


def load_manifest(path: str) -> dict:
    """Load ``manifest.json`` from a partition directory (or direct path)."""
    if os.path.isdir(path):
        path = os.path.join(path, MANIFEST_NAME)
    with open(path) as fh:
        manifest = json.load(fh)
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {MANIFEST_SCHEMA}, found {manifest.get('schema')!r}"
        )
    return manifest


def validate_manifest(manifest: dict, base_dir: str | None = None) -> None:
    """Check internal consistency; raises ValueError on the first defect.

    Totals must reconcile: per-partition counts sum to ``n_points``, row
    ranges stay in bounds, and (when ``base_dir`` is given) each file
    exists and holds exactly the rows the manifest claims.
    """
    total = sum(p["n_points"] for p in manifest["partitions"])
    if total != manifest["n_points"]:
        raise ValueError(
            f"manifest reconciliation failed: partitions sum to {total}, "
            f"n_points says {manifest['n_points']}"
        )
    n = manifest["n_points"]
    for part in manifest["partitions"]:
        if part["n_points"] and not (0 <= part["row_min"] <= part["row_max"] < n):
            raise ValueError(
                f"partition {part['id']}: row range [{part['row_min']}, "
                f"{part['row_max']}] outside dataset of {n} rows"
            )
    if base_dir is None:
        return
    seen = np.zeros(n, dtype=bool)
    for part in manifest["partitions"]:
        ps = read_partition(base_dir, part)
        if ps.n != part["n_points"]:
            raise ValueError(
                f"partition {part['id']}: file holds {ps.n} points, "
                f"manifest says {part['n_points']}"
            )
        if ps.rows is None:
            raise ValueError(f"partition {part['id']}: file lacks row indices")
        if np.any(seen[ps.rows]):
            raise ValueError(f"partition {part['id']}: overlapping rows")
        seen[ps.rows] = True
    if not np.all(seen):
        missing = int(np.sum(~seen))
        raise ValueError(f"partitioning lost {missing} rows")


def read_partition(base_dir: str, part: dict) -> PointSet:
    """Read one manifest partition entry."""
    return read_pointset(os.path.join(base_dir, part["path"]))
