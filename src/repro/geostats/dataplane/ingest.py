"""Reordering and partition-driven ingest into the tiled pipeline.

Two consumers sit on top of the partitioned format:

* the **sequential** path (:func:`ingest_tiled_covariance`) streams a
  partition directory into a :class:`TiledSymmetricMatrix`, block of
  rows at a time — bit-identical to building from in-memory locations;
* the **distributed** path (:class:`RankIngest`) gives each rank a
  picklable recipe that reads *only* the partitions whose global row
  ranges intersect the rank's 2D block-cyclic tile footprint, then
  builds that rank's version-0 covariance tiles locally — the paper's
  per-rank ingest, where no process ever holds the full dataset.

Reordering helpers (:func:`reorder_pointset`, :func:`reorder_dataset`)
apply one permutation to coordinates *and* measurements together;
applying it to coordinates alone silently decorrelates z from its
locations, which is the bug class the covariance-consistency regression
test pins down.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

import numpy as np

from ...obs import get_registry
from ...tiles.distribution import ProcessGrid
from ...tiles.tilematrix import TiledSymmetricMatrix, tile_index_range
from ..covariance import get_model
from .format import PointSet, stream_pointset
from .hilbert import check_spatial_order, order_indices
from .partition import load_manifest

__all__ = [
    "RankIngest",
    "ingest_tiled_covariance",
    "load_row_blocks",
    "permute_dataset",
    "rank_partition_plan",
    "reorder_dataset",
    "reorder_pointset",
]


# -- reordering -----------------------------------------------------------


def reorder_pointset(
    ps: PointSet, ordering: str, *, seed: int = 0
) -> tuple[PointSet, np.ndarray, float]:
    """Reorder a point set; returns (reordered, permutation, locality score).

    Coordinates and values move together under one permutation and the
    gather is bit-preserving.  The score is published on the obs
    registry as ``dataplane.ordering_score``.
    """
    perm = order_indices(ps.coords, ordering, seed=seed)
    out = ps.take(perm)
    out.meta = {**ps.meta, "ordering": ordering}
    score = check_spatial_order(out.coords)
    get_registry().gauge(
        "dataplane.ordering_score", "consecutive/random pair distance ratio"
    ).set(score, ordering=ordering)
    return out, perm, score


def permute_dataset(dataset, perm: np.ndarray):
    """One permutation applied consistently to locations *and* z."""
    perm = np.asarray(perm)
    return replace(dataset, locations=dataset.locations[perm], z=dataset.z[perm])


def reorder_dataset(dataset, ordering: str, *, seed: int = 0):
    """Reorder a :class:`Dataset` spatially (observations follow)."""
    perm = order_indices(dataset.locations, ordering, seed=seed)
    return permute_dataset(dataset, perm)


# -- partition-driven block loading ---------------------------------------


def load_row_blocks(
    manifest_dir: str,
    ranges: dict[int, tuple[int, int]],
    *,
    manifest: dict | None = None,
    batch_size: int = 65536,
) -> dict[int, np.ndarray]:
    """Stream the partitions covering ``ranges`` into per-block coords.

    ``ranges`` maps a block id to its half-open global row range.  Only
    partition files whose manifest row span intersects a requested range
    are opened; each is read in bounded batches.  Raises if any
    requested row is absent from the partition set.
    """
    manifest = manifest or load_manifest(manifest_dir)
    dtype = np.dtype(manifest.get("coord_dtype", "float64"))
    blocks = {
        b: np.zeros((r1 - r0, manifest["dim"]), dtype=dtype)
        for b, (r0, r1) in ranges.items()
    }
    filled = {b: np.zeros(r1 - r0, dtype=bool) for b, (r0, r1) in ranges.items()}
    for part in manifest["partitions"]:
        if part["n_points"] == 0:
            continue
        if not any(
            part["row_min"] < r1 and part["row_max"] >= r0
            for r0, r1 in ranges.values()
        ):
            continue
        path = os.path.join(manifest_dir, part["path"])
        for batch in stream_pointset(path, batch_size):
            if batch.rows is None:
                raise ValueError(f"partition {part['id']} lacks row indices")
            for b, (r0, r1) in ranges.items():
                mask = (batch.rows >= r0) & (batch.rows < r1)
                if not np.any(mask):
                    continue
                local = batch.rows[mask] - r0
                blocks[b][local] = batch.coords[mask]
                filled[b][local] = True
    for b, flags in filled.items():
        if not np.all(flags):
            missing = int(np.sum(~flags))
            raise ValueError(
                f"block {b}: {missing} rows missing from partition set "
                f"(range {ranges[b]})"
            )
    return blocks


def rank_partition_plan(
    manifest: dict, grid: ProcessGrid, n: int, nb: int
) -> dict[int, list[int]]:
    """Partition ids each rank must read to seed its owned tiles.

    A rank's footprint is the union of block-row ranges over the i and j
    indices of its lower-triangle tiles; a partition is needed when its
    row span intersects that footprint.
    """
    nt = -(-n // nb)
    plan: dict[int, list[int]] = {}
    for rank in range(grid.size):
        blocks = sorted(
            {b for tile in grid.tiles_owned(rank, nt) for b in tile}
        )
        spans = [tile_index_range(n, nb, b) for b in blocks]
        ids = [
            part["id"]
            for part in manifest["partitions"]
            if part["n_points"]
            and any(part["row_min"] < r1 and part["row_max"] >= r0 for r0, r1 in spans)
        ]
        plan[rank] = ids
    return plan


# -- covariance assembly --------------------------------------------------


def _tile_from_blocks(
    coords_i: np.ndarray, coords_j: np.ndarray, model, theta_v, nugget: float, diag: bool
) -> np.ndarray:
    """Covariance tile from two coordinate blocks.

    Matches :func:`repro.geostats.generator.build_tiled_covariance`'s
    fill expression operation-for-operation, so streamed assembly is
    bit-identical to the in-memory path.
    """
    a = np.asarray(coords_i, dtype=np.float64)[:, None, :]
    b = np.asarray(coords_j, dtype=np.float64)[None, :, :]
    h = np.sqrt(np.sum((a - b) ** 2, axis=-1))
    tile = model.correlation(h, theta_v)
    if nugget > 0.0 and diag:
        tile = tile + nugget * np.eye(tile.shape[0])
    return tile


@dataclass(frozen=True)
class RankIngest:
    """Picklable per-rank ingest recipe for the distributed executor.

    Workers receive this instead of tile payloads: each rank streams the
    partitions its tiles need (see :func:`rank_partition_plan`) and
    evaluates the covariance kernel locally.  ``model`` is a registry
    key (``2d-sqexp``/``2d-matern``/``3d-sqexp``) so the object crosses
    process boundaries without pickling kernel closures.
    """

    manifest_dir: str
    model: str
    theta: tuple[float, ...]
    nb: int
    nugget: float = 0.0

    def build_tiles(
        self, tiles: list[tuple[int, int]], *, batch_size: int = 65536
    ) -> dict[tuple[int, int], np.ndarray]:
        """FP64 covariance tiles for ``tiles``, streaming only needed rows."""
        if not tiles:
            return {}
        manifest = load_manifest(self.manifest_dir)
        n = manifest["n_points"]
        model = get_model(self.model)
        theta_v = model.validate_theta(self.theta)
        blocks = sorted({b for tile in tiles for b in tile})
        ranges = {b: tile_index_range(n, self.nb, b) for b in blocks}
        coords = load_row_blocks(
            self.manifest_dir, ranges, manifest=manifest, batch_size=batch_size
        )
        return {
            (i, j): _tile_from_blocks(
                coords[i], coords[j], model, theta_v, self.nugget, i == j
            )
            for i, j in tiles
        }

    def matrix_n(self) -> int:
        """Total row count — the matrix order the manifest describes."""
        return int(load_manifest(self.manifest_dir)["n_points"])


def ingest_tiled_covariance(
    manifest_dir: str,
    model: str,
    theta,
    nb: int,
    *,
    nugget: float = 0.0,
    kernel_precision=None,
    batch_size: int = 65536,
) -> TiledSymmetricMatrix:
    """Assemble Σ(θ) from a partition directory, block-row streamed.

    The single-node mirror of :class:`RankIngest`: bit-identical to
    ``build_tiled_covariance`` on the same (ordered) locations, with
    coordinates streamed in block rows on demand (and cached — O(n·dim),
    negligible against the O(n²) matrix).
    """
    manifest = load_manifest(manifest_dir)
    n = manifest["n_points"]
    cov_model = get_model(model)
    theta_v = cov_model.validate_theta(tuple(theta))
    cache: dict[int, np.ndarray] = {}

    def block(b: int) -> np.ndarray:
        if b not in cache:
            cache[b] = load_row_blocks(
                manifest_dir,
                {b: tile_index_range(n, nb, b)},
                manifest=manifest,
                batch_size=batch_size,
            )[b]
        return cache[b]

    def fill(i: int, j: int) -> np.ndarray:
        return _tile_from_blocks(block(i), block(j), cov_model, theta_v, nugget, i == j)

    return TiledSymmetricMatrix.from_tile_function(
        n, nb, fill, kernel_precision=kernel_precision
    )
