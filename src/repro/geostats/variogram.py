"""Empirical variogram estimation and model fitting.

Standard geostatistical tooling that complements the MLE driver: the
empirical semivariogram ``γ(h) = ½·E[(Z(s) − Z(s+h))²]`` binned over
distance classes (Matheron's classical estimator), the theoretical
variograms of the package's covariance models (``γ(h) = C(0) − C(h)``),
and a weighted least-squares variogram fit — the cheap, moment-based
alternative practitioners use to seed or sanity-check likelihood fits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .covariance import CovarianceModel
from .generator import Dataset
from .locations import pairwise_distances
from .optimizer import nelder_mead_bounded

__all__ = ["EmpiricalVariogram", "empirical_variogram", "theoretical_variogram", "fit_variogram"]


@dataclass
class EmpiricalVariogram:
    """Binned semivariance estimates."""

    bin_centers: np.ndarray
    semivariance: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        self.bin_centers = np.asarray(self.bin_centers, dtype=np.float64)
        self.semivariance = np.asarray(self.semivariance, dtype=np.float64)
        self.counts = np.asarray(self.counts, dtype=np.int64)

    @property
    def n_bins(self) -> int:
        return self.bin_centers.shape[0]


def empirical_variogram(
    dataset: Dataset,
    *,
    n_bins: int = 15,
    max_distance: float | None = None,
) -> EmpiricalVariogram:
    """Matheron's classical semivariogram estimator over distance bins.

    ``max_distance`` defaults to half the maximum pairwise distance (the
    usual rule — long-lag bins carry few, highly correlated pairs).
    Empty bins are dropped.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be positive")
    d = pairwise_distances(dataset.locations)
    z = dataset.z
    iu = np.triu_indices(dataset.n, k=1)
    dist = d[iu]
    sq_diff = 0.5 * (z[iu[0]] - z[iu[1]]) ** 2
    if max_distance is None:
        max_distance = 0.5 * float(dist.max())
    mask = dist <= max_distance
    dist, sq_diff = dist[mask], sq_diff[mask]
    edges = np.linspace(0.0, max_distance, n_bins + 1)
    idx = np.clip(np.digitize(dist, edges) - 1, 0, n_bins - 1)
    centers, gammas, counts = [], [], []
    for b in range(n_bins):
        sel = idx == b
        c = int(np.sum(sel))
        if c == 0:
            continue
        centers.append(0.5 * (edges[b] + edges[b + 1]))
        gammas.append(float(np.mean(sq_diff[sel])))
        counts.append(c)
    return EmpiricalVariogram(
        bin_centers=np.array(centers),
        semivariance=np.array(gammas),
        counts=np.array(counts),
    )


def theoretical_variogram(
    model: CovarianceModel, theta, h: np.ndarray, *, nugget: float = 0.0
) -> np.ndarray:
    """``γ(h) = τ² + C(0) − C(h)`` for one of the package's models."""
    theta_v = model.validate_theta(theta)
    h = np.asarray(h, dtype=np.float64)
    c0 = model.correlation(np.zeros(1), theta_v)[0]
    gamma = c0 - model.correlation(h, theta_v)
    gamma = gamma + nugget * (h > 0)
    return gamma


def fit_variogram(
    dataset: Dataset,
    *,
    n_bins: int = 15,
    max_evals: int = 1500,
) -> tuple[np.ndarray, EmpiricalVariogram]:
    """Weighted least-squares variogram fit (Cressie's weights N(h)/γ̂²).

    Returns ``(theta_hat, empirical)``.  Far cheaper than MLE — a useful
    initial guess for :func:`repro.geostats.mle.fit_mle` and a classical
    baseline for the estimation study.
    """
    emp = empirical_variogram(dataset, n_bins=n_bins)
    model = dataset.model
    nugget = dataset.nugget

    def loss(theta: np.ndarray) -> float:
        try:
            gamma = theoretical_variogram(model, theta, emp.bin_centers, nugget=nugget)
        except ValueError:
            return float("inf")
        w = emp.counts / np.maximum(gamma, 1e-12) ** 2
        return float(np.sum(w * (emp.semivariance - gamma) ** 2))

    bounds = model.bounds()
    x0 = tuple(0.5 * (lo + hi) for lo, hi in bounds)
    res = nelder_mead_bounded(loss, x0, bounds, xtol=1e-8, max_evals=max_evals, restarts=2)
    return res.x, emp
