"""Gaussian log-likelihood through the mixed-precision Cholesky (Eq. 1).

    ℓ(θ) = −(n/2)·log 2π − (1/2)·log|Σ(θ)| − (1/2)·zᵀ Σ(θ)⁻¹ z

Each evaluation assembles Σ(θ) in tiled storage, plans the precision maps
for *this* θ (the tile norms change with the parameters, so the Fig. 2a
map is re-derived per evaluation, exactly as the adaptive framework
does), factors with Algorithm 1, and computes the log-determinant and
quadratic form from the factor.  A parameter vector whose covariance is
numerically indefinite yields ``-inf`` — the optimizer treats it as an
infeasible probe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.cholesky import logdet_from_factor, mp_cholesky, solve_with_factor
from ..core.config import MPConfig
from ..core.conversion import build_comm_precision_map
from ..core.precision_map import KernelPrecisionMap, build_precision_map
from ..tiles.kernels import NotPositiveDefiniteError
from ..tiles.norms import tile_norms
from .generator import Dataset, build_tiled_covariance

__all__ = ["LikelihoodEval", "log_likelihood"]


@dataclass
class LikelihoodEval:
    """One likelihood evaluation with its precision bookkeeping."""

    value: float
    logdet: float
    quadratic: float
    theta: tuple[float, ...]
    kernel_map: KernelPrecisionMap | None = None

    @property
    def feasible(self) -> bool:
        return math.isfinite(self.value)


def log_likelihood(
    dataset: Dataset,
    theta: Sequence[float],
    config: MPConfig,
    *,
    keep_map: bool = False,
) -> LikelihoodEval:
    """Evaluate ℓ(θ) for ``dataset`` under the mixed-precision config."""
    theta_t = tuple(float(t) for t in theta)
    n = dataset.n
    nb = min(config.tile_size, n)
    try:
        cov = build_tiled_covariance(
            dataset.locations, dataset.model, theta_t, nb, nugget=dataset.nugget
        )
    except (ValueError, FloatingPointError):
        return LikelihoodEval(-math.inf, math.nan, math.nan, theta_t)

    norms = tile_norms(cov)
    kmap = build_precision_map(norms, config.accuracy, config.formats)
    cmap = build_comm_precision_map(kmap)
    try:
        result = mp_cholesky(cov, kmap, strategy=config.strategy, comm_map=cmap, overwrite=True)
    except NotPositiveDefiniteError:
        return LikelihoodEval(-math.inf, math.nan, math.nan, theta_t,
                              kernel_map=kmap if keep_map else None)

    logdet = logdet_from_factor(result.factor)
    if not math.isfinite(logdet):
        return LikelihoodEval(-math.inf, logdet, math.nan, theta_t,
                              kernel_map=kmap if keep_map else None)
    x = solve_with_factor(result.factor, dataset.z)
    quad = float(dataset.z @ x)
    if not math.isfinite(quad) or quad < 0.0:
        # reduced-precision factors can, in principle, destroy positivity
        # of the quadratic form for near-singular θ; treat as infeasible
        return LikelihoodEval(-math.inf, logdet, quad, theta_t,
                              kernel_map=kmap if keep_map else None)
    value = -0.5 * n * math.log(2.0 * math.pi) - 0.5 * logdet - 0.5 * quad
    return LikelihoodEval(
        value=value,
        logdet=logdet,
        quadratic=quad,
        theta=theta_t,
        kernel_map=kmap if keep_map else None,
    )
