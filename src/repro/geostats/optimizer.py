"""Bound-constrained derivative-free optimizer (BOBYQA substitute).

The paper maximises the log-likelihood with NLOPT's BOBYQA under box
bounds [0.01, 2], tolerance 1e-9, always starting from the lower bounds
(Section VII-B).  NLOPT is unavailable offline, so this module implements
a self-contained bound-constrained Nelder–Mead simplex method with the
adaptive coefficients of Gao & Han (2012) and box handling by
projection.  For the smooth, low-dimensional (2–3 parameter) likelihood
surfaces of the study this is a reliable stand-in: the Monte Carlo
boxplots depend on the likelihood surface and the arithmetic precision,
not on the specific derivative-free engine (substitution recorded in
DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = ["OptimizeResult", "nelder_mead_bounded", "maximize_bounded"]


@dataclass
class OptimizeResult:
    """Outcome of one optimisation run."""

    x: np.ndarray
    fun: float
    n_evals: int
    n_iters: int
    converged: bool
    message: str = ""
    history: list[tuple[np.ndarray, float]] = field(default_factory=list)


def _project(x: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    return np.clip(x, lo, hi)


def nelder_mead_bounded(
    f: Callable[[np.ndarray], float],
    x0: Sequence[float],
    bounds: Sequence[tuple[float, float]],
    *,
    xtol: float = 1e-9,
    ftol: float = 1e-9,
    max_evals: int = 2000,
    initial_step: float = 0.25,
    keep_history: bool = False,
    restarts: int = 0,
    on_iteration: Callable[[int, np.ndarray, float], None] | None = None,
) -> OptimizeResult:
    """Minimise ``f`` over a box with a projected Nelder–Mead simplex.

    ``initial_step`` sizes the starting simplex as a fraction of each
    box edge.  Infinite function values (infeasible probes) are handled
    naturally — they rank worst and the simplex contracts away from them.
    ``restarts`` re-seeds a fresh (smaller) simplex at the incumbent
    after convergence and continues while that improves the objective —
    the standard defence against premature simplex collapse.

    ``on_iteration(k, x, fx)``, when given, is called once per simplex
    iteration with the 1-based iteration index and the current best
    vertex (``x`` is a copy; restarted runs keep their own counters).
    Exceptions raised by the callback propagate to the caller.
    """
    if restarts > 0:
        res = nelder_mead_bounded(
            f, x0, bounds, xtol=xtol, ftol=ftol, max_evals=max_evals,
            initial_step=initial_step, keep_history=keep_history, restarts=0,
            on_iteration=on_iteration,
        )
        total = res.n_evals
        step = initial_step / 4.0
        for _ in range(restarts):
            again = nelder_mead_bounded(
                f, tuple(res.x), bounds, xtol=xtol, ftol=ftol, max_evals=max_evals,
                initial_step=step, keep_history=keep_history, restarts=0,
                on_iteration=on_iteration,
            )
            total += again.n_evals
            improved = again.fun < res.fun - ftol * (1.0 + abs(res.fun))
            if again.fun <= res.fun:
                res.history = res.history + again.history
                again.history = res.history
                res = again
            if not improved:
                break
            step /= 2.0
        res.n_evals = total
        return res
    x0 = np.asarray(x0, dtype=np.float64)
    lo = np.array([b[0] for b in bounds], dtype=np.float64)
    hi = np.array([b[1] for b in bounds], dtype=np.float64)
    if np.any(lo >= hi):
        raise ValueError("each bound must satisfy lo < hi")
    ndim = x0.size
    if ndim != len(bounds):
        raise ValueError(f"x0 has {ndim} entries but {len(bounds)} bounds given")

    # adaptive coefficients (Gao & Han) — better for ndim > 2
    alpha = 1.0
    gamma = 1.0 + 2.0 / ndim
    rho = 0.75 - 1.0 / (2.0 * ndim)
    sigma = 1.0 - 1.0 / ndim

    n_evals = 0
    history: list[tuple[np.ndarray, float]] = []

    def feval(x: np.ndarray) -> float:
        nonlocal n_evals
        n_evals += 1
        val = float(f(x))
        if math.isnan(val):
            val = math.inf
        if keep_history:
            history.append((x.copy(), val))
        return val

    # initial simplex: x0 plus steps along each axis, folded back into the box
    simplex = [_project(x0, lo, hi)]
    for d in range(ndim):
        step = initial_step * (hi[d] - lo[d])
        cand = simplex[0].copy()
        if cand[d] + step <= hi[d]:
            cand[d] += step
        else:
            cand[d] -= step
        simplex.append(_project(cand, lo, hi))
    values = [feval(x) for x in simplex]

    n_iters = 0
    converged = False
    message = "max_evals reached"
    while n_evals < max_evals:
        n_iters += 1
        order = np.argsort(values, kind="stable")
        simplex = [simplex[i] for i in order]
        values = [values[i] for i in order]
        best, worst = values[0], values[-1]
        if on_iteration is not None:
            on_iteration(n_iters, simplex[0].copy(), values[0])

        # convergence: simplex collapsed in x and f
        spread_x = max(np.max(np.abs(simplex[i] - simplex[0])) for i in range(1, ndim + 1))
        finite = [v for v in values if math.isfinite(v)]
        spread_f = (max(finite) - min(finite)) if len(finite) > 1 else math.inf
        if spread_x <= xtol and spread_f <= ftol * (1.0 + abs(best)):
            converged = True
            message = "simplex converged"
            break

        centroid = np.mean(simplex[:-1], axis=0)
        reflected = _project(centroid + alpha * (centroid - simplex[-1]), lo, hi)
        f_r = feval(reflected)

        if f_r < values[0]:
            expanded = _project(centroid + gamma * (reflected - centroid), lo, hi)
            f_e = feval(expanded)
            if f_e < f_r:
                simplex[-1], values[-1] = expanded, f_e
            else:
                simplex[-1], values[-1] = reflected, f_r
        elif f_r < values[-2]:
            simplex[-1], values[-1] = reflected, f_r
        else:
            if f_r < worst:
                contract = _project(centroid + rho * (reflected - centroid), lo, hi)
            else:
                contract = _project(centroid - rho * (centroid - simplex[-1]), lo, hi)
            f_c = feval(contract)
            if f_c < min(f_r, worst):
                simplex[-1], values[-1] = contract, f_c
            else:  # shrink toward the best vertex
                for i in range(1, ndim + 1):
                    simplex[i] = _project(
                        simplex[0] + sigma * (simplex[i] - simplex[0]), lo, hi
                    )
                    values[i] = feval(simplex[i])

    order = np.argsort(values, kind="stable")
    best_x = simplex[order[0]]
    best_f = values[order[0]]
    return OptimizeResult(
        x=best_x,
        fun=best_f,
        n_evals=n_evals,
        n_iters=n_iters,
        converged=converged,
        message=message,
        history=history,
    )


def maximize_bounded(
    f: Callable[[np.ndarray], float],
    x0: Sequence[float],
    bounds: Sequence[tuple[float, float]],
    **kwargs,
) -> OptimizeResult:
    """Maximise ``f`` (the log-likelihood) over a box.

    An ``on_iteration`` callback receives the *maximisation* objective
    value (sign flipped back from the internal minimisation).
    """
    on_iteration = kwargs.pop("on_iteration", None)
    if on_iteration is not None:
        inner = on_iteration

        def on_iteration_neg(k: int, x: np.ndarray, fx: float) -> None:
            inner(k, x, -fx)

        kwargs["on_iteration"] = on_iteration_neg
    res = nelder_mead_bounded(lambda x: -f(x), x0, bounds, **kwargs)
    res.fun = -res.fun
    res.history = [(x, -v) for x, v in res.history]
    return res
