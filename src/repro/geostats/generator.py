"""Synthetic Gaussian random field generation and tiled covariance assembly.

``SyntheticField`` mirrors the paper's data-generation step: draw n
locations, build Σ(θ_true), factor it exactly (FP64), and synthesise
measurements ``z = L e`` with ``e ~ N(0, I)`` — the 100-replica datasets
of the Monte Carlo study are repeated :meth:`SyntheticField.sample` calls
with distinct seeds.

``build_tiled_covariance`` assembles Σ(θ) directly into tiled storage,
tile by tile through the covariance kernel, without materialising the
dense matrix first — the path every likelihood evaluation takes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..tiles.tilematrix import TiledSymmetricMatrix, tile_index_range
from .covariance import CovarianceModel, Matern, SquaredExponential
from .locations import generate_locations

__all__ = ["Dataset", "SyntheticField", "build_tiled_covariance"]


def _finite_float(arr, name: str) -> np.ndarray:
    """Floating array with NaN/inf rejected; float32/float64 preserved.

    A NaN coordinate silently poisons every distance involving its row;
    better to fail at construction with a message naming the field.
    """
    out = np.asarray(arr)
    if out.dtype not in (np.float32, np.float64):
        out = out.astype(np.float64)
    if out.size and not np.all(np.isfinite(out)):
        bad = int(np.sum(~np.isfinite(out)))
        raise ValueError(f"{name} contain {bad} non-finite entries (NaN/inf)")
    return out


@dataclass
class Dataset:
    """Observed (or synthetic) spatial data: locations plus measurements.

    ``nugget`` is a known measurement-error variance τ² added to the
    covariance diagonal in both generation and likelihood.  The paper's
    models are nugget-free, but its 2D/3D-sqexp configurations are
    numerically singular in FP64 at reproduction scale (the squared
    exponential kernel's spectrum decays super-exponentially), so the
    sqexp Monte Carlo studies run with a small fixed nugget — see
    DESIGN.md's substitution table.
    """

    locations: np.ndarray
    z: np.ndarray
    model: CovarianceModel
    theta_true: tuple[float, ...] | None = None
    nugget: float = 0.0

    def __post_init__(self) -> None:
        self.locations = _finite_float(self.locations, "locations")
        self.z = _finite_float(self.z, "measurements").ravel()
        if self.locations.ndim != 2:
            raise ValueError("locations must be (n, dim)")
        if self.locations.shape[0] != self.z.shape[0]:
            raise ValueError(
                f"{self.locations.shape[0]} locations but {self.z.shape[0]} measurements"
            )
        if self.locations.shape[1] != self.model.dim:
            raise ValueError(
                f"model {self.model.name} is {self.model.dim}D but locations are "
                f"{self.locations.shape[1]}D"
            )

    @property
    def n(self) -> int:
        return self.z.shape[0]


@dataclass
class SyntheticField:
    """A Gaussian random field with known parameters, ready to sample."""

    model: CovarianceModel
    theta: tuple[float, ...]
    n: int
    seed: int = 0
    nugget: float = 0.0
    _locations: np.ndarray | None = field(default=None, repr=False)
    _chol: np.ndarray | None = field(default=None, repr=False)

    # -- constructors -------------------------------------------------------
    @classmethod
    def sqexp_2d(
        cls,
        n: int,
        variance: float = 1.0,
        range_: float = 0.1,
        seed: int = 0,
        nugget: float = 0.0,
    ):
        return cls(SquaredExponential(dim=2), (variance, range_), n, seed, nugget)

    @classmethod
    def sqexp_3d(
        cls,
        n: int,
        variance: float = 1.0,
        range_: float = 0.1,
        seed: int = 0,
        nugget: float = 0.0,
    ):
        return cls(SquaredExponential(dim=3), (variance, range_), n, seed, nugget)

    @classmethod
    def matern_2d(
        cls,
        n: int,
        variance: float = 1.0,
        range_: float = 0.1,
        smoothness: float = 0.5,
        seed: int = 0,
        nugget: float = 0.0,
    ):
        return cls(Matern(dim=2), (variance, range_, smoothness), n, seed, nugget)

    # -- generation -----------------------------------------------------------
    @property
    def locations(self) -> np.ndarray:
        if self._locations is None:
            self._locations = generate_locations(self.n, self.model.dim, seed=self.seed)
        return self._locations

    def _factor(self) -> np.ndarray:
        if self._chol is None:
            cov = self.model.cov_matrix(self.locations, self.theta)
            # the nugget (if any) plus a tiny lift that guards against
            # numerically semidefinite strong-correlation matrices during
            # *generation* only
            cov[np.diag_indices_from(cov)] += self.nugget + 1e-10 * cov[0, 0]
            self._chol = np.linalg.cholesky(cov)
        return self._chol

    def sample(self, replica: int = 0) -> Dataset:
        """Draw one measurement vector ``z = L e`` (one Monte Carlo replica)."""
        rng = np.random.default_rng((self.seed + 1) * 1_000_003 + replica)
        e = rng.standard_normal(self.n)
        z = self._factor() @ e
        return Dataset(
            locations=self.locations,
            z=z,
            model=self.model,
            theta_true=tuple(self.theta),
            nugget=self.nugget,
        )

    def replicas(self, count: int) -> list[Dataset]:
        """``count`` independent replicas sharing the same locations."""
        return [self.sample(r) for r in range(count)]


def build_tiled_covariance(
    locations: np.ndarray,
    model: CovarianceModel,
    theta: Sequence[float],
    nb: int,
    *,
    kernel_precision=None,
    nugget: float = 0.0,
) -> TiledSymmetricMatrix:
    """Assemble Σ(θ) tile-by-tile into tiled mixed-precision storage.

    ``kernel_precision`` — optional ``(i, j) → Precision`` callable (the
    Fig. 2a map); when given, each tile is cast to its storage precision
    at generation time exactly as Section V describes.
    """
    locs = np.asarray(locations, dtype=np.float64)
    n = locs.shape[0]
    theta_v = model.validate_theta(theta)

    def fill(i: int, j: int) -> np.ndarray:
        ri = tile_index_range(n, nb, i)
        rj = tile_index_range(n, nb, j)
        a = locs[ri[0] : ri[1], None, :]
        b = locs[None, rj[0] : rj[1], :]
        h = np.sqrt(np.sum((a - b) ** 2, axis=-1))
        tile = model.correlation(h, theta_v)
        if nugget > 0.0 and i == j:
            tile = tile + nugget * np.eye(tile.shape[0])
        return tile

    return TiledSymmetricMatrix.from_tile_function(
        n, nb, fill, kernel_precision=kernel_precision
    )
