"""Geospatial statistics layer (ExaGeoStat-like application driver)."""

from . import dataplane
from .covariance import (
    CovarianceModel,
    Matern,
    SquaredExponential,
    get_model,
)
from .generator import Dataset, SyntheticField, build_tiled_covariance
from .io import load_dataset_csv, load_dataset_npz, save_dataset_csv, save_dataset_npz
from .likelihood import LikelihoodEval, log_likelihood
from .locations import cross_distances, generate_locations, morton_order, pairwise_distances
from .mle import MLEResult, default_tile_size, fit_mle
from .montecarlo import BoxStats, MonteCarloStudy, ReplicaEstimate, run_monte_carlo
from .optimizer import OptimizeResult, maximize_bounded, nelder_mead_bounded
from .prediction import KrigingResult, krige
from .profile import fit_mle_profile, profile_log_likelihood
from .trends import TrendModel, detrend, polynomial_design
from .variogram import (
    EmpiricalVariogram,
    empirical_variogram,
    fit_variogram,
    theoretical_variogram,
)

__all__ = [
    "BoxStats",
    "CovarianceModel",
    "Dataset",
    "EmpiricalVariogram",
    "KrigingResult",
    "LikelihoodEval",
    "Matern",
    "MLEResult",
    "MonteCarloStudy",
    "OptimizeResult",
    "ReplicaEstimate",
    "SquaredExponential",
    "SyntheticField",
    "build_tiled_covariance",
    "TrendModel",
    "cross_distances",
    "dataplane",
    "detrend",
    "default_tile_size",
    "empirical_variogram",
    "fit_mle",
    "fit_mle_profile",
    "fit_variogram",
    "generate_locations",
    "get_model",
    "krige",
    "load_dataset_csv",
    "load_dataset_npz",
    "log_likelihood",
    "maximize_bounded",
    "morton_order",
    "nelder_mead_bounded",
    "pairwise_distances",
    "polynomial_design",
    "profile_log_likelihood",
    "run_monte_carlo",
    "save_dataset_csv",
    "save_dataset_npz",
    "theoretical_variogram",
]
