"""Synthetic spatial location generation (ExaGeoStat-style).

The paper's Monte Carlo study uses synthetic 2D and 3D datasets that
"closely resemble real-world data encountered in climate and weather
applications".  Following ExaGeoStat's generator, we place n points on a
regular √n×√n (or cube-root) grid in the unit square/cube and perturb
each coordinate uniformly, producing an irregular but space-filling
design.

Locations are then sorted along a Morton (Z-order) space-filling curve.
This ordering is what gives the covariance matrix its tile structure:
consecutive indices are spatially close, so norms decay away from the
diagonal tile-by-tile — the property the tile-centric precision
selection exploits (Section V).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["generate_locations", "morton_order", "pairwise_distances", "cross_distances"]

_MORTON_BITS = 16


def _spread_bits(x: np.ndarray, dim: int) -> np.ndarray:
    """Interleave zeros between bits of x so dim values can be merged."""
    out = np.zeros_like(x, dtype=np.uint64)
    for bit in range(_MORTON_BITS):
        out |= ((x >> np.uint64(bit)) & np.uint64(1)) << np.uint64(dim * bit)
    return out


def morton_order(locations: np.ndarray) -> np.ndarray:
    """Indices sorting locations along a Z-order curve."""
    locs = np.asarray(locations, dtype=np.float64)
    if locs.ndim != 2:
        raise ValueError("locations must be (n, dim)")
    n, dim = locs.shape
    lo = locs.min(axis=0)
    hi = locs.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    scale = (1 << _MORTON_BITS) - 1
    grid = np.clip(((locs - lo) / span * scale).astype(np.uint64), 0, scale)
    code = np.zeros(n, dtype=np.uint64)
    for d in range(dim):
        code |= _spread_bits(grid[:, d], dim) << np.uint64(d)
    return np.argsort(code, kind="stable")


def generate_locations(
    n: int,
    dim: int = 2,
    *,
    seed: int | np.random.Generator | None = None,
    jitter: float = 0.4,
    sort: bool = True,
) -> np.ndarray:
    """Generate ``n`` irregular locations in the unit square/cube.

    Points sit on a perturbed regular grid: grid pitch ``1/m`` with each
    coordinate jittered by ``±jitter/m`` (ExaGeoStat uses a comparable
    scheme), clipped to [0, 1].  With ``sort=True`` (default) the points
    are returned in Morton order.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if dim not in (2, 3):
        raise ValueError("only 2D and 3D locations are supported")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    m = int(math.ceil(n ** (1.0 / dim)))
    axes = [np.arange(m, dtype=np.float64) for _ in range(dim)]
    mesh = np.meshgrid(*axes, indexing="ij")
    pts = np.stack([g.ravel() for g in mesh], axis=1)
    # random subset when the grid overshoots n
    if pts.shape[0] > n:
        idx = rng.choice(pts.shape[0], size=n, replace=False)
        pts = pts[idx]
    pts = (pts + 0.5) / m
    pts += rng.uniform(-jitter / m, jitter / m, size=pts.shape)
    np.clip(pts, 0.0, 1.0, out=pts)
    if sort:
        pts = pts[morton_order(pts)]
    return pts


def pairwise_distances(locations: np.ndarray) -> np.ndarray:
    """Dense n×n Euclidean distance matrix."""
    locs = np.asarray(locations, dtype=np.float64)
    diff = locs[:, None, :] - locs[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=-1))


def cross_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distances between two location sets: (len(a), len(b))."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=-1))
