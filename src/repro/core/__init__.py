"""The paper's core contribution: adaptive mixed-precision Cholesky with
automated precision conversion on (simulated) heterogeneous platforms."""

from .cholesky import CholeskyResult, logdet_from_factor, mp_cholesky, solve_with_factor
from .config import ConversionStrategy, MPConfig
from .conversion import (
    CommPrecisionMap,
    accumulator_encoding,
    build_comm_precision_map,
    input_encoding,
    needs_conversion,
    payload_encoding,
)
from .dag_cholesky import CholeskyDag, build_cholesky_dag, cholesky_task_count, stream_cholesky_tasks
from .dtd_cholesky import build_cholesky_dag_dtd
from .refinement import RefinementResult, refine_solve
from .precision_map import (
    KernelPrecisionMap,
    band_precision_map,
    build_precision_map,
    two_precision_map,
    uniform_map,
)
from .solver import (
    FactorizationPlan,
    MPCholeskySolver,
    default_stream_lookahead,
    replay_cholesky,
    simulate_cholesky,
)

__all__ = [
    "CholeskyDag",
    "CholeskyResult",
    "CommPrecisionMap",
    "ConversionStrategy",
    "FactorizationPlan",
    "KernelPrecisionMap",
    "MPCholeskySolver",
    "MPConfig",
    "RefinementResult",
    "accumulator_encoding",
    "band_precision_map",
    "build_cholesky_dag",
    "cholesky_task_count",
    "build_cholesky_dag_dtd",
    "build_comm_precision_map",
    "build_precision_map",
    "input_encoding",
    "logdet_from_factor",
    "mp_cholesky",
    "needs_conversion",
    "payload_encoding",
    "refine_solve",
    "default_stream_lookahead",
    "replay_cholesky",
    "simulate_cholesky",
    "stream_cholesky_tasks",
    "solve_with_factor",
    "two_precision_map",
    "uniform_map",
]
