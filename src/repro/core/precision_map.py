"""Tile-centric kernel-precision selection (Section V, Fig. 2a/2b, Fig. 7).

The covariance matrix of a stationary Gaussian field decays away from the
diagonal, so off-diagonal tiles can run their kernels in reduced
precision.  The selection rule of Higham & Mary, as deployed by the
paper:

    ‖A_ij‖_F · NT / ‖A‖_F  ≤  u_req / u_low

A tile may use a format with machine epsilon ``u_low`` whenever its share
of the global norm is below ``u_req/u_low``.  Diagonal tiles always use
FP64 (they hold the strongest correlations and feed POTRF/SYRK, which are
FP64-only in the framework).

:class:`KernelPrecisionMap` stores the per-tile selection, derives the
storage map of Fig. 2b (FP16-class tiles rest in FP32 because TRSM cannot
run below FP32), and computes the per-precision tile fractions reported
in Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..obs import emit_event, get_event_log
from ..precision.formats import (
    ADAPTIVE_FORMATS,
    Precision,
    get_storage_precision,
    rule_epsilon,
    validate_adaptive_set,
)
from ..tiles.norms import global_norm_from_tile_norms

__all__ = [
    "KernelPrecisionMap",
    "build_precision_map",
    "two_precision_map",
    "uniform_map",
    "band_precision_map",
]


@dataclass
class KernelPrecisionMap:
    """Per-tile kernel precision of an NT×NT tiled symmetric matrix."""

    nt: int
    #: int8 array of Precision values, full NT×NT (mirrored)
    codes: np.ndarray

    def __post_init__(self) -> None:
        self.codes = np.asarray(self.codes, dtype=np.int8)
        if self.codes.shape != (self.nt, self.nt):
            raise ValueError(f"expected a {self.nt}×{self.nt} map, got {self.codes.shape}")

    def kernel(self, i: int, j: int) -> Precision:
        """Kernel precision of the task operating on tile (i, j)."""
        return Precision(int(self.codes[i, j]))

    def storage(self, i: int, j: int) -> Precision:
        """Storage precision of tile (i, j) (Fig. 2b)."""
        return get_storage_precision(self.kernel(i, j))

    def __call__(self, i: int, j: int) -> Precision:
        return self.kernel(i, j)

    # -- statistics -------------------------------------------------------
    def tile_fractions(self, *, lower_only: bool = True) -> dict[Precision, float]:
        """Fraction of tiles per precision (the Fig. 7 percentages)."""
        if lower_only:
            idx = np.tril_indices(self.nt)
            vals = self.codes[idx]
        else:
            vals = self.codes.ravel()
        total = vals.size
        out: dict[Precision, float] = {}
        for prec in Precision:
            count = int(np.sum(vals == int(prec)))
            if count:
                out[prec] = count / total
        return out

    def count_below(self, threshold: Precision) -> int:
        """Lower-triangle tiles whose kernel precision is below ``threshold``.

        ``count_below(Precision.FP32)`` counts the FP16-class tiles —
        the "low precision" population the ordering experiments compare
        (spatially coherent orderings push more tiles under the
        Higham–Mary bound).
        """
        il, jl = np.tril_indices(self.nt)
        return int(np.sum(self.codes[il, jl] < int(threshold)))

    def fp64_band_width(self) -> int:
        """Width of the FP64 band: max |i − j| + 1 over FP64 tiles.

        For the banded maps spatial ordering produces, this is the
        number of tile diagonals pinned to FP64 (1 = diagonal only);
        random orderings degenerate to the full width NT.
        """
        fp64 = self.codes == int(Precision.FP64)
        i, j = np.nonzero(fp64)
        if i.size == 0:
            return 0
        return int(np.max(np.abs(i - j))) + 1

    def flop_weighted_fractions(self) -> dict[Precision, float]:
        """Fraction of trailing-update GEMM flops per precision.

        Each tile (i, j), j < i, receives j GEMM updates (iterations
        k = 0..j-1), so weighting by j approximates the share of the
        factorization's flops executed at each precision — the quantity
        that actually drives performance and energy.
        """
        il, jl = np.tril_indices(self.nt, k=-1)
        keep = jl > 0  # column j receives j GEMM updates; j = 0 receives none
        codes = self.codes[il[keep], jl[keep]].astype(np.int64)
        w = jl[keep].astype(np.float64)
        total = float(w.sum())
        if total == 0.0:
            return {Precision.FP64: 1.0}
        sums = np.bincount(codes, weights=w, minlength=len(Precision))
        return {
            Precision(int(c)): float(sums[c]) / total
            for c in sorted(np.nonzero(sums)[0], reverse=True)
        }

    def render(self) -> str:
        """ASCII heatmap of the kernel map (Fig. 2a / Fig. 7 style)."""
        glyph = {
            Precision.FP64: "D",
            Precision.FP32: "S",
            Precision.TF32: "T",
            Precision.FP16_32: "h",
            Precision.BF16_32: "b",
            Precision.FP16: ".",
        }
        lines = []
        for i in range(self.nt):
            row = [glyph[self.kernel(i, j)] for j in range(i + 1)]
            lines.append(" ".join(row))
        legend = "D=FP64 S=FP32 T=TF32 h=FP16_32 b=BF16_32 .=FP16"
        return "\n".join(lines) + f"\n[{legend}]"


def build_precision_map(
    tile_norms: np.ndarray,
    accuracy: float,
    formats: Sequence[Precision] = ADAPTIVE_FORMATS,
) -> KernelPrecisionMap:
    """Apply the Higham–Mary rule to a (mirrored) tile-norm array.

    For each off-diagonal tile the *narrowest* format whose
    ``u_req/u_low`` bound admits the tile's relative norm is selected;
    diagonal tiles are pinned to FP64.  FP64 always qualifies, so the
    selection is total.
    """
    tile_norms = np.asarray(tile_norms, dtype=np.float64)
    if tile_norms.ndim != 2 or tile_norms.shape[0] != tile_norms.shape[1]:
        raise ValueError("tile_norms must be a square NT×NT array")
    formats = validate_adaptive_set(formats)  # widest → narrowest
    nt = tile_norms.shape[0]
    global_norm = global_norm_from_tile_norms(tile_norms)
    if global_norm <= 0.0:
        codes = np.full((nt, nt), int(Precision.FP64), dtype=np.int8)
        return KernelPrecisionMap(nt=nt, codes=codes)
    rel = tile_norms * nt / global_norm
    # probe from narrowest to widest; the first qualifying format wins
    codes = np.full((nt, nt), -1, dtype=np.int8)
    bounds: dict[str, float] = {}
    for prec in sorted(formats):
        bound = accuracy / rule_epsilon(prec)
        bounds[prec.name] = bound
        qualify = rel <= bound
        codes[(codes == -1) & qualify] = int(prec)
    codes[codes == -1] = int(Precision.FP64)
    np.fill_diagonal(codes, int(Precision.FP64))
    kmap = KernelPrecisionMap(nt=nt, codes=codes)
    _emit_map_decision(kmap, accuracy, bounds, rel)
    return kmap


def _emit_map_decision(
    kmap: KernelPrecisionMap,
    accuracy: float,
    bounds: dict[str, float],
    rel: np.ndarray,
) -> None:
    """Structured decision log: which tile got which precision and why.

    The "why" is the Higham–Mary rule itself: a tile's relative norm
    share against each format's ``u_req/u_low`` bound.  Per-tile detail
    is only attached for small maps (NT ≤ 32) — at Fig. 7 scale the
    summary fractions carry the same information at 1/NT² the size.
    """
    if get_event_log() is None:  # keep the planning hot path free
        return
    attrs: dict[str, object] = {
        "nt": kmap.nt,
        "accuracy": accuracy,
        "rule_bounds": bounds,
        "fractions": {p.name: f for p, f in sorted(kmap.tile_fractions().items(), reverse=True)},
    }
    if kmap.nt <= 32:
        attrs["tiles"] = [
            {
                "tile": [i, j],
                "kernel": kmap.kernel(i, j).name,
                "storage": kmap.storage(i, j).name,
                "rel_norm": float(rel[i, j]),
            }
            for i in range(kmap.nt)
            for j in range(i + 1)
        ]
    emit_event("precision_map.built", attrs)


def two_precision_map(nt: int, low: Precision) -> KernelPrecisionMap:
    """Fig. 8's extreme map: FP64 on the diagonal, ``low`` everywhere else."""
    codes = np.full((nt, nt), int(low), dtype=np.int8)
    np.fill_diagonal(codes, int(Precision.FP64))
    return KernelPrecisionMap(nt=nt, codes=codes)


def uniform_map(nt: int, precision: Precision) -> KernelPrecisionMap:
    """Single-precision map (FP64 or FP32 baselines of Fig. 8/12).

    The diagonal stays FP64 — POTRF/SYRK are FP64-only in the framework —
    so ``uniform_map(nt, FP64)`` is the true FP64 baseline and
    ``uniform_map(nt, FP32)`` matches the paper's "FP32" configuration.
    """
    return two_precision_map(nt, precision)


def band_precision_map(
    nt: int,
    band_widths: Sequence[tuple[int, Precision]],
) -> KernelPrecisionMap:
    """Band-based assignment (the related-work baseline of [12], [13]).

    ``band_widths`` lists ``(max_distance_from_diagonal, precision)``
    pairs in increasing distance order; tiles beyond the last band get the
    last precision.  Used by the band-vs-norm ablation bench.
    """
    if not band_widths:
        raise ValueError("band_widths must not be empty")
    idx = np.arange(nt)
    distance = np.abs(idx[:, None] - idx[None, :])
    codes = np.full((nt, nt), int(band_widths[-1][1]), dtype=np.int8)
    for dist, prec in reversed(band_widths):
        codes[distance <= dist] = int(prec)
    np.fill_diagonal(codes, int(Precision.FP64))
    return KernelPrecisionMap(nt=nt, codes=codes)
