"""Adaptive mixed-precision tile Cholesky (Algorithm 1) — numeric path.

This is the sequential numerical reference of the factorization the
runtime executes as a DAG: identical arithmetic, identical conversion
semantics, no scheduling.  The Monte Carlo accuracy study (Figs. 5/6)
runs through this path.

Per iteration ``k`` (Algorithm 1):

* ``DPOTRF(k,k)`` factors the diagonal tile in FP64 and broadcasts the
  factor at the diagonal's communication precision;
* ``TRSM(m,k)`` solves each panel tile at its execution precision (FP32
  floor for FP16-class tiles) against the received diagonal payload and
  broadcasts the result at the panel tile's communication precision;
* ``DSYRK(m,k)`` updates the diagonal in FP64 from the received payload;
* ``GEMM(m,n,k)`` updates trailing tiles in their kernel precision from
  the received payloads.

The conversion strategy enters as *payload quantisation*: under TTC a
tile travels at its storage precision; under STC/AUTO it travels at the
Algorithm 2 communication precision.  Receivers re-quantise to their
kernel's input format, so STC and TTC are numerically near-identical (the
paper's "no unnecessary accuracy loss" invariant) while moving different
byte volumes — the property the tests assert and the simulator prices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..precision.emulate import quantize
from ..precision.formats import Precision
from ..tiles import kernels as tk
from ..tiles.tilematrix import TiledSymmetricMatrix
from .config import ConversionStrategy
from .conversion import CommPrecisionMap, build_comm_precision_map
from .precision_map import KernelPrecisionMap, uniform_map

__all__ = ["CholeskyResult", "mp_cholesky", "logdet_from_factor", "solve_with_factor"]


@dataclass
class CholeskyResult:
    """Factorization output plus the precision bookkeeping of the run."""

    factor: TiledSymmetricMatrix
    kernel_map: KernelPrecisionMap
    comm_map: CommPrecisionMap
    strategy: ConversionStrategy
    #: kernel invocation counts per (kind, precision)
    kernel_counts: dict[tuple[str, Precision], int] = field(default_factory=dict)

    def logdet(self) -> float:
        return logdet_from_factor(self.factor)


def mp_cholesky(
    mat: TiledSymmetricMatrix,
    kernel_map: KernelPrecisionMap | None = None,
    *,
    strategy: ConversionStrategy = ConversionStrategy.AUTO,
    comm_map: CommPrecisionMap | None = None,
    overwrite: bool = False,
) -> CholeskyResult:
    """Factor a tiled SPD matrix with adaptive mixed precision.

    ``kernel_map`` defaults to all-FP64 (the exact baseline).  Raises
    :class:`repro.tiles.kernels.NotPositiveDefiniteError` when a diagonal
    tile loses positive definiteness (the MLE driver catches this and
    reports ``-inf`` likelihood).
    """
    nt = mat.nt
    if kernel_map is None:
        kernel_map = uniform_map(nt, Precision.FP64)
    if kernel_map.nt != nt:
        raise ValueError(f"kernel map is {kernel_map.nt}×{kernel_map.nt}, matrix has NT={nt}")
    if comm_map is None:
        comm_map = build_comm_precision_map(kernel_map)

    work = mat if overwrite else mat.copy()
    # generation-phase cast (Section V): every tile rests at the storage
    # precision implied by its kernel precision before the factorization
    # starts, regardless of how the caller built the matrix.
    for i, j in work.lower_indices():
        work.set(i, j, work.get(i, j), precision=kernel_map.storage(i, j))
    counts: dict[tuple[str, Precision], int] = {}

    def bump(kind: str, precision: Precision) -> None:
        key = (kind, precision)
        counts[key] = counts.get(key, 0) + 1

    for k in range(nt):
        l_kk = tk.potrf(work.get(k, k))
        work.set(k, k, np.tril(l_kk), precision=Precision.FP64)
        bump("POTRF", Precision.FP64)

        if k == nt - 1:
            break

        # POTRF broadcast payload
        diag_payload = quantize(np.tril(l_kk), comm_map.payload(k, k, strategy))

        # panel solves
        for m in range(k + 1, nt):
            prec = kernel_map.kernel(m, k)
            solved = tk.trsm(diag_payload, work.get(m, k), precision=prec)
            work.set(m, k, solved)
            bump("TRSM", tk.trsm_execution_precision(prec))

        # panel broadcast payloads
        payloads: dict[int, np.ndarray] = {}
        for m in range(k + 1, nt):
            p = comm_map.payload(m, k, strategy)
            payloads[m] = quantize(work.get(m, k), p)

        # diagonal updates
        for m in range(k + 1, nt):
            updated = tk.syrk(payloads[m], work.get(m, m), precision=comm_map.payload(m, k, strategy))
            work.set(m, m, updated)
            bump("SYRK", Precision.FP64)

        # trailing updates
        for m in range(k + 2, nt):
            for n in range(k + 1, m):
                prec = kernel_map.kernel(m, n)
                updated = tk.gemm(payloads[m], payloads[n], work.get(m, n), precision=prec)
                work.set(m, n, updated)
                bump("GEMM", prec)

    return CholeskyResult(
        factor=work,
        kernel_map=kernel_map,
        comm_map=comm_map,
        strategy=strategy,
        kernel_counts=counts,
    )


def logdet_from_factor(factor: TiledSymmetricMatrix) -> float:
    """``log |Σ| = 2 Σ_i log L_ii`` from the tiled Cholesky factor."""
    total = 0.0
    for t in range(factor.nt):
        diag = np.diag(factor.get(t, t))
        if np.any(diag <= 0.0):
            return -math.inf
        total += float(np.sum(np.log(diag)))
    return 2.0 * total


def solve_with_factor(factor: TiledSymmetricMatrix, rhs: np.ndarray) -> np.ndarray:
    """Solve ``Σ x = rhs`` given the Cholesky factor ``L`` (FP64 path).

    The triangular solves are O(n²) — negligible next to the O(n³)
    factorization — so the paper (like ExaGeoStat) runs them in full
    precision; we materialise the lower factor and use two dense solves.
    """
    import scipy.linalg

    rhs = np.asarray(rhs, dtype=np.float64)
    lower = factor.lower_dense()
    y = scipy.linalg.solve_triangular(lower, rhs, lower=True)
    return scipy.linalg.solve_triangular(lower.T, y, lower=False)
