"""Algorithm 1 expressed through Dynamic Task Discovery.

The same adaptive mixed-precision Cholesky as
:mod:`repro.core.dag_cholesky`, but written the way a DTD user writes it:
four nested loops inserting tasks sequentially, with data accesses
declared per operand and dependencies *inferred* by the runtime.  The
discovered graph is identical to the PTG's (tested), which is the
paper's point about PaRSEC's interchangeable DSLs — and also why DTD's
sequential insertion becomes the scalability bottleneck the paper notes
("might encounter similar scalability issues as ... other distributed
task-insertion runtimes").
"""

from __future__ import annotations

from ..perfmodel.kernels import KernelKind, kernel_flops, kernel_flops_rect
from ..precision.formats import Precision
from ..runtime.dtd import AccessMode, DataAccess, DTDRuntime
from ..tiles.distribution import ProcessGrid
from ..tiles.kernels import trsm_execution_precision
from .config import ConversionStrategy
from .conversion import CommPrecisionMap, build_comm_precision_map, payload_encoding
from .dag_cholesky import CholeskyDag
from .precision_map import KernelPrecisionMap

__all__ = ["build_cholesky_dag_dtd"]

_KIND_RANK = {KernelKind.POTRF: 0, KernelKind.TRSM: 1, KernelKind.SYRK: 2, KernelKind.GEMM: 3}


def build_cholesky_dag_dtd(
    n: int,
    nb: int,
    kernel_map: KernelPrecisionMap,
    *,
    strategy: ConversionStrategy = ConversionStrategy.AUTO,
    grid: ProcessGrid | None = None,
    comm_map: CommPrecisionMap | None = None,
) -> CholeskyDag:
    """Insert Algorithm 1's tasks sequentially and discover the DAG."""
    nt = kernel_map.nt
    if nt != -(-n // nb):
        raise ValueError(f"kernel map NT={nt} inconsistent with n={n}, nb={nb}")
    if grid is None:
        grid = ProcessGrid(1, 1)
    if comm_map is None:
        comm_map = build_comm_precision_map(kernel_map)

    def edge(t: int) -> int:
        return min(n, (t + 1) * nb) - t * nb

    def elements(i: int, j: int) -> int:
        return edge(i) * edge(j)

    def payload(i: int, j: int) -> Precision:
        return comm_map.payload(i, j, strategy)

    def sender_conv(i: int, j: int):
        pay, sto = payload(i, j), comm_map.storage(i, j)
        if payload_encoding(pay) != payload_encoding(sto):
            return (sto, pay)
        return None

    def gemm_rest(i: int, j: int) -> Precision:
        """At-rest encoding of a trailing tile between its GEMM updates."""
        if kernel_map.kernel(i, j) == Precision.FP16:
            return Precision.FP16
        return comm_map.storage(i, j)

    rt = DTDRuntime(default_elements=nb * nb)

    for k in range(nt):
        rt.insert_task(
            KernelKind.POTRF,
            (k,),
            [DataAccess((k, k), AccessMode.INOUT, Precision.FP64, Precision.FP64,
                        elements(k, k))],
            rank=grid.owner(k, k),
            precision=Precision.FP64,
            flops=kernel_flops(KernelKind.POTRF, edge(k)),
            output_precision=Precision.FP64,
            sender_conversion=sender_conv(k, k) if k < nt - 1 else None,
            priority=k * 4 + _KIND_RANK[KernelKind.POTRF],
        )
        for m in range(k + 1, nt):
            # panel tile arrives from its last GEMM in its at-rest encoding
            c_rest = comm_map.storage(m, k) if k == 0 else gemm_rest(m, k)
            rt.insert_task(
                KernelKind.TRSM,
                (m, k),
                [
                    DataAccess((k, k), AccessMode.INPUT, payload(k, k),
                               Precision.FP64, elements(k, k)),
                    DataAccess((m, k), AccessMode.INOUT, c_rest, c_rest,
                               elements(m, k)),
                ],
                rank=grid.owner(m, k),
                precision=trsm_execution_precision(kernel_map.kernel(m, k)),
                flops=kernel_flops_rect(KernelKind.TRSM, edge(m), edge(k)),
                output_precision=comm_map.storage(m, k),
                sender_conversion=sender_conv(m, k),
                priority=k * 4 + _KIND_RANK[KernelKind.TRSM],
            )
        for m in range(k + 1, nt):
            rt.insert_task(
                KernelKind.SYRK,
                (m, k),
                [
                    DataAccess((m, k), AccessMode.INPUT, payload(m, k),
                               comm_map.storage(m, k), elements(m, k)),
                    DataAccess((m, m), AccessMode.INOUT, Precision.FP64,
                               Precision.FP64, elements(m, m)),
                ],
                rank=grid.owner(m, m),
                precision=Precision.FP64,
                flops=kernel_flops_rect(KernelKind.SYRK, edge(m), edge(k)),
                output_precision=Precision.FP64,
                priority=k * 4 + _KIND_RANK[KernelKind.SYRK],
            )
        for m in range(k + 2, nt):
            for nn in range(k + 1, m):
                prec = kernel_map.kernel(m, nn)
                rest = gemm_rest(m, nn)
                c_in_rest = comm_map.storage(m, nn) if k == 0 else rest
                rt.insert_task(
                    KernelKind.GEMM,
                    (m, nn, k),
                    [
                        DataAccess((m, k), AccessMode.INPUT, payload(m, k),
                                   comm_map.storage(m, k), elements(m, k)),
                        DataAccess((nn, k), AccessMode.INPUT, payload(nn, k),
                                   comm_map.storage(nn, k), elements(nn, k)),
                        DataAccess((m, nn), AccessMode.INOUT, c_in_rest, c_in_rest,
                                   elements(m, nn)),
                    ],
                    rank=grid.owner(m, nn),
                    precision=prec,
                    flops=kernel_flops_rect(KernelKind.GEMM, edge(m), edge(nn), edge(k)),
                    output_precision=rest,
                    priority=k * 4 + _KIND_RANK[KernelKind.GEMM],
                )

    graph = rt.finalize()
    return CholeskyDag(
        graph=graph, n=n, nb=nb, kernel_map=kernel_map, comm_map=comm_map,
        strategy=strategy, grid=grid,
    )
