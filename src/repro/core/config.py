"""Configuration of the adaptive mixed-precision framework."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..precision.formats import ADAPTIVE_FORMATS, Precision, validate_adaptive_set

__all__ = ["ConversionStrategy", "MPConfig"]


class ConversionStrategy(enum.Enum):
    """Where datatype conversion happens for each communication (Section VI).

    * ``TTC`` — receiver/target task conversion: the sender forwards data
      in the precision it generates (storage precision); every consuming
      task converts locally.  The baseline of [18], [38] and the lower
      bound of Fig. 8.
    * ``STC`` — sender/source task conversion: the sender down-casts once
      to the highest precision any successor needs, shrinking every
      transfer.  The upper bound of Fig. 8 (applicable to all
      communications only in the extreme two-precision configurations).
    * ``AUTO`` — the paper's automated strategy: per-communication choice,
      STC whenever all successors operate at lower precision than the
      sender's storage, TTC otherwise (Algorithm 2).
    """

    TTC = "ttc"
    STC = "stc"
    AUTO = "auto"


@dataclass(frozen=True)
class MPConfig:
    """Parameters of one adaptive mixed-precision factorization.

    Attributes
    ----------
    accuracy:
        The application-required accuracy ``u_req`` of the tile-selection
        rule ``‖A_ij‖·NT/‖A‖ ≤ u_req/u_low``.  The paper's Monte Carlo
        study lands on 1e-4 for 2D-sqexp, 1e-9 for 2D-Matérn, and 1e-8
        for 3D-sqexp (Section VII-B).
    formats:
        Candidate precision formats; must include FP64.  Defaults to the
        paper's adaptive set {FP64, FP32, FP16_32, FP16}.
    strategy:
        Conversion strategy (``AUTO`` reproduces the paper's automated
        approach).
    tile_size:
        Tile edge ``nb``; the paper empirically fixes 2048 on its GPUs.
    fp16_chunk:
        Accumulator re-rounding chunk of the emulated FP16 GEMM.
    """

    accuracy: float = 1e-9
    formats: tuple[Precision, ...] = ADAPTIVE_FORMATS
    strategy: ConversionStrategy = ConversionStrategy.AUTO
    tile_size: int = 2048
    fp16_chunk: int = 32

    def __post_init__(self) -> None:
        if not (0.0 < self.accuracy <= 1.0):
            raise ValueError(f"accuracy must be in (0, 1], got {self.accuracy}")
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")
        object.__setattr__(self, "formats", validate_adaptive_set(self.formats))

    def with_accuracy(self, accuracy: float) -> "MPConfig":
        return MPConfig(
            accuracy=accuracy,
            formats=self.formats,
            strategy=self.strategy,
            tile_size=self.tile_size,
            fp16_chunk=self.fp16_chunk,
        )

    @classmethod
    def fp64_only(cls, tile_size: int = 2048) -> "MPConfig":
        """The full-FP64 baseline configuration."""
        return cls(accuracy=1e-15, formats=(Precision.FP64,), tile_size=tile_size)

    @classmethod
    def two_precision(
        cls,
        low: Precision,
        tile_size: int = 2048,
        strategy: ConversionStrategy = ConversionStrategy.AUTO,
    ) -> "MPConfig":
        """Fig. 8's extreme configurations: FP64 diagonal, ``low`` elsewhere.

        Returned config carries the format pair; the extreme kernel map
        itself is built by :func:`repro.core.precision_map.two_precision_map`.
        """
        return cls(accuracy=1e-9, formats=(Precision.FP64, low), tile_size=tile_size, strategy=strategy)
