"""The Cholesky PTG: Algorithm 1 expressed as parameterized task classes.

Four task classes — POTRF, TRSM, SYRK, GEMM — unroll into the dataflow
DAG of the tile Cholesky factorization (Fig. 3 shows its first two
iterations).  Every dataflow edge carries the payload precision decided
by the conversion strategy, and tasks that apply sender-side conversion
(STC) carry the one-time conversion they perform before broadcasting.

Tile versioning: tile (i, j) starts at version 0 (the generated
covariance tile on the host) and each writing task bumps the version, so
``(tile, version)`` uniquely names a dataflow value for the simulator's
caches and the numeric executor.

Ranks follow owner-computes: a task runs on the block-cyclic owner of the
tile it writes, one rank per GPU (Section VII-A's P×Q grid).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..obs.profile import hot_region
from ..perfmodel.kernels import KernelKind, kernel_flops, kernel_flops_rect
from ..precision.formats import Precision
from ..runtime.dsl import TaskClassSpec, TaskInstance, unroll, unroll_stream
from ..runtime.task import Task, TaskGraph, TileRef
from ..tiles.distribution import ProcessGrid
from ..tiles.kernels import trsm_execution_precision
from .config import ConversionStrategy
from .conversion import CommPrecisionMap, build_comm_precision_map, payload_encoding
from .precision_map import KernelPrecisionMap

__all__ = [
    "CholeskyDag",
    "build_cholesky_dag",
    "cholesky_task_count",
    "stream_cholesky_tasks",
]


def cholesky_task_count(nt: int) -> int:
    """Number of tasks the Cholesky PTG unrolls to for ``nt`` tiles.

    ``nt`` POTRF + ``nt(nt−1)/2`` TRSM + the same in SYRK +
    ``C(nt, 3)`` GEMM — cubic in NT, GEMM-dominated (~``nt³/6``).
    """
    if nt < 1:
        raise ValueError("nt must be positive")
    return nt + nt * (nt - 1) + nt * (nt - 1) * (nt - 2) // 6

_KIND_RANK = {
    KernelKind.POTRF: 0,
    KernelKind.TRSM: 1,
    KernelKind.SYRK: 2,
    KernelKind.GEMM: 3,
}


@dataclass
class CholeskyDag:
    """A built Cholesky task graph plus the maps that shaped it."""

    graph: TaskGraph
    n: int
    nb: int
    kernel_map: KernelPrecisionMap
    comm_map: CommPrecisionMap
    strategy: ConversionStrategy
    grid: ProcessGrid


def _prepare(
    n: int,
    nb: int,
    kernel_map: KernelPrecisionMap,
    grid: ProcessGrid | None,
    comm_map: CommPrecisionMap | None,
) -> tuple[int, ProcessGrid, CommPrecisionMap]:
    nt = kernel_map.nt
    expected_nt = -(-n // nb)
    if nt != expected_nt:
        raise ValueError(f"kernel map NT={nt} inconsistent with n={n}, nb={nb} (NT={expected_nt})")
    if grid is None:
        grid = ProcessGrid(1, 1)
    if comm_map is None:
        comm_map = build_comm_precision_map(kernel_map)
    return nt, grid, comm_map


def _cholesky_classes(
    n: int,
    nb: int,
    kernel_map: KernelPrecisionMap,
    strategy: ConversionStrategy,
    grid: ProcessGrid,
    comm_map: CommPrecisionMap,
) -> tuple[list[TaskClassSpec], TaskClassSpec]:
    """The four Cholesky task classes, in both emission layouts.

    Returns ``(classes, kmajor)``: the class-major spec list the
    materialising :func:`~repro.runtime.dsl.unroll` has always consumed
    (POTRF space, then TRSM, SYRK, GEMM — *not* topological, POTRF(k)
    reads a SYRK emitted later), and a single merged spec whose space
    interleaves all four classes iteration-major — for each ``k``:
    POTRF(k), the TRSMs, the SYRKs, then the GEMMs of that iteration.
    The k-major emission *is* topological (every read names a task of
    the same or an earlier ``k`` already emitted), which is what lets
    :func:`~repro.runtime.dsl.unroll_stream` skip the Kahn sort.
    """
    nt = kernel_map.nt

    def edge(t: int) -> int:
        """Edge length of tile row/col ``t`` (ragged last tile)."""
        return min(n, (t + 1) * nb) - t * nb

    def elements(i: int, j: int) -> int:
        return edge(i) * edge(j)

    def prio(k: int, kind: str) -> int:
        return k * 4 + _KIND_RANK[kind]

    def panel_payload(m: int, k: int) -> Precision:
        return comm_map.payload(m, k, strategy)

    def panel_storage(m: int, k: int) -> Precision:
        return comm_map.storage(m, k)

    def sender_conv(i: int, j: int) -> tuple[Precision, Precision] | None:
        """STC conversion performed by the task writing tile (i, j)."""
        pay = comm_map.payload(i, j, strategy)
        sto = comm_map.storage(i, j)
        if payload_encoding(pay) != payload_encoding(sto):
            return (sto, pay)
        return None

    # -- task classes ------------------------------------------------------
    def potrf_space():
        for k in range(nt):
            yield (k,)

    def potrf_inst(params):
        (k,) = params
        c_prod = None if k == 0 else ("SYRK", (k, k - 1))
        has_bcast = k < nt - 1
        return TaskInstance(
            cls=KernelKind.POTRF,
            params=params,
            rank=grid.owner(k, k),
            precision=Precision.FP64,
            flops=kernel_flops(KernelKind.POTRF, edge(k)),
            writes=TileRef(k, k, k + 1),
            output_precision=Precision.FP64,
            reads=[
                (c_prod, TileRef(k, k, k), Precision.FP64, Precision.FP64, elements(k, k), "inout")
            ],
            sender_conversion=sender_conv(k, k) if has_bcast else None,
            priority=prio(k, KernelKind.POTRF),
        )

    def trsm_space():
        for k in range(nt - 1):
            for m in range(k + 1, nt):
                yield (m, k)

    def trsm_inst(params):
        m, k = params
        c_prod = None if k == 0 else ("GEMM", (m, k, k - 1))
        # after the FP16-resting change above, a panel tile whose kernel
        # precision is FP16 arrives from its last GEMM in FP16 encoding
        if k == 0 or kernel_map.kernel(m, k) != Precision.FP16:
            c_payload = panel_storage(m, k)
        else:
            c_payload = Precision.FP16
        return TaskInstance(
            cls=KernelKind.TRSM,
            params=params,
            rank=grid.owner(m, k),
            precision=trsm_execution_precision(kernel_map.kernel(m, k)),
            flops=kernel_flops_rect(KernelKind.TRSM, edge(m), edge(k)),
            writes=TileRef(m, k, k + 1),
            output_precision=panel_storage(m, k),
            reads=[
                (
                    ("POTRF", (k,)),
                    TileRef(k, k, k + 1),
                    comm_map.payload(k, k, strategy),
                    Precision.FP64,
                    elements(k, k),
                    "in",
                ),
                (
                    c_prod,
                    TileRef(m, k, k),
                    c_payload,
                    c_payload,
                    elements(m, k),
                    "inout",
                ),
            ],
            sender_conversion=sender_conv(m, k),
            priority=prio(k, KernelKind.TRSM),
        )

    def syrk_space():
        for k in range(nt - 1):
            for m in range(k + 1, nt):
                yield (m, k)

    def syrk_inst(params):
        m, k = params
        c_prod = None if k == 0 else ("SYRK", (m, k - 1))
        return TaskInstance(
            cls=KernelKind.SYRK,
            params=params,
            rank=grid.owner(m, m),
            precision=Precision.FP64,
            flops=kernel_flops_rect(KernelKind.SYRK, edge(m), edge(k)),
            writes=TileRef(m, m, k + 1),
            output_precision=Precision.FP64,
            reads=[
                (
                    ("TRSM", (m, k)),
                    TileRef(m, k, k + 1),
                    panel_payload(m, k),
                    panel_storage(m, k),
                    elements(m, k),
                    "in",
                ),
                (
                    c_prod,
                    TileRef(m, m, k),
                    Precision.FP64,
                    Precision.FP64,
                    elements(m, m),
                    "inout",
                ),
            ],
            priority=prio(k, KernelKind.SYRK),
        )

    def gemm_space():
        for k in range(nt - 2):
            for m in range(k + 2, nt):
                for nn in range(k + 1, m):
                    yield (m, nn, k)

    def gemm_inst(params):
        m, nn, k = params
        c_prod = None if k == 0 else ("GEMM", (m, nn, k - 1))
        prec = kernel_map.kernel(m, nn)
        # A pure-FP16 GEMM's accumulator is FP16-valued, so the tile rests
        # in FP16 on the device between consecutive updates; the single
        # conversion to/from the FP32 at-rest encoding is paid at the
        # chain's ends (first load, eventual TRSM), not per GEMM.
        out_prec = Precision.FP16 if prec == Precision.FP16 else comm_map.storage(m, nn)
        c_payload = comm_map.storage(m, nn) if k == 0 else out_prec
        return TaskInstance(
            cls=KernelKind.GEMM,
            params=params,
            rank=grid.owner(m, nn),
            precision=prec,
            flops=kernel_flops_rect(KernelKind.GEMM, edge(m), edge(nn), edge(k)),
            writes=TileRef(m, nn, k + 1),
            output_precision=out_prec,
            reads=[
                (
                    ("TRSM", (m, k)),
                    TileRef(m, k, k + 1),
                    panel_payload(m, k),
                    panel_storage(m, k),
                    elements(m, k),
                    "in",
                ),
                (
                    ("TRSM", (nn, k)),
                    TileRef(nn, k, k + 1),
                    panel_payload(nn, k),
                    panel_storage(nn, k),
                    elements(nn, k),
                    "in",
                ),
                (
                    c_prod,
                    TileRef(m, nn, k),
                    c_payload,
                    c_payload,
                    elements(m, nn),
                    "inout",
                ),
            ],
            priority=prio(k, KernelKind.GEMM),
        )

    classes = [
        TaskClassSpec("POTRF", potrf_space, potrf_inst),
        TaskClassSpec("TRSM", trsm_space, trsm_inst),
        TaskClassSpec("SYRK", syrk_space, syrk_inst),
        TaskClassSpec("GEMM", gemm_space, gemm_inst),
    ]

    # -- k-major emission: one merged class whose space interleaves the
    # four kinds iteration by iteration, already topologically sorted
    _inst = {
        KernelKind.POTRF: potrf_inst,
        KernelKind.TRSM: trsm_inst,
        KernelKind.SYRK: syrk_inst,
        KernelKind.GEMM: gemm_inst,
    }

    def kmajor_space():
        for k in range(nt):
            yield (KernelKind.POTRF, (k,))
            for m in range(k + 1, nt):
                yield (KernelKind.TRSM, (m, k))
            for m in range(k + 1, nt):
                yield (KernelKind.SYRK, (m, k))
            for m in range(k + 2, nt):
                for nn in range(k + 1, m):
                    yield (KernelKind.GEMM, (m, nn, k))

    def kmajor_inst(tagged):
        kind, params = tagged
        return _inst[kind](params)

    kmajor = TaskClassSpec("CHOLESKY", kmajor_space, kmajor_inst)
    return classes, kmajor


def build_cholesky_dag(
    n: int,
    nb: int,
    kernel_map: KernelPrecisionMap,
    *,
    strategy: ConversionStrategy = ConversionStrategy.AUTO,
    grid: ProcessGrid | None = None,
    comm_map: CommPrecisionMap | None = None,
    stream: bool = False,
) -> CholeskyDag:
    """Unroll Algorithm 1 into a :class:`~repro.runtime.task.TaskGraph`.

    ``stream=True`` builds the same graph through the one-pass streaming
    unroll (k-major emission, no instance list or Kahn sort) — faster
    and lighter, but the task ids follow the k-major emission order
    instead of the historical Kahn order over the class-major emission,
    so schedules are *valid but not tid-identical* to the default path.
    The default stays the materialising path to keep panel-first's
    pinned regression constants byte-stable.  For simulation without any
    materialised graph at all, see :func:`stream_cholesky_tasks`.
    """
    nt, grid, comm_map = _prepare(n, nb, kernel_map, grid, comm_map)
    classes, kmajor = _cholesky_classes(n, nb, kernel_map, strategy, grid, comm_map)
    with hot_region("dag.build"):
        graph = unroll([kmajor], stream=True) if stream else unroll(classes)
    return CholeskyDag(
        graph=graph,
        n=n,
        nb=nb,
        kernel_map=kernel_map,
        comm_map=comm_map,
        strategy=strategy,
        grid=grid,
    )


def stream_cholesky_tasks(
    n: int,
    nb: int,
    kernel_map: KernelPrecisionMap,
    *,
    strategy: ConversionStrategy = ConversionStrategy.AUTO,
    grid: ProcessGrid | None = None,
    comm_map: CommPrecisionMap | None = None,
) -> Iterator[Task]:
    """Lazily emit the Cholesky tasks in k-major (topological) order.

    The generator counterpart of :func:`build_cholesky_dag` for
    :func:`repro.runtime.simulator.simulate_stream`: tasks are yielded
    one at a time and nothing global is retained besides the
    ``(class, params) → tid`` map, so simulating NT in the thousands
    (``cholesky_task_count(nt) ≈ nt³/6`` tasks) never materialises the
    DAG.
    """
    _nt, grid, comm_map = _prepare(n, nb, kernel_map, grid, comm_map)
    _classes, kmajor = _cholesky_classes(n, nb, kernel_map, strategy, grid, comm_map)
    return unroll_stream([kmajor])
