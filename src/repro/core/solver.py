"""Public solver API tying the adaptive framework together.

:class:`MPCholeskySolver` is the entry point a downstream user touches:
give it an :class:`~repro.core.config.MPConfig` and a tiled SPD matrix
and it plans the precision maps (Fig. 2), runs Algorithm 2 (Fig. 4),
factorizes numerically, and can price the same factorization on a
simulated GPU platform (Figs. 8–12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.live import announce_total
from ..perfmodel.gpus import GPUSpec
from ..runtime.executor import execute_numeric
from ..runtime.platform import Platform
from ..runtime.schedule import StaticSchedule
from ..runtime.simulator import SimReport, simulate, simulate_replay, simulate_stream
from ..tiles.norms import tile_norms
from ..tiles.tilematrix import TiledSymmetricMatrix
from .cholesky import CholeskyResult, logdet_from_factor, mp_cholesky, solve_with_factor
from .config import ConversionStrategy, MPConfig
from .conversion import CommPrecisionMap, build_comm_precision_map
from .dag_cholesky import CholeskyDag, build_cholesky_dag, stream_cholesky_tasks, cholesky_task_count
from .precision_map import KernelPrecisionMap, build_precision_map

__all__ = [
    "FactorizationPlan",
    "MPCholeskySolver",
    "default_stream_lookahead",
    "replay_cholesky",
    "simulate_cholesky",
]


@dataclass
class FactorizationPlan:
    """Precision planning output for one matrix."""

    kernel_map: KernelPrecisionMap
    comm_map: CommPrecisionMap
    config: MPConfig

    def summary(self) -> str:
        fracs = self.kernel_map.tile_fractions()
        parts = [f"{p.name}: {f * 100:.1f}%" for p, f in sorted(fracs.items(), reverse=True)]
        stc = self.comm_map.stc_fraction()
        return f"tiles [{', '.join(parts)}]; STC on {stc * 100:.1f}% of communications"


class MPCholeskySolver:
    """Adaptive mixed-precision Cholesky with automated precision conversion."""

    def __init__(self, config: MPConfig | None = None) -> None:
        self.config = config or MPConfig()

    # -- planning ---------------------------------------------------------
    def plan(self, mat: TiledSymmetricMatrix) -> FactorizationPlan:
        """Build the kernel- and communication-precision maps for ``mat``."""
        norms = tile_norms(mat)
        return self.plan_from_norms(norms)

    def plan_from_norms(self, norms: np.ndarray) -> FactorizationPlan:
        """Plan from a (possibly sampled) tile-norm array (Fig. 7 scale)."""
        kmap = build_precision_map(norms, self.config.accuracy, self.config.formats)
        cmap = build_comm_precision_map(kmap)
        return FactorizationPlan(kernel_map=kmap, comm_map=cmap, config=self.config)

    # -- numeric factorization ---------------------------------------------
    def factorize(
        self,
        mat: TiledSymmetricMatrix,
        plan: FactorizationPlan | None = None,
    ) -> CholeskyResult:
        """Numerically factor ``mat`` (sequential reference path)."""
        plan = plan or self.plan(mat)
        return mp_cholesky(
            mat,
            plan.kernel_map,
            strategy=self.config.strategy,
            comm_map=plan.comm_map,
        )

    def factorize_via_runtime(
        self,
        mat: TiledSymmetricMatrix,
        platform: Platform | None = None,
        plan: FactorizationPlan | None = None,
    ) -> tuple[TiledSymmetricMatrix, SimReport]:
        """Factor through the task runtime: numeric result + simulated cost."""
        plan = plan or self.plan(mat)
        dag = self._dag(mat.n, mat.nb, plan, platform)
        factor = execute_numeric(dag.graph, mat)
        platform = platform or Platform.single_gpu(_default_gpu())
        report = simulate(dag.graph, platform, mat.nb)
        return factor, report

    def _dag(
        self,
        n: int,
        nb: int,
        plan: FactorizationPlan,
        platform: Platform | None,
    ) -> CholeskyDag:
        grid = platform.process_grid() if platform is not None else None
        return build_cholesky_dag(
            n,
            nb,
            plan.kernel_map,
            strategy=self.config.strategy,
            grid=grid,
            comm_map=plan.comm_map,
        )

    # -- convenience -------------------------------------------------------
    @staticmethod
    def logdet(result: CholeskyResult) -> float:
        return logdet_from_factor(result.factor)

    @staticmethod
    def solve(result: CholeskyResult, rhs: np.ndarray) -> np.ndarray:
        return solve_with_factor(result.factor, rhs)


def _default_gpu() -> GPUSpec:
    from ..perfmodel.gpus import V100

    return V100


def default_stream_lookahead(nt: int) -> int:
    """Emission window for streamed Cholesky simulation.

    About two trailing-update sweeps (``nt² + 4·nt``) so every task is
    emitted before its last predecessor finishes — empirically the
    point where the streamed panel-first schedule matches the
    materialised one — with a floor that keeps tiny problems trivially
    windowless.  Live memory is O(window) = O(nt²), against the
    O(nt³) task list the materialising path holds.
    """
    return max(4096, nt * nt + 4 * nt)


def simulate_cholesky(
    n: int,
    nb: int,
    kernel_map: KernelPrecisionMap,
    platform: Platform,
    *,
    strategy: ConversionStrategy = ConversionStrategy.AUTO,
    enforce_memory: bool = True,
    record_events: bool = True,
    policy: str | None = None,
    stream: bool = False,
    lookahead: int | None = None,
) -> SimReport:
    """Symbolic (time-only) mixed-precision Cholesky on a platform.

    No numerics: the DAG is built and priced, which is how the large
    matrix sizes of Figs. 8–11 are reproduced without forming the
    matrices.  ``policy`` selects the scheduling policy (see
    :mod:`repro.runtime.policies`; default ``panel-first``).

    ``stream=True`` is million-task mode: tasks are emitted lazily in
    k-major order and simulated through
    :func:`repro.runtime.simulator.simulate_stream` with an emission
    window of ``lookahead`` tasks (default
    :func:`default_stream_lookahead`), so the DAG is never materialised
    and peak memory is O(NT²) instead of O(NT³).  Restricted to
    frontier-local policies (panel-first, fifo).
    """
    if stream:
        nt = kernel_map.nt
        # the stream itself doesn't know its length; tell the live plane
        announce_total(cholesky_task_count(nt))
        source = stream_cholesky_tasks(
            n, nb, kernel_map, strategy=strategy, grid=platform.process_grid()
        )
        return simulate_stream(
            source,
            platform,
            nb,
            lookahead=lookahead if lookahead is not None else default_stream_lookahead(nt),
            enforce_memory=enforce_memory,
            record_events=record_events,
            policy=policy,
        )
    dag = build_cholesky_dag(
        n,
        nb,
        kernel_map,
        strategy=strategy,
        grid=platform.process_grid(),
    )
    return simulate(
        dag.graph,
        platform,
        nb,
        enforce_memory=enforce_memory,
        record_events=record_events,
        policy=policy,
    )


def replay_cholesky(
    n: int,
    nb: int,
    kernel_map: KernelPrecisionMap,
    platform: Platform,
    schedule: StaticSchedule,
    *,
    strategy: ConversionStrategy = ConversionStrategy.AUTO,
    enforce_memory: bool = True,
    record_events: bool = True,
) -> SimReport:
    """Re-execute an exported :class:`StaticSchedule` with no scheduler.

    Rebuilds the Cholesky DAG in the layout the schedule was exported
    from (materialised class-major ids, or k-major streamed ids),
    validates the schedule's fingerprint against it, and runs
    :func:`repro.runtime.simulator.simulate_replay` — bit-identical to
    the run that produced the schedule, without any ready-heap or
    policy-key work.
    """
    dag = build_cholesky_dag(
        n,
        nb,
        kernel_map,
        strategy=strategy,
        grid=platform.process_grid(),
        stream=schedule.layout == "stream",
    )
    schedule.validate_against(len(dag.graph), platform)
    return simulate_replay(
        dag.graph,
        platform,
        nb,
        schedule.order,
        enforce_memory=enforce_memory,
        record_events=record_events,
        source_policy=schedule.policy,
    )
