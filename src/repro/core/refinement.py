"""Mixed-precision iterative refinement on top of the MP factorization.

The related work the paper builds on ([33] Haidar et al.) obtains
energy-efficient *linear solvers* by factoring in low precision and
recovering FP64 accuracy through iterative refinement.  This module adds
that capability to the reproduction: factor Σ once with the adaptive
mixed-precision Cholesky (cheap, low precision), then iterate

    r_k = b − Σ x_k           (FP64 residual)
    x_{k+1} = x_k + L⁻ᵀ L⁻¹ r_k

until the residual reaches FP64 working accuracy.  Convergence is
geometric with rate ≈ cond(Σ)·u_factor, so a factorization at accuracy
``u_req`` refines successfully whenever the matrix is reasonably
conditioned — exactly the regime the tile-selection rule creates.

This also powers the MLE quadratic form zᵀΣ⁻¹z: refinement makes the
low-precision factorization usable even at loose ``u_req``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..tiles.tilematrix import TiledSymmetricMatrix
from .cholesky import CholeskyResult, solve_with_factor

__all__ = ["RefinementResult", "refine_solve"]


@dataclass
class RefinementResult:
    """Solution of Σx = b via low-precision factor + FP64 refinement."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: list[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("inf")


def refine_solve(
    matrix: TiledSymmetricMatrix,
    result: CholeskyResult,
    b: np.ndarray,
    *,
    tol: float = 1e-12,
    max_iterations: int = 50,
) -> RefinementResult:
    """Solve ``Σ x = b`` with the MP factor and FP64 iterative refinement.

    Parameters
    ----------
    matrix:
        The *original* (unfactored) matrix Σ, used for FP64 residuals.
    result:
        A :class:`CholeskyResult` from :func:`repro.core.cholesky.mp_cholesky`
        on the same matrix (any accuracy).
    tol:
        Target relative residual ``‖b − Σx‖ / ‖b‖``.

    Divergence (residual growth over two consecutive iterations — the
    factor was too inaccurate for this conditioning) stops early with
    ``converged=False`` and the best iterate found.
    """
    b = np.asarray(b, dtype=np.float64)
    dense = matrix.to_dense()
    norm_b = float(np.linalg.norm(b))
    if norm_b == 0.0:
        return RefinementResult(np.zeros_like(b), 0, True, [0.0])

    x = solve_with_factor(result.factor, b)
    best_x = x
    best_res = float("inf")
    norms: list[float] = []
    growth = 0
    for it in range(1, max_iterations + 1):
        r = b - dense @ x
        rel = float(np.linalg.norm(r)) / norm_b
        norms.append(rel)
        if rel < best_res:
            best_res = rel
            best_x = x
            growth = 0
        else:
            growth += 1
            if growth >= 2:
                return RefinementResult(best_x, it, False, norms)
        if rel <= tol:
            return RefinementResult(x, it, True, norms)
        x = x + solve_with_factor(result.factor, r)

    return RefinementResult(best_x, max_iterations, best_res <= tol, norms)
