"""Automated precision conversion strategy (Section VI, Algorithm 2).

Tile Cholesky has two communication patterns: POTRF(k,k) broadcasts the
factored diagonal tile to the TRSMs of column k, and TRSM(m,k) broadcasts
the solved panel tile to the GEMMs of row m, the GEMMs of column m, and
SYRK(m,k).  Because the precision a receiver operates at may differ from
what the sender generates, a conversion is usually required — either at
the sender (*STC*) or at the receiver (*TTC*).

STC wins twice when applicable: the conversion happens once instead of in
every successive GEMM, and if it down-casts, every subsequent transfer
(network and host→device) moves fewer bytes.  But STC applied blindly
would either lose accuracy (successors may need more precision) or force
the sender to retain/broadcast multiple precisions of the same tile.  The
automated strategy therefore computes, per tile, the *communication
precision* — the highest precision any successor operates at, capped at
the sender's storage precision — and uses STC exactly when that lies
below the storage precision.

Faithfulness note: Algorithm 2 as printed iterates the row-broadcast
check "for n = k+1 to m", which with an inclusive bound would visit the
FP64 diagonal tile (m, m) and force every panel communication up to
storage precision (pure TTC) — contradicting Section VII-D's statement
that in the FP64/FP16 extreme configuration *all* communications employ
STC.  We therefore read the bound as exclusive (GEMM successors only) and
account for the SYRK successor by requiring the panel tile's *own* kernel
precision: by the selection rule, representing tile (m, k) at its own
kernel precision keeps the global error within ``u_req``, so the FP64
SYRK may consume the payload at that precision without additional loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import emit_event, get_event_log
from ..precision.formats import Precision, get_storage_precision
from .config import ConversionStrategy
from .precision_map import KernelPrecisionMap

__all__ = [
    "CommPrecisionMap",
    "accumulator_encoding",
    "build_comm_precision_map",
    "encoding_width",
    "input_encoding",
    "needs_conversion",
    "payload_encoding",
]


def payload_encoding(precision: Precision) -> str:
    """Wire encoding of a tile communicated in ``precision``."""
    if precision == Precision.FP64:
        return "f64"
    if precision in (Precision.FP32, Precision.TF32):
        return "f32"
    if precision == Precision.BF16_32:
        return "bf16"
    return "f16"


def input_encoding(kernel_precision: Precision) -> str:
    """Encoding a kernel reads its inputs in.

    FP64/FP32 kernels read native words; TF32 reads FP32 words (the
    truncation happens inside the tensor core); FP16_32 and FP16 read
    half-precision words.
    """
    if kernel_precision == Precision.FP64:
        return "f64"
    if kernel_precision in (Precision.FP32, Precision.TF32):
        return "f32"
    if kernel_precision == Precision.BF16_32:
        return "bf16"
    return "f16"


def accumulator_encoding(kernel_precision: Precision) -> str:
    """Encoding of a kernel's in/out (accumulator) operand.

    The C operand of an FP16_32 GEMM stays in FP32 words even though the
    A/B inputs are read as halves; only pure FP16 keeps its accumulator
    in half words.
    """
    if kernel_precision == Precision.FP64:
        return "f64"
    if kernel_precision == Precision.FP16:
        return "f16"
    return "f32"


def encoding_width(encoding: str) -> Precision:
    """Representative precision of an encoding (for byte-width pricing)."""
    return {
        "f64": Precision.FP64,
        "f32": Precision.FP32,
        "bf16": Precision.BF16_32,
        "f16": Precision.FP16,
    }[encoding]


def needs_conversion(
    payload: Precision, consumer_kernel: Precision, role: str = "in"
) -> bool:
    """True when a consuming task must run a datatype-conversion pass.

    ``role`` distinguishes read-only inputs (``"in"`` — A/B operands,
    triangular factors) from in/out accumulators (``"inout"`` — the C
    operand of GEMM/SYRK, POTRF's tile).
    """
    needed = input_encoding(consumer_kernel) if role == "in" else accumulator_encoding(consumer_kernel)
    return payload_encoding(payload) != needed


@dataclass
class CommPrecisionMap:
    """Output of Algorithm 2: per-tile communication precision.

    ``comm_codes[i, j]`` (lower triangle including diagonal) is the
    precision of the broadcast issued by the POTRF (i == j) or TRSM
    (i > j) operating on tile (i, j).  A tile uses STC when its
    communication precision is strictly below its storage precision.
    """

    nt: int
    comm_codes: np.ndarray
    storage_codes: np.ndarray

    def comm(self, i: int, j: int) -> Precision:
        if j > i:
            raise IndexError("communication precision is defined on the lower triangle")
        return Precision(int(self.comm_codes[i, j]))

    def storage(self, i: int, j: int) -> Precision:
        if j > i:
            i, j = j, i
        return Precision(int(self.storage_codes[i, j]))

    def is_stc(self, i: int, j: int) -> bool:
        """True when the task on tile (i, j) applies sender-side conversion."""
        return self.comm(i, j) < self.storage(i, j)

    def payload(self, i: int, j: int, strategy: ConversionStrategy) -> Precision:
        """Precision in which tile (i, j)'s broadcast actually travels."""
        if strategy == ConversionStrategy.TTC:
            return self.storage(i, j)
        return self.comm(i, j)

    # -- statistics -------------------------------------------------------
    def _broadcast_mask(self) -> tuple[np.ndarray, np.ndarray]:
        """Lower-triangle indices of tiles that issue a broadcast."""
        il, jl = np.tril_indices(self.nt)
        # POTRF(NT-1) issues no broadcast
        keep = ~((il == jl) & (il == self.nt - 1))
        return il[keep], jl[keep]

    def stc_counts(self) -> tuple[int, int]:
        """(n_stc, n_broadcasts) over all communicating tiles."""
        il, jl = self._broadcast_mask()
        n_stc = int(np.count_nonzero(self.comm_codes[il, jl] < self.storage_codes[il, jl]))
        return n_stc, int(il.size)

    def stc_fraction(self) -> float:
        """Fraction of communicating tiles that qualify for STC."""
        n_stc, total = self.stc_counts()
        return n_stc / total if total else 0.0

    def render(self) -> str:
        """ASCII rendering of Fig. 4b (lowercase marks STC tiles)."""
        glyph = {
            Precision.FP64: "D",
            Precision.FP32: "S",
            Precision.TF32: "T",
            Precision.FP16_32: "H",
            Precision.BF16_32: "B",
            Precision.FP16: "Q",
        }
        lines = []
        for i in range(self.nt):
            row = []
            for j in range(i + 1):
                g = glyph[self.comm(i, j)]
                row.append(g.lower() if self.is_stc(i, j) else g)
            lines.append(" ".join(row))
        # derive the legend from the glyph table so they cannot drift
        legend = " ".join(f"{g}={p.name}" for p, g in glyph.items()) + "; lowercase = STC"
        return "\n".join(lines) + f"\n[{legend}]"


#: code → storage-precision code, indexable by the Precision lattice rank
_STORAGE_CODE_LUT = np.array(
    [int(get_storage_precision(p)) for p in sorted(Precision)], dtype=np.int8
)


def build_comm_precision_map(kmap: KernelPrecisionMap) -> CommPrecisionMap:
    """Algorithm 2: derive the communication-precision map from Fig. 2a.

    Vectorized O(NT²) formulation of the paper's O(NT³) pseudocode.  The
    scan with early exit that Algorithm 2 runs per tile computes, for
    tile (m, k),

        comm(m, k) = min(storage(m, k),
                         max(kernel(m, k),                 # SYRK successor
                             max_{k < n < m} kernel(m, n), # row broadcast
                             max_{m < n} kernel(n, m)))    # column broadcast

    The row term is a reversed cumulative max (suffix max) along each
    lower-triangle row and the column term a per-column max of the
    strictly-lower triangle, so the whole map falls out of three NumPy
    scans.  Bit-identical to the reference loop implementation
    (:func:`_build_comm_precision_map_loop`, asserted by property test).
    """
    nt = kmap.nt
    codes = np.asarray(kmap.codes, dtype=np.int8)
    comm = np.full((nt, nt), int(Precision.FP64), dtype=np.int8)
    storage = np.full((nt, nt), int(Precision.FP64), dtype=np.int8)

    # storage map: lower triangle from the kernel map, mirrored upward
    s = _STORAGE_CODE_LUT[codes]
    il, jl = np.tril_indices(nt)
    storage[il, jl] = s[il, jl]
    storage[jl, il] = s[il, jl]

    # strictly-lower entries only; -1 sentinels sort below every code
    strict_lower = np.tril(np.ones((nt, nt), dtype=bool), k=-1)
    masked = np.where(strict_lower, codes, np.int8(-1))

    # suffix max along rows: row_sfx[m, k] = max_{n ≥ k, n < m} kernel(m, n)
    row_sfx = np.maximum.accumulate(masked[:, ::-1], axis=1)[:, ::-1]
    # exclusive variant: max over k < n < m (shift left by one column)
    row_succ = np.full((nt, nt), np.int8(-1), dtype=np.int8)
    if nt > 1:
        row_succ[:, :-1] = row_sfx[:, 1:]
    # column max below the diagonal: col_succ[m] = max_{n > m} kernel(n, m)
    col_succ = masked.max(axis=0) if nt else masked.diagonal()

    # Diagonal tiles (k, k) operating POTRF(k, k): successors are the
    # TRSMs of column k, which execute in FP64 only when their tile's
    # kernel precision is FP64 (otherwise FP32 — the hardware TRSM floor).
    diag = np.where(
        col_succ == np.int8(int(Precision.FP64)),
        np.int8(int(Precision.FP64)),
        np.int8(int(Precision.FP32)),
    )
    if nt:
        diag[-1] = np.int8(int(Precision.FP64))  # no successors; no broadcast
    comm[np.arange(nt), np.arange(nt)] = diag

    # Off-diagonal tiles (m, k) operating TRSM(m, k): the SYRK successor
    # requires the tile's own kernel precision (see module docstring),
    # the GEMM successors the row/column maxima, capped at storage.
    io, jo = np.nonzero(strict_lower)
    if io.size:
        need = np.maximum(codes[io, jo], row_succ[io, jo])
        need = np.maximum(need, col_succ[io])
        comm[io, jo] = np.minimum(storage[io, jo], need)

    cmap = CommPrecisionMap(nt=nt, comm_codes=comm, storage_codes=storage)
    _emit_comm_decision(cmap)
    return cmap


def _build_comm_precision_map_loop(kmap: KernelPrecisionMap) -> CommPrecisionMap:
    """Reference O(NT³) loop implementation of Algorithm 2.

    Kept as the executable specification the vectorized
    :func:`build_comm_precision_map` is property-tested against (and
    benchmarked against in ``benchmarks/test_sweep_planning.py``).  Does
    not emit telemetry.
    """
    nt = kmap.nt
    comm = np.full((nt, nt), int(Precision.FP64), dtype=np.int8)
    storage = np.full((nt, nt), int(Precision.FP64), dtype=np.int8)

    for i in range(nt):
        for j in range(i + 1):
            storage[i, j] = int(get_storage_precision(kmap.kernel(i, j)))
            storage[j, i] = storage[i, j]

    for k in range(nt):
        prec = Precision.FP32
        for m in range(k + 1, nt):
            if kmap.kernel(m, k) == Precision.FP64:
                prec = Precision.FP64
                break
        if k == nt - 1:
            prec = Precision.FP64  # no successors; no broadcast is issued
        comm[k, k] = int(prec)

    # Off-diagonal tiles (m, k) operating TRSM(m, k).
    for k in range(nt - 1):
        for m in range(k + 1, nt):
            tile_storage = Precision(int(storage[m, k]))
            # SYRK(m, k) consumes the payload at the tile's own kernel
            # precision (see module docstring).
            prec = kmap.kernel(m, k)
            if prec >= tile_storage:
                comm[m, k] = int(tile_storage)
                continue
            done = False
            # row broadcast: GEMM(m, n, k) writes tile (m, n), k < n < m
            for n in range(k + 1, m):
                prec = max(prec, kmap.kernel(m, n))
                if prec >= tile_storage:
                    comm[m, k] = int(tile_storage)
                    done = True
                    break
            if done:
                continue
            # column broadcast: GEMM(n, m, k) writes tile (n, m), n > m
            for n in range(m + 1, nt):
                prec = max(prec, kmap.kernel(n, m))
                if prec >= tile_storage:
                    comm[m, k] = int(tile_storage)
                    done = True
                    break
            if done:
                continue
            comm[m, k] = int(prec)

    return CommPrecisionMap(nt=nt, comm_codes=comm, storage_codes=storage)


def _emit_comm_decision(cmap: CommPrecisionMap) -> None:
    """Structured decision log for Algorithm 2: STC vs TTC per edge.

    The "why" per tile is the comparison Algorithm 2 ends on — STC
    exactly when the communication precision sits strictly below the
    storage precision.  Per-tile detail only for NT ≤ 32.
    """
    if get_event_log() is None:  # keep the planning hot path free
        return
    n_stc, n_total = cmap.stc_counts()
    attrs: dict[str, object] = {
        "nt": cmap.nt,
        "n_broadcasts": n_total,
        "n_stc": n_stc,
        "n_ttc": n_total - n_stc,
        "stc_fraction": cmap.stc_fraction(),
    }
    if cmap.nt <= 32:
        last = cmap.nt - 1
        attrs["tiles"] = [
            {
                "tile": [i, j],
                "storage": cmap.storage(i, j).name,
                "comm": cmap.comm(i, j).name,
                # POTRF(NT-1) issues no broadcast, so no conversion choice
                "choice": ("none" if i == j == last
                           else "stc" if cmap.is_stc(i, j) else "ttc"),
            }
            for i in range(cmap.nt)
            for j in range(i + 1)
        ]
    emit_event("comm_map.built", attrs)
