"""Dynamic Task Discovery (DTD) — PaRSEC's task-insertion interface.

Besides the PTG, PaRSEC offers Dynamic Task Discovery (Hoque et al.,
ScalA'17; Section III-B of the paper): the programmer inserts tasks
sequentially with declared data accesses, and the runtime infers the
dependency graph from data hazards.  This module implements that
programming model on top of :class:`~repro.runtime.task.TaskGraph`:

* ``INPUT`` accesses depend on the last writer of the datum;
* ``INOUT``/``OUTPUT`` accesses additionally order against the previous
  version (read-after-write, write-after-read and write-after-write
  hazards resolve through version bumping — each write creates the next
  version of the tile, which is how the simulator and executors already
  key their payloads).

The DTD-built Cholesky unrolls to the *same* graph as the PTG
(asserted by tests), demonstrating the two DSLs' equivalence the paper
leans on — while the insertion-order API trades the PTG's compact
algebraic description for imperative convenience.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..precision.formats import Precision
from .task import TaskGraph, TaskInput, TileRef

__all__ = ["AccessMode", "DataAccess", "DTDRuntime"]


class AccessMode(enum.Enum):
    """Data access declaration of one task operand."""

    INPUT = "input"
    INOUT = "inout"
    OUTPUT = "output"


@dataclass(frozen=True)
class DataAccess:
    """One operand of an inserted task.

    ``payload_precision`` — precision the datum travels in when it comes
    from a remote producer (Algorithm 2's communication precision);
    defaults to the storage precision.
    """

    tile: tuple[int, int]
    mode: AccessMode
    payload_precision: Precision | None = None
    storage_precision: Precision = Precision.FP64
    elements: int | None = None


class DTDRuntime:
    """Sequential task insertion with automatic dependency inference."""

    def __init__(self, *, default_elements: int = 1) -> None:
        self.graph = TaskGraph()
        #: last written version per tile and the task that wrote it
        self._version: dict[tuple[int, int], int] = {}
        self._writer: dict[tuple[int, int], int | None] = {}
        self._default_elements = default_elements
        self._finalized = False

    # -- insertion --------------------------------------------------------
    def insert_task(
        self,
        kind: str,
        params: tuple[int, ...],
        accesses: list[DataAccess],
        *,
        rank: int = 0,
        precision: Precision = Precision.FP64,
        flops: float = 0.0,
        output_precision: Precision | None = None,
        sender_conversion: tuple[Precision, Precision] | None = None,
        priority: int = 0,
    ):
        """Insert one task; dependencies are inferred from ``accesses``.

        Exactly one ``INOUT``/``OUTPUT`` access is required (the tile the
        task writes — matching the tile-algorithm structure where every
        kernel has a single output tile).
        """
        if self._finalized:
            raise RuntimeError("runtime already finalized")
        writes = [a for a in accesses if a.mode in (AccessMode.INOUT, AccessMode.OUTPUT)]
        if len(writes) != 1:
            raise ValueError(f"{kind}{params}: exactly one INOUT/OUTPUT access required")
        write = writes[0]

        inputs: list[TaskInput] = []
        for acc in accesses:
            tile = acc.tile
            version = self._version.get(tile, 0)
            producer = self._writer.get(tile)
            if acc.mode == AccessMode.OUTPUT:
                continue  # write-only: no incoming dataflow for this operand
            # NB: Precision.FP16 is enum value 0 (falsy) — test identity
            payload = (
                acc.payload_precision
                if acc.payload_precision is not None
                else acc.storage_precision
            )
            inputs.append(
                TaskInput(
                    producer=producer,
                    tile=TileRef(tile[0], tile[1], version),
                    payload_precision=payload,
                    storage_precision=acc.storage_precision,
                    elements=acc.elements or self._default_elements,
                    role="in" if acc.mode == AccessMode.INPUT else "inout",
                )
            )

        out_tile = write.tile
        out_version = self._version.get(out_tile, 0) + 1
        task = self.graph.new_task(
            kind=kind,
            params=params,
            rank=rank,
            precision=precision,
            flops=flops,
            output=TileRef(out_tile[0], out_tile[1], out_version),
            output_precision=(
                output_precision if output_precision is not None
                else write.storage_precision
            ),
            inputs=inputs,
            sender_conversion=sender_conversion,
            priority=priority,
        )
        self._version[out_tile] = out_version
        self._writer[out_tile] = task.tid
        return task

    # -- completion --------------------------------------------------------
    def finalize(self) -> TaskGraph:
        """Freeze insertion and return the discovered task graph."""
        self.graph.finalize()
        self._finalized = True
        return self.graph

    def current_version(self, tile: tuple[int, int]) -> int:
        """Version the next reader of ``tile`` would observe."""
        return self._version.get(tile, 0)
