"""Execution traces and counters produced by the simulator.

A :class:`TraceEvent` is one busy interval of one engine of one rank —
compute (kernel or conversion), h2d/d2h copy, or NIC message.  The
energy, occupancy, analysis, and reporting layers all consume this
single schema.  ``CONVERT`` events additionally carry their conversion
*site* (``"stc"`` for the one-off sender-side pass, ``"ttc"`` for
receiver-side passes) and the source→destination precisions, so
conversion time can be attributed per strategy (Section VI).

:class:`RunStats` aggregates the counters the paper reports: bytes moved
per link per precision (the data-motion reduction of Section VII-D) —
symmetrically for all three links, so STC-vs-TTC byte accounting works
on the NIC as well as h2d — conversion counts/time split by site (STC's
"convert once" saving), flops per precision, and kernel/transfer busy
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..precision.formats import Precision

__all__ = ["TraceEvent", "RunStats", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One busy interval of one engine."""

    rank: int
    engine: str  # "compute" | "h2d" | "d2h" | "nic"
    kind: str  # kernel name, "CONVERT", or transfer label
    t_start: float
    t_end: float
    precision: Precision | None = None
    bytes: int = 0
    flops: float = 0.0
    #: conversion site for CONVERT events: "stc" | "ttc" (None otherwise)
    site: str | None = None
    #: source/destination precision of a CONVERT pass (None otherwise)
    src_precision: Precision | None = None
    dst_precision: Precision | None = None

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class RunStats:
    """Aggregated counters of one simulated run."""

    makespan: float = 0.0
    total_flops: float = 0.0
    flops_by_precision: dict[Precision, float] = field(default_factory=dict)
    h2d_bytes_by_precision: dict[Precision, int] = field(default_factory=dict)
    d2h_bytes_by_precision: dict[Precision, int] = field(default_factory=dict)
    nic_bytes_by_precision: dict[Precision, int] = field(default_factory=dict)
    n_conversions: int = 0
    conversion_seconds: float = 0.0
    conversions_by_site: dict[str, int] = field(default_factory=dict)
    conversion_seconds_by_site: dict[str, float] = field(default_factory=dict)
    n_tasks: int = 0
    n_evictions: int = 0
    #: host-tier LRU evictions (out-of-core mode; GPU evictions are
    #: ``n_evictions``)
    n_host_evictions: int = 0
    #: host entries whose only copy had to be written to the disk tier
    n_spills: int = 0
    #: disk-tier traffic (out-of-core spills and re-reads)
    disk_read_bytes_by_precision: dict[Precision, int] = field(default_factory=dict)
    disk_write_bytes_by_precision: dict[Precision, int] = field(default_factory=dict)

    @property
    def h2d_bytes(self) -> int:
        return sum(self.h2d_bytes_by_precision.values())

    @property
    def d2h_bytes(self) -> int:
        return sum(self.d2h_bytes_by_precision.values())

    @property
    def nic_bytes(self) -> int:
        return sum(self.nic_bytes_by_precision.values())

    @property
    def disk_read_bytes(self) -> int:
        return sum(self.disk_read_bytes_by_precision.values())

    @property
    def disk_write_bytes(self) -> int:
        return sum(self.disk_write_bytes_by_precision.values())

    @property
    def gflops(self) -> float:
        """Achieved Gflop/s over the makespan."""
        if self.makespan <= 0.0:
            return 0.0
        return self.total_flops / self.makespan / 1e9

    @property
    def tflops(self) -> float:
        return self.gflops / 1e3

    def add_flops(self, precision: Precision, flops: float) -> None:
        self.total_flops += flops
        self.flops_by_precision[precision] = self.flops_by_precision.get(precision, 0.0) + flops

    def add_h2d(self, precision: Precision, nbytes: int) -> None:
        self.h2d_bytes_by_precision[precision] = (
            self.h2d_bytes_by_precision.get(precision, 0) + nbytes
        )

    def add_d2h(self, precision: Precision, nbytes: int) -> None:
        self.d2h_bytes_by_precision[precision] = (
            self.d2h_bytes_by_precision.get(precision, 0) + nbytes
        )

    def add_nic(self, precision: Precision, nbytes: int) -> None:
        self.nic_bytes_by_precision[precision] = (
            self.nic_bytes_by_precision.get(precision, 0) + nbytes
        )

    def add_disk_read(self, precision: Precision, nbytes: int) -> None:
        self.disk_read_bytes_by_precision[precision] = (
            self.disk_read_bytes_by_precision.get(precision, 0) + nbytes
        )

    def add_disk_write(self, precision: Precision, nbytes: int) -> None:
        self.disk_write_bytes_by_precision[precision] = (
            self.disk_write_bytes_by_precision.get(precision, 0) + nbytes
        )

    def add_conversion(self, site: str, seconds: float) -> None:
        """Count one conversion pass at ``site`` ("stc" | "ttc")."""
        self.n_conversions += 1
        self.conversion_seconds += seconds
        self.conversions_by_site[site] = self.conversions_by_site.get(site, 0) + 1
        self.conversion_seconds_by_site[site] = (
            self.conversion_seconds_by_site.get(site, 0.0) + seconds
        )

    def to_dict(self) -> dict:
        """Serialise every counter to plain JSON-ready types."""
        return {
            "makespan_seconds": self.makespan,
            "total_flops": self.total_flops,
            "gflops": self.gflops,
            "tflops": self.tflops,
            "flops_by_precision": {
                p.name: v for p, v in sorted(self.flops_by_precision.items(), reverse=True)
            },
            "h2d_bytes": self.h2d_bytes,
            "h2d_bytes_by_precision": {
                p.name: v for p, v in sorted(self.h2d_bytes_by_precision.items(), reverse=True)
            },
            "d2h_bytes": self.d2h_bytes,
            "d2h_bytes_by_precision": {
                p.name: v for p, v in sorted(self.d2h_bytes_by_precision.items(), reverse=True)
            },
            "nic_bytes": self.nic_bytes,
            "nic_bytes_by_precision": {
                p.name: v for p, v in sorted(self.nic_bytes_by_precision.items(), reverse=True)
            },
            "n_conversions": self.n_conversions,
            "conversion_seconds": self.conversion_seconds,
            "conversions_by_site": dict(sorted(self.conversions_by_site.items())),
            "conversion_seconds_by_site": dict(sorted(self.conversion_seconds_by_site.items())),
            "n_tasks": self.n_tasks,
            "n_evictions": self.n_evictions,
            "n_host_evictions": self.n_host_evictions,
            "n_spills": self.n_spills,
            "disk_read_bytes": self.disk_read_bytes,
            "disk_read_bytes_by_precision": {
                p.name: v for p, v in sorted(self.disk_read_bytes_by_precision.items(), reverse=True)
            },
            "disk_write_bytes": self.disk_write_bytes,
            "disk_write_bytes_by_precision": {
                p.name: v
                for p, v in sorted(self.disk_write_bytes_by_precision.items(), reverse=True)
            },
        }


@dataclass
class Trace:
    """Full event trace of one simulated run."""

    events: list[TraceEvent] = field(default_factory=list)
    stats: RunStats = field(default_factory=RunStats)

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def events_of_rank(self, rank: int) -> list[TraceEvent]:
        return [e for e in self.events if e.rank == rank]

    def content_hash(self) -> str:
        """Order-independent SHA-256 of the event stream.

        Two traces hash equal iff they contain the same busy intervals —
        the replay path's bit-identity contract (same events, possibly
        recorded in a different order) is checked against this digest.
        """
        import hashlib

        tuples = sorted(
            (e.rank, e.engine, e.kind, e.t_start, e.t_end,
             e.precision, e.bytes, e.flops, e.site)
            for e in self.events
        )
        return hashlib.sha256(repr(tuples).encode()).hexdigest()

    def busy_seconds(self, engine: str, rank: int | None = None) -> float:
        return sum(
            e.duration
            for e in self.events
            if e.engine == engine and (rank is None or e.rank == rank)
        )

    def summary(self) -> dict:
        """Serialisable digest of the trace (feeds JSON export/report)."""
        by_engine: dict[str, float] = {}
        by_kind: dict[str, int] = {}
        for ev in self.events:
            by_engine[ev.engine] = by_engine.get(ev.engine, 0.0) + max(0.0, ev.duration)
            by_kind[ev.kind] = by_kind.get(ev.kind, 0) + 1
        makespan = self.stats.makespan
        if makespan <= 0.0 and self.events:
            makespan = max(e.t_end for e in self.events)
        return {
            "n_events": len(self.events),
            "n_ranks": len({e.rank for e in self.events}),
            "makespan_seconds": makespan,
            "busy_seconds_by_engine": dict(sorted(by_engine.items())),
            "events_by_kind": dict(sorted(by_kind.items())),
            "stats": self.stats.to_dict(),
        }
