"""Platform description: ranks, nodes, and GPUs for a simulated run.

The paper deploys one MPI rank per GPU (6 per Summit node), laid out on a
P×Q process grid that is "as square as possible" with P ≤ Q.  A
:class:`Platform` binds a :class:`~repro.perfmodel.gpus.NodeSpec` to a
node count and provides the rank ↔ (node, local GPU) mapping the
simulator and the DAG builder share.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perfmodel.gpus import GPUSpec, NodeSpec
from ..tiles.distribution import ProcessGrid

__all__ = ["Platform"]


@dataclass(frozen=True)
class Platform:
    """A set of ``n_nodes`` identical nodes; one rank per GPU."""

    node: NodeSpec
    n_nodes: int = 1

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be positive")

    @property
    def gpu(self) -> GPUSpec:
        return self.node.gpu

    @property
    def n_ranks(self) -> int:
        return self.n_nodes * self.node.gpus_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} outside platform of {self.n_ranks} ranks")
        return rank // self.node.gpus_per_node

    def local_gpu(self, rank: int) -> int:
        """GPU index of ``rank`` within its node."""
        return rank % self.node.gpus_per_node

    def process_grid(self) -> ProcessGrid:
        """The squarest P×Q grid over all ranks (Section VII-A)."""
        return ProcessGrid.squarest(self.n_ranks)

    @classmethod
    def single_gpu(cls, gpu: GPUSpec, *, host_memory: float = 256e9) -> "Platform":
        """One node with one GPU of the given model (Fig. 8/9/10 setups)."""
        node = NodeSpec(
            name=f"single-{gpu.name.lower()}",
            gpu=gpu,
            gpus_per_node=1,
            host_memory_bytes=host_memory,
            nic_bandwidth=25e9,
            nic_latency=1.5e-6,
        )
        return cls(node=node, n_nodes=1)
