"""Distributed-memory numeric execution over OS processes.

The paper's runtime executes the Cholesky DAG across MPI ranks (one per
GPU) with the automated conversion strategy deciding each payload's wire
precision.  This module reproduces that execution model with real
message passing: one OS process per rank, per-rank inbox queues, and
payloads that travel **already quantised to the edge's communication
precision** — the sender-side conversion of STC happens where the paper
puts it, and receivers re-quantise to their kernel's needs.

Ranks process the graph in global task-id (topological) order: each rank
executes the tasks it owns, blocks on its inbox for remote payloads, and
pushes its outputs to every remote consumer rank.  Because every blocking
wait is for a strictly earlier task, the protocol is deadlock-free by
induction on task ids; because local reads see full-storage values and
remote reads see sender-quantised payloads — exactly the sequential
executor's semantics — the result is bit-identical to
:func:`repro.runtime.executor.execute_numeric` (asserted in tests).

Prefers the ``fork`` start method (workers inherit the graph and the
input matrix for free) and falls back to ``forkserver``/``spawn`` on
platforms without ``fork`` — every payload crossing the process boundary
is picklable, so all three methods compute identically.  It is a
faithful miniature of an SPMD MPI program rather than a literal MPI
binding (mpi4py is unavailable offline; see DESIGN.md's substitution
table).
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time

import numpy as np

from ..precision.emulate import quantize
from ..precision.formats import Precision
from ..tiles.tilematrix import TiledSymmetricMatrix
from .executor import _run_task
from .task import TaskGraph

__all__ = ["execute_numeric_distributed", "pick_mp_context"]

_DEFAULT_TIMEOUT = 120.0
#: start methods in preference order: cheapest/most-inheriting first
_START_METHODS = ("fork", "forkserver", "spawn")


def pick_mp_context() -> mp.context.BaseContext:
    """The best available multiprocessing context for SPMD workers.

    Prefers ``fork``, falls back to ``forkserver`` then ``spawn``;
    raises a clear :class:`RuntimeError` when the platform supports no
    usable start method (so callers can skip cleanly).
    """
    available = mp.get_all_start_methods()
    for method in _START_METHODS:
        if method in available:
            return mp.get_context(method)
    raise RuntimeError(
        "no usable multiprocessing start method: platform offers "
        f"{available or 'none'}, need one of {list(_START_METHODS)}"
    )


def _seed_values(graph: TaskGraph, mat: TiledSymmetricMatrix, rank: int) -> dict:
    """Version-0 tiles needed by this rank's tasks, at storage precision."""
    values: dict[tuple[int, int, int], np.ndarray] = {}
    for task in graph:
        if task.rank != rank:
            continue
        for inp in task.inputs:
            if inp.producer is None:
                key = (inp.tile.i, inp.tile.j, inp.tile.version)
                if key not in values:
                    values[key] = quantize(mat.get(key[0], key[1]), inp.storage_precision)
    return values


def _consumer_plan(graph: TaskGraph) -> dict[int, list[tuple[int, Precision]]]:
    """Per producing task: the (remote rank, payload precision) sends."""
    plan: dict[int, list[tuple[int, Precision]]] = {}
    for task in graph:
        for inp in task.inputs:
            if inp.producer is None:
                continue
            producer = graph.tasks[inp.producer]
            if producer.rank == task.rank:
                continue
            sends = plan.setdefault(inp.producer, [])
            entry = (task.rank, inp.payload_precision)
            if entry not in sends:
                sends.append(entry)
    return plan


def _rank_main(
    rank: int,
    graph: TaskGraph,
    mat: TiledSymmetricMatrix,
    inboxes,
    results,
    timeout: float,
) -> None:
    try:
        values = _seed_values(graph, mat, rank)
        plan = _consumer_plan(graph)
        inbox = inboxes[rank]
        stash: dict[tuple[int, int, int, int], np.ndarray] = {}

        def recv(key: tuple[int, int, int, int]) -> np.ndarray:
            while key not in stash:
                i, j, v, p, data = inbox.get(timeout=timeout)
                stash[(i, j, v, p)] = data
            return stash[key]

        for tid in graph.topological_order():
            task = graph.tasks[tid]
            if task.rank != rank:
                continue
            # gather remote inputs
            for inp in task.inputs:
                key3 = (inp.tile.i, inp.tile.j, inp.tile.version)
                if key3 in values:
                    continue
                if inp.producer is None:
                    raise KeyError(f"rank {rank}: missing host tile {key3}")
                payload = recv((*key3, int(inp.payload_precision)))
                values[key3] = payload
            result = quantize(_run_task(task, values), task.output_precision)
            out_key = (task.output.i, task.output.j, task.output.version)
            values[out_key] = result
            # ship to remote consumers at each edge's wire precision
            for dest, prec in plan.get(tid, ()):
                wire = quantize(result, prec)
                inboxes[dest].put((*out_key, int(prec), wire))

        # report final version of every tile this rank owns
        finals: dict[tuple[int, int], tuple[int, np.ndarray]] = {}
        for task in graph:
            if task.rank != rank:
                continue
            key = (task.output.i, task.output.j)
            v = task.output.version
            if key not in finals or v > finals[key][0]:
                finals[key] = (v, values[(key[0], key[1], v)])
        results.put((rank, {k: v[1] for k, v in finals.items()}, None))
    except BaseException as exc:  # surface worker failures to the parent
        results.put((rank, {}, repr(exc)))


def execute_numeric_distributed(
    graph: TaskGraph,
    mat: TiledSymmetricMatrix,
    n_ranks: int,
    *,
    timeout: float = _DEFAULT_TIMEOUT,
) -> TiledSymmetricMatrix:
    """Execute the graph numerically across ``n_ranks`` processes.

    ``graph`` must have been built for a process grid with exactly
    ``n_ranks`` ranks (task ``rank`` fields in ``[0, n_ranks)``).
    ``timeout`` bounds every blocking wait (worker inbox reads and the
    parent's result collection); a rank that dies without reporting is
    detected within a fraction of a second and the whole execution fails
    fast instead of letting survivors block out the timeout.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be positive")
    if timeout <= 0:
        raise ValueError("timeout must be positive")
    used = {t.rank for t in graph}
    if used and max(used) >= n_ranks:
        raise ValueError(f"graph uses rank {max(used)} but only {n_ranks} ranks given")

    if n_ranks == 1:
        from .executor import execute_numeric

        return execute_numeric(graph, mat)

    ctx = pick_mp_context()
    inboxes = [ctx.Queue() for _ in range(n_ranks)]
    results = ctx.Queue()
    procs = [
        ctx.Process(target=_rank_main, args=(r, graph, mat, inboxes, results, timeout))
        for r in range(n_ranks)
    ]
    for p in procs:
        p.start()
    out = mat.copy()
    error: str | None = None
    pending = set(range(n_ranks))
    deadline = time.monotonic() + timeout
    try:
        while pending and error is None:
            try:
                rank, finals, err = results.get(timeout=0.2)
            except queue_mod.Empty:
                # fail fast on a peer that died without posting a result
                # (a rank that finished normally always posts first, so a
                # non-zero exit of a pending rank means it was killed)
                dead = [
                    r for r in sorted(pending)
                    if procs[r].exitcode is not None and procs[r].exitcode != 0
                ]
                if dead:
                    codes = ", ".join(f"rank {r} exit {procs[r].exitcode}" for r in dead)
                    error = f"peer rank(s) died without reporting: {codes}"
                    break
                if time.monotonic() > deadline:
                    error = f"distributed execution timed out after {timeout:g} s"
                    break
                continue
            pending.discard(rank)
            if err is not None:
                # fail fast: peers may be blocked waiting on the failed rank
                error = f"rank {rank}: {err}"
                break
            for (i, j), data in finals.items():
                out.set(i, j, data, precision=out.precision_of(i, j))
    finally:
        for p in procs:
            if error is not None and p.is_alive():
                p.terminate()
            p.join(timeout=10)
            if p.is_alive():
                p.terminate()
    if error is not None:
        raise RuntimeError(error)
    return out
