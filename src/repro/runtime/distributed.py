"""Distributed-memory numeric execution over OS processes.

The paper's runtime executes the Cholesky DAG across MPI ranks (one per
GPU) with the automated conversion strategy deciding each payload's wire
precision.  This module reproduces that execution model with real
message passing: one OS process per rank, per-rank inbox queues, and
payloads that travel **already quantised to the edge's communication
precision** — the sender-side conversion of STC happens where the paper
puts it, and receivers re-quantise to their kernel's needs.

Ranks process the graph in a single *global* topological order: each
rank executes the tasks it owns, blocks on its inbox for remote
payloads, and pushes its outputs to every remote consumer rank.  The
default order is task-id order; a scheduling policy substitutes the
policy-guided topological order from
:func:`repro.runtime.policies.policy_topological_order`, which every
rank derives identically.  Because every blocking wait is for a task
strictly earlier in that shared order, the protocol is deadlock-free by
induction on order positions; because local reads see full-storage
values and remote reads see sender-quantised payloads — exactly the
sequential executor's semantics — the result is bit-identical to
:func:`repro.runtime.executor.execute_numeric` for *every* policy
(asserted in tests).

Prefers the ``fork`` start method (workers inherit the graph and the
input matrix for free) and falls back to ``forkserver``/``spawn`` on
platforms without ``fork`` — every payload crossing the process boundary
is picklable, so all three methods compute identically.  It is a
faithful miniature of an SPMD MPI program rather than a literal MPI
binding (mpi4py is unavailable offline; see DESIGN.md's substitution
table).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import queue as queue_mod
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..faults import FaultInjector, FaultPlan
from ..obs import emit_event, get_registry
from ..obs.alerts import RANK_AGE_GAUGE
from ..obs.live import set_live_gauge
from ..precision.emulate import quantize
from ..precision.formats import Precision
from ..tiles.tilematrix import TiledSymmetricMatrix
from .executor import _run_task
from .task import TaskGraph

__all__ = [
    "DistributedReport",
    "execute_numeric_distributed",
    "pick_mp_context",
]

_DEFAULT_TIMEOUT = 120.0
#: start methods in preference order: cheapest/most-inheriting first
_START_METHODS = ("fork", "forkserver", "spawn")
#: how long an exited-but-silent rank gets to flush its result queue
#: before the parent declares it dead (covers the exit-0 race where the
#: feeder thread is still draining when the process object shows exited)
_EXIT_GRACE = 1.0
#: workers emit a ``rank.heartbeat`` shard event every this many tasks
#: (the shared-memory heartbeat stamp updates on *every* task)
_HEARTBEAT_EVENT_STRIDE = 16


class _RollingDeadline:
    """A timeout that bounds each *wait*, not the whole collection.

    ``timeout`` promises that no single blocking wait outlasts it; every
    received result refreshes the window.  A large grid whose results
    trickle in therefore never times out spuriously — only genuine
    silence for ``timeout`` seconds does.  ``clock`` is injectable for
    deterministic tests.
    """

    def __init__(self, timeout: float, clock=time.monotonic) -> None:
        self.timeout = timeout
        self._clock = clock
        self.refresh()

    def refresh(self) -> None:
        self._expires = self._clock() + self.timeout

    def expired(self) -> bool:
        return self._clock() > self._expires

    def remaining(self) -> float:
        return max(0.0, self._expires - self._clock())


@dataclass(frozen=True)
class DistributedReport:
    """Outcome of a resilient distributed execution.

    ``degraded`` is True when rank loss forced the sequential re-execution
    path (the result is then the sequential executor's, bit-identical to
    a healthy distributed run); ``error`` records the failure that
    triggered it; ``dead_ranks`` the ranks the parent declared dead.
    ``heartbeat_ages`` is the parent's last observation of each rank's
    heartbeat age in seconds (0.0 once the rank reported its result) —
    a *hung* rank, alive but silent, shows up here even though dead-peer
    detection never fires for it.
    """

    matrix: TiledSymmetricMatrix
    degraded: bool = False
    error: str | None = None
    dead_ranks: tuple[int, ...] = ()
    heartbeat_ages: dict[int, float] = field(default_factory=dict)


def pick_mp_context() -> mp.context.BaseContext:
    """The best available multiprocessing context for SPMD workers.

    Prefers ``fork``, falls back to ``forkserver`` then ``spawn``;
    raises a clear :class:`RuntimeError` when the platform supports no
    usable start method (so callers can skip cleanly).
    """
    available = mp.get_all_start_methods()
    for method in _START_METHODS:
        if method in available:
            return mp.get_context(method)
    raise RuntimeError(
        "no usable multiprocessing start method: platform offers "
        f"{available or 'none'}, need one of {list(_START_METHODS)}"
    )


def _seed_values(
    graph: TaskGraph,
    mat: TiledSymmetricMatrix,
    rank: int,
    ingest=None,
) -> dict:
    """Version-0 tiles needed by this rank's tasks, at storage precision.

    One vectorised quantisation pass per storage precision (see
    :func:`repro.runtime.executor._seed_version0`).  With ``ingest`` (a
    :class:`repro.geostats.dataplane.RankIngest`), the raw FP64 tiles
    are *built in-process* from the partitions covering this rank's tile
    footprint — per-rank streaming ingest, where the parent never ships
    tile payloads — then quantised to the same storage precisions, so
    results are bit-identical to the mat-seeded path.
    """
    from ..precision.emulate import quantize_batch

    if ingest is None:
        from .executor import _seed_version0

        return _seed_version0(graph, mat, rank)

    wanted: dict[tuple[int, int, int], object] = {}
    for task in graph:
        if task.rank != rank:
            continue
        for inp in task.inputs:
            if inp.producer is None:
                key = (inp.tile.i, inp.tile.j, inp.tile.version)
                if key not in wanted:
                    wanted[key] = inp.storage_precision
    raw = ingest.build_tiles(sorted({(i, j) for i, j, _v in wanted}))
    by_precision: dict[object, list[tuple[int, int, int]]] = {}
    for key, prec in wanted.items():
        by_precision.setdefault(prec, []).append(key)
    values: dict[tuple[int, int, int], np.ndarray] = {}
    for prec, keys in by_precision.items():
        tiles = quantize_batch([raw[(i, j)] for i, j, _v in keys], prec)
        for key, tile in zip(keys, tiles):
            values[key] = tile
    return values


def _consumer_plan(graph: TaskGraph) -> dict[int, list[tuple[int, Precision]]]:
    """Per producing task: the (remote rank, payload precision) sends."""
    plan: dict[int, list[tuple[int, Precision]]] = {}
    for task in graph:
        for inp in task.inputs:
            if inp.producer is None:
                continue
            producer = graph.tasks[inp.producer]
            if producer.rank == task.rank:
                continue
            sends = plan.setdefault(inp.producer, [])
            entry = (task.rank, inp.payload_precision)
            if entry not in sends:
                sends.append(entry)
    return plan


def _die(spec) -> None:
    """Carry out an armed ``kill_rank`` fault in this process."""
    if spec.mode == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif spec.mode == "exit0":
        # exits "cleanly" without posting a result — exercises the
        # parent's exited-but-pending detection, not just exitcode != 0
        os._exit(0)
    else:  # "exception": the rank reports its own failure
        from ..faults import FaultInjectedError

        raise FaultInjectedError(f"injected kill_rank (mode=exception): {spec.note}")


def _rank_main(
    rank: int,
    graph: TaskGraph,
    mat: TiledSymmetricMatrix,
    inboxes,
    results,
    timeout: float,
    fault_plan: dict | None = None,
    policy: str | None = None,
    shard_dir: str | None = None,
    run_id: str | None = None,
    heartbeats=None,
    ingest=None,
) -> None:
    shard = None
    try:
        injector = FaultInjector(fault_plan)
        values = _seed_values(graph, mat, rank, ingest)
        plan = _consumer_plan(graph)
        inbox = inboxes[rank]
        stash: dict[tuple[int, int, int, int], np.ndarray] = {}
        n_sent = 0  # outbound payload counter for message faults
        n_done = 0  # local task counter for heartbeat events
        if heartbeats is not None:
            # wall clock: shared across processes, unlike monotonic
            heartbeats[rank] = time.time()

        # per-rank trace shard: every task / send / conversion this rank
        # performs, on this shard's own clock, plus its RunStats — merged
        # and clock-aligned by repro.obs.merge (see docs/OBSERVABILITY.md)
        stats = None
        if shard_dir is not None:
            from ..obs.events import EventLog
            from .tracing import RunStats

            shard = EventLog(
                Path(shard_dir) / f"events-rank{rank}.jsonl", run_id=run_id
            )
            stats = RunStats()
            # wall_time is the cross-process alignment anchor: monotonic
            # clocks are per-process, the wall clock is machine-shared
            shard.emit(
                "shard.open",
                attrs={
                    "rank": rank,
                    "wall_time": time.time(),
                    "pid": os.getpid(),
                    "policy": policy,
                },
            )

        def recv(key: tuple[int, int, int, int]) -> np.ndarray:
            while key not in stash:
                # per-wait deadline: `timeout` bounds each blocking read,
                # not the sum of all of them
                i, j, v, p, data = inbox.get(timeout=timeout)
                stash[(i, j, v, p)] = data
            return stash[key]

        if policy is None:
            order = graph.topological_order()
        else:
            # every rank computes the same policy-guided global order,
            # so cross-rank waits stay acyclic (deadlock-free induction)
            from .policies import policy_topological_order

            order = policy_topological_order(graph, policy, nb=mat.nb)
        for tid in order:
            task = graph.tasks[tid]
            if task.rank != rank:
                continue
            kill = injector.kill_at(rank, tid)
            if kill is not None:
                injector.fire(kill, rank=rank, task=tid)
                _die(kill)
            # gather remote inputs
            for inp in task.inputs:
                key3 = (inp.tile.i, inp.tile.j, inp.tile.version)
                if key3 in values:
                    continue
                if inp.producer is None:
                    raise KeyError(f"rank {rank}: missing host tile {key3}")
                payload = recv((*key3, int(inp.payload_precision)))
                values[key3] = payload
            t_task = shard.elapsed() if shard is not None else 0.0
            result = quantize(_run_task(task, values), task.output_precision)
            out_key = (task.output.i, task.output.j, task.output.version)
            values[out_key] = result
            n_done += 1
            if heartbeats is not None:
                heartbeats[rank] = time.time()
            if shard is not None and n_done % _HEARTBEAT_EVENT_STRIDE == 0:
                shard.emit(
                    "rank.heartbeat",
                    attrs={"rank": rank, "n_done": n_done,
                           "wall_time": time.time()},
                )
            if shard is not None:
                t_done = shard.elapsed()
                stats.add_flops(task.precision, task.flops)
                stats.n_tasks += 1
                shard.emit(
                    "rank.task",
                    attrs={
                        "tid": tid,
                        "kind": task.kind,
                        "precision": task.precision,
                        "flops": task.flops,
                        "t_start": t_task,
                        "t_end": t_done,
                    },
                )
            # ship to remote consumers at each edge's wire precision
            for dest, prec in plan.get(tid, ()):
                fault = injector.message_fault(rank, n_sent)
                n_sent += 1
                if fault is not None:
                    injector.fire(fault, rank=rank, dest=dest, message=n_sent - 1)
                    if fault.kind == "drop_message":
                        continue  # the consumer will starve and time out
                    time.sleep(fault.delay_s)
                t_conv = shard.elapsed() if shard is not None else 0.0
                wire = quantize(result, prec)
                if shard is not None:
                    t_send = shard.elapsed()
                    if int(prec) != int(task.output_precision):
                        # sender-side re-encode: the STC pass of the
                        # strategy, charged where the paper charges it
                        stats.add_conversion("stc", t_send - t_conv)
                        shard.emit(
                            "rank.convert",
                            attrs={
                                "tid": tid,
                                "site": "stc",
                                "src": task.output_precision,
                                "dst": prec,
                                "t_start": t_conv,
                                "t_end": t_send,
                            },
                        )
                inboxes[dest].put((*out_key, int(prec), wire))
                if shard is not None:
                    stats.add_nic(prec, int(wire.nbytes))
                    shard.emit(
                        "rank.send",
                        attrs={
                            "tid": tid,
                            "dest": dest,
                            "bytes": int(wire.nbytes),
                            "precision": prec,
                            "t_start": t_send,
                            "t_end": shard.elapsed(),
                        },
                    )

        # report final version of every tile this rank owns
        finals: dict[tuple[int, int], tuple[int, np.ndarray]] = {}
        for task in graph:
            if task.rank != rank:
                continue
            key = (task.output.i, task.output.j)
            v = task.output.version
            if key not in finals or v > finals[key][0]:
                finals[key] = (v, values[(key[0], key[1], v)])
        if shard is not None:
            stats.makespan = shard.elapsed()
            shard.emit(
                "rank.stats",
                attrs={"rank": rank, "stats": stats.to_dict()},
            )
        results.put((rank, {k: v[1] for k, v in finals.items()}, None))
    except BaseException as exc:  # surface worker failures to the parent
        results.put((rank, {}, repr(exc)))
    finally:
        if shard is not None:
            shard.close()


def execute_numeric_distributed(
    graph: TaskGraph,
    mat: TiledSymmetricMatrix,
    n_ranks: int,
    *,
    timeout: float = _DEFAULT_TIMEOUT,
    fault_plan: FaultPlan | dict | None = None,
    degrade: bool = False,
    return_report: bool = False,
    policy: str | None = None,
    shard_dir: str | Path | None = None,
    run_id: str | None = None,
    silent_after: float | None = None,
    ingest=None,
) -> TiledSymmetricMatrix | DistributedReport:
    """Execute the graph numerically across ``n_ranks`` processes.

    ``ingest`` (a :class:`repro.geostats.dataplane.RankIngest`) switches
    version-0 seeding from parent-shipped tiles to per-rank streaming:
    each worker reads only the dataplane partitions its 2D block-cyclic
    tile footprint touches and evaluates the covariance kernel locally.
    Results are bit-identical to seeding from ``mat`` when the manifest
    describes the same ordered locations.

    ``policy`` (a scheduling-policy name; see
    :mod:`repro.runtime.policies`) reorders each rank's local execution
    along the policy-guided global topological order; ``None`` keeps the
    historical task-id order.  Results are bit-identical either way.

    ``shard_dir`` turns on per-rank trace shards: each worker writes
    ``events-rank<k>.jsonl`` (tasks, sends, sender-side conversions, its
    ``RunStats``) on its own clock, and the parent drops a
    ``shard-manifest.json`` carrying its reference wall timestamp, so
    :func:`repro.obs.merge.merge_shards` can align the shards into one
    trace.  Shards are only produced on the real multi-process path
    (``n_ranks >= 2``); the single-rank short-circuit runs the
    sequential executor, which has no ranks to shard.

    ``graph`` must have been built for a process grid with exactly
    ``n_ranks`` ranks (task ``rank`` fields in ``[0, n_ranks)``).
    ``timeout`` bounds every blocking wait — each worker inbox read and
    each parent wait for the *next* result (the collection deadline is
    refreshed whenever a rank reports, so trickling results never time
    out spuriously).  Any pending rank that exits without posting a
    result — crashed (non-zero exit) *or* silently gone (exit 0, e.g.
    killed mid-queue-flush) — is declared dead within
    ``_EXIT_GRACE`` seconds and the execution fails fast.

    Workers stamp a shared-memory heartbeat after every task, so the
    parent can tell a *hung* rank (alive but silent) from a slow one:
    once a pending rank's heartbeat age exceeds ``silent_after``
    (default ``timeout / 2``) the parent emits a
    ``distributed.rank_silent`` obs-event at alert severity — once per
    rank — and publishes per-rank ages as live-plane gauges
    (``rank_heartbeat_age[<r>]``), which the ``rank-silent`` alert rule
    watches.  Silence alone never aborts: the rolling collection
    deadline still owns the timeout decision.  The final observed ages
    land in :attr:`DistributedReport.heartbeat_ages`.

    ``fault_plan`` injects scripted failures (see :mod:`repro.faults`);
    ``degrade=True`` recovers from unrecoverable rank loss by
    re-executing sequentially via
    :func:`repro.runtime.executor.execute_numeric` (bit-identical to a
    healthy distributed run) instead of raising; ``return_report=True``
    returns a :class:`DistributedReport` carrying the matrix plus the
    ``degraded`` flag, error, and dead ranks.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be positive")
    if timeout <= 0:
        raise ValueError("timeout must be positive")
    used = {t.rank for t in graph}
    if used and max(used) >= n_ranks:
        raise ValueError(f"graph uses rank {max(used)} but only {n_ranks} ranks given")

    if n_ranks == 1:
        from .executor import execute_numeric

        out = execute_numeric(graph, mat)
        return DistributedReport(matrix=out) if return_report else out

    plan_dict = None
    if fault_plan is not None:
        plan = fault_plan if isinstance(fault_plan, FaultPlan) else FaultPlan.from_dict(fault_plan)
        plan_dict = plan.to_dict()

    shard_path: str | None = None
    if shard_dir is not None:
        shard_root = Path(shard_dir)
        shard_root.mkdir(parents=True, exist_ok=True)
        # the parent's reference timestamp every shard clock aligns to
        manifest = {
            "schema": "repro.obs.shards/1",
            "wall_time": time.time(),
            "n_ranks": n_ranks,
            "policy": policy,
            "run_id": run_id,
        }
        (shard_root / "shard-manifest.json").write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        shard_path = str(shard_root)

    ctx = pick_mp_context()
    inboxes = [ctx.Queue() for _ in range(n_ranks)]
    results = ctx.Queue()
    # wall-clock heartbeat stamps, one double per rank, shared memory so
    # the parent reads them without any queue traffic
    heartbeats = ctx.Array("d", n_ranks)
    procs = [
        ctx.Process(
            target=_rank_main,
            args=(r, graph, mat, inboxes, results, timeout, plan_dict, policy,
                  shard_path, run_id, heartbeats, ingest),
        )
        for r in range(n_ranks)
    ]
    for p in procs:
        p.start()
    out = mat.copy()
    error: str | None = None
    dead_ranks: tuple[int, ...] = ()
    pending = set(range(n_ranks))
    deadline = _RollingDeadline(timeout)
    exit_seen: dict[int, float] = {}  # rank -> when we first saw it exited
    silent_limit = silent_after if silent_after is not None else timeout / 2.0
    silent_reported: set[int] = set()
    heartbeat_ages: dict[int, float] = {}
    try:
        while pending and error is None:
            try:
                rank, finals, err = results.get(timeout=0.2)
            except queue_mod.Empty:
                # hung-rank visibility: a rank can be alive yet silent
                # (deadlocked wait, delayed message) — dead-peer scans
                # below never see it.  Surface its heartbeat age.
                now_wall = time.time()
                max_age = 0.0
                for r in sorted(pending):
                    stamp = heartbeats[r]
                    if stamp <= 0.0:
                        continue  # worker not started yet
                    age = max(0.0, now_wall - stamp)
                    heartbeat_ages[r] = age
                    set_live_gauge(f"{RANK_AGE_GAUGE}[{r}]", age)
                    if age > max_age:
                        max_age = age
                    if (
                        age > silent_limit
                        and r not in silent_reported
                        and procs[r].is_alive()
                    ):
                        silent_reported.add(r)
                        get_registry().counter(
                            "distributed.rank_silent",
                            "alive ranks whose heartbeat went stale",
                        ).inc()
                        emit_event(
                            "distributed.rank_silent",
                            {"rank": r, "age_seconds": age,
                             "silent_after": silent_limit},
                            severity="alert",
                        )
                set_live_gauge("max_rank_heartbeat_age", max_age)
                # fail fast on peers that exited without posting a result.
                # A rank that finished normally posts *before* exiting, so
                # any exited-but-pending rank is dead — crashed ranks
                # (non-zero exit) immediately, clean exits (code 0, e.g.
                # killed mid-queue-flush or returned early) after a short
                # grace window that lets an in-flight queue flush land.
                now = time.monotonic()
                dead = []
                for r in sorted(pending):
                    code = procs[r].exitcode
                    if code is None:
                        continue
                    if code != 0:
                        dead.append(r)
                    elif now - exit_seen.setdefault(r, now) > _EXIT_GRACE:
                        dead.append(r)
                if dead:
                    codes = ", ".join(f"rank {r} exit {procs[r].exitcode}" for r in dead)
                    error = f"peer rank(s) died without reporting: {codes}"
                    dead_ranks = tuple(dead)
                    break
                if deadline.expired():
                    ages = ", ".join(
                        f"rank {r} hb {heartbeat_ages.get(r, 0.0):.1f}s"
                        for r in sorted(pending)
                    )
                    error = (
                        f"distributed execution timed out after {timeout:g} s"
                        + (f" ({ages})" if ages else "")
                    )
                    break
                continue
            pending.discard(rank)
            heartbeat_ages[rank] = 0.0  # reported = fresh by definition
            set_live_gauge(f"{RANK_AGE_GAUGE}[{rank}]", 0.0)
            deadline.refresh()  # progress: `timeout` bounds each wait, not all
            if err is not None:
                # fail fast: peers may be blocked waiting on the failed rank
                error = f"rank {rank}: {err}"
                dead_ranks = (rank,)
                break
            for (i, j), data in finals.items():
                out.set(i, j, data, precision=out.precision_of(i, j))
    finally:
        for p in procs:
            if error is not None and p.is_alive():
                p.terminate()
            p.join(timeout=10)
            if p.is_alive():
                p.terminate()
    if error is not None:
        registry = get_registry()
        registry.counter(
            "distributed.rank_deaths", "ranks the parent declared dead"
        ).inc(len(dead_ranks) or 1)
        emit_event("distributed.failure",
                   {"error": error, "dead_ranks": list(dead_ranks)})
        if not degrade:
            raise RuntimeError(error)
        # graceful degradation: the distributed protocol is bit-identical
        # to the sequential executor, so re-running sequentially recovers
        # the exact result the healthy run would have produced
        registry.counter(
            "distributed.degraded", "runs recovered via sequential re-execution"
        ).inc()
        from .executor import execute_numeric

        seq = execute_numeric(graph, mat)
        emit_event("distributed.degraded", {"error": error})
        report = DistributedReport(
            matrix=seq, degraded=True, error=error, dead_ranks=dead_ranks,
            heartbeat_ages=dict(heartbeat_ages),
        )
        return report if return_report else report.matrix
    if return_report:
        return DistributedReport(matrix=out, heartbeat_ages=dict(heartbeat_ages))
    return out
