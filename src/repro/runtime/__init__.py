"""PaRSEC-like task runtime: DAG, PTG DSL, simulator, numeric executor."""

from .distributed import DistributedReport, execute_numeric_distributed, pick_mp_context
from .dsl import TaskClassSpec, TaskInstance, unroll
from .dtd import AccessMode, DataAccess, DTDRuntime
from .executor import execute_numeric
from .gantt import ascii_gantt, engine_utilisation, to_chrome_trace
from .parallel_executor import execute_numeric_parallel
from .platform import Platform
from .simulator import SimReport, simulate
from .task import Task, TaskGraph, TaskInput, TileRef
from .tracing import RunStats, Trace, TraceEvent

__all__ = [
    "AccessMode",
    "DTDRuntime",
    "DataAccess",
    "DistributedReport",
    "Platform",
    "RunStats",
    "SimReport",
    "Task",
    "TaskClassSpec",
    "TaskGraph",
    "TaskInput",
    "TaskInstance",
    "TileRef",
    "Trace",
    "TraceEvent",
    "ascii_gantt",
    "engine_utilisation",
    "execute_numeric",
    "execute_numeric_distributed",
    "execute_numeric_parallel",
    "pick_mp_context",
    "simulate",
    "to_chrome_trace",
    "unroll",
]
