"""PaRSEC-like task runtime: DAG, PTG DSL, simulator, numeric executor."""

from .distributed import DistributedReport, execute_numeric_distributed, pick_mp_context
from .dsl import StreamOrderError, TaskClassSpec, TaskInstance, unroll, unroll_stream
from .dtd import AccessMode, DataAccess, DTDRuntime
from .executor import execute_numeric
from .gantt import ascii_gantt, engine_utilisation, to_chrome_trace
from .parallel_executor import execute_numeric_parallel
from .platform import Platform
from .policies import (
    POLICY_NAMES,
    CommAwareEftPolicy,
    CriticalPathPolicy,
    FifoPolicy,
    OocStaticPolicy,
    PanelFirstPolicy,
    SchedulePolicy,
    get_policy,
    policy_topological_order,
    register_policy,
)
from .schedule import StaticSchedule
from .simulator import SimReport, simulate, simulate_replay, simulate_stream
from .task import Task, TaskGraph, TaskInput, TileRef
from .tracing import RunStats, Trace, TraceEvent

__all__ = [
    "AccessMode",
    "CommAwareEftPolicy",
    "CriticalPathPolicy",
    "DTDRuntime",
    "DataAccess",
    "DistributedReport",
    "FifoPolicy",
    "OocStaticPolicy",
    "POLICY_NAMES",
    "PanelFirstPolicy",
    "Platform",
    "SchedulePolicy",
    "RunStats",
    "SimReport",
    "StaticSchedule",
    "StreamOrderError",
    "Task",
    "TaskClassSpec",
    "TaskGraph",
    "TaskInput",
    "TaskInstance",
    "TileRef",
    "Trace",
    "TraceEvent",
    "ascii_gantt",
    "engine_utilisation",
    "execute_numeric",
    "execute_numeric_distributed",
    "execute_numeric_parallel",
    "get_policy",
    "pick_mp_context",
    "policy_topological_order",
    "register_policy",
    "simulate",
    "simulate_replay",
    "simulate_stream",
    "to_chrome_trace",
    "unroll",
    "unroll_stream",
]
