"""Task and task-graph representation (the PaRSEC DAG substrate).

PaRSEC represents an algorithm as a directed acyclic graph whose vertices
are tasks and whose edges are dataflow dependencies (Section III-B).  Our
:class:`TaskGraph` is the materialised equivalent: each :class:`Task`
carries its kernel kind, execution precision, owning rank (the GPU that
runs it, fixed by the block-cyclic owner of the tile it writes), flop
count, and the list of :class:`TaskInput` payloads it consumes.  A
``TaskInput`` names the producing task (or ``None`` for an original
matrix tile staged on the host), the tile/version it carries, and the
precision in which the payload travels — the quantity Algorithm 2
decides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..precision.formats import Precision

__all__ = ["TileRef", "TaskInput", "Task", "TaskGraph"]


@dataclass(frozen=True)
class TileRef:
    """A specific version of one tile: the unit of dataflow."""

    i: int
    j: int
    version: int

    @property
    def coords(self) -> tuple[int, int]:
        return (self.i, self.j)


@dataclass(frozen=True)
class TaskInput:
    """One payload consumed by a task.

    ``producer`` is the task id that wrote this tile version, or ``None``
    when the payload is an original matrix tile resident on the host.
    ``payload_precision`` is the precision the data travels in (storage
    precision under TTC; Algorithm 2's communication precision under
    STC/AUTO).  ``storage_precision`` is the precision the data rests in
    at its source — the pair determines whether a sender-side conversion
    happened upstream.
    """

    producer: int | None
    tile: TileRef
    payload_precision: Precision
    storage_precision: Precision
    elements: int
    #: "in" for read-only operands, "inout" for the accumulator operand
    role: str = "in"


@dataclass
class Task:
    """One node of the DAG."""

    tid: int
    kind: str
    params: tuple[int, ...]
    rank: int
    precision: Precision
    flops: float
    output: TileRef
    output_precision: Precision
    inputs: list[TaskInput] = field(default_factory=list)
    #: sender-side conversion performed once by this task on its own
    #: output before broadcasting (STC); None when payload == storage.
    sender_conversion: tuple[Precision, Precision] | None = None
    #: scheduling priority: lower sorts earlier
    priority: int = 0

    @property
    def label(self) -> str:
        return f"{self.kind}{self.params}"


class TaskGraph:
    """An immutable-after-finalize DAG of :class:`Task` objects."""

    def __init__(self) -> None:
        self.tasks: list[Task] = []
        self._succs: list[list[int]] | None = None
        self._preds: list[list[int]] | None = None

    # -- construction ----------------------------------------------------
    def add(self, task: Task) -> int:
        if self._succs is not None:
            raise RuntimeError("graph already finalized")
        if task.tid != len(self.tasks):
            raise ValueError(f"task ids must be dense: got {task.tid}, expected {len(self.tasks)}")
        self.tasks.append(task)
        return task.tid

    def new_task(self, **kwargs) -> Task:
        """Create, add, and return a task with the next id."""
        task = Task(tid=len(self.tasks), **kwargs)
        self.add(task)
        return task

    def finalize(self) -> None:
        """Freeze the graph and build predecessor/successor adjacency."""
        if self._succs is not None:
            return
        n = len(self.tasks)
        succs: list[list[int]] = [[] for _ in range(n)]
        preds: list[list[int]] = [[] for _ in range(n)]
        for task in self.tasks:
            for inp in task.inputs:
                if inp.producer is None:
                    continue
                if not 0 <= inp.producer < n:
                    raise ValueError(f"task {task.tid} references unknown producer {inp.producer}")
                if inp.producer >= task.tid:
                    raise ValueError(
                        f"task {task.tid} depends on later task {inp.producer}: not a DAG"
                    )
                succs[inp.producer].append(task.tid)
                preds[task.tid].append(inp.producer)
        self._succs = succs
        self._preds = preds

    # -- topology ----------------------------------------------------------
    @property
    def finalized(self) -> bool:
        return self._succs is not None

    def _require_finalized(self) -> None:
        if self._succs is None:
            raise RuntimeError("call finalize() first")

    def successors(self, tid: int) -> Sequence[int]:
        self._require_finalized()
        return self._succs[tid]  # type: ignore[index]

    def predecessors(self, tid: int) -> Sequence[int]:
        self._require_finalized()
        return self._preds[tid]  # type: ignore[index]

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def topological_order(self) -> list[int]:
        """Task ids in a valid execution order.

        Task ids are assigned in construction order and producers must
        precede consumers (enforced in :meth:`finalize`), so the id order
        is itself topological.
        """
        self._require_finalized()
        return list(range(len(self.tasks)))

    def total_flops(self) -> float:
        return sum(t.flops for t in self.tasks)

    def flops_by_precision(self) -> dict[Precision, float]:
        out: dict[Precision, float] = {}
        for t in self.tasks:
            out[t.precision] = out.get(t.precision, 0.0) + t.flops
        return out

    def counts_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for t in self.tasks:
            out[t.kind] = out.get(t.kind, 0) + 1
        return out

    def critical_path_length(self, duration=lambda task: 1.0) -> float:
        """Length of the longest path under a task-duration function."""
        self._require_finalized()
        dist = [0.0] * len(self.tasks)
        best = 0.0
        for tid in self.topological_order():
            task = self.tasks[tid]
            start = max((dist[p] for p in self.predecessors(tid)), default=0.0)
            dist[tid] = start + float(duration(task))
            best = max(best, dist[tid])
        return best
