"""Task and task-graph representation (the PaRSEC DAG substrate).

PaRSEC represents an algorithm as a directed acyclic graph whose vertices
are tasks and whose edges are dataflow dependencies (Section III-B).  Our
:class:`TaskGraph` is the materialised equivalent: each :class:`Task`
carries its kernel kind, execution precision, owning rank (the GPU that
runs it, fixed by the block-cyclic owner of the tile it writes), flop
count, and the list of :class:`TaskInput` payloads it consumes.  A
``TaskInput`` names the producing task (or ``None`` for an original
matrix tile staged on the host), the tile/version it carries, and the
precision in which the payload travels — the quantity Algorithm 2
decides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..precision.formats import Precision

__all__ = ["TileRef", "TaskInput", "Task", "TaskGraph"]


@dataclass(frozen=True)
class TileRef:
    """A specific version of one tile: the unit of dataflow."""

    i: int
    j: int
    version: int

    @property
    def coords(self) -> tuple[int, int]:
        return (self.i, self.j)


@dataclass(frozen=True)
class TaskInput:
    """One payload consumed by a task.

    ``producer`` is the task id that wrote this tile version, or ``None``
    when the payload is an original matrix tile resident on the host.
    ``payload_precision`` is the precision the data travels in (storage
    precision under TTC; Algorithm 2's communication precision under
    STC/AUTO).  ``storage_precision`` is the precision the data rests in
    at its source — the pair determines whether a sender-side conversion
    happened upstream.
    """

    producer: int | None
    tile: TileRef
    payload_precision: Precision
    storage_precision: Precision
    elements: int
    #: "in" for read-only operands, "inout" for the accumulator operand
    role: str = "in"


@dataclass
class Task:
    """One node of the DAG."""

    tid: int
    kind: str
    params: tuple[int, ...]
    rank: int
    precision: Precision
    flops: float
    output: TileRef
    output_precision: Precision
    inputs: list[TaskInput] = field(default_factory=list)
    #: sender-side conversion performed once by this task on its own
    #: output before broadcasting (STC); None when payload == storage.
    sender_conversion: tuple[Precision, Precision] | None = None
    #: scheduling priority: lower sorts earlier
    priority: int = 0

    @property
    def label(self) -> str:
        return f"{self.kind}{self.params}"


class TaskGraph:
    """An immutable-after-finalize DAG of :class:`Task` objects.

    Two construction modes:

    * **materialising** — :meth:`add` / :meth:`new_task` all tasks, then
      :meth:`finalize` builds the adjacency in one pass;
    * **streaming** — :meth:`append` tasks one at a time (adjacency is
      wired incrementally, so the graph is usable as a growing frontier
      while emission continues) and :meth:`retire` drops a task's heavy
      payload once a consumer loop is done with it.  This is the
      append-only frontier API the streaming simulator consumes: live
      memory stays proportional to the emission window, not the DAG.

    Both modes dedupe dependency edges: a task reading two tiles from
    the same producer contributes one predecessor/successor edge, so
    ``in_count`` bookkeeping and degree statistics count *tasks*, not
    payloads.
    """

    def __init__(self) -> None:
        self.tasks: list[Task | None] = []
        self._succs: list[list[int]] | None = None
        self._preds: list[list[int]] | None = None
        self._n_retired = 0

    # -- construction ----------------------------------------------------
    def add(self, task: Task) -> int:
        if self._succs is not None:
            raise RuntimeError("graph already finalized")
        if task.tid != len(self.tasks):
            raise ValueError(f"task ids must be dense: got {task.tid}, expected {len(self.tasks)}")
        self.tasks.append(task)
        return task.tid

    def new_task(self, **kwargs) -> Task:
        """Create, add, and return a task with the next id."""
        task = Task(tid=len(self.tasks), **kwargs)
        self.add(task)
        return task

    def append(self, task: Task) -> int:
        """Streaming construction: add ``task`` and wire its edges now.

        Unlike :meth:`add`, the adjacency is extended immediately (and
        deduped), so :meth:`successors` / :meth:`predecessors` work on
        the graph built so far while more tasks are still being emitted.
        Producers must already be present (emission order must be
        topological).  A graph started with ``append`` reports
        ``finalized`` and rejects :meth:`add`; :meth:`finalize` is a
        no-op seal.
        """
        if self._succs is None:
            if self.tasks:
                raise RuntimeError("cannot mix append() into a graph built with add()")
            self._succs = []
            self._preds = []
        tid = task.tid
        if tid != len(self.tasks):
            raise ValueError(f"task ids must be dense: got {tid}, expected {len(self.tasks)}")
        preds: list[int] = []
        seen: set[int] = set()
        for inp in task.inputs:
            p = inp.producer
            if p is None or p in seen:
                continue
            if not 0 <= p < tid:
                raise ValueError(f"task {tid} references unknown or later producer {p}")
            seen.add(p)
            preds.append(p)
        self.tasks.append(task)
        self._succs.append([])
        self._preds.append(preds)
        for p in preds:
            self._succs[p].append(tid)
        return tid

    def retire(self, tid: int) -> None:
        """Release a consumed task's payload (streaming graphs).

        Drops the :class:`Task` object and its outgoing edge list; the
        integer predecessor lists stay (successors still need them for
        ready-time bookkeeping).  Whole-graph accessors
        (``total_flops``, iteration, …) are off-limits after the first
        retire — this is the tail end of the frontier API, meant for a
        consumer that has already folded the task into its own state.
        """
        self.tasks[tid] = None
        self._succs[tid] = []  # type: ignore[index]
        self._n_retired += 1

    @property
    def n_retired(self) -> int:
        return self._n_retired

    def finalize(self) -> None:
        """Freeze the graph and build predecessor/successor adjacency.

        Parallel edges collapse: a consumer reading several tiles from
        one producer yields a single dependency edge (order preserved).
        """
        if self._succs is not None:
            return
        n = len(self.tasks)
        succs: list[list[int]] = [[] for _ in range(n)]
        preds: list[list[int]] = [[] for _ in range(n)]
        for task in self.tasks:
            seen: set[int] = set()
            for inp in task.inputs:
                if inp.producer is None or inp.producer in seen:
                    continue
                if not 0 <= inp.producer < n:
                    raise ValueError(f"task {task.tid} references unknown producer {inp.producer}")
                if inp.producer >= task.tid:
                    raise ValueError(
                        f"task {task.tid} depends on later task {inp.producer}: not a DAG"
                    )
                seen.add(inp.producer)
                succs[inp.producer].append(task.tid)
                preds[task.tid].append(inp.producer)
        self._succs = succs
        self._preds = preds

    # -- topology ----------------------------------------------------------
    @property
    def finalized(self) -> bool:
        return self._succs is not None

    def _require_finalized(self) -> None:
        if self._succs is None:
            raise RuntimeError("call finalize() first")

    def successors(self, tid: int) -> Sequence[int]:
        self._require_finalized()
        return self._succs[tid]  # type: ignore[index]

    def predecessors(self, tid: int) -> Sequence[int]:
        self._require_finalized()
        return self._preds[tid]  # type: ignore[index]

    def adjacency(self) -> tuple[list[list[int]], list[list[int]]]:
        """``(preds, succs)`` lists, indexed by tid — for hot loops.

        Direct list access avoids a method call per edge in the
        simulator's ready-heap loop; callers must not mutate.
        """
        self._require_finalized()
        return self._preds, self._succs  # type: ignore[return-value]

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def topological_order(self) -> list[int]:
        """Task ids in a valid execution order.

        Task ids are assigned in construction order and producers must
        precede consumers (enforced in :meth:`finalize`), so the id order
        is itself topological.
        """
        self._require_finalized()
        return list(range(len(self.tasks)))

    def total_flops(self) -> float:
        return sum(t.flops for t in self.tasks)

    def flops_by_precision(self) -> dict[Precision, float]:
        out: dict[Precision, float] = {}
        for t in self.tasks:
            out[t.precision] = out.get(t.precision, 0.0) + t.flops
        return out

    def counts_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for t in self.tasks:
            out[t.kind] = out.get(t.kind, 0) + 1
        return out

    def critical_path_length(self, duration=lambda task: 1.0) -> float:
        """Length of the longest path under a task-duration function."""
        self._require_finalized()
        dist = [0.0] * len(self.tasks)
        best = 0.0
        for tid in self.topological_order():
            task = self.tasks[tid]
            start = max((dist[p] for p in self.predecessors(tid)), default=0.0)
            dist[tid] = start + float(duration(task))
            best = max(best, dist[tid])
        return best
