"""Multithreaded numeric execution of a task graph.

PaRSEC's whole point is asynchronous parallel execution; the sequential
:func:`repro.runtime.executor.execute_numeric` validates dataflow
semantics, and this module actually runs the DAG concurrently on host
threads.  NumPy kernels release the GIL inside BLAS, so tile kernels on
independent tiles genuinely overlap.

Scheduling is a thread-pool over the dependency frontier: a task becomes
runnable when its last predecessor completes; ties are broken by a
pluggable :class:`~repro.runtime.policies.SchedulePolicy` (default: the
same panel-first priority the simulator uses).  Results are bit-identical
to the sequential executor — and across policies — because every task
consumes exactly the payloads its inputs name; execution order cannot
change the arithmetic (asserted by tests).
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..obs import span, traced
from ..precision.emulate import quantize
from ..tiles.tilematrix import TiledSymmetricMatrix
from .executor import _run_task, _seed_version0
from .policies import SchedState, SchedulePolicy, resolve_policy
from .task import TaskGraph

__all__ = ["execute_numeric_parallel"]


@traced("executor.parallel")
def execute_numeric_parallel(
    graph: TaskGraph,
    mat: TiledSymmetricMatrix,
    *,
    n_threads: int = 4,
    policy: str | SchedulePolicy | None = None,
) -> TiledSymmetricMatrix:
    """Run the task graph numerically on ``n_threads`` host threads.

    Same contract as :func:`repro.runtime.executor.execute_numeric`.
    ``policy`` orders the ready heap (default panel-first); it changes
    which runnable task a free thread grabs, never the arithmetic.
    """
    if n_threads < 1:
        raise ValueError("n_threads must be positive")
    sched = resolve_policy(policy)
    sched.prepare(graph, None, mat.nb)
    # no engine/cache model here: the explicit null state (nothing
    # resident) keeps residency-aware policies deterministic instead of
    # silently dropping the state argument
    state = SchedState.null()
    out = mat.copy()

    values = _seed_version0(graph, out)

    n = len(graph)
    in_count = [len(graph.predecessors(t)) for t in range(n)]
    lock = threading.Lock()
    ready: list[tuple[float, float, int]] = []  # (*policy key, tid)
    for tid in range(n):
        if in_count[tid] == 0:
            heapq.heappush(ready, (*sched.key(graph.tasks[tid], 0.0, state), tid))
    done = threading.Event()
    errors: list[BaseException] = []
    remaining = [n]

    def run_one(tid: int) -> None:
        task = graph.tasks[tid]
        try:
            with span(
                "task",
                kind=task.kind,
                tile=(task.output.i, task.output.j),
                precision=task.precision.name,
            ):
                result = quantize(_run_task(task, values), task.output_precision)
        except BaseException as exc:  # propagate through the pool
            with lock:
                errors.append(exc)
                done.set()
            return
        newly_ready = []
        with lock:
            values[(task.output.i, task.output.j, task.output.version)] = result
            for succ in graph.successors(tid):
                in_count[succ] -= 1
                if in_count[succ] == 0:
                    newly_ready.append(succ)
            remaining[0] -= 1
            if remaining[0] == 0:
                done.set()
            for s in newly_ready:
                heapq.heappush(ready, (*sched.key(graph.tasks[s], 0.0, state), s))

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        # simple work loop: each worker pops the highest-priority ready
        # task; exits when the graph is drained or an error surfaces
        def worker() -> None:
            while not done.is_set():
                with lock:
                    if errors or (remaining[0] == 0):
                        return
                    if not ready:
                        task_id = None
                    else:
                        task_id = heapq.heappop(ready)[-1]
                if task_id is None:
                    done.wait(timeout=0.001)
                    continue
                run_one(task_id)

        futures = [pool.submit(worker) for _ in range(n_threads)]
        for f in futures:
            f.result()

    if errors:
        raise errors[0]
    if remaining[0] != 0:
        raise RuntimeError(f"parallel execution stalled with {remaining[0]} tasks left")

    final: dict[tuple[int, int], tuple[int, np.ndarray]] = {}
    for (i, j, v), data in values.items():
        if j > i:
            continue
        if (i, j) not in final or v > final[(i, j)][0]:
            final[(i, j)] = (v, data)
    for (i, j), (_v, data) in final.items():
        out.set(i, j, data, precision=out.precision_of(i, j))
    return out
