"""Pluggable scheduling policies for the task runtime.

The paper's performance results hinge on PaRSEC's asynchronous
priority-driven scheduler overlapping communication, conversion, and
compute; which tasks the scheduler favours when several are ready at
once is exactly the scheduler-sensitivity behind the STC-vs-TTC
comparisons (Section V) and the lookahead discussion of the tile-centric
mixed-precision GEMM line of work.  This module makes that choice a
first-class, swappable object instead of a heuristic hard-coded in
:func:`repro.runtime.simulator.simulate`.

A :class:`SchedulePolicy` ranks *ready* tasks: the simulator (and the
numeric executors) keep a heap of ready tasks keyed by the explicit
triple ``(*policy.key(task, ready_t), tid)`` — the policy owns the
first two comparator fields, the task id always closes the key so every
policy is fully deterministic.  Only tasks whose predecessors have all
been scheduled enter the heap, so a policy can change *timing*
(makespan, overlap, cache behaviour) but never *numerics* (every task
still consumes exactly the payloads its inputs name).

Shipped policies
----------------
``panel-first``    the classic Cholesky priority (panel tasks of earlier
                   iterations first) the simulator always used; the
                   default, and regression-pinned to be bit-identical to
                   the pre-policy scheduler.
``fifo``           degenerate baseline: ready ties broken by task id
                   (submission order) only.
``critical-path``  priorities from a backward longest-path pass over the
                   task graph under the perfmodel cost estimates: among
                   ready tasks, the one with the longest remaining
                   dependent chain is committed first (HEFT's upward
                   rank restricted to owner-computes) — the lookahead
                   that keeps the panel chain ahead of trailing updates.
``comm-aware-eft`` earliest-finish-time: ready tasks are ordered by
                   their estimated completion instant — ready time plus
                   h2d/NIC staging for inputs not resident on the owning
                   GPU, datatype conversions, and the kernel — so tasks
                   whose tiles are hot on their GPU go first and stay
                   resident.

Adding a policy: subclass :class:`SchedulePolicy`, implement ``key``
(and optionally ``prepare``), and register the class with
:func:`register_policy`.  See ``docs/SCHEDULING.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..perfmodel.kernels import conversion_time, kernel_time
from ..precision.formats import bytes_per_element

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .platform import Platform
    from .task import Task, TaskGraph

__all__ = [
    "SchedulePolicy",
    "SchedState",
    "PanelFirstPolicy",
    "FifoPolicy",
    "CriticalPathPolicy",
    "CommAwareEftPolicy",
    "OocStaticPolicy",
    "POLICY_NAMES",
    "get_policy",
    "register_policy",
    "resolve_policy",
]


@dataclass
class SchedState:
    """Read-only snapshot of simulator state a policy may consult.

    Only :class:`CommAwareEftPolicy` uses it today.
    ``resident(rank, key)`` answers whether a payload key already sits
    in ``rank``'s GPU cache; ``host_resident(node, key)`` whether the
    node's host memory holds it.

    Callers without a memory-hierarchy model (the numeric executors,
    graph-level orderings) pass :meth:`null` — an explicit
    nothing-is-resident state — rather than ``None``, so a
    residency-aware policy degrades to its *pessimistic* static
    estimate deterministically instead of silently losing the state
    argument.  A policy must still tolerate ``state=None`` (same
    static fallback) for direct callers.
    """

    resident: Callable[[int, tuple], bool]
    host_resident: Callable[[int, tuple], bool]

    @staticmethod
    def null() -> "SchedState":
        """The explicit no-residency-information state.

        Every payload reports non-resident, so e.g. ``comm-aware-eft``
        charges full staging for all inputs — a deterministic,
        graph-only score suitable outside the simulator (numeric
        executors, :func:`policy_topological_order`).
        """
        return SchedState(
            resident=lambda rank, key: False,
            host_resident=lambda node, key: False,
        )


class SchedulePolicy:
    """Orders the ready heap; lower keys pop (= commit to their engine) first."""

    #: registry name; subclasses must override
    name: str = "abstract"

    #: True when ``prepare`` precomputes per-task data over the whole
    #: graph (upward ranks, static costs) — such policies cannot drive
    #: :func:`repro.runtime.simulator.simulate_stream`, which never
    #: materialises the graph.
    requires_full_graph: bool = False

    def prepare(self, graph: "TaskGraph", platform: "Platform | None", nb: int) -> None:
        """Precompute whatever ``key`` needs; called once per run."""

    def key(
        self, task: "Task", ready_t: float, state: SchedState | None = None
    ) -> tuple[float, float]:
        """The first two heap-comparator fields for a ready ``task``.

        The scheduler appends ``task.tid`` as the final field, so the
        full comparator is the explicit triple ``(*key, tid)``.  A task
        enters the heap only once all its predecessors are scheduled;
        popping in any order is a valid schedule, so the key expresses
        pure preference (which ready task each engine commits to next).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class PanelFirstPolicy(SchedulePolicy):
    """The original scheduler: ready-time order, ties by static priority.

    Comparator ``(ready, task.priority, tid)`` — for the Cholesky PTG
    the priority field is ``4·k + kind``, so panel tasks (POTRF/TRSM) of
    earlier iterations sort before trailing updates among equal-ready
    tasks.  This policy is pinned bit-identical to the pre-policy
    simulator.
    """

    name = "panel-first"

    def key(
        self, task: "Task", ready_t: float, state: SchedState | None = None
    ) -> tuple[float, float]:
        return (ready_t, task.priority)


class FifoPolicy(SchedulePolicy):
    """Degenerate baseline: ready-time order, ties by task id alone."""

    name = "fifo"

    def key(
        self, task: "Task", ready_t: float, state: SchedState | None = None
    ) -> tuple[float, float]:
        return (ready_t, 0.0)


def _task_cost(task: "Task", platform: "Platform | None", nb: int) -> float:
    """Perfmodel seconds charged to ``task``'s compute stream.

    Kernel time plus every conversion pass the simulator will bill the
    task (receiver-side re-encodes and the one-off STC pass), priced on
    the platform GPU — the same :mod:`repro.perfmodel` estimates the
    simulator itself uses, so graph-level longest paths are commensurate
    with simulated makespans.  Without a platform (numeric executors)
    the cost degrades to flops, which preserves the ordering intent.
    """
    if platform is None:
        return float(task.flops)
    from ..core.conversion import needs_conversion

    gpu = platform.gpu
    seconds = kernel_time(gpu, task.kind, nb, task.precision)
    for inp in task.inputs:
        if needs_conversion(inp.payload_precision, task.precision, inp.role):
            seconds += conversion_time(gpu, inp.elements, inp.payload_precision, task.precision)
    if task.sender_conversion is not None:
        src, dst = task.sender_conversion
        seconds += conversion_time(gpu, nb * nb, src, dst)
    return seconds


class CriticalPathPolicy(SchedulePolicy):
    """Backward longest-path (upward-rank) lookahead.

    ``rank_u(t) = cost(t) + max over successors of rank_u(s)`` — the
    length of the longest dependent chain hanging off each task under
    the perfmodel cost estimates.  The comparator is
    ``(-rank_u, ready, tid)``: among ready tasks, the one with the most
    remaining critical work is committed to its engine first even when a
    shorter task became ready earlier — the list-scheduling counterpart
    of PaRSEC's critical-path lookahead, which keeps panel chains ahead
    of trailing updates.  The same longest-path structure is what
    :func:`repro.obs.analysis.critical_path` recovers from a finished
    trace; here the pass runs a priori on the graph.
    """

    name = "critical-path"
    requires_full_graph = True

    def __init__(self) -> None:
        self._upward: list[float] = []

    def prepare(self, graph: "TaskGraph", platform: "Platform | None", nb: int) -> None:
        n = len(graph)
        upward = [0.0] * n
        # task ids are topological (finalize() enforces producer < consumer),
        # so one reverse sweep is the whole backward pass
        for tid in range(n - 1, -1, -1):
            tail = max((upward[s] for s in graph.successors(tid)), default=0.0)
            upward[tid] = _task_cost(graph.tasks[tid], platform, nb) + tail
        self._upward = upward

    def key(
        self, task: "Task", ready_t: float, state: SchedState | None = None
    ) -> tuple[float, float]:
        return (-self._upward[task.tid], ready_t)


class CommAwareEftPolicy(SchedulePolicy):
    """Earliest-finish-time with per-input staging charges.

    Each ready task is keyed by its estimated completion instant: ready
    time plus the seconds it still needs — every input payload not
    resident on the owning GPU is charged its h2d copy (plus the
    producer's d2h and one NIC hop when the consumer node's host doesn't
    hold it either), conversions and the kernel are priced by the
    perfmodel — and the earliest-finishing task commits first.  Hot
    tiles — inputs already on the GPU — make a task cheap, so it runs
    before the LRU can evict them; cold tasks sort later, batching their
    transfers.  Residency is snapshotted when the task enters the heap.
    """

    name = "comm-aware-eft"
    requires_full_graph = True

    def __init__(self) -> None:
        self._platform: "Platform | None" = None
        self._nb = 0
        self._static: list[float] = []

    def prepare(self, graph: "TaskGraph", platform: "Platform | None", nb: int) -> None:
        self._platform = platform
        self._nb = nb
        self._static = [_task_cost(t, platform, nb) for t in graph.tasks]

    def key(
        self, task: "Task", ready_t: float, state: SchedState | None = None
    ) -> tuple[float, float]:
        seconds = self._static[task.tid]
        platform = self._platform
        if platform is None or state is None:
            return (ready_t + seconds, 0.0)
        gpu = platform.gpu
        link_lat = gpu.host_link_latency
        link_bw = gpu.host_link_bandwidth
        nic_lat = platform.node.nic_latency
        nic_bw = platform.node.nic_bandwidth
        node = platform.node_of(task.rank)
        for inp in task.inputs:
            key = (inp.tile.i, inp.tile.j, inp.tile.version, inp.payload_precision)
            if state.resident(task.rank, key):
                continue
            nbytes = inp.elements * bytes_per_element(inp.payload_precision)
            seconds += link_lat + nbytes / link_bw  # h2d at the consumer
            if not state.host_resident(node, key):
                # producer's d2h plus (pessimistically) one NIC hop
                seconds += link_lat + nbytes / link_bw
                seconds += nic_lat + nbytes / nic_bw
        return (ready_t + seconds, 0.0)


class OocStaticPolicy(SchedulePolicy):
    """Residency-driven ordering for out-of-core (larger-than-memory) runs.

    Among ready tasks, prefer the one whose inputs would move the fewest
    bytes *right now*: GPU-resident inputs are free, host-resident
    inputs cost their h2d copy, and inputs that fell out of both tiers
    (disk spill or a remote origin) are weighted by the full re-stage
    chain.  Hot tiles are therefore consumed while they are still
    resident — before the LRU can shed them — which is what minimises
    eviction and spill traffic when device+host capacity cannot hold the
    working set (the static-residency planning of arXiv 2410.09819,
    folded into list scheduling).  Ties break on ready time, then the
    panel priority, so in-memory runs degrade to a panel-ish order.

    Frontier-local (``requires_full_graph = False``): the score uses
    only the task's own inputs plus the live residency snapshot, so the
    policy drives :func:`~repro.runtime.simulator.simulate_stream` —
    out-of-core *and* out-of-DAG at once.
    """

    name = "ooc-static"

    #: re-stage chain weight for an input resident in neither tier:
    #: d2h/disk at the origin, a possible NIC hop, then h2d — several
    #: link crossings vs the single h2d of a host hit
    MISS_WEIGHT = 4.0

    def __init__(self) -> None:
        self._platform: "Platform | None" = None

    def prepare(self, graph: "TaskGraph", platform: "Platform | None", nb: int) -> None:
        self._platform = platform

    def key(
        self, task: "Task", ready_t: float, state: SchedState | None = None
    ) -> tuple[float, float]:
        platform = self._platform
        if platform is None or state is None:
            return (ready_t, task.priority)
        rank = task.rank
        node = platform.node_of(rank)
        penalty = 0.0
        for inp in task.inputs:
            key = (inp.tile.i, inp.tile.j, inp.tile.version, inp.payload_precision)
            if state.resident(rank, key):
                continue
            nbytes = inp.elements * bytes_per_element(inp.payload_precision)
            if state.host_resident(node, key):
                penalty += nbytes
            else:
                penalty += self.MISS_WEIGHT * nbytes
        return (penalty, ready_t + 1e-9 * task.priority)


#: name -> zero-arg policy factory (classes are stateful per run)
_REGISTRY: dict[str, Callable[[], SchedulePolicy]] = {}


#: registered policy names, registration order (panel-first is default);
#: rebuilt by :func:`register_policy` — import from this module at call
#: time to observe late registrations
POLICY_NAMES: tuple[str, ...] = ()


def register_policy(factory: Callable[[], SchedulePolicy], name: str | None = None) -> None:
    """Register a policy factory under ``name`` (default: its ``name`` attr).

    Registered names join :data:`POLICY_NAMES` and become valid for
    every ``policy=`` argument, ``--policy`` flag, and the
    ``RunSpec.policy`` sweep axis.
    """
    global POLICY_NAMES
    name = name or factory().name
    _REGISTRY[name] = factory
    POLICY_NAMES = tuple(_REGISTRY)


for _cls in (PanelFirstPolicy, FifoPolicy, CriticalPathPolicy, CommAwareEftPolicy,
             OocStaticPolicy):
    register_policy(_cls)


def get_policy(name: str) -> SchedulePolicy:
    """A fresh policy instance for ``name``; raises on unknown names."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from None


def resolve_policy(policy: "str | SchedulePolicy | None") -> SchedulePolicy:
    """Accept a policy name, instance, or None (→ the default policy)."""
    if policy is None:
        return PanelFirstPolicy()
    if isinstance(policy, SchedulePolicy):
        return policy
    return get_policy(policy)


def policy_topological_order(graph: "TaskGraph", policy: "str | SchedulePolicy | None",
                             *, nb: int = 0,
                             platform: "Platform | None" = None) -> list[int]:
    """A policy-guided topological order of the whole graph.

    Kahn's algorithm with the frontier heap keyed ``(*policy.key, tid)``
    at ready time 0: the result is a valid execution order that agrees
    with the policy's preferences, *globally consistent* across ranks —
    which is what the distributed executor needs for its
    deadlock-freedom induction (every blocking wait is for a task
    strictly earlier in this shared order).

    There is no engine/cache model at this level, so policies see the
    explicit :meth:`SchedState.null` state (nothing resident):
    residency-aware policies score every payload as needing staging —
    deterministic and rank-independent, which the shared-order contract
    requires.
    """
    import heapq

    pol = resolve_policy(policy)
    pol.prepare(graph, platform, nb)
    state = SchedState.null()
    n = len(graph)
    in_count = [len(graph.predecessors(t)) for t in range(n)]
    heap = [
        (*pol.key(graph.tasks[tid], 0.0, state), tid) for tid in range(n) if in_count[tid] == 0
    ]
    heapq.heapify(heap)
    order: list[int] = []
    while heap:
        tid = heapq.heappop(heap)[-1]
        order.append(tid)
        for succ in graph.successors(tid):
            in_count[succ] -= 1
            if in_count[succ] == 0:
                heapq.heappush(heap, (*pol.key(graph.tasks[succ], 0.0, state), succ))
    if len(order) != n:
        raise RuntimeError(f"cycle: ordered {len(order)}/{n} tasks")
    return order


# re-exported convenience: the cost model a graph-level lower bound uses
def graph_cost_lower_bound(graph: "TaskGraph", platform: "Platform", nb: int) -> float:
    """Critical-path lower bound on any schedule's makespan.

    The longest dependency chain under kernel-only perfmodel costs —
    conversions and transfers only add time, so every simulated makespan
    is ≥ this bound regardless of policy (property-tested).
    """
    gpu = platform.gpu
    return graph.critical_path_length(
        duration=lambda t: kernel_time(gpu, t.kind, nb, t.precision)
    )
