"""Numeric execution of a Cholesky task graph.

The simulator prices a DAG in time; this module *computes* it, running the
same task graph through the numeric tile kernels with payload
quantisation applied exactly where the conversion strategy puts it.  It
exists so tests can assert that the DAG the PTG unrolls is the same
algorithm as the sequential reference (:func:`repro.core.cholesky.mp_cholesky`)
— same dataflow, bit-identical results.

Input-ordering convention of the Cholesky PTG (relied upon here):

* ``POTRF(k)``         reads ``[C(k,k) inout]``
* ``TRSM(m,k)``        reads ``[L(k,k) in, C(m,k) inout]``
* ``SYRK(m,k)``        reads ``[L(m,k) in, C(m,m) inout]``
* ``GEMM(m,n,k)``      reads ``[L(m,k) in, L(n,k) in, C(m,n) inout]``
"""

from __future__ import annotations

import numpy as np

from ..obs import span
from ..precision.emulate import quantize, quantize_batch
from ..tiles import kernels as tk
from ..tiles.tilematrix import TiledSymmetricMatrix
from .task import Task, TaskGraph

__all__ = ["execute_numeric"]


def _payload(values: dict, inp) -> np.ndarray:
    """Fetch one input payload, applying its communication quantisation."""
    key = (inp.tile.i, inp.tile.j, inp.tile.version)
    data = values[key]
    return quantize(data, inp.payload_precision)


def _seed_version0(
    graph: TaskGraph, mat: TiledSymmetricMatrix, rank: int | None = None
) -> dict:
    """Version-0 tiles the graph reads, quantised to storage precision.

    All tiles sharing a storage precision go through one
    :func:`quantize_batch` pass (the generation-phase cast of Section V,
    vectorised) instead of one quantise call per tile.  ``rank``
    restricts the scan to that rank's tasks (the distributed executor's
    per-shard seeding).
    """
    wanted: dict[tuple[int, int, int], object] = {}
    for task in graph:
        if rank is not None and task.rank != rank:
            continue
        for inp in task.inputs:
            if inp.producer is None:
                key = (inp.tile.i, inp.tile.j, inp.tile.version)
                if key not in wanted:
                    wanted[key] = inp.storage_precision
    by_precision: dict[object, list[tuple[int, int, int]]] = {}
    for key, prec in wanted.items():
        by_precision.setdefault(prec, []).append(key)
    values: dict[tuple[int, int, int], np.ndarray] = {}
    for prec, keys in by_precision.items():
        tiles = quantize_batch([mat.get(i, j) for i, j, _v in keys], prec)
        for key, tile in zip(keys, tiles):
            values[key] = tile
    return values


def execute_numeric(graph: TaskGraph, mat: TiledSymmetricMatrix) -> TiledSymmetricMatrix:
    """Run the task graph numerically against the tiles of ``mat``.

    ``mat`` provides the version-0 tiles; the returned matrix holds the
    Cholesky factor with the same storage-precision map the graph's
    output precisions dictate.
    """
    out = mat.copy()
    # version-0 values at storage precision (generation-phase cast),
    # one vectorised quantisation pass per storage precision
    values = _seed_version0(graph, out)

    with span("executor.sequential", n_tasks=len(graph)):
        for tid in graph.topological_order():
            task = graph.tasks[tid]
            with span(
                "task",
                kind=task.kind,
                tile=(task.output.i, task.output.j),
                precision=task.precision.name,
            ):
                result = _run_task(task, values)
                # store at the task's output (storage) precision
                result = quantize(result, task.output_precision)
            values[(task.output.i, task.output.j, task.output.version)] = result

    # collect the final version of every tile into the output matrix
    final: dict[tuple[int, int], tuple[int, np.ndarray]] = {}
    for (i, j, v), data in values.items():
        if j > i:
            continue
        if (i, j) not in final or v > final[(i, j)][0]:
            final[(i, j)] = (v, data)
    for (i, j), (_v, data) in final.items():
        out.set(i, j, data, precision=out.precision_of(i, j))
    return out


def _run_task(task: Task, values: dict) -> np.ndarray:
    kind = task.kind
    if kind == "POTRF":
        c = _payload(values, task.inputs[0])
        return np.tril(tk.potrf(c))
    if kind == "TRSM":
        l_kk, c_mk = (_payload(values, i) for i in task.inputs)
        return tk.trsm(l_kk, c_mk, precision=task.precision)
    if kind == "SYRK":
        panel_inp, c_inp = task.inputs
        panel = _payload(values, panel_inp)
        c = _payload(values, c_inp)
        return tk.syrk(panel, c, precision=panel_inp.payload_precision)
    if kind == "GEMM":
        a_inp, b_inp, c_inp = task.inputs
        a = _payload(values, a_inp)
        b = _payload(values, b_inp)
        c = _payload(values, c_inp)
        return tk.gemm(a, b, c, precision=task.precision)
    raise ValueError(f"unknown task kind {kind!r}")
