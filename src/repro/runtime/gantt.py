"""Trace visualisation and export (PaRSEC-instrumentation stand-in).

The paper's analyses lean on PaRSEC's instrumentation tooling (ref [9]).
This module gives the simulated traces the same affordances:

* :func:`ascii_gantt` — a quick terminal Gantt chart per rank/engine;
* :func:`to_chrome_trace` — Chrome ``about://tracing`` / Perfetto JSON,
  one row per (rank, engine), kernels coloured by precision;
* :func:`engine_utilisation` — per-engine busy fractions.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from .tracing import TraceEvent

__all__ = ["ascii_gantt", "to_chrome_trace", "engine_utilisation"]

#: obs-event types rendered as Perfetto instant events (degraded-run
#: markers: injected faults, retries, give-ups, dead/failed work)
INSTANT_EVENT_TYPES = frozenset({
    "fault",
    "retry",
    "retry.gave_up",
    "sweep.point_failed",
    "distributed.failure",
    "distributed.degraded",
    "montecarlo.replica_failed",
})

_GLYPH = {
    "POTRF": "P",
    "TRSM": "T",
    "SYRK": "S",
    "GEMM": "G",
    "CONVERT": "c",
    "LOAD": "l",
    "STAGE": "s",
    "EVICT": "e",
    "SEND": "n",
}


def _rows(events: Sequence[TraceEvent]) -> list[tuple[tuple[int, str], list[TraceEvent]]]:
    rows: dict[tuple[int, str], list[TraceEvent]] = {}
    for ev in events:
        rows.setdefault((ev.rank, ev.engine), []).append(ev)
    return sorted(rows.items())


def ascii_gantt(
    events: Sequence[TraceEvent],
    makespan: float | None = None,
    *,
    width: int = 100,
) -> str:
    """Render the trace as a fixed-width ASCII Gantt chart.

    One character cell covers ``makespan / width`` seconds; the glyph of
    the event covering most of a cell wins (idle = '.').
    """
    events = list(events)
    if not events:
        return "(empty trace)"
    if makespan is None:
        makespan = max(e.t_end for e in events)
    if makespan <= 0:
        return "(zero-length trace)"
    dt = makespan / width
    lines = []
    for (rank, engine), evs in _rows(events):
        cells = ["."] * width
        cover = [0.0] * width
        for ev in evs:
            glyph = _GLYPH.get(ev.kind, "#")
            first = max(0, int(ev.t_start / dt))
            last = min(width - 1, int(max(ev.t_start, ev.t_end - 1e-18) / dt))
            for c in range(first, last + 1):
                cell_lo, cell_hi = c * dt, (c + 1) * dt
                overlap = min(ev.t_end, cell_hi) - max(ev.t_start, cell_lo)
                if overlap > cover[c]:
                    cover[c] = overlap
                    cells[c] = glyph
        lines.append(f"r{rank:<3}{engine:<8}|{''.join(cells)}|")
    legend = "P/T/S/G kernels  c convert  l load  s stage  e evict  n net  . idle"
    return "\n".join(lines) + f"\n[{legend}]"


_TID = {"compute": 0, "h2d": 1, "d2h": 2, "nic": 3}


def _counter_events(events: Sequence[TraceEvent]) -> list[dict]:
    """Derive Perfetto counter tracks from the event stream.

    Three derived counters per rank, sampled at every change point:

    * ``gpu pool bytes`` — resident bytes in the GPU memory pool
      (h2d LOADs add at completion, d2h EVICTs subtract at start);
    * ``h2d inflight bytes`` / ``d2h inflight bytes`` — bytes currently
      on the wire of each copy engine;
    * ``nic bytes (cum)`` — cumulative bytes injected by each node's NIC;
    * ``conversions (cum)`` — running count of CONVERT compute events.
    """
    # (ts_us, rank, track, delta, cumulative?)
    deltas: list[tuple[float, int, str, float]] = []
    for ev in events:
        if ev.engine == "nic":
            deltas.append((ev.t_end * 1e6, ev.rank, "nic bytes (cum)", ev.bytes))
        elif ev.engine == "h2d":
            deltas.append((ev.t_start * 1e6, ev.rank, "h2d inflight bytes", ev.bytes))
            deltas.append((ev.t_end * 1e6, ev.rank, "h2d inflight bytes", -ev.bytes))
            if ev.kind == "LOAD":
                deltas.append((ev.t_end * 1e6, ev.rank, "gpu pool bytes", ev.bytes))
        elif ev.engine == "d2h":
            deltas.append((ev.t_start * 1e6, ev.rank, "d2h inflight bytes", ev.bytes))
            deltas.append((ev.t_end * 1e6, ev.rank, "d2h inflight bytes", -ev.bytes))
            if ev.kind == "EVICT":
                deltas.append((ev.t_start * 1e6, ev.rank, "gpu pool bytes", -ev.bytes))
        elif ev.engine == "compute" and ev.kind == "CONVERT":
            deltas.append((ev.t_end * 1e6, ev.rank, "conversions (cum)", 1))
    running: dict[tuple[int, str], float] = {}
    out: list[dict] = []
    for ts, rank, track, delta in sorted(deltas, key=lambda d: (d[0], d[1], d[2])):
        value = running.get((rank, track), 0.0) + delta
        running[(rank, track)] = value
        out.append(
            {
                "name": track,
                "ph": "C",
                "ts": ts,
                "pid": rank,
                "args": {"value": value},
            }
        )
    return out


def _metadata_events(events: Sequence[TraceEvent]) -> list[dict]:
    """Process/thread naming so Perfetto shows "rank N" / engine rows."""
    ranks = sorted({ev.rank for ev in events})
    rows = sorted({(ev.rank, ev.engine) for ev in events})
    out: list[dict] = []
    for rank in ranks:
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
        out.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": rank,
                "args": {"sort_index": rank},
            }
        )
    for rank, engine in rows:
        tid = _TID.get(engine, 4)
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": rank,
                "tid": tid,
                "args": {"name": engine},
            }
        )
        out.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": rank,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    return out


def _instant_events(obs_events: Sequence[Mapping]) -> list[dict]:
    """Render fault/retry telemetry records as Perfetto instant events.

    ``obs_events`` are JSONL records from :func:`repro.obs.read_events`;
    every record whose ``type`` is in :data:`INSTANT_EVENT_TYPES` becomes
    a process-scoped instant marker, so degraded runs are visually
    distinguishable in the trace viewer.  Timestamps are the event log's
    monotonic seconds — the same clock only when the log was opened at
    t=0 of the trace, which is close enough for spotting *that* and
    roughly *where* faults fired.
    """
    out: list[dict] = []
    for rec in obs_events:
        type_ = rec.get("type")
        if type_ not in INSTANT_EVENT_TYPES:
            continue
        attrs = rec.get("attrs") or {}
        rank = attrs.get("rank")
        out.append(
            {
                "name": type_,
                "cat": "faults",
                "ph": "i",
                "ts": float(rec.get("ts", 0.0)) * 1e6,
                "pid": int(rank) if isinstance(rank, (int, float)) else 0,
                "tid": _TID["compute"],
                "s": "p" if isinstance(rank, (int, float)) else "g",
                "args": dict(attrs),
            }
        )
    return out


def to_chrome_trace(
    events: Sequence[TraceEvent],
    *,
    counters: bool = False,
    obs_events: Sequence[Mapping] | None = None,
    metadata: Mapping[str, object] | None = None,
) -> str:
    """Serialise the trace to Chrome/Perfetto trace-event JSON.

    Slice events come first, sorted by timestamp (stable output for
    diffing); ``counters=True`` appends the derived counter tracks
    (memory-pool occupancy, in-flight copy bytes, cumulative NIC bytes
    and conversions); ``obs_events`` (JSONL records from an event log)
    adds fault/retry instant markers; process/thread metadata events
    close the stream so Perfetto labels every row.  ``metadata`` lands
    as the top-level ``"metadata"`` object (Perfetto surfaces it under
    Info & stats) — e.g. the scheduling policy that produced the trace.
    """
    ordered = sorted(events, key=lambda e: (e.t_start, e.rank, _TID.get(e.engine, 4)))
    out = []
    for ev in ordered:
        args = {
            "precision": ev.precision.name if ev.precision is not None else "",
            "bytes": ev.bytes,
            "flops": ev.flops,
        }
        if ev.site is not None:
            args["site"] = ev.site
            args["src_precision"] = (
                ev.src_precision.name if ev.src_precision is not None else ""
            )
            args["dst_precision"] = (
                ev.dst_precision.name if ev.dst_precision is not None else ""
            )
        out.append(
            {
                "name": ev.kind,
                "cat": ev.engine,
                "ph": "X",
                "ts": ev.t_start * 1e6,  # microseconds
                "dur": max(ev.t_end - ev.t_start, 0.0) * 1e6,
                "pid": ev.rank,
                "tid": _TID.get(ev.engine, 4),
                "args": args,
            }
        )
    if counters:
        out.extend(_counter_events(ordered))
    if obs_events:
        out.extend(_instant_events(obs_events))
    out.extend(_metadata_events(ordered))
    doc: dict[str, object] = {"traceEvents": out, "displayTimeUnit": "ms"}
    if metadata:
        doc["metadata"] = dict(metadata)
    return json.dumps(doc)


def engine_utilisation(
    events: Sequence[TraceEvent], makespan: float
) -> dict[tuple[int, str], float]:
    """Busy fraction per (rank, engine) over the makespan."""
    if makespan <= 0:
        return {}
    out: dict[tuple[int, str], float] = {}
    for key, evs in _rows(events):
        busy = sum(max(0.0, e.t_end - e.t_start) for e in evs)
        out[key] = min(1.0, busy / makespan)
    return out
