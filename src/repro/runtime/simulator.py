"""Discrete-event simulation of a task graph on a GPU platform.

This is the substitute for executing PaRSEC on real Summit/Guyot/Haxane
hardware.  Each rank (= one GPU) has three engines — a serial compute
stream, an h2d copy engine, and a d2h copy engine — and each node has an
injection NIC.  Tasks run on the rank that owns the tile they write
(owner-computes, as in the paper's PTG); every payload a task consumes is
tracked through the memory hierarchy:

* produced on the same GPU → free (unless evicted meanwhile);
* on another GPU of the same node → d2h at the producer, h2d at the
  consumer, staged through host memory;
* on another node → d2h, NIC message, h2d.

Data is cached per GPU under an LRU policy keyed by
``(tile, version, payload precision)``.  Every eviction is counted;
evictions flush through the d2h engine when the entry is dirty or the
host holds no copy of the key, while clean entries the host already
holds are dropped for free — this is what makes larger-than-GPU-memory
matrices stream, and what amplifies the byte savings of STC payloads.

Datatype conversions are charged where the strategy puts them: once on
the sender's compute stream for STC payloads, and on every consuming
task's compute stream when the payload encoding differs from the kernel's
input encoding (the TTC overhead the paper highlights in Section VI).

Scheduling is policy-driven list scheduling: a pluggable
:class:`~repro.runtime.policies.SchedulePolicy` owns the ready heap's
comparator (explicit key ``(*policy.key(task, ready), tid)``).  The
default ``panel-first`` policy keeps the historical
``(ready, priority, tid)`` order — the classic Cholesky priority (panel
tasks of earlier iterations first), a faithful stand-in for PaRSEC's
asynchronous, priority-driven scheduler at the fidelity level of this
model — and ``critical-path``, ``comm-aware-eft``, and ``fifo`` expose
the scheduler sensitivity the paper's STC-vs-TTC results rest on (see
``docs/SCHEDULING.md``).  Policies only affect timing: every task
consumes exactly the payloads its inputs name, so numerics are
policy-invariant by construction.

Two entry points share one engine:

* :func:`simulate` — the materialised path over a finalized
  :class:`~repro.runtime.task.TaskGraph` (regression-pinned
  bit-identical for panel-first);
* :func:`simulate_stream` — million-task mode: consumes a lazy task
  iterator (:func:`repro.runtime.dsl.unroll_stream`), keeps only a
  bounded emission window of live :class:`Task` objects, and retires
  each task after execution, so peak memory follows the window instead
  of the DAG (see ``docs/SCHEDULING.md``).
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..obs import emit_event, get_registry, traced
from ..obs.live import BEAT_STRIDE, run_finished, run_started
from ..obs.profile import hot_region
from ..perfmodel.kernels import conversion_time, kernel_time
from ..precision.formats import Precision, bytes_per_element
from .platform import Platform
from .policies import SchedState, SchedulePolicy, resolve_policy
from .task import Task, TaskGraph, TaskInput
from .tracing import RunStats, Trace, TraceEvent
from ..core.conversion import needs_conversion

__all__ = ["SimReport", "simulate", "simulate_stream", "simulate_replay"]

# payload keys: (i, j, version, payload_precision)
_Key = tuple[int, int, int, Precision]


@dataclass
class SimReport:
    """Result of one simulated run."""

    makespan: float
    stats: RunStats
    trace: Trace
    task_end: list[float] = field(default_factory=list)
    #: when each task's compute interval began (conversions included)
    task_start: list[float] = field(default_factory=list)
    #: name of the scheduling policy that produced this schedule
    policy: str = "panel-first"
    #: most Task objects alive at once (== n_tasks for the materialising
    #: path; the emission-window high-water mark for simulate_stream)
    peak_live_tasks: int = 0
    #: task ids in the order the scheduler committed them to their
    #: engines — the input to :func:`simulate_replay` and
    #: :class:`repro.runtime.schedule.StaticSchedule`
    commit_order: list[int] = field(default_factory=list)

    @property
    def gflops(self) -> float:
        return self.stats.gflops


class _Lru:
    """Byte-bounded LRU cache of payload keys on one GPU.

    Eviction hands ``(key, bytes, dirty)`` back to the simulator, which
    counts every eviction and writes back through the d2h engine only
    when the entry is dirty or the host holds no copy; clean entries the
    host already holds are dropped without traffic.
    """

    def __init__(self, capacity: float) -> None:
        self.capacity = capacity
        self.entries: "OrderedDict[_Key, tuple[int, bool]]" = OrderedDict()  # key -> (bytes, dirty)
        self.bytes = 0

    def __contains__(self, key: _Key) -> bool:
        return key in self.entries

    def touch(self, key: _Key) -> None:
        self.entries.move_to_end(key)

    def insert(self, key: _Key, nbytes: int, dirty: bool) -> None:
        if key in self.entries:
            old_bytes, old_dirty = self.entries.pop(key)
            self.bytes -= old_bytes
            dirty = dirty or old_dirty
        self.entries[key] = (nbytes, dirty)
        self.bytes += nbytes

    def evict_until_fits(self, protect: set[_Key]) -> list[tuple[_Key, int, bool]]:
        """Evict least-recently-used entries until within capacity."""
        evicted: list[tuple[_Key, int, bool]] = []
        if self.capacity <= 0 or self.bytes <= self.capacity:
            return evicted
        skipped: list[tuple[_Key, tuple[int, bool]]] = []
        while self.bytes > self.capacity and self.entries:
            key, (nbytes, dirty) = self.entries.popitem(last=False)
            if key in protect:
                skipped.append((key, (nbytes, dirty)))
                continue
            self.bytes -= nbytes
            evicted.append((key, nbytes, dirty))
        # reinstate protected entries at the LRU end (oldest position)
        for key, value in reversed(skipped):
            self.entries[key] = value
            self.entries.move_to_end(key, last=False)
        return evicted


def _payload_bytes(inp: TaskInput) -> int:
    return inp.elements * bytes_per_element(inp.payload_precision)


def _build_engine(
    platform: Platform,
    nb: int,
    enforce_memory: bool,
    record: Callable[[TraceEvent], None],
    stats: RunStats,
    busy: dict[str, float],
    evictions_metric,
    conversions_metric,
):
    """The per-run machine model shared by both simulation entry points.

    Returns ``(seed_host, exec_task, sched_state)``:

    * ``seed_host(task)`` registers the task's producer-less inputs as
      version-0 tiles resident in its node's host memory at t=0;
    * ``exec_task(task, ready_t) -> (start, end)`` stages the task's
      inputs through the hierarchy, charges conversions and the kernel,
      materialises the output (plus the STC payload copy), and runs
      evictions — the exact operation sequence of the historical inline
      loop, so panel-first stays regression-pinned bit-identical;
    * ``sched_state`` exposes live GPU/host residency to policies.

    Per-task input payload keys are computed exactly once here and
    reused for the protect set, cache probes, and staging — one of the
    ``repro profile``-guided hot-loop savings (the profile attributed
    ~an eighth of ``sim.ready_heap_loop`` samples to re-deriving keys
    and protect sets).
    """
    gpu = platform.gpu
    n_ranks = platform.n_ranks
    n_nodes = platform.n_nodes

    compute_free = [0.0] * n_ranks
    h2d_free = [0.0] * n_ranks
    d2h_free = [0.0] * n_ranks
    nic_free = [0.0] * n_nodes

    caches = [_Lru(gpu.memory_bytes if enforce_memory else 0.0) for _ in range(n_ranks)]
    gpu_ready: list[dict[_Key, float]] = [dict() for _ in range(n_ranks)]
    # host tier: per-node availability times plus a byte-bounded LRU; the
    # LRU never evicts while the working set fits (existing in-memory
    # configurations are bit-identical to the unbounded-host model)
    host_caches = [
        _Lru(platform.node.host_memory_bytes if enforce_memory else 0.0)
        for _ in range(n_nodes)
    ]
    host_ready: list[dict[_Key, float]] = [dict() for _ in range(n_nodes)]
    # disk tier: per-node spill store with its own serial engine
    disk_ready: list[dict[_Key, float]] = [dict() for _ in range(n_nodes)]
    disk_free = [0.0] * n_nodes
    #: rank on whose GPU a produced key first materialised
    origin_rank: dict[_Key, int] = {}

    link_bw = gpu.host_link_bandwidth
    link_lat = gpu.host_link_latency
    nic_bw = platform.node.nic_bandwidth
    nic_lat = platform.node.nic_latency
    disk_bw = platform.node.disk_bandwidth
    disk_lat = platform.node.disk_latency
    node_of = platform.node_of
    gpus_per_node = platform.node.gpus_per_node
    bpe = {p: bytes_per_element(p) for p in Precision}.__getitem__

    # memoised pure perfmodel lookups (gpu and nb are fixed per run, so
    # these are exact caches — identical floats, just not recomputed):
    # another repro-profile-guided hot-loop saving, needs_conversion and
    # kernel_time together were ~20% of ready-heap-loop samples
    _kt_cache: dict[tuple[str, Precision], float] = {}

    def kernel_time_cached(kind: str, prec: Precision) -> float:
        key = (kind, prec)
        t = _kt_cache.get(key)
        if t is None:
            t = _kt_cache[key] = kernel_time(gpu, kind, nb, prec)
        return t

    _conv_need: dict[tuple[Precision, Precision, str], bool] = {}

    def needs_conversion_cached(src: Precision, dst: Precision, role: str) -> bool:
        key = (src, dst, role)
        v = _conv_need.get(key)
        if v is None:
            v = _conv_need[key] = needs_conversion(src, dst, role)
        return v

    _conv_time: dict[tuple[int, Precision, Precision], float] = {}

    def conversion_time_cached(elements: int, src: Precision, dst: Precision) -> float:
        key = (elements, src, dst)
        t = _conv_time.get(key)
        if t is None:
            t = _conv_time[key] = conversion_time(gpu, elements, src, dst)
        return t

    def _host_evict(node: int, key: _Key, nbytes: int) -> None:
        """Handle one host-tier LRU eviction at ``node``.

        Keys are immutable per (tile, version, precision), so the only
        question is whether another tier still holds a copy:

        * a *replica* node (not the key's origin node) drops it for free
          — a later consumer re-stages from the origin;
        * the origin node drops it for free when the local disk or the
          origin GPU still holds it (a later GPU eviction re-flushes
          through the ordinary d2h write-back);
        * otherwise this was the only copy: it spills through the node's
          disk engine, and every spilled byte lands in the data-motion
          ledger under ``disk_write``.
        """
        stats.n_host_evictions += 1
        avail = host_ready[node].pop(key)
        src_rank = origin_rank.get(key)
        if src_rank is None or node_of(src_rank) != node:
            return
        if key in disk_ready[node] or key in gpu_ready[src_rank]:
            return
        start = max(disk_free[node], avail)
        end = start + disk_lat + nbytes / disk_bw
        disk_free[node] = end
        disk_ready[node][key] = end
        stats.n_spills += 1
        stats.add_disk_write(key[3], nbytes)
        busy["disk_write"] += end - start
        record(TraceEvent(gpus_per_node * node, "disk_write", "SPILL", start, end, key[3], nbytes))

    def _host_insert(node: int, key: _Key, nbytes: int, t: float, protect: set[_Key]) -> None:
        """Register ``key`` in ``node``'s host memory, evicting LRU overflow.

        An existing entry keeps its earlier availability time (keys are
        immutable) and is only refreshed in the LRU order.
        """
        cache = host_caches[node]
        if key in host_ready[node]:
            cache.touch(key)
            return
        host_ready[node][key] = t
        cache.insert(key, nbytes, dirty=False)
        for ev_key, ev_bytes, _ev_dirty in cache.evict_until_fits(protect):
            _host_evict(node, ev_key, ev_bytes)

    def _writeback(
        rank: int, key: _Key, nbytes: int, dirty: bool, now: float, protect: set[_Key]
    ) -> None:
        """Account one GPU eviction; flush to the host only when required.

        Every eviction counts toward ``stats.n_evictions`` and the
        ``sim.evictions`` metric.  The d2h transfer is charged only when
        no lower tier (host or local disk) holds a copy or the entry is
        dirty; a clean entry the host (or disk) already holds is dropped
        for free.
        """
        node = node_of(rank)
        stats.n_evictions += 1
        evictions_metric.inc()
        if not dirty and (key in host_ready[node] or key in disk_ready[node]):
            return
        start = max(d2h_free[rank], gpu_ready[rank].get(key, now))
        end = start + link_lat + nbytes / link_bw
        d2h_free[rank] = end
        stats.add_d2h(key[3], nbytes)
        busy["d2h"] += end - start
        record(TraceEvent(rank, "d2h", "EVICT", start, end, key[3], nbytes))
        _host_insert(node, key, nbytes, end, protect)

    def _stage_to_host(
        dest_node: int, key: _Key, nbytes: int, now: float, protect: set[_Key]
    ) -> float:
        """Time at which ``key`` is available in ``dest_node``'s host memory."""
        t = host_ready[dest_node].get(key)
        if t is not None:
            host_caches[dest_node].touch(key)
            return t
        src_rank = origin_rank.get(key)
        if src_rank is None:
            raise KeyError(f"payload {key} has no origin (missing producer or host seed)")
        src_node = node_of(src_rank)
        # recover at the origin (skipped if the origin's host already has it):
        # d2h from the origin GPU, or a disk read when the host tier spilled
        if key not in host_ready[src_node]:
            data_t = gpu_ready[src_rank].get(key)
            if data_t is not None:
                start = max(d2h_free[src_rank], data_t)
                end = start + link_lat + nbytes / link_bw
                d2h_free[src_rank] = end
                stats.add_d2h(key[3], nbytes)
                busy["d2h"] += end - start
                record(TraceEvent(src_rank, "d2h", "STAGE", start, end, key[3], nbytes))
            else:
                disk_t = disk_ready[src_node].get(key)
                if disk_t is None:
                    raise KeyError(f"payload {key} vanished from its origin node {src_node}")
                start = max(disk_free[src_node], disk_t)
                end = start + disk_lat + nbytes / disk_bw
                disk_free[src_node] = end
                stats.add_disk_read(key[3], nbytes)
                busy["disk_read"] += end - start
                record(
                    TraceEvent(
                        gpus_per_node * src_node, "disk_read", "FETCH", start, end, key[3], nbytes
                    )
                )
            _host_insert(src_node, key, nbytes, end, protect)
            if key not in host_ready[src_node]:  # pragma: no cover - defensive
                raise RuntimeError(f"host tier at node {src_node} cannot hold payload {key}")
        if src_node == dest_node:
            return host_ready[src_node][key]
        # inter-node message (sender NIC serialisation, alpha-beta model)
        start = max(nic_free[src_node], host_ready[src_node][key])
        end = start + nic_lat + nbytes / nic_bw
        nic_free[src_node] = end
        stats.add_nic(key[3], nbytes)
        busy["nic"] += end - start
        record(TraceEvent(gpus_per_node * src_node, "nic", "SEND", start, end, key[3], nbytes))
        _host_insert(dest_node, key, nbytes, end, protect)
        return end

    def _acquire(
        rank: int, key: _Key, nbytes: int, payload_prec: Precision, now: float, protect: set[_Key]
    ) -> float:
        """Make one payload available on ``rank``'s GPU; return ready time."""
        cache = caches[rank]
        if key in cache:
            cache.touch(key)
            return gpu_ready[rank][key]
        node = node_of(rank)
        t_host = _stage_to_host(node, key, nbytes, now, protect)
        start = max(h2d_free[rank], t_host)
        end = start + link_lat + nbytes / link_bw
        h2d_free[rank] = end
        gpu_ready[rank][key] = end
        cache.insert(key, nbytes, dirty=False)
        for ev_key, ev_bytes, ev_dirty in cache.evict_until_fits(protect):
            _writeback(rank, ev_key, ev_bytes, ev_dirty, now, protect)
            gpu_ready[rank].pop(ev_key, None)
        stats.add_h2d(payload_prec, nbytes)
        busy["h2d"] += end - start
        record(TraceEvent(rank, "h2d", "LOAD", start, end, payload_prec, nbytes))
        return end

    _no_protect: set[_Key] = set()

    def seed_host(task: Task) -> None:
        """Seed the task's version-0 inputs at its owner's node.

        The generated matrix starts on the node's disk tier (free at
        t=0) with a warm host copy; when the host tier cannot hold the
        whole matrix the LRU sheds the overflow immediately — for free,
        since the disk already has those tiles — and first touch pays
        the disk read instead.
        """
        for inp in task.inputs:
            if inp.producer is None:
                tile = inp.tile
                key: _Key = (tile.i, tile.j, tile.version, inp.payload_precision)
                node = node_of(task.rank)
                if key not in host_ready[node]:
                    disk_ready[node].setdefault(key, 0.0)
                    _host_insert(node, key, _payload_bytes(inp), 0.0, _no_protect)
                origin_rank.setdefault(key, task.rank)

    def exec_task(task: Task, ready_t: float) -> tuple[float, float]:
        """Run one ready task; returns its (start, end) compute interval."""
        rank = task.rank
        inputs = task.inputs
        # one pass over the inputs derives every key/byte pair; the
        # protect set and all staging probes reuse them
        staged = []
        protect: set[_Key] = set()
        for inp in inputs:
            tile = inp.tile
            prec = inp.payload_precision
            key = (tile.i, tile.j, tile.version, prec)
            staged.append((inp, key, inp.elements * bpe(prec), prec))
            protect.add(key)
        out = task.output
        out_key: _Key = (out.i, out.j, out.version, task.output_precision)
        protect.add(out_key)

        task_prec = task.precision
        arrival = ready_t
        # (site, src, dst, seconds) per conversion pass charged to this task
        conversions: list[tuple[str, Precision, Precision, float]] = []
        for inp, key, nbytes, prec in staged:
            t = _acquire(rank, key, nbytes, prec, ready_t, protect)
            if t > arrival:
                arrival = t
            # receiver-side conversion (TTC, or residual re-encode under STC)
            if needs_conversion_cached(prec, task_prec, inp.role):
                conversions.append(
                    ("ttc", prec, task_prec, conversion_time_cached(inp.elements, prec, task_prec))
                )
        if task.sender_conversion is not None:
            src, dst = task.sender_conversion
            conversions.append(("stc", src, dst, conversion_time_cached(nb * nb, src, dst)))
        conv_seconds = sum(c[3] for c in conversions)
        n_conv = len(conversions)

        start = max(compute_free[rank], arrival)
        exec_t = kernel_time_cached(task.kind, task_prec)
        end = start + exec_t + conv_seconds
        compute_free[rank] = end

        conv_t = start
        for site, src, dst, seconds in conversions:
            record(
                TraceEvent(
                    rank,
                    "compute",
                    "CONVERT",
                    conv_t,
                    conv_t + seconds,
                    task_prec,
                    site=site,
                    src_precision=src,
                    dst_precision=dst,
                )
            )
            conv_t += seconds
            stats.add_conversion(site, seconds)
        record(
            TraceEvent(rank, "compute", task.kind, start + conv_seconds, end, task_prec, 0, task.flops)
        )
        stats.add_flops(task_prec, task.flops)
        stats.n_tasks += 1
        busy["compute"] += end - start
        if n_conv:
            conversions_metric.inc(n_conv)

        # output materialises on this GPU
        out_bytes = nb * nb * bpe(task.output_precision)
        gpu_ready[rank][out_key] = end
        caches[rank].insert(out_key, out_bytes, dirty=True)
        origin_rank[out_key] = rank
        # STC payload copy (converted once here, broadcast in low precision)
        if task.sender_conversion is not None:
            _src, dst = task.sender_conversion
            pay_key: _Key = (out.i, out.j, out.version, dst)
            pay_bytes = nb * nb * bpe(dst)
            gpu_ready[rank][pay_key] = end
            caches[rank].insert(pay_key, pay_bytes, dirty=False)
            origin_rank[pay_key] = rank
        for ev_key, ev_bytes, ev_dirty in caches[rank].evict_until_fits(protect):
            _writeback(rank, ev_key, ev_bytes, ev_dirty, end, protect)
            gpu_ready[rank].pop(ev_key, None)
        return start, end

    sched_state = SchedState(
        resident=lambda rank, key: key in caches[rank],
        host_resident=lambda node, key: key in host_ready[node],
    )
    return seed_host, exec_task, sched_state


def _finish(
    sched: SchedulePolicy,
    stats: RunStats,
    trace: Trace,
    busy: dict[str, float],
    task_end: list[float],
    task_start: list[float],
    registry,
    peak_live: int,
    commit_order: list[int] | None = None,
) -> SimReport:
    """Publish run telemetry and assemble the :class:`SimReport`."""
    makespan = max(task_end, default=0.0)
    stats.makespan = makespan

    registry.counter("sim.tasks", "tasks executed by the simulator").inc(stats.n_tasks)
    busy_metric = registry.counter("sim.busy_seconds", "engine busy time")
    for engine, seconds in busy.items():
        if seconds > 0.0:
            busy_metric.inc(seconds, engine=engine)
    bytes_metric = registry.counter("sim.bytes_moved", "bytes moved per link")
    for link, by_precision in (
        ("h2d", stats.h2d_bytes_by_precision),
        ("d2h", stats.d2h_bytes_by_precision),
        ("nic", stats.nic_bytes_by_precision),
        ("disk_read", stats.disk_read_bytes_by_precision),
        ("disk_write", stats.disk_write_bytes_by_precision),
    ):
        for precision, nbytes in by_precision.items():
            bytes_metric.inc(nbytes, link=link, precision=precision.name)
    registry.gauge("sim.makespan_seconds", "makespan of the last run").set(makespan)
    emit_event(
        "sim.complete",
        {
            "n_tasks": stats.n_tasks,
            "makespan_seconds": makespan,
            "tflops": stats.tflops,
            "h2d_bytes": stats.h2d_bytes,
            "nic_bytes": stats.nic_bytes,
            "n_conversions": stats.n_conversions,
            "n_evictions": stats.n_evictions,
            "n_host_evictions": stats.n_host_evictions,
            "n_spills": stats.n_spills,
            "policy": sched.name,
        },
    )
    run_finished(stats.n_tasks)
    return SimReport(
        makespan=makespan,
        stats=stats,
        trace=trace,
        task_end=task_end,
        task_start=task_start,
        policy=sched.name,
        peak_live_tasks=peak_live,
        commit_order=commit_order if commit_order is not None else [],
    )


@traced("sim.run")
def simulate(
    graph: TaskGraph,
    platform: Platform,
    nb: int,
    *,
    enforce_memory: bool = True,
    record_events: bool = True,
    policy: str | SchedulePolicy | None = None,
) -> SimReport:
    """Simulate ``graph`` on ``platform`` and return timing + counters.

    ``nb`` is the tile edge used to price kernels and conversions (ragged
    edge tiles are priced as full tiles — a ≤1/NT relative error).

    ``policy`` picks the :class:`~repro.runtime.policies.SchedulePolicy`
    that orders the ready heap (name or instance; default
    ``panel-first``, bit-identical to the historical scheduler).
    Policies reorder ready tasks only, so they change timing and data
    motion but never which payloads a task consumes.

    Telemetry: runs inside a ``sim.run`` span; eviction/conversion
    counters tick live and per-engine busy time, byte totals, and the
    makespan land in the :mod:`repro.obs` registry at completion.
    """
    sched = resolve_policy(policy)
    sched.prepare(graph, platform, nb)
    registry = get_registry()
    evictions_metric = registry.counter("sim.evictions", "LRU evictions (all causes)")
    conversions_metric = registry.counter("sim.conversions", "datatype conversion passes")
    busy: dict[str, float] = {
        "compute": 0.0, "h2d": 0.0, "d2h": 0.0, "nic": 0.0,
        "disk_read": 0.0, "disk_write": 0.0,
    }

    trace = Trace()
    stats = trace.stats
    record = trace.record if record_events else (lambda ev: None)
    seed_host, exec_task, sched_state = _build_engine(
        platform, nb, enforce_memory, record, stats, busy, evictions_metric, conversions_metric
    )

    # seed version-0 tiles at their owner's host memory
    for task in graph:
        seed_host(task)

    # -- policy-driven list scheduling ------------------------------------
    # Heap comparator is the explicit triple (*policy.key, tid): the
    # policy owns the first two fields (panel-first keeps the historical
    # (ready, priority) pair bit-identically), task id pins the order of
    # equal-key tasks so every policy is fully deterministic.  Only
    # tasks whose predecessors are all scheduled enter the heap, so any
    # pop order is a valid schedule; the recorded ready time still gates
    # the task's start via its input arrival times.
    n = len(graph)
    preds, succs = graph.adjacency()
    tasks = graph.tasks
    in_count = [len(preds[t]) for t in range(n)]
    task_end = [0.0] * n
    task_start = [0.0] * n
    task_ready = [0.0] * n
    key_of = sched.key
    commit_order: list[int] = []
    commit = commit_order.append
    heap: list[tuple[float, float, int]] = []
    for tid in range(n):
        if in_count[tid] == 0:
            heapq.heappush(heap, (*key_of(tasks[tid], 0.0, sched_state), tid))

    done = 0
    heappop = heapq.heappop
    heappush = heapq.heappush
    beat = run_started(n, "sim.materialized")  # None unless a live plane is up
    with hot_region("sim.ready_heap_loop"):
        while heap:
            tid = heappop(heap)[-1]
            commit(tid)
            start, end = exec_task(tasks[tid], task_ready[tid])
            task_start[tid] = start
            task_end[tid] = end

            for succ in succs[tid]:
                left = in_count[succ] - 1
                in_count[succ] = left
                if left == 0:
                    succ_ready = 0.0
                    for p in preds[succ]:
                        t = task_end[p]
                        if t > succ_ready:
                            succ_ready = t
                    task_ready[succ] = succ_ready
                    heappush(heap, (*key_of(tasks[succ], succ_ready, sched_state), succ))
            done += 1
            if beat is not None and not done % BEAT_STRIDE:
                beat(done, len(heap))

    if done != n:
        raise RuntimeError(f"simulation deadlock: {done}/{n} tasks executed")

    return _finish(
        sched, stats, trace, busy, task_end, task_start, registry,
        peak_live=n, commit_order=commit_order,
    )


@traced("sim.run")
def simulate_stream(
    source: Iterable[Task],
    platform: Platform,
    nb: int,
    *,
    lookahead: int = 100_000,
    enforce_memory: bool = True,
    record_events: bool = True,
    policy: str | SchedulePolicy | None = None,
) -> SimReport:
    """Simulate a lazily-emitted task stream without materialising the DAG.

    ``source`` yields :class:`Task` objects in a dependency-safe
    (topological) emission order with dense tids — what
    :func:`repro.runtime.dsl.unroll_stream` produces.  Tasks are pulled
    into a :class:`TaskGraph` frontier until ``lookahead`` of them are
    live (emitted but unexecuted), scheduled exactly like
    :func:`simulate`, and retired as soon as they execute, so peak
    memory tracks the window rather than the task count.  When the heap
    drains while the window is still blocked, emission widens past
    ``lookahead`` until a ready task appears (the window is a soft
    target, never a correctness constraint).

    Every pop order is a valid schedule; it matches the materialised
    path exactly when each task is emitted before it becomes ready,
    which for the k-major Cholesky emission holds once ``lookahead``
    spans about two trailing-update sweeps (≈ ``nt²`` tasks —
    :func:`repro.core.solver.simulate_cholesky` picks this
    automatically).  Smaller windows stay correct but may schedule
    slightly differently.

    Policies that precompute over the whole graph
    (``requires_full_graph``: critical-path, comm-aware-eft) are
    rejected — they would need the very materialisation this path
    avoids.

    .. caveat:: the O(window) live-memory bound covers *Task* objects
       only.  With ``record_events=True`` (the default) the recording
       :class:`Trace` accumulates O(n_tasks) events — several per task —
       which silently dominates memory at NT ≳ 192 (~1.2M tasks).  Pass
       ``record_events=False`` for million-task runs; ``repro simbench
       --mode stream`` warns when event recording is left on.  (The
       per-task ``task_end``/``task_start``/``commit_order`` arrays are
       O(n_tasks) too, but at a few machine words per task they are two
       orders of magnitude lighter than recorded events.)
    """
    if lookahead < 1:
        raise ValueError("lookahead must be positive")
    sched = resolve_policy(policy)
    if getattr(sched, "requires_full_graph", False):
        raise ValueError(
            f"policy {sched.name!r} precomputes over the full graph and cannot "
            "be used with simulate_stream; use simulate() or a frontier-local "
            "policy (panel-first, fifo)"
        )
    graph = TaskGraph()
    sched.prepare(graph, platform, nb)
    registry = get_registry()
    evictions_metric = registry.counter("sim.evictions", "LRU evictions (all causes)")
    conversions_metric = registry.counter("sim.conversions", "datatype conversion passes")
    busy: dict[str, float] = {
        "compute": 0.0, "h2d": 0.0, "d2h": 0.0, "nic": 0.0,
        "disk_read": 0.0, "disk_write": 0.0,
    }

    trace = Trace()
    stats = trace.stats
    record = trace.record if record_events else (lambda ev: None)
    seed_host, exec_task, sched_state = _build_engine(
        platform, nb, enforce_memory, record, stats, busy, evictions_metric, conversions_metric
    )

    it = iter(source)
    executed: list[bool] = []
    in_count: list[int] = []
    task_end: list[float] = []
    task_start: list[float] = []
    task_ready: list[float] = []
    heap: list[tuple[float, float, int]] = []
    key_of = sched.key
    commit_order: list[int] = []
    commit = commit_order.append
    heappop = heapq.heappop
    heappush = heapq.heappush

    live = 0
    peak_live = 0
    exhausted = False

    def pull_one() -> bool:
        """Emit the next task into the frontier; False once exhausted."""
        nonlocal live, peak_live, exhausted
        try:
            task = next(it)
        except StopIteration:
            exhausted = True
            return False
        tid = graph.append(task)
        seed_host(task)
        task_end.append(0.0)
        task_start.append(0.0)
        task_ready.append(0.0)
        executed.append(False)
        pending = 0
        ready_t = 0.0
        for p in graph.predecessors(tid):
            if executed[p]:
                t = task_end[p]
                if t > ready_t:
                    ready_t = t
            else:
                pending += 1
        in_count.append(pending)
        if pending == 0:
            task_ready[tid] = ready_t
            heappush(heap, (*key_of(task, ready_t, sched_state), tid))
        live += 1
        if live > peak_live:
            peak_live = live
        return True

    done = 0
    # total is unknown for a lazy stream; simulate_cholesky pre-announces
    # cholesky_task_count(nt) via announce_total before calling us
    beat = run_started(None, "sim.stream")
    with hot_region("sim.ready_heap_loop"):
        while True:
            while live < lookahead and not exhausted:
                pull_one()
            if not heap:
                if exhausted:
                    break
                # frontier blocked inside the window: widen until a task
                # becomes ready (or the stream runs dry)
                while not heap and pull_one():
                    pass
                if not heap:
                    break
            tid = heappop(heap)[-1]
            commit(tid)
            start, end = exec_task(graph.tasks[tid], task_ready[tid])
            task_start[tid] = start
            task_end[tid] = end
            executed[tid] = True
            for succ in graph.successors(tid):
                left = in_count[succ] - 1
                in_count[succ] = left
                if left == 0:
                    succ_ready = 0.0
                    for p in graph.predecessors(succ):
                        t = task_end[p]
                        if t > succ_ready:
                            succ_ready = t
                    task_ready[succ] = succ_ready
                    heappush(heap, (*key_of(graph.tasks[succ], succ_ready, sched_state), succ))
            graph.retire(tid)
            live -= 1
            done += 1
            if beat is not None and not done % BEAT_STRIDE:
                beat(done, live)

    if live != 0:
        raise RuntimeError(
            f"streaming simulation deadlock: {done} tasks executed, {live} live "
            "(emission order is not topological?)"
        )

    return _finish(
        sched, stats, trace, busy, task_end, task_start, registry,
        peak_live=peak_live, commit_order=commit_order,
    )


@traced("sim.run")
def simulate_replay(
    graph: TaskGraph,
    platform: Platform,
    nb: int,
    order: "Iterable[int]",
    *,
    enforce_memory: bool = True,
    record_events: bool = True,
    source_policy: str = "panel-first",
) -> SimReport:
    """Execute a previously committed task order — no heap, no policy keys.

    ``order`` is the ``commit_order`` of an earlier :func:`simulate` /
    :func:`simulate_stream` run over the *same* graph and platform
    (usually via :class:`repro.runtime.schedule.StaticSchedule`).  The
    engine state (caches, link timelines, conversions) evolves purely
    from the execution sequence, so replaying the committed order
    reproduces the original run bit-identically — same makespan, same
    stats, same trace content hash — while skipping every ready-heap
    push/pop and policy-key evaluation.

    The order is validated as it executes: every task id must appear
    exactly once and only after all its predecessors, else
    ``ValueError`` — a schedule exported from a different graph shape
    fails fast instead of producing a silently wrong account.
    """
    registry = get_registry()
    evictions_metric = registry.counter("sim.evictions", "LRU evictions (all causes)")
    conversions_metric = registry.counter("sim.conversions", "datatype conversion passes")
    busy: dict[str, float] = {
        "compute": 0.0, "h2d": 0.0, "d2h": 0.0, "nic": 0.0,
        "disk_read": 0.0, "disk_write": 0.0,
    }

    trace = Trace()
    stats = trace.stats
    record = trace.record if record_events else (lambda ev: None)
    seed_host, exec_task, _sched_state = _build_engine(
        platform, nb, enforce_memory, record, stats, busy, evictions_metric, conversions_metric
    )

    for task in graph:
        seed_host(task)

    n = len(graph)
    preds, _succs = graph.adjacency()
    tasks = graph.tasks
    executed = [False] * n
    task_end = [0.0] * n
    task_start = [0.0] * n
    commit_order: list[int] = []
    done = 0
    beat = run_started(n, "sim.replay")
    with hot_region("sim.replay_loop"):
        for tid in order:
            tid = int(tid)
            if not 0 <= tid < n or executed[tid]:
                raise ValueError(
                    f"replay order invalid at position {done}: task {tid} "
                    f"{'already executed' if 0 <= tid < n else 'out of range'}"
                )
            ready_t = 0.0
            for p in preds[tid]:
                if not executed[p]:
                    raise ValueError(
                        f"replay order violates precedence: task {tid} scheduled "
                        f"before its predecessor {p}"
                    )
                t = task_end[p]
                if t > ready_t:
                    ready_t = t
            commit_order.append(tid)
            start, end = exec_task(tasks[tid], ready_t)
            task_start[tid] = start
            task_end[tid] = end
            executed[tid] = True
            done += 1
            if beat is not None and not done % BEAT_STRIDE:
                beat(done, 0)
    if done != n:
        raise ValueError(f"replay order incomplete: {done}/{n} tasks executed")

    class _ReplayTag:
        name = f"replay:{source_policy}"

    return _finish(
        _ReplayTag(), stats, trace, busy, task_end, task_start, registry,
        peak_live=n, commit_order=commit_order,
    )
