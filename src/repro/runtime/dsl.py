"""A miniature Parameterized Task Graph (PTG) DSL.

PaRSEC's PTG (Section III-B) describes an algorithm as a collection of
*task classes*; each class declares its execution space (the set of
parameter tuples for which instances exist) and, per instance, the data
each task reads and writes.  The runtime then unrolls the task classes
into the concrete DAG.

This module provides the same shape in Python: a :class:`TaskClassSpec`
binds a kernel kind to an execution-space generator and a dataflow
function, and :func:`unroll` materialises the classes into a
:class:`~repro.runtime.task.TaskGraph`.  The Cholesky PTG
(:mod:`repro.core.dag_cholesky`) is written against this API, keeping the
algorithm description (which tasks exist, what they touch) separate from
the runtime machinery — the productivity argument of the paper's DSL
section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from ..precision.formats import Precision
from .task import Task, TaskGraph, TaskInput, TileRef

__all__ = ["TaskInstance", "TaskClassSpec", "StreamOrderError", "unroll", "unroll_stream"]


class StreamOrderError(ValueError):
    """Emission order is not topological: an instance reads an unemitted producer.

    Raised by :func:`unroll_stream` when a task references a producer
    that has not been yielded yet (e.g. a cross-class forward
    reference).  :func:`unroll` with ``stream=True`` catches it and
    falls back to the materialising Kahn path.
    """


@dataclass
class TaskInstance:
    """One concrete task produced by a task class's dataflow function.

    ``reads`` lists ``(producer_key, tile, payload_precision,
    storage_precision, elements, role)`` where ``producer_key`` is the
    ``(class_name, params)`` of the producing instance or ``None`` for an
    original host tile, and ``role`` is ``"in"`` or ``"inout"``.
    """

    cls: str
    params: tuple[int, ...]
    rank: int
    precision: Precision
    flops: float
    writes: TileRef
    output_precision: Precision
    reads: list[
        tuple[tuple[str, tuple[int, ...]] | None, TileRef, Precision, Precision, int, str]
    ]
    sender_conversion: tuple[Precision, Precision] | None = None
    priority: int = 0


@dataclass
class TaskClassSpec:
    """One task class of the PTG.

    ``space`` yields the parameter tuples of all instances;
    ``instantiate`` maps a parameter tuple to a :class:`TaskInstance`.
    """

    name: str
    space: Callable[[], Iterable[tuple[int, ...]]]
    instantiate: Callable[[tuple[int, ...]], TaskInstance]


def _instance_inputs(
    inst: TaskInstance, tid_by_key: dict[tuple[str, tuple[int, ...]], int]
) -> list[TaskInput]:
    """Resolve an instance's reads against already-assigned task ids.

    Raises :class:`StreamOrderError` when a producer has no id yet —
    the signal that the emission order is not topological.
    """
    inputs: list[TaskInput] = []
    for producer_key, tile, payload_prec, storage_prec, elements, role in inst.reads:
        if producer_key is None:
            producer = None
        else:
            producer = tid_by_key.get(producer_key)
            if producer is None:
                raise StreamOrderError(
                    f"{inst.cls}{inst.params} reads from {producer_key} "
                    "which has not been emitted yet"
                )
        inputs.append(
            TaskInput(
                producer=producer,
                tile=tile,
                payload_precision=payload_prec,
                storage_precision=storage_prec,
                elements=elements,
                role=role,
            )
        )
    return inputs


def unroll_stream(classes: Sequence[TaskClassSpec]) -> Iterator[Task]:
    """Lazily unroll task classes, yielding :class:`Task` objects.

    The generator counterpart of :func:`unroll` for PTGs whose emission
    order (class order, then each class's ``space`` order) is already
    topological — the Cholesky PTG's k-major emission is.  Task ids are
    assigned densely in emission order and no global instance list,
    ``index_by_key`` map, or Kahn structures are built: the only
    retained state is the ``(class, params) → tid`` resolution map, so
    a consumer that retires tasks as it goes keeps live memory
    proportional to its window, not the DAG.

    Raises :class:`StreamOrderError` mid-iteration on a forward
    reference (use :func:`unroll` with ``stream=True`` for the
    materialising fallback) and ``ValueError`` on duplicate instances.
    """
    tid_by_key: dict[tuple[str, tuple[int, ...]], int] = {}
    tid = 0
    for spec in classes:
        for params in spec.space():
            inst = spec.instantiate(params)
            key = (inst.cls, inst.params)
            if key in tid_by_key:
                raise ValueError(f"duplicate task instance {key}")
            inputs = _instance_inputs(inst, tid_by_key)
            task = Task(
                tid=tid,
                kind=inst.cls,
                params=inst.params,
                rank=inst.rank,
                precision=inst.precision,
                flops=inst.flops,
                output=inst.writes,
                output_precision=inst.output_precision,
                inputs=inputs,
                sender_conversion=inst.sender_conversion,
                priority=inst.priority,
            )
            tid_by_key[key] = tid
            tid += 1
            yield task


def unroll(classes: Sequence[TaskClassSpec], *, stream: bool = False) -> TaskGraph:
    """Materialise task classes into a finalized :class:`TaskGraph`.

    With ``stream=False`` (default) all instances are collected first,
    then topologically ordered by their dataflow (Kahn's algorithm,
    stable with respect to emission order), so task classes may
    reference each other freely — e.g. POTRF(k) reading the SYRK output
    of the previous iteration.  Raises ``ValueError`` on unknown
    producers or dependency cycles.

    With ``stream=True`` the graph is built incrementally from
    :func:`unroll_stream` — one pass, no instance list or Kahn
    structures — when the emission order is already topological; a
    forward reference triggers a silent fallback to the materialising
    path (``space`` callables must therefore be re-invokable).  For a
    topologically-emitted PTG both paths produce bit-identical graphs:
    Kahn's heap, keyed on emission index, pops ready task *i* only
    after 0..i-1, so its output order is the emission order itself.
    """
    if stream:
        graph = TaskGraph()
        try:
            for task in unroll_stream(classes):
                graph.append(task)
        except StreamOrderError:
            return unroll(classes)
        graph.finalize()
        return graph
    instances: list[TaskInstance] = []
    index_by_key: dict[tuple[str, tuple[int, ...]], int] = {}
    for spec in classes:
        for params in spec.space():
            inst = spec.instantiate(params)
            key = (inst.cls, inst.params)
            if key in index_by_key:
                raise ValueError(f"duplicate task instance {key}")
            index_by_key[key] = len(instances)
            instances.append(inst)

    n = len(instances)
    preds: list[list[int]] = [[] for _ in range(n)]
    out_degree_order: list[list[int]] = [[] for _ in range(n)]
    in_count = [0] * n
    for idx, inst in enumerate(instances):
        for producer_key, *_rest in inst.reads:
            if producer_key is None:
                continue
            if producer_key not in index_by_key:
                raise ValueError(f"{inst.cls}{inst.params} reads from unknown producer {producer_key}")
            p = index_by_key[producer_key]
            preds[idx].append(p)
            out_degree_order[p].append(idx)
            in_count[idx] += 1

    # Kahn's algorithm, preferring emission order for determinism
    import heapq

    ready = [i for i in range(n) if in_count[i] == 0]
    heapq.heapify(ready)
    topo: list[int] = []
    while ready:
        i = heapq.heappop(ready)
        topo.append(i)
        for s in out_degree_order[i]:
            in_count[s] -= 1
            if in_count[s] == 0:
                heapq.heappush(ready, s)
    if len(topo) != n:
        raise ValueError("task classes form a dependency cycle")

    graph = TaskGraph()
    tid_by_index: dict[int, int] = {}
    for i in topo:
        inst = instances[i]
        inputs = []
        for producer_key, tile, payload_prec, storage_prec, elements, role in inst.reads:
            producer = None if producer_key is None else tid_by_index[index_by_key[producer_key]]
            inputs.append(
                TaskInput(
                    producer=producer,
                    tile=tile,
                    payload_precision=payload_prec,
                    storage_precision=storage_prec,
                    elements=elements,
                    role=role,
                )
            )
        task = graph.new_task(
            kind=inst.cls,
            params=inst.params,
            rank=inst.rank,
            precision=inst.precision,
            flops=inst.flops,
            output=inst.writes,
            output_precision=inst.output_precision,
            inputs=inputs,
            sender_conversion=inst.sender_conversion,
            priority=inst.priority,
        )
        tid_by_index[i] = task.tid
    graph.finalize()
    return graph
