"""A miniature Parameterized Task Graph (PTG) DSL.

PaRSEC's PTG (Section III-B) describes an algorithm as a collection of
*task classes*; each class declares its execution space (the set of
parameter tuples for which instances exist) and, per instance, the data
each task reads and writes.  The runtime then unrolls the task classes
into the concrete DAG.

This module provides the same shape in Python: a :class:`TaskClassSpec`
binds a kernel kind to an execution-space generator and a dataflow
function, and :func:`unroll` materialises the classes into a
:class:`~repro.runtime.task.TaskGraph`.  The Cholesky PTG
(:mod:`repro.core.dag_cholesky`) is written against this API, keeping the
algorithm description (which tasks exist, what they touch) separate from
the runtime machinery — the productivity argument of the paper's DSL
section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..precision.formats import Precision
from .task import Task, TaskGraph, TaskInput, TileRef

__all__ = ["TaskInstance", "TaskClassSpec", "unroll"]


@dataclass
class TaskInstance:
    """One concrete task produced by a task class's dataflow function.

    ``reads`` lists ``(producer_key, tile, payload_precision,
    storage_precision, elements, role)`` where ``producer_key`` is the
    ``(class_name, params)`` of the producing instance or ``None`` for an
    original host tile, and ``role`` is ``"in"`` or ``"inout"``.
    """

    cls: str
    params: tuple[int, ...]
    rank: int
    precision: Precision
    flops: float
    writes: TileRef
    output_precision: Precision
    reads: list[
        tuple[tuple[str, tuple[int, ...]] | None, TileRef, Precision, Precision, int, str]
    ]
    sender_conversion: tuple[Precision, Precision] | None = None
    priority: int = 0


@dataclass
class TaskClassSpec:
    """One task class of the PTG.

    ``space`` yields the parameter tuples of all instances;
    ``instantiate`` maps a parameter tuple to a :class:`TaskInstance`.
    """

    name: str
    space: Callable[[], Iterable[tuple[int, ...]]]
    instantiate: Callable[[tuple[int, ...]], TaskInstance]


def unroll(classes: Sequence[TaskClassSpec]) -> TaskGraph:
    """Materialise task classes into a finalized :class:`TaskGraph`.

    All instances are collected first, then topologically ordered by
    their dataflow (Kahn's algorithm, stable with respect to emission
    order), so task classes may reference each other freely — e.g.
    POTRF(k) reading the SYRK output of the previous iteration.
    Raises ``ValueError`` on unknown producers or dependency cycles.
    """
    instances: list[TaskInstance] = []
    index_by_key: dict[tuple[str, tuple[int, ...]], int] = {}
    for spec in classes:
        for params in spec.space():
            inst = spec.instantiate(params)
            key = (inst.cls, inst.params)
            if key in index_by_key:
                raise ValueError(f"duplicate task instance {key}")
            index_by_key[key] = len(instances)
            instances.append(inst)

    n = len(instances)
    preds: list[list[int]] = [[] for _ in range(n)]
    out_degree_order: list[list[int]] = [[] for _ in range(n)]
    in_count = [0] * n
    for idx, inst in enumerate(instances):
        for producer_key, *_rest in inst.reads:
            if producer_key is None:
                continue
            if producer_key not in index_by_key:
                raise ValueError(f"{inst.cls}{inst.params} reads from unknown producer {producer_key}")
            p = index_by_key[producer_key]
            preds[idx].append(p)
            out_degree_order[p].append(idx)
            in_count[idx] += 1

    # Kahn's algorithm, preferring emission order for determinism
    import heapq

    ready = [i for i in range(n) if in_count[i] == 0]
    heapq.heapify(ready)
    topo: list[int] = []
    while ready:
        i = heapq.heappop(ready)
        topo.append(i)
        for s in out_degree_order[i]:
            in_count[s] -= 1
            if in_count[s] == 0:
                heapq.heappush(ready, s)
    if len(topo) != n:
        raise ValueError("task classes form a dependency cycle")

    graph = TaskGraph()
    tid_by_index: dict[int, int] = {}
    for i in topo:
        inst = instances[i]
        inputs = []
        for producer_key, tile, payload_prec, storage_prec, elements, role in inst.reads:
            producer = None if producer_key is None else tid_by_index[index_by_key[producer_key]]
            inputs.append(
                TaskInput(
                    producer=producer,
                    tile=tile,
                    payload_precision=payload_prec,
                    storage_precision=storage_prec,
                    elements=elements,
                    role=role,
                )
            )
        task = graph.new_task(
            kind=inst.cls,
            params=inst.params,
            rank=inst.rank,
            precision=inst.precision,
            flops=inst.flops,
            output=inst.writes,
            output_precision=inst.output_precision,
            inputs=inputs,
            sender_conversion=inst.sender_conversion,
            priority=inst.priority,
        )
        tid_by_index[i] = task.tid
    graph.finalize()
    return graph
