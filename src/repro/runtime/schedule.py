"""Exported static schedules: serialise a committed task order, replay it.

The out-of-core line of work (arXiv 2410.09819) plans tile residency
*once* and then executes a static order with no runtime scheduling
overhead.  This module is the artifact half of that story: a
:class:`StaticSchedule` captures the ``commit_order`` of a simulated run
together with enough fingerprint to validate it against a rebuilt graph,
and round-trips through compact JSON (or ``.npz``, where the order is a
packed int array).  :func:`repro.runtime.simulator.simulate_replay`
executes the order with no ready-heap or policy-key work and reproduces
the original run bit-identically — same makespan, same trace content
hash (property-tested across policies in
``tests/test_runtime_ooc.py``).

CLI: ``repro simulate --schedule-out plan.json`` exports, ``repro
simulate --replay plan.json`` replays; ``repro schedule-compare`` adds a
``replay:<baseline>`` row priced through this path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .platform import Platform
    from .simulator import SimReport

__all__ = ["StaticSchedule"]

#: on-disk schema tag; bump on incompatible layout changes
SCHEMA = "repro.schedule/1"


def _platform_fingerprint(platform: "Platform | None") -> dict:
    if platform is None:
        return {}
    node = platform.node
    return {
        "node": node.name,
        "gpu": node.gpu.name,
        "gpus_per_node": node.gpus_per_node,
        "n_nodes": platform.n_nodes,
    }


@dataclass(frozen=True)
class StaticSchedule:
    """A committed task order plus the fingerprint needed to replay it.

    ``order[i]`` is the task id committed at step ``i``; ids index the
    graph built with the recorded ``layout`` (``"materialize"`` = the
    historical class-major Kahn ids, ``"stream"`` = k-major emission
    ids), so a replayer must rebuild the DAG the same way.  ``makespan``
    and ``trace_hash`` pin what the replay must reproduce.
    """

    policy: str
    order: tuple[int, ...]
    nb: int
    n: int = 0
    layout: str = "materialize"
    platform: dict = field(default_factory=dict)
    makespan: float = 0.0
    trace_hash: str | None = None

    @property
    def n_tasks(self) -> int:
        return len(self.order)

    @classmethod
    def from_report(
        cls,
        report: "SimReport",
        *,
        nb: int,
        n: int = 0,
        platform: "Platform | None" = None,
        layout: str = "materialize",
    ) -> "StaticSchedule":
        """Capture a finished run's committed order as a schedule."""
        if not report.commit_order:
            raise ValueError("report carries no commit_order (pre-schedule run?)")
        trace_hash = report.trace.content_hash() if report.trace.events else None
        return cls(
            policy=report.policy,
            order=tuple(report.commit_order),
            nb=nb,
            n=n,
            layout=layout,
            platform=_platform_fingerprint(platform),
            makespan=report.makespan,
            trace_hash=trace_hash,
        )

    def validate_against(self, n_tasks: int, platform: "Platform | None" = None) -> None:
        """Fail fast when the schedule cannot drive the rebuilt graph."""
        if self.n_tasks != n_tasks:
            raise ValueError(
                f"schedule covers {self.n_tasks} tasks but the graph has "
                f"{n_tasks}; was it exported from a different n/nb/config?"
            )
        want = _platform_fingerprint(platform)
        if self.platform and want and self.platform != want:
            raise ValueError(
                f"schedule was exported on platform {self.platform} but is "
                f"replaying on {want}; timings would not reproduce"
            )

    # -- serialisation ----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "policy": self.policy,
            "n_tasks": self.n_tasks,
            "nb": self.nb,
            "n": self.n,
            "layout": self.layout,
            "platform": dict(self.platform),
            "makespan_seconds": self.makespan,
            "trace_hash": self.trace_hash,
            "order": list(self.order),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StaticSchedule":
        schema = payload.get("schema")
        if schema != SCHEMA:
            raise ValueError(f"unsupported schedule schema {schema!r} (expected {SCHEMA!r})")
        order = tuple(int(t) for t in payload["order"])
        if len(order) != int(payload.get("n_tasks", len(order))):
            raise ValueError("schedule order length disagrees with its n_tasks header")
        return cls(
            policy=str(payload.get("policy", "panel-first")),
            order=order,
            nb=int(payload["nb"]),
            n=int(payload.get("n", 0)),
            layout=str(payload.get("layout", "materialize")),
            platform=dict(payload.get("platform") or {}),
            makespan=float(payload.get("makespan_seconds", 0.0)),
            trace_hash=payload.get("trace_hash"),
        )

    def save(self, path: str | Path) -> Path:
        """Write the schedule; ``.npz`` packs the order as an int array."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix == ".npz":
            import numpy as np

            meta = self.to_dict()
            order = meta.pop("order")
            np.savez_compressed(
                path,
                order=np.asarray(order, dtype=np.int64),
                meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
            )
        else:
            path.write_text(json.dumps(self.to_dict()) + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "StaticSchedule":
        path = Path(path)
        if path.suffix == ".npz":
            import numpy as np

            with np.load(path) as data:
                meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
                meta["order"] = [int(t) for t in data["order"]]
            return cls.from_dict(meta)
        return cls.from_dict(json.loads(path.read_text(encoding="utf-8")))
