"""Process-global observability state.

One :class:`~repro.obs.metrics.MetricsRegistry` and (optionally) one
active :class:`~repro.obs.events.EventLog` per process, plus the
per-thread span stack.  Instrumentation sites throughout the codebase
call :func:`emit_event` unconditionally — when no event log is attached
the call is a cheap no-op, so the hot paths pay nothing unless a run is
being captured.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Mapping

from .events import EventLog
from .metrics import MetricsRegistry

__all__ = [
    "current_span_path",
    "emit_event",
    "event_log",
    "get_event_log",
    "get_registry",
    "reset_metrics",
    "set_event_log",
]

_registry = MetricsRegistry()
_event_log: EventLog | None = None
_log_lock = threading.Lock()

_tls = threading.local()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def reset_metrics() -> None:
    """Clear every metric in the process registry."""
    _registry.reset()


def get_event_log() -> EventLog | None:
    return _event_log


def set_event_log(log: EventLog | None) -> EventLog | None:
    """Install ``log`` as the process event sink; returns the previous one."""
    global _event_log
    with _log_lock:
        previous = _event_log
        _event_log = log
    return previous


@contextmanager
def event_log(sink, *, run_id: str | None = None) -> Iterator[EventLog]:
    """Attach a JSONL event log for the duration of the ``with`` block.

    ``sink`` is a path or an open text file.  The previous sink (usually
    ``None``) is restored on exit and the log is closed if we opened it.
    """
    log = sink if isinstance(sink, EventLog) else EventLog(sink, run_id=run_id)
    previous = set_event_log(log)
    try:
        yield log
    finally:
        set_event_log(previous)
        log.close()


# -- span stack (per thread) -----------------------------------------------

def _stack() -> list[str]:
    stack = getattr(_tls, "spans", None)
    if stack is None:
        stack = _tls.spans = []
    return stack


def _push_span(path: str) -> None:
    _stack().append(path)


def _pop_span() -> None:
    stack = _stack()
    if stack:
        stack.pop()


def current_span_path() -> str | None:
    """Slash-joined path of the innermost active span on this thread."""
    stack = _stack()
    return stack[-1] if stack else None


def emit_event(
    type: str,
    attrs: Mapping[str, object] | None = None,
    *,
    span: str | None = None,
    severity: str | None = None,
) -> None:
    """Emit a structured event to the active log (no-op when none).

    The current span path is attached automatically unless ``span`` is
    given explicitly.  ``severity="alert"`` makes the log flush the
    record to disk immediately.
    """
    log = _event_log
    if log is None:
        return
    log.emit(
        type,
        span=span if span is not None else current_span_path(),
        attrs=attrs,
        severity=severity,
    )
