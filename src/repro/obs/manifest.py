"""Run manifests: make every benchmark number attributable.

A manifest records everything needed to reproduce (or distrust) a run:
the resolved configuration, the RNG seed, package versions, the git
revision of the working tree, and the platform.  It deliberately
contains **no wall-clock timestamps** — two manifests built from the
same inputs on the same tree are equal dicts, which is what the
determinism tests assert and what makes manifests diff-able across runs.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import platform as _platform
import subprocess
import sys
from pathlib import Path
from typing import Mapping

__all__ = ["build_manifest", "git_revision", "write_manifest"]

_SCHEMA_VERSION = 1


def _jsonable_config(config: object) -> object:
    """Normalise a config (dataclass, Namespace, mapping, …) to JSON form."""
    if isinstance(config, enum.Enum):  # before int/float — IntEnum subclasses both
        return config.name
    if config is None or isinstance(config, (bool, int, float, str)):
        return config
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        config = dataclasses.asdict(config)
    if isinstance(config, Mapping):
        return {
            str(k): _jsonable_config(v)
            for k, v in sorted(config.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(config, (list, tuple, set, frozenset)):
        return [_jsonable_config(v) for v in config]
    if hasattr(config, "__dict__") and not isinstance(config, type):  # Namespace-like
        return _jsonable_config(dict(vars(config)))
    return repr(config)


def git_revision(root: str | Path | None = None) -> str | None:
    """HEAD revision of the repository containing this package (or ``root``)."""
    cwd = Path(root) if root is not None else Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def _package_versions() -> dict[str, str | None]:
    versions: dict[str, str | None] = {
        "python": _platform.python_version(),
    }
    from .. import __version__ as repro_version

    versions["repro"] = repro_version
    for pkg in ("numpy", "scipy"):
        mod = sys.modules.get(pkg)
        if mod is None:
            try:
                mod = __import__(pkg)
            except ImportError:
                mod = None
        versions[pkg] = getattr(mod, "__version__", None) if mod is not None else None
    return versions


def _cache_schema() -> int | None:
    # deferred: repro.sweep imports repro.obs at module level, so a
    # top-level import here would be circular
    try:
        from ..sweep.grid import CACHE_SCHEMA
    except ImportError:
        return None
    return CACHE_SCHEMA


def build_manifest(
    *,
    run_id: str | None = None,
    command: str | None = None,
    config: object = None,
    seed: int | None = None,
    policy: str | None = None,
    extra: Mapping[str, object] | None = None,
) -> dict:
    """Build the manifest dict for one run.

    Deterministic given its inputs and the working tree: no timestamps,
    no RNG — ``run_id`` must be supplied by the caller if one is wanted.
    ``policy`` records the active :class:`SchedulePolicy` name; when not
    given it is recovered from ``config`` if the config names one.  The
    sweep ``CACHE_SCHEMA`` version always rides along so stored runs can
    be partitioned by result-layout generation.
    """
    if policy is None and isinstance(config, Mapping):
        maybe = config.get("policy")
        if isinstance(maybe, str):
            policy = maybe
    elif policy is None and hasattr(config, "policy"):
        maybe = getattr(config, "policy")
        if isinstance(maybe, str):
            policy = maybe
    manifest: dict[str, object] = {
        "schema_version": _SCHEMA_VERSION,
        "run_id": run_id,
        "command": command,
        "seed": seed,
        "policy": policy,
        "cache_schema": _cache_schema(),
        "config": _jsonable_config(config),
        "versions": _package_versions(),
        "git_revision": git_revision(),
        "platform": {
            "system": _platform.system(),
            "machine": _platform.machine(),
            "python_implementation": _platform.python_implementation(),
        },
    }
    if extra:
        manifest["extra"] = _jsonable_config(dict(extra))
    return manifest


def write_manifest(path: str | Path, manifest: Mapping[str, object]) -> Path:
    """Serialise a manifest to pretty, key-sorted JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
