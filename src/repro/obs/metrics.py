"""Metrics registry: counters, gauges, histograms, timers with labels.

The paper's headline claims are measurements — bytes moved per link per
precision, conversion counts, busy time per engine — so the reproduction
needs a first-class place to accumulate them.  This module is a small,
dependency-free metrics substrate in the Prometheus idiom:

* a :class:`MetricsRegistry` owns named metrics;
* each metric holds *labeled series* (``counter.inc(3, engine="h2d")``
  and ``counter.inc(5, engine="nic")`` are independent series);
* everything snapshots to plain dicts via :meth:`MetricsRegistry.to_dict`
  for the JSON exporters and ``repro report``.

Histograms keep a bounded reservoir (deterministic stride-doubling
decimation, no RNG) so per-task observations stay O(1) memory even for
the quarter-million-task runs of Fig. 12.
"""

from __future__ import annotations

import math
import threading
from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "Timer",
]

#: canonical immutable form of a label set
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base class: one named metric holding labeled series."""

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: dict[LabelKey, object] = {}

    def labels_seen(self) -> list[dict[str, str]]:
        with self._lock:
            return [dict(key) for key in self._series]

    def _series_to_dict(self, value: object) -> object:  # pragma: no cover - abstract
        raise NotImplementedError

    def to_dict(self) -> dict:
        with self._lock:
            series = [
                {"labels": dict(key), "value": self._series_to_dict(val)}
                for key, val in sorted(self._series.items())
            ]
        return {"name": self.name, "type": self.kind, "help": self.help, "series": series}


class Counter(Metric):
    """Monotonically increasing sum per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for signed values")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum over every label set."""
        with self._lock:
            return float(sum(self._series.values()))

    def _series_to_dict(self, value: object) -> object:
        return value


class Gauge(Metric):
    """Last-write-wins scalar per label set (can go up and down)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def add(self, delta: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + delta

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def _series_to_dict(self, value: object) -> object:
        return value


class _HistSeries:
    """Running stats plus a bounded deterministic reservoir."""

    __slots__ = ("count", "total", "min", "max", "samples", "stride", "_phase")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples: list[float] = []
        self.stride = 1  # keep every stride-th observation
        self._phase = 0

    def observe(self, value: float, cap: int) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._phase += 1
        if self._phase >= self.stride:
            self._phase = 0
            self.samples.append(value)
            if len(self.samples) >= cap:
                # deterministic decimation: drop every other kept sample,
                # double the stride — memory stays bounded, the reservoir
                # remains a uniform systematic sample of the stream
                self.samples = self.samples[::2]
                self.stride *= 2


class Histogram(Metric):
    """Distribution of observations with quantile queries.

    ``max_samples`` bounds the per-series reservoir; count/sum/min/max
    are always exact.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", *, max_samples: int = 4096) -> None:
        super().__init__(name, help)
        self.max_samples = max(2, int(max_samples))

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistSeries()
            series.observe(float(value), self.max_samples)

    def count(self, **labels: object) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series is not None else 0

    def sum(self, **labels: object) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.total if series is not None else 0.0

    def mean(self, **labels: object) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return math.nan
            return series.total / series.count

    def quantile(self, q: float, **labels: object) -> float:
        """Empirical quantile (nearest-rank on the reservoir)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or not series.samples:
                return math.nan
            ordered = sorted(series.samples)
        idx = min(len(ordered) - 1, int(math.ceil(q * len(ordered))) - 1)
        return ordered[max(0, idx)]

    def _series_to_dict(self, value: object) -> object:
        series = value  # type: _HistSeries
        ordered = sorted(series.samples)

        def _q(q: float) -> float | None:
            if not ordered:
                return None
            idx = max(0, min(len(ordered) - 1, int(math.ceil(q * len(ordered))) - 1))
            return ordered[idx]

        return {
            "count": series.count,
            "sum": series.total,
            "min": series.min if series.count else None,
            "max": series.max if series.count else None,
            "mean": (series.total / series.count) if series.count else None,
            "p50": _q(0.50),
            "p90": _q(0.90),
            "p99": _q(0.99),
        }


class Timer(Histogram):
    """Histogram of elapsed seconds with a context-manager front-end."""

    kind = "timer"

    class _Running:
        def __init__(self, timer: "Timer", labels: dict) -> None:
            self._timer = timer
            self._labels = labels
            self.elapsed = 0.0

        def __enter__(self) -> "Timer._Running":
            import time

            self._t0 = time.perf_counter()
            return self

        def __exit__(self, *exc) -> None:
            import time

            self.elapsed = time.perf_counter() - self._t0
            self._timer.observe(self.elapsed, **self._labels)

    def time(self, **labels: object) -> "Timer._Running":
        return Timer._Running(self, dict(labels))


class MetricsRegistry:
    """Named metrics with create-or-fetch accessors.

    Fetching an existing name with a different metric type raises — a
    registry is a flat namespace shared by every layer of the stack.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def _get(self, cls: type, name: str, help: str, **kwargs) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help, **kwargs)
            elif type(metric) is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {cls.__name__.lower()}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "", *, max_samples: int = 4096) -> Histogram:
        return self._get(Histogram, name, help, max_samples=max_samples)  # type: ignore[return-value]

    def timer(self, name: str, help: str = "", *, max_samples: int = 4096) -> Timer:
        return self._get(Timer, name, help, max_samples=max_samples)  # type: ignore[return-value]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        with self._lock:
            return iter(list(self._metrics.values()))

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Drop every metric (used between runs and by tests)."""
        with self._lock:
            self._metrics.clear()

    def to_dict(self) -> dict:
        """Snapshot every metric: ``{name: {type, help, series: [...]}}``."""
        return {m.name: m.to_dict() for m in sorted(self, key=lambda m: m.name)}
