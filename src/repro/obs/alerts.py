"""Declarative alert rules and the run watchdog.

The live telemetry plane (:mod:`repro.obs.live`) captures a progress
snapshot every bus interval; this module is what *judges* those
snapshots.  An :class:`AlertRule` states one invariant a healthy run
keeps — the heartbeat stays fresh, the tasks/sec rate stays above a
floor, a memory-pressure gauge stays below a ceiling, no distributed
rank goes silent — and the :class:`Watchdog` evaluates every rule
against every snapshot, emitting a ``live.<rule>`` obs-event (at alert
severity, which the :class:`~repro.obs.events.EventLog` flushes to disk
immediately) on the rising edge of each breach, and optionally aborting
the run.

Rules reuse the :class:`~repro.obs.regress.Threshold` machinery of the
regression sentinel: a metric rule is "candidate value vs a fixed
baseline bound, in the metric's bad direction", exactly how ``repro
compare`` judges a perf trajectory — the only difference is that here
the candidate is a live snapshot instead of a finished BENCH document.

CLI syntax (``repro simulate/sweep/simbench --alert RULE``)::

    stall=SECONDS             no heartbeat for SECONDS (run hung)
    rank-silent=SECONDS       a live distributed rank is SECONDS silent
    METRIC<FLOOR              snapshot metric dropped below FLOOR
    METRIC>CEILING            snapshot metric rose above CEILING
    ...:abort                 suffix: also abort the run when fired

``METRIC`` names a top-level snapshot field (``tasks_per_second``,
``live_tasks``, ``heartbeat_age_seconds``…), a gauge set through
:func:`repro.obs.live.set_live_gauge` (``host_pressure``…), or a
registry counter's per-second rate (``sim.evictions``…).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from ._runtime import emit_event, get_registry
from .regress import Threshold, _compare_metric

__all__ = [
    "AlertRule",
    "Watchdog",
    "WatchdogAbort",
    "parse_alert_arg",
]

_RULE_KINDS = ("stall", "metric", "rank-silent")

#: gauge-name prefix the distributed parent uses for per-rank heartbeat
#: ages; the ``rank-silent`` rule scans these (see runtime/distributed.py)
RANK_AGE_GAUGE = "rank_heartbeat_age"


class WatchdogAbort(RuntimeError):
    """Raised into the run's hot loop when an ``abort`` rule fires."""


@dataclass(frozen=True)
class AlertRule:
    """One invariant a healthy run keeps, stated declaratively.

    ``kind`` picks the evaluation: ``stall`` and ``rank-silent`` compare
    heartbeat ages against ``max_age_seconds``; ``metric`` compares a
    snapshot value against ``bound`` under ``threshold`` (direction
    ``higher`` = alert when the value falls below the bound, ``lower`` =
    alert when it rises above — same semantics as the regression
    sentinel's bad-direction check).  ``grace_seconds`` suppresses the
    rule early in the run (rates need a few samples to settle);
    ``abort`` additionally raises :class:`WatchdogAbort` in the run.
    """

    name: str
    kind: str = "metric"
    metric: str | None = None
    bound: float | None = None
    max_age_seconds: float | None = None
    threshold: Threshold = field(default=Threshold(0.0, "higher"))
    grace_seconds: float = 0.0
    abort: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _RULE_KINDS:
            raise ValueError(f"alert kind must be one of {_RULE_KINDS}, got {self.kind!r}")
        if self.kind in ("stall", "rank-silent"):
            if self.max_age_seconds is None or self.max_age_seconds <= 0.0:
                raise ValueError(f"{self.kind} rule needs max_age_seconds > 0")
        else:
            if not self.metric:
                raise ValueError("metric rule needs a metric name")
            if self.bound is None:
                raise ValueError("metric rule needs a bound")
        if self.grace_seconds < 0.0:
            raise ValueError("grace_seconds must be non-negative")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "bound": self.bound,
            "max_age_seconds": self.max_age_seconds,
            "rel_tol": self.threshold.rel_tol,
            "direction": self.threshold.direction,
            "grace_seconds": self.grace_seconds,
            "abort": self.abort,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "AlertRule":
        return cls(
            name=str(doc["name"]),
            kind=str(doc.get("kind", "metric")),
            metric=doc.get("metric"),
            bound=doc.get("bound"),
            max_age_seconds=doc.get("max_age_seconds"),
            threshold=Threshold(
                float(doc.get("rel_tol", 0.0)), str(doc.get("direction", "higher"))
            ),
            grace_seconds=float(doc.get("grace_seconds", 0.0)),
            abort=bool(doc.get("abort", False)),
        )


def parse_alert_arg(spec: str) -> AlertRule:
    """Parse one ``--alert`` argument into an :class:`AlertRule`.

    Forms: ``stall=10``, ``rank-silent=5``, ``tasks_per_second<1000``,
    ``host_pressure>0.9`` — each optionally suffixed ``:abort``.
    """
    text = spec.strip()
    abort = False
    if text.endswith(":abort"):
        abort = True
        text = text[: -len(":abort")]
    if not text:
        raise ValueError(f"empty alert rule in {spec!r}")

    for kind in ("stall", "rank-silent"):
        if text.startswith(kind + "="):
            try:
                seconds = float(text[len(kind) + 1:])
            except ValueError:
                raise ValueError(f"bad {kind} seconds in alert rule {spec!r}") from None
            return AlertRule(name=kind, kind=kind, max_age_seconds=seconds, abort=abort)

    for op, direction in (("<", "higher"), (">", "lower")):
        if op in text:
            metric, _, bound_s = text.partition(op)
            metric = metric.strip()
            try:
                bound = float(bound_s)
            except ValueError:
                raise ValueError(f"bad bound in alert rule {spec!r}") from None
            if not metric:
                raise ValueError(f"missing metric name in alert rule {spec!r}")
            return AlertRule(
                name=metric,
                kind="metric",
                metric=metric,
                bound=bound,
                threshold=Threshold(0.0, direction),
                # rates need at least one bus interval to exist at all
                grace_seconds=2.0 if direction == "higher" else 0.0,
                abort=abort,
            )
    raise ValueError(
        f"cannot parse alert rule {spec!r}: expected stall=SECONDS, "
        "rank-silent=SECONDS, METRIC<FLOOR, or METRIC>CEILING "
        "(optionally suffixed :abort)"
    )


def _snapshot_value(snap: Mapping, metric: str) -> float | None:
    """Resolve a metric-rule name against one snapshot document."""
    for source in (snap, snap.get("gauges") or {}, snap.get("counter_rates") or {}):
        value = source.get(metric)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    return None


class Watchdog:
    """Evaluates alert rules against live snapshots; fires on rising edges.

    One event per incident: a rule that stays breached across many
    snapshots emits once, re-arming only after the condition clears.
    Fired alerts bump the ``live.alerts`` counter (labelled by rule) and
    emit ``live.<rule>`` at alert severity; an ``abort`` rule also calls
    ``abort_hook`` (the live plane wires this to the progress state, so
    the next heartbeat in the run's hot loop raises
    :class:`WatchdogAbort`).
    """

    def __init__(
        self,
        rules: Iterable[AlertRule],
        *,
        abort_hook: Callable[[str], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rules = list(rules)
        self._abort_hook = abort_hook
        self._clock = clock
        self._active: set[str] = set()
        self._fired: list[dict] = []

    @property
    def active(self) -> list[str]:
        """Names of the rules currently breached (sorted)."""
        return sorted(self._active)

    @property
    def fired(self) -> list[dict]:
        """Every alert fired so far (rising edges), oldest first."""
        return list(self._fired)

    def observe(self, snap: Mapping) -> list[str]:
        """Evaluate every rule against ``snap``; returns active rule names."""
        if snap.get("complete"):
            # a finished run cannot stall or run slow; clear and re-arm
            self._active.clear()
            return []
        elapsed = snap.get("elapsed_seconds")
        for rule in self.rules:
            breached, value, detail = self._evaluate(rule, snap)
            if breached and isinstance(elapsed, (int, float)):
                breached = elapsed >= rule.grace_seconds
            if not breached:
                self._active.discard(rule.name)
                continue
            if rule.name in self._active:
                continue  # still the same incident — already reported
            self._active.add(rule.name)
            self._fire(rule, value, detail, snap)
        return self.active

    # -- internals --------------------------------------------------------
    def _evaluate(self, rule: AlertRule, snap: Mapping) -> tuple[bool, float | None, str]:
        if rule.kind == "stall":
            if snap.get("phase") in (None, "idle"):
                return False, None, ""
            age = snap.get("heartbeat_age_seconds")
            if not isinstance(age, (int, float)):
                return False, None, ""
            return (
                float(age) > rule.max_age_seconds,
                float(age),
                f"no heartbeat for {age:.2f} s (limit {rule.max_age_seconds:g} s)",
            )
        if rule.kind == "rank-silent":
            gauges = snap.get("gauges") or {}
            prefix = f"{RANK_AGE_GAUGE}["
            silent = {
                name[len(prefix):-1]: float(age)
                for name, age in gauges.items()
                if name.startswith(prefix) and name.endswith("]")
                and isinstance(age, (int, float)) and age > rule.max_age_seconds
            }
            if not silent:
                return False, None, ""
            worst = max(silent.values())
            ranks = ", ".join(sorted(silent))
            return True, worst, (
                f"rank(s) {ranks} silent for up to {worst:.2f} s "
                f"(limit {rule.max_age_seconds:g} s)"
            )
        # metric rule: live value vs fixed bound, regression-sentinel style
        value = _snapshot_value(snap, rule.metric or "")
        if value is None:
            return False, None, ""
        delta = _compare_metric("live", rule.metric or "", rule.bound or 0.0,
                                value, rule.threshold)
        side = "below floor" if rule.threshold.direction == "higher" else "above ceiling"
        return (
            delta.regressed,
            value,
            f"{rule.metric} = {value:g} {side} {rule.bound:g}",
        )

    def _fire(self, rule: AlertRule, value: float | None, detail: str, snap: Mapping) -> None:
        record = {
            "rule": rule.name,
            "kind": rule.kind,
            "value": value,
            "detail": detail,
            "abort": rule.abort,
            "phase": snap.get("phase"),
            "done": snap.get("done"),
            "total": snap.get("total"),
            "elapsed_seconds": snap.get("elapsed_seconds"),
        }
        self._fired.append(record)
        get_registry().counter(
            "live.alerts", "watchdog alerts fired (rising edges)"
        ).inc(rule=rule.name)
        emit_event(f"live.{rule.name}", record, severity="alert")
        if rule.abort and self._abort_hook is not None:
            self._abort_hook(f"watchdog alert {rule.name!r}: {detail}")
