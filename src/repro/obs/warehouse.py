"""repro.obs.warehouse — the cross-run telemetry store.

Every other ``repro.obs`` layer is per-run: one trace, one summary, one
BENCH document.  The paper's results, though, are *trajectories* —
precision-map bands and bytes-moved curves across problem sizes and GPU
generations — and the regression story CI needs is longitudinal too: a
1.5 % makespan creep per PR never trips a pairwise 2 % gate, but five of
them compound to 7.7 %.  The warehouse is the SQLite-backed (stdlib
``sqlite3``, schema ``repro.obs.warehouse/1``) accumulation point:

* :meth:`Warehouse.ingest` accepts any document the sentinel already
  understands — ``repro.obs.run_summary/1``, ``repro.bench/1``, bare
  ``RunStats`` dicts — plus ``repro.obs.profile/1`` profiles, and files
  via :meth:`Warehouse.ingest_file`;
* rows land in three tables: ``runs`` (one per ingested document, keyed
  by the run's deterministic cache key / manifest ``run_id`` with a
  monotonically increasing ingest ``seq``), ``metrics`` (the flattened
  ``{scope: {metric: value}}`` view :func:`repro.obs.regress.load_metric_scopes`
  produces), and ``bench_points`` (one row per sweep point of a BENCH
  document, keyed by the point's ``RunSpec.cache_key()``);
* :meth:`Warehouse.window_scopes` hands the last *N* matching runs to
  the windowed trend sentinel (``repro compare --against-history``);
* ``repro history`` renders the same queries as a table or JSON.

Ingest order is the time axis.  The warehouse stores no wall-clock
timestamps of its own — runs are deterministic and so is the store; the
``seq`` column totally orders history and the caller's filenames/CI run
ids carry any real-world timing.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from .regress import load_metric_scopes

__all__ = ["WAREHOUSE_SCHEMA", "IngestResult", "RunRow", "Warehouse"]

WAREHOUSE_SCHEMA = "repro.obs.warehouse/1"

_DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    seq          INTEGER PRIMARY KEY,
    run_key      TEXT NOT NULL,
    kind         TEXT NOT NULL,
    command      TEXT,
    policy       TEXT,
    config       TEXT,
    n            INTEGER,
    nb           INTEGER,
    nt           INTEGER,
    gpu          TEXT,
    cache_schema INTEGER,
    git_revision TEXT,
    source       TEXT,
    doc          TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_by_key    ON runs(run_key);
CREATE INDEX IF NOT EXISTS runs_by_policy ON runs(policy);
CREATE TABLE IF NOT EXISTS metrics (
    run_seq INTEGER NOT NULL REFERENCES runs(seq) ON DELETE CASCADE,
    scope   TEXT NOT NULL,
    metric  TEXT NOT NULL,
    value   REAL NOT NULL,
    PRIMARY KEY (run_seq, scope, metric)
);
CREATE TABLE IF NOT EXISTS bench_points (
    run_seq   INTEGER NOT NULL REFERENCES runs(seq) ON DELETE CASCADE,
    point_key TEXT NOT NULL,
    label     TEXT,
    cached    INTEGER NOT NULL DEFAULT 0,
    failed    INTEGER NOT NULL DEFAULT 0,
    attempts  INTEGER NOT NULL DEFAULT 1,
    spec      TEXT,
    metrics   TEXT,
    PRIMARY KEY (run_seq, point_key)
);
"""


@dataclass(frozen=True)
class IngestResult:
    """What one :meth:`Warehouse.ingest` call stored."""

    seq: int
    run_key: str
    kind: str
    n_metrics: int
    n_points: int


@dataclass(frozen=True)
class RunRow:
    """One ``runs`` row (document payload omitted)."""

    seq: int
    run_key: str
    kind: str
    command: str | None
    policy: str | None
    config: str | None
    n: int | None
    nb: int | None
    nt: int | None
    gpu: str | None
    cache_schema: int | None
    git_revision: str | None
    source: str | None

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "run_key": self.run_key,
            "kind": self.kind,
            "command": self.command,
            "policy": self.policy,
            "config": self.config,
            "n": self.n,
            "nb": self.nb,
            "nt": self.nt,
            "gpu": self.gpu,
            "cache_schema": self.cache_schema,
            "git_revision": self.git_revision,
            "source": self.source,
        }


def _content_key(doc: Mapping) -> str:
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _classify(doc: Mapping) -> str:
    schema = str(doc.get("schema", ""))
    if schema.startswith("repro.bench/"):
        return "bench"
    if schema.startswith("repro.obs.run_summary/"):
        return "run_summary"
    if schema.startswith("repro.obs.profile/"):
        return "profile"
    if schema.startswith("repro.obs.live/"):
        return "live"
    if str(doc.get("type", "")).startswith("live."):
        return "live"  # a watchdog alert record from an event log
    if "makespan_seconds" in doc:
        return "stats"
    if "runs" in doc and "aggregates" in doc:
        return "bench"
    raise ValueError(
        f"cannot ingest document with schema {schema!r}: expected repro.bench/1, "
        "repro.obs.run_summary/1, repro.obs.profile/1, repro.obs.live/1, a "
        "live.* alert event record, or a RunStats dict"
    )


def _dims_from_config(config: Mapping) -> dict:
    """n/nb/nt/gpu/config columns from a manifest or spec config dict."""
    out: dict[str, object] = {}
    n, nb = config.get("n"), config.get("nb")
    if isinstance(n, int) and not isinstance(n, bool):
        out["n"] = n
    if isinstance(nb, int) and not isinstance(nb, bool):
        out["nb"] = nb
    if "n" in out and "nb" in out and out["nb"]:
        out["nt"] = -(-out["n"] // out["nb"])
    if isinstance(config.get("gpu"), str):
        out["gpu"] = config["gpu"]
    if isinstance(config.get("config"), str):
        out["config"] = config["config"]
    return out


def _profile_metrics(doc: Mapping) -> dict[str, float]:
    """The longitudinally interesting numbers of a profile document."""
    out: dict[str, float] = {}
    for key in ("tasks_per_second", "n_samples", "overhead_fraction"):
        value = doc.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[key] = float(value)
    for region in doc.get("hot_regions") or []:
        name, seconds = region.get("name"), region.get("seconds")
        if isinstance(name, str) and isinstance(seconds, (int, float)):
            out[f"region_seconds[{name}]"] = float(seconds)
    return out


def _live_metrics(doc: Mapping) -> dict[str, float]:
    """Numbers worth trending from a live snapshot or alert event record."""
    out: dict[str, float] = {}
    if str(doc.get("type", "")).startswith("live."):
        attrs = doc.get("attrs") if isinstance(doc.get("attrs"), Mapping) else {}
        value = attrs.get("value")
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out["alert_value"] = float(value)
        for key in ("done", "total", "elapsed_seconds"):
            value = attrs.get(key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[key] = float(value)
        return out
    for key in ("done", "total", "fraction", "tasks_per_second", "eta_seconds",
                "live_tasks", "elapsed_seconds", "heartbeat_age_seconds"):
        value = doc.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[key] = float(value)
    gauges = doc.get("gauges")
    if isinstance(gauges, Mapping):
        for name, value in gauges.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[f"gauge[{name}]"] = float(value)
    return out


class Warehouse:
    """SQLite-backed store of run history (schema ``repro.obs.warehouse/1``)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._db = sqlite3.connect(str(self.path))
        self._db.executescript(_DDL)
        row = self._db.execute("SELECT value FROM meta WHERE key='schema'").fetchone()
        if row is None:
            with self._db:
                self._db.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema', ?)",
                    (WAREHOUSE_SCHEMA,),
                )
        elif row[0] != WAREHOUSE_SCHEMA:
            self._db.close()
            raise ValueError(
                f"warehouse {self.path} has schema {row[0]!r}, expected {WAREHOUSE_SCHEMA!r}"
            )

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ingest -----------------------------------------------------------
    def ingest(
        self,
        doc: Mapping,
        *,
        run_key: str | None = None,
        source: str | None = None,
    ) -> IngestResult:
        """Store one document; returns what landed where.

        ``run_key`` defaults to the manifest's ``run_id`` (the sweep
        cache key for cached sweep runs), else a content hash — so the
        same run re-ingested twice gets the same key at two seqs, which
        is exactly what a trend over repeated CI runs needs.
        """
        kind = _classify(doc)
        manifest = doc.get("manifest") if isinstance(doc.get("manifest"), Mapping) else {}
        if run_key is None:
            rid = manifest.get("run_id")
            if not (isinstance(rid, str) and rid) and kind == "live":
                # live snapshots and alert events carry the id top-level
                rid = doc.get("run_id")
            run_key = rid if isinstance(rid, str) and rid else _content_key(doc)

        columns: dict[str, object] = {
            "command": manifest.get("command"),
            "policy": manifest.get("policy"),
            "cache_schema": manifest.get("cache_schema"),
            "git_revision": manifest.get("git_revision"),
        }
        config = manifest.get("config")
        if isinstance(config, Mapping):
            columns.update(_dims_from_config(config))
            if columns.get("policy") is None and isinstance(config.get("policy"), str):
                columns["policy"] = config["policy"]
        if kind == "bench" and columns.get("cache_schema") is None:
            cs = doc.get("cache_schema")
            if isinstance(cs, int) and not isinstance(cs, bool):
                columns["cache_schema"] = cs

        if kind == "profile":
            scopes = {"profile": _profile_metrics(doc)}
        elif kind == "live":
            scopes = {"live": _live_metrics(doc)}
        else:
            scopes = load_metric_scopes(doc)

        with self._db:
            cur = self._db.execute(
                "INSERT INTO runs (run_key, kind, command, policy, config, n, nb, nt,"
                " gpu, cache_schema, git_revision, source, doc)"
                " VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?)",
                (
                    run_key,
                    kind,
                    columns.get("command"),
                    columns.get("policy"),
                    columns.get("config"),
                    columns.get("n"),
                    columns.get("nb"),
                    columns.get("nt"),
                    columns.get("gpu"),
                    columns.get("cache_schema"),
                    columns.get("git_revision"),
                    source,
                    json.dumps(doc, sort_keys=True, default=str),
                ),
            )
            seq = int(cur.lastrowid)
            n_metrics = 0
            for scope, metrics in scopes.items():
                for metric, value in metrics.items():
                    self._db.execute(
                        "INSERT OR REPLACE INTO metrics (run_seq, scope, metric, value)"
                        " VALUES (?,?,?,?)",
                        (seq, scope, metric, float(value)),
                    )
                    n_metrics += 1
            n_points = 0
            if kind == "bench":
                for run in doc.get("runs") or []:
                    spec = run.get("spec") or {}
                    self._db.execute(
                        "INSERT OR REPLACE INTO bench_points (run_seq, point_key,"
                        " label, cached, failed, attempts, spec, metrics)"
                        " VALUES (?,?,?,?,?,?,?,?)",
                        (
                            seq,
                            str(run.get("key", "?")),
                            _point_label(spec),
                            int(bool(run.get("cached"))),
                            int(bool(run.get("failed"))),
                            int(run.get("attempts", 1) or 1),
                            json.dumps(spec, sort_keys=True),
                            json.dumps(run.get("metrics") or {}, sort_keys=True),
                        ),
                    )
                    n_points += 1
        return IngestResult(
            seq=seq, run_key=run_key, kind=kind, n_metrics=n_metrics, n_points=n_points
        )

    def ingest_file(self, path: str | Path) -> IngestResult:
        path = Path(path)
        doc = json.loads(path.read_text(encoding="utf-8"))
        return self.ingest(doc, source=str(path))

    # -- queries ----------------------------------------------------------
    def _where(
        self,
        *,
        policy: str | None = None,
        nt: int | None = None,
        config: str | None = None,
        command: str | None = None,
        kind: str | None = None,
        run_key: str | None = None,
    ) -> tuple[str, list]:
        clauses, params = [], []
        for column, value in (
            ("policy", policy),
            ("nt", nt),
            ("config", config),
            ("command", command),
            ("kind", kind),
            ("run_key", run_key),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        return where, params

    def runs(self, *, limit: int | None = None, **filters) -> list[RunRow]:
        """Matching ``runs`` rows, oldest first (``seq`` ascending)."""
        where, params = self._where(**filters)
        sql = (
            "SELECT seq, run_key, kind, command, policy, config, n, nb, nt, gpu,"
            f" cache_schema, git_revision, source FROM runs{where} ORDER BY seq"
        )
        rows = [RunRow(*row) for row in self._db.execute(sql, params)]
        if limit is not None and limit >= 0:
            rows = rows[-limit:]
        return rows

    def document(self, seq: int) -> dict:
        """The full ingested document at one ``seq``."""
        row = self._db.execute("SELECT doc FROM runs WHERE seq = ?", (seq,)).fetchone()
        if row is None:
            raise KeyError(f"no run with seq {seq}")
        return json.loads(row[0])

    def metric_scopes(self, seq: int) -> dict[str, dict[str, float]]:
        """The flattened ``{scope: {metric: value}}`` view of one run."""
        scopes: dict[str, dict[str, float]] = {}
        for scope, metric, value in self._db.execute(
            "SELECT scope, metric, value FROM metrics WHERE run_seq = ?"
            " ORDER BY scope, metric",
            (seq,),
        ):
            scopes.setdefault(scope, {})[metric] = value
        return scopes

    def window_scopes(
        self, window: int, **filters
    ) -> list[dict[str, dict[str, float]]]:
        """Metric scopes of the last ``window`` matching runs, oldest first.

        This is the history the windowed trend sentinel consumes
        (:func:`repro.obs.regress.compare_against_window`).
        """
        if window < 1:
            raise ValueError("window must be positive")
        rows = self.runs(limit=window, **filters)
        return [self.metric_scopes(row.seq) for row in rows]

    def metric_history(
        self, metric: str, *, scope: str = "run", **filters
    ) -> list[tuple[int, str, float]]:
        """``(seq, run_key, value)`` series of one metric, oldest first."""
        where, params = self._where(**filters)
        conditions = [where.replace(" WHERE ", "", 1)] if where else []
        conditions += ["metrics.metric = ?", "metrics.scope = ?"]
        sql = (
            "SELECT runs.seq, runs.run_key, metrics.value FROM metrics"
            " JOIN runs ON runs.seq = metrics.run_seq"
            " WHERE " + " AND ".join(conditions) + " ORDER BY runs.seq"
        )
        return [
            (int(seq), key, float(value))
            for seq, key, value in self._db.execute(sql, [*params, metric, scope])
        ]

    def bench_points(self, seq: int) -> list[dict]:
        """Sweep points of one ingested BENCH document."""
        out = []
        for point_key, label, cached, failed, attempts, spec, metrics in self._db.execute(
            "SELECT point_key, label, cached, failed, attempts, spec, metrics"
            " FROM bench_points WHERE run_seq = ? ORDER BY point_key",
            (seq,),
        ):
            out.append({
                "key": point_key,
                "label": label,
                "cached": bool(cached),
                "failed": bool(failed),
                "attempts": attempts,
                "spec": json.loads(spec) if spec else {},
                "metrics": json.loads(metrics) if metrics else {},
            })
        return out

    def counts(self) -> dict[str, int]:
        """Row counts per table (for ``repro history`` headers and tests)."""
        return {
            table: int(self._db.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0])
            for table in ("runs", "metrics", "bench_points")
        }

    # -- rendering --------------------------------------------------------
    def history_table(self, rows: Iterable[RunRow] | None = None, **filters) -> str:
        """Human-readable history listing (``repro history``)."""
        from ..bench.reporting import format_table

        if rows is None:
            rows = self.runs(**filters)
        rows = list(rows)
        # each run kind reports a different headline throughput metric
        # (simulate → tflops, sweeps → best_tflops, simbench/profile →
        # tasks_per_second); label the one actually shown rather than
        # printing them all under one ambiguous column
        rate_units = (
            ("tflops", "tflops"),
            ("best_tflops", "best tflops"),
            ("tasks_per_second", "tasks/s"),
        )
        body = []
        for row in rows:
            scopes = self.metric_scopes(row.seq)
            primary = (scopes.get("run") or scopes.get("aggregate")
                       or scopes.get("profile") or scopes.get("live") or {})
            makespan = primary.get("makespan_seconds")
            makespan_label = "sim s"
            if makespan is None:
                makespan = primary.get("total_sim_makespan_seconds")
                makespan_label = "total sim s"
            rate = None
            rate_label = ""
            for metric, unit in rate_units:
                if primary.get(metric) is not None:
                    rate, rate_label = primary[metric], unit
                    break
            body.append((
                row.seq,
                row.run_key,
                row.kind,
                row.policy or "-",
                row.nt if row.nt is not None else "-",
                row.config or "-",
                f"{makespan:.4g} {makespan_label}" if makespan is not None else "-",
                f"{rate:.4g} {rate_label}" if rate is not None else "-",
            ))
        counts = self.counts()
        title = (
            f"warehouse {self.path} — {counts['runs']} runs, "
            f"{counts['metrics']} metric rows, {counts['bench_points']} bench points"
            f" ({len(rows)} shown)"
        )
        if not body:
            return title + "\n(no matching runs)"
        return format_table(
            ["seq", "run key", "kind", "policy", "nt", "config",
             "makespan", "throughput"],
            body,
            title=title,
        )

    def history_json(self, rows: Sequence[RunRow] | None = None, **filters) -> dict:
        """Machine-readable history (``repro history --json-out``)."""
        if rows is None:
            rows = self.runs(**filters)
        return {
            "schema": WAREHOUSE_SCHEMA,
            "path": str(self.path),
            "counts": self.counts(),
            "runs": [
                {**row.to_dict(), "metrics": self.metric_scopes(row.seq)}
                for row in rows
            ],
        }


def _point_label(spec: Mapping) -> str:
    label = "/".join(
        str(spec[k]) for k in ("config", "strategy", "n", "nb", "gpu") if k in spec
    )
    return label or "?"
