"""Low-overhead wall-clock profiling for the hot loops.

The ROADMAP's "simulator raw speed and million-task scale" item needs
*evidence*: which frames the event loop actually spends its wall time
in, at overheads small enough to leave the measured workload honest.
Two complementary instruments, both stdlib-only:

* :class:`SamplingProfiler` — a daemon thread that snapshots the target
  thread's stack via ``sys._current_frames()`` every ``interval``
  seconds (no ``sys.setprofile``/``signal`` hooks, so the profiled code
  runs at full speed between samples).  Each sample credits the top
  frame with *self* time and every frame on the stack with *cumulative*
  time; the profiler times its own sampling work and reports the
  measured overhead fraction, so "overhead < 5 %" is a checked number,
  not a promise.
* :func:`hot_region` — explicit named regions around the known hot
  loops (the simulator's ready-heap loop, the DAG unroll, the sweep
  pool dispatch).  When no profiler is active the call returns a shared
  no-op context manager — one global read and no allocation — so the
  instrumented paths cost effectively nothing in normal runs.

``repro profile`` runs a symbolic ``simulate`` under the profiler;
``repro simulate/sweep --profile-out`` wrap their normal work.  The
report document (schema ``repro.obs.profile/1``) carries
``tasks_per_second`` so :mod:`repro.obs.warehouse` can track simulator
speed as a longitudinal trend.
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path
from typing import Mapping

__all__ = [
    "PROFILE_SCHEMA",
    "SamplingProfiler",
    "active_profiler",
    "hot_region",
    "write_profile",
]

PROFILE_SCHEMA = "repro.obs.profile/1"

#: (function, filename, firstlineno) — the identity of one frame
FrameKey = tuple[str, str, int]


class _NullRegion:
    """Shared no-op context manager returned when no profiler is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullRegion":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_REGION = _NullRegion()
_active_profiler: "SamplingProfiler | None" = None
_active_lock = threading.Lock()


def active_profiler() -> "SamplingProfiler | None":
    """The profiler currently collecting hot-region timings (or None)."""
    return _active_profiler


def hot_region(name: str):
    """Context manager timing one named hot region.

    Free when no profiler is active (one global read, shared no-op
    object); while a :class:`SamplingProfiler` runs, enter/exit cost two
    ``perf_counter`` calls and a dict update.
    """
    prof = _active_profiler
    if prof is None:
        return _NULL_REGION
    return _Region(prof, name)


class _Region:
    __slots__ = ("_prof", "_name", "_t0")

    def __init__(self, prof: "SamplingProfiler", name: str) -> None:
        self._prof = prof
        self._name = name

    def __enter__(self) -> "_Region":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._prof._record_region(self._name, time.perf_counter() - self._t0)
        return False


class SamplingProfiler:
    """Sampling wall-clock profiler over ``sys._current_frames()``.

    Samples the thread that called :meth:`start` (typically the main
    thread driving the simulator) at ``interval`` seconds.  The sampler
    thread never touches interpreter hooks, so the profiled code pays
    only the GIL handoffs of the snapshot itself; the time the sampler
    spends capturing and aggregating is accumulated and reported as
    ``overhead_seconds`` / ``overhead_fraction``.
    """

    def __init__(
        self,
        interval: float = 0.005,
        *,
        max_stack_depth: int = 64,
    ) -> None:
        if interval <= 0.0:
            raise ValueError("interval must be positive")
        self.interval = float(interval)
        self.max_stack_depth = int(max_stack_depth)
        self.n_samples = 0
        self.self_counts: dict[FrameKey, int] = {}
        self.cum_counts: dict[FrameKey, int] = {}
        self.regions: dict[str, list] = {}  # name -> [calls, seconds]
        self._region_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._target_tid: int | None = None
        self._t_start: float | None = None
        self._t_stop: float | None = None
        self._sample_seconds = 0.0

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        """Begin sampling the calling thread; installs as the active profiler."""
        global _active_profiler
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._target_tid = threading.get_ident()
        self._t_start = time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        with _active_lock:
            self._previous = _active_profiler
            _active_profiler = self
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        global _active_profiler
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._t_stop = time.perf_counter()
        with _active_lock:
            if _active_profiler is self:
                _active_profiler = self._previous
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- collection -------------------------------------------------------
    def _record_region(self, name: str, seconds: float) -> None:
        with self._region_lock:
            agg = self.regions.get(name)
            if agg is None:
                agg = self.regions[name] = [0, 0.0]
            agg[0] += 1
            agg[1] += seconds

    def _run(self) -> None:
        target = self._target_tid
        while not self._stop.wait(self.interval):
            t0 = time.perf_counter()
            frame = sys._current_frames().get(target)
            if frame is not None:
                self.n_samples += 1
                code = frame.f_code
                top: FrameKey = (code.co_name, code.co_filename, code.co_firstlineno)
                self.self_counts[top] = self.self_counts.get(top, 0) + 1
                seen: set[FrameKey] = set()
                depth = 0
                while frame is not None and depth < self.max_stack_depth:
                    code = frame.f_code
                    key: FrameKey = (code.co_name, code.co_filename, code.co_firstlineno)
                    if key not in seen:
                        seen.add(key)
                        self.cum_counts[key] = self.cum_counts.get(key, 0) + 1
                    frame = frame.f_back
                    depth += 1
                del frame
            self._sample_seconds += time.perf_counter() - t0

    # -- reporting --------------------------------------------------------
    @property
    def wall_seconds(self) -> float:
        if self._t_start is None:
            return 0.0
        end = self._t_stop if self._t_stop is not None else time.perf_counter()
        return end - self._t_start

    @property
    def overhead_seconds(self) -> float:
        """Wall time the sampler itself spent capturing + aggregating."""
        return self._sample_seconds

    @property
    def overhead_fraction(self) -> float:
        wall = self.wall_seconds
        return self._sample_seconds / wall if wall > 0.0 else 0.0

    def top_frames(self, top: int = 10) -> list[dict]:
        """The hottest frames by self samples, cumulative split included."""
        n = max(1, self.n_samples)
        ranked = sorted(
            self.self_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )[: max(0, top)]
        return [
            {
                "function": fn,
                "file": filename,
                "line": lineno,
                "self_samples": count,
                "cum_samples": self.cum_counts.get((fn, filename, lineno), count),
                "self_fraction": count / n,
                "cum_fraction": self.cum_counts.get((fn, filename, lineno), count) / n,
            }
            for (fn, filename, lineno), count in ranked
        ]

    def report(self, *, top: int = 10, extra: Mapping[str, object] | None = None) -> dict:
        """The machine-readable profile document (``repro.obs.profile/1``)."""
        wall = self.wall_seconds
        doc: dict[str, object] = {
            "schema": PROFILE_SCHEMA,
            "interval_seconds": self.interval,
            "wall_seconds": wall,
            "n_samples": self.n_samples,
            "overhead_seconds": self.overhead_seconds,
            "overhead_fraction": self.overhead_fraction,
            "top_frames": self.top_frames(top),
            "hot_regions": [
                {
                    "name": name,
                    "calls": calls,
                    "seconds": seconds,
                    "fraction": (seconds / wall) if wall > 0.0 else 0.0,
                }
                for name, (calls, seconds) in sorted(
                    self.regions.items(), key=lambda kv: -kv[1][1]
                )
            ],
        }
        if extra:
            doc.update({str(k): v for k, v in extra.items()})
        return doc

    def render(self, *, top: int = 10) -> str:
        """Human-readable top-frame table plus the overhead line."""
        from ..bench.reporting import format_table

        frames = self.top_frames(top)
        rows = [
            (
                f"{f['self_fraction'] * 100.0:5.1f}%",
                f"{f['cum_fraction'] * 100.0:5.1f}%",
                f["self_samples"],
                f["function"],
                f"{_short_path(f['file'])}:{f['line']}",
            )
            for f in frames
        ]
        title = (
            f"profile: {self.n_samples} samples over {self.wall_seconds:.3f} s "
            f"(interval {self.interval * 1e3:g} ms, measured overhead "
            f"{self.overhead_fraction * 100.0:.2f}%)"
        )
        lines = [format_table(["self", "cum", "samples", "function", "where"], rows,
                              title=title)]
        if self.regions:
            wall = self.wall_seconds or 1.0
            region_rows = [
                (name, calls, f"{seconds:.4f}", f"{seconds / wall * 100.0:5.1f}%")
                for name, (calls, seconds) in sorted(
                    self.regions.items(), key=lambda kv: -kv[1][1]
                )
            ]
            lines.append(format_table(
                ["hot region", "calls", "seconds", "of wall"], region_rows,
                title="instrumented hot regions",
            ))
        return "\n\n".join(lines)


def _short_path(path: str) -> str:
    """Trim a source path to its last three components for the table."""
    parts = Path(path).parts
    return "/".join(parts[-3:]) if len(parts) > 3 else path


def write_profile(path: str | Path, doc: Mapping[str, object]) -> Path:
    """Serialise a profile document to pretty JSON."""
    import json

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(dict(doc), indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
