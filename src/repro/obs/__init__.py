"""repro.obs — unified telemetry for the whole stack.

The paper's claims are measurements; this package is where the
reproduction measures itself.  Four pieces, shared by every layer:

* **metrics** (:mod:`repro.obs.metrics`) — a process-global registry of
  labeled counters/gauges/histograms/timers (``get_registry()``);
* **spans** (:mod:`repro.obs.spans`) — nested timing contexts
  (``span("mle.fit", n=400)`` / ``@traced``) feeding the registry and
  the event log;
* **structured run logs** (:mod:`repro.obs.events`) — JSONL, one event
  per line with run id + monotonic timestamp + span path; attach a sink
  with ``event_log(path)`` and instrumented code lights up,
  detach and the same call sites cost nothing;
* **exporters + manifest** (:mod:`repro.obs.exporters`,
  :mod:`repro.obs.manifest`) — Perfetto traces with counter tracks, CSV
  dumps, JSON run summaries, and a deterministic per-run manifest
  (config, seed, versions, git revision, platform);
* **analysis** (:mod:`repro.obs.analysis`) — the data-motion ledger
  (bytes per link/precision, STC-vs-TTC conversion attribution, savings
  vs all-FP64), critical-path and occupancy analysis (``repro
  analyze``);
* **regression sentinel** (:mod:`repro.obs.regress`) — thresholded
  BENCH/run-summary diffing with a machine-readable verdict (``repro
  compare``), wired into CI as a perf-trajectory gate, plus the
  N-run windowed trend sentinel (``repro compare --against-history``);
* **warehouse** (:mod:`repro.obs.warehouse`) — the SQLite cross-run
  store behind ``repro history`` and the windowed sentinel;
* **shard merge** (:mod:`repro.obs.merge`) — clock-aligned aggregation
  of distributed per-rank trace shards (``repro merge-shards``);
* **profiler** (:mod:`repro.obs.profile`) — sampling wall-clock
  profiler + named hot regions (``repro profile``, ``--profile-out``);
* **live plane** (:mod:`repro.obs.live`, :mod:`repro.obs.alerts`) —
  in-flight progress snapshots, ``/metrics`` + ``/progress`` +
  ``/healthz`` scrape endpoints, and declarative stall/rate/pressure
  watchdogs (``--live-port``/``--alert``, ``repro watch``).

See ``docs/OBSERVABILITY.md`` for the capture-analyze-compare workflow.
"""

from . import alerts, analysis, live, merge, profile, regress, warehouse
from .alerts import AlertRule, Watchdog, WatchdogAbort, parse_alert_arg
from .analysis import analyze_path, analyze_trace, build_ledger, critical_path
from .live import (
    LivePlane,
    announce_total,
    campaign,
    campaign_progress,
    get_plane,
    live_plane,
    run_finished,
    run_started,
    set_live_gauge,
)
from .merge import MergedTrace, merge_shards, write_merged
from .profile import SamplingProfiler, active_profiler, hot_region, write_profile
from .regress import (
    WindowedReport,
    compare_against_window,
    compare_docs,
    compare_files,
)
from .warehouse import Warehouse

from ._runtime import (
    current_span_path,
    emit_event,
    event_log,
    get_event_log,
    get_registry,
    reset_metrics,
    set_event_log,
)
from .events import EventLog, iter_events, read_events
from .exporters import (
    lint_prometheus_text,
    run_summary,
    to_prometheus_text,
    trace_to_csv,
    write_perfetto_trace,
    write_run_summary,
    write_trace_csv,
)
from .manifest import build_manifest, git_revision, write_manifest
from .metrics import Counter, Gauge, Histogram, Metric, MetricsRegistry, Timer
from .spans import Span, span, traced

__all__ = [
    "AlertRule",
    "Counter",
    "EventLog",
    "LivePlane",
    "MergedTrace",
    "SamplingProfiler",
    "Warehouse",
    "Watchdog",
    "WatchdogAbort",
    "WindowedReport",
    "active_profiler",
    "alerts",
    "analysis",
    "analyze_path",
    "analyze_trace",
    "announce_total",
    "build_ledger",
    "campaign",
    "campaign_progress",
    "compare_against_window",
    "compare_docs",
    "compare_files",
    "critical_path",
    "get_plane",
    "hot_region",
    "lint_prometheus_text",
    "live",
    "live_plane",
    "merge",
    "merge_shards",
    "parse_alert_arg",
    "profile",
    "regress",
    "run_finished",
    "run_started",
    "set_live_gauge",
    "warehouse",
    "write_merged",
    "write_profile",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "Span",
    "Timer",
    "build_manifest",
    "current_span_path",
    "emit_event",
    "event_log",
    "get_event_log",
    "get_registry",
    "git_revision",
    "iter_events",
    "read_events",
    "reset_metrics",
    "run_summary",
    "set_event_log",
    "span",
    "to_prometheus_text",
    "trace_to_csv",
    "traced",
    "write_manifest",
    "write_perfetto_trace",
    "write_run_summary",
    "write_trace_csv",
]
