"""Exporters: Perfetto traces, CSV event dumps, JSON run summaries.

These sit on top of the simulator's :class:`~repro.runtime.tracing.TraceEvent`
stream and the metrics registry, and are what ``repro simulate
--trace-out/--metrics-out`` and ``repro report`` call into.  Runtime
imports happen inside the functions so ``repro.obs`` stays a leaf
package every layer may import without cycles.
"""

from __future__ import annotations

import csv
import io
import json
import re
from pathlib import Path
from typing import Mapping, Sequence

__all__ = [
    "lint_prometheus_text",
    "to_prometheus_text",
    "trace_to_csv",
    "run_summary",
    "write_perfetto_trace",
    "write_run_summary",
    "write_trace_csv",
]

_CSV_FIELDS = (
    "rank",
    "engine",
    "kind",
    "t_start",
    "t_end",
    "duration",
    "precision",
    "bytes",
    "flops",
    "site",
    "src_precision",
    "dst_precision",
)


def write_perfetto_trace(
    events: Sequence,
    path: str | Path,
    *,
    counters: bool = True,
    obs_events: Sequence[Mapping] | None = None,
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Write a Perfetto/Chrome trace JSON with metadata + counter tracks.

    ``obs_events`` (records from :func:`repro.obs.read_events`) renders
    fault/retry telemetry as instant markers alongside the slices;
    ``metadata`` (e.g. the scheduling policy) lands in the trace's
    top-level ``"metadata"`` object.
    """
    from ..runtime.gantt import to_chrome_trace

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        to_chrome_trace(events, counters=counters, obs_events=obs_events,
                        metadata=metadata),
        encoding="utf-8",
    )
    return path


def _prec_name(precision) -> str:
    return precision.name if precision is not None else ""


def trace_to_csv(events: Sequence) -> str:
    """Render the event stream as a flat CSV (one row per event)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(_CSV_FIELDS)
    for ev in sorted(events, key=lambda e: (e.t_start, e.rank, e.engine)):
        writer.writerow(
            [
                ev.rank,
                ev.engine,
                ev.kind,
                repr(ev.t_start),
                repr(ev.t_end),
                repr(ev.duration),
                ev.precision.name if ev.precision is not None else "",
                ev.bytes,
                repr(ev.flops),
                getattr(ev, "site", None) or "",
                _prec_name(getattr(ev, "src_precision", None)),
                _prec_name(getattr(ev, "dst_precision", None)),
            ]
        )
    return buf.getvalue()


def write_trace_csv(events: Sequence, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(trace_to_csv(events), encoding="utf-8")
    return path


def run_summary(
    *,
    stats=None,
    trace=None,
    manifest: Mapping | None = None,
    registry=None,
) -> dict:
    """Assemble the JSON-summary document of one run.

    Any section may be omitted; ``registry`` defaults to the process
    registry so a bare ``run_summary()`` still captures live metrics.
    """
    if registry is None:
        from ._runtime import get_registry

        registry = get_registry()
    doc: dict[str, object] = {"schema": "repro.obs.run_summary/1"}
    if manifest is not None:
        doc["manifest"] = dict(manifest)
    if stats is not None:
        doc["stats"] = stats.to_dict() if hasattr(stats, "to_dict") else dict(stats)
    if trace is not None:
        doc["trace"] = trace.summary() if hasattr(trace, "summary") else dict(trace)
    doc["metrics"] = registry.to_dict()
    return doc


def write_run_summary(path: str | Path, **kwargs) -> Path:
    """Build :func:`run_summary` and write it as pretty JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(run_summary(**kwargs), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


# -- Prometheus text exposition --------------------------------------------

def _prom_name(name: str) -> str:
    """A metric name Prometheus accepts: [a-zA-Z_:][a-zA-Z0-9_:]*."""
    out = "".join(c if c.isalnum() or c in "_:" else "_" for c in name)
    if not out or not (out[0].isalpha() or out[0] in "_:"):
        out = "_" + out
    return out


def _prom_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(labels: Mapping[str, str], extra: Mapping[str, str] | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    body = ",".join(
        f'{_prom_name(k)}="{_prom_label_value(str(v))}"'
        for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _prom_number(value) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus_text(registry=None) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    Counters get the conventional ``_total`` suffix; histograms and
    timers are exported as *summaries* (``{quantile="..."}`` series plus
    ``_sum``/``_count``), matching what their bounded reservoir can
    answer.  This is the payload the future serving layer's ``/metrics``
    endpoint will scrape; until then ``repro report --format prom``
    writes it to stdout or a file.
    """
    if registry is None:
        from ._runtime import get_registry

        registry = get_registry()
    snapshot = registry.to_dict() if hasattr(registry, "to_dict") else dict(registry)
    lines: list[str] = []
    for name in sorted(snapshot):
        metric = snapshot[name]
        kind = metric.get("type", "gauge")
        base = _prom_name(name)
        if kind == "counter" and not base.endswith("_total"):
            base += "_total"
        prom_type = {
            "counter": "counter",
            "gauge": "gauge",
            "histogram": "summary",
            "timer": "summary",
        }.get(kind, "untyped")
        if metric.get("help"):
            lines.append(f"# HELP {base} {metric['help']}")
        lines.append(f"# TYPE {base} {prom_type}")
        for series in metric.get("series", []):
            labels = {str(k): str(v) for k, v in (series.get("labels") or {}).items()}
            value = series.get("value")
            if prom_type == "summary" and isinstance(value, Mapping):
                for q_label, q_key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
                    q_value = value.get(q_key)
                    if q_value is not None:
                        lines.append(
                            f"{base}{_prom_labels(labels, {'quantile': q_label})}"
                            f" {_prom_number(q_value)}"
                        )
                lines.append(f"{base}_sum{_prom_labels(labels)} {_prom_number(value.get('sum', 0.0))}")
                lines.append(f"{base}_count{_prom_labels(labels)} {_prom_number(value.get('count', 0))}")
            else:
                scalar = value if isinstance(value, (int, float)) else 0.0
                lines.append(f"{base}{_prom_labels(labels)} {_prom_number(scalar)}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- exposition-format lint --------------------------------------------------

_PROM_NAME_RE = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_PROM_SAMPLE_RE = re.compile(
    rf"^(?P<name>{_PROM_NAME_RE})"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>NaN|[+-]?Inf|[+-]?[0-9.eE+-]+)"
    r"(?: [0-9]+)?$"
)
_PROM_LABEL_RE = re.compile(
    rf'\s*(?P<key>{_PROM_NAME_RE})="(?P<value>(?:[^"\\]|\\["\\n])*)"\s*(?:,|$)'
)
_PROM_TYPES = frozenset(
    {"counter", "gauge", "summary", "histogram", "untyped"}
)


def _parse_prom_labels(body: str) -> dict[str, str] | None:
    """Parse a `k="v",...` label body; None when it doesn't scan."""
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(body):
        match = _PROM_LABEL_RE.match(body, pos)
        if match is None:
            return None
        labels[match.group("key")] = match.group("value")
        pos = match.end()
    return labels


def lint_prometheus_text(text: str) -> list[str]:
    """Check a text-exposition payload (version 0.0.4); returns problems.

    A pure-python conformance lint for what :func:`to_prometheus_text`
    (and the live plane's ``/metrics`` endpoint) emits: sample-line
    syntax, label-body escaping (only ``\\\\``, ``\\"``, ``\\n`` escapes),
    ``# TYPE`` declared before its samples and never redeclared, valid
    metric kinds, and summaries restricted to their ``X``/``X_sum``/
    ``X_count`` family.  An empty list means the payload is clean.
    """
    problems: list[str] = []
    declared: dict[str, str] = {}  # metric family -> declared type
    seen_samples: set[str] = set()

    def family_of(name: str) -> str:
        for base, kind in declared.items():
            if name == base:
                return base
            if kind in ("summary", "histogram") and name in (
                f"{base}_sum", f"{base}_count", f"{base}_bucket"
            ):
                return base
        return name

    for n, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4:
                problems.append(f"line {n}: malformed TYPE line: {line!r}")
                continue
            _, _, name, kind = parts
            if not re.fullmatch(_PROM_NAME_RE, name):
                problems.append(f"line {n}: bad metric name in TYPE: {name!r}")
                continue
            if kind not in _PROM_TYPES:
                problems.append(f"line {n}: unknown metric type {kind!r} for {name}")
                continue
            if name in declared:
                problems.append(f"line {n}: duplicate TYPE declaration for {name}")
                continue
            if name in seen_samples:
                problems.append(f"line {n}: TYPE for {name} after its samples")
            declared[name] = kind
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3 or not re.fullmatch(_PROM_NAME_RE, parts[2]):
                problems.append(f"line {n}: malformed HELP line: {line!r}")
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _PROM_SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {n}: unparsable sample line: {line!r}")
            continue
        name = match.group("name")
        label_body = match.group("labels")
        labels = _parse_prom_labels(label_body) if label_body else {}
        if labels is None:
            problems.append(f"line {n}: bad label escaping in {line!r}")
            continue
        base = family_of(name)
        seen_samples.add(base)
        kind = declared.get(base)
        if kind is None:
            problems.append(f"line {n}: sample {name} has no TYPE declaration")
            continue
        if kind == "summary":
            if name == base and "quantile" in labels:
                try:
                    q = float(labels["quantile"])
                except ValueError:
                    problems.append(f"line {n}: non-numeric quantile in {line!r}")
                    continue
                if not 0.0 <= q <= 1.0:
                    problems.append(f"line {n}: quantile {q} outside [0, 1]")
            elif name not in (base, f"{base}_sum", f"{base}_count"):
                problems.append(
                    f"line {n}: {name} not in summary family of {base}"
                )
        elif name != base:
            problems.append(f"line {n}: sample {name} has no TYPE declaration")
    return problems
