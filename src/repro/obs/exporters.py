"""Exporters: Perfetto traces, CSV event dumps, JSON run summaries.

These sit on top of the simulator's :class:`~repro.runtime.tracing.TraceEvent`
stream and the metrics registry, and are what ``repro simulate
--trace-out/--metrics-out`` and ``repro report`` call into.  Runtime
imports happen inside the functions so ``repro.obs`` stays a leaf
package every layer may import without cycles.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Mapping, Sequence

__all__ = [
    "to_prometheus_text",
    "trace_to_csv",
    "run_summary",
    "write_perfetto_trace",
    "write_run_summary",
    "write_trace_csv",
]

_CSV_FIELDS = (
    "rank",
    "engine",
    "kind",
    "t_start",
    "t_end",
    "duration",
    "precision",
    "bytes",
    "flops",
    "site",
    "src_precision",
    "dst_precision",
)


def write_perfetto_trace(
    events: Sequence,
    path: str | Path,
    *,
    counters: bool = True,
    obs_events: Sequence[Mapping] | None = None,
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Write a Perfetto/Chrome trace JSON with metadata + counter tracks.

    ``obs_events`` (records from :func:`repro.obs.read_events`) renders
    fault/retry telemetry as instant markers alongside the slices;
    ``metadata`` (e.g. the scheduling policy) lands in the trace's
    top-level ``"metadata"`` object.
    """
    from ..runtime.gantt import to_chrome_trace

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        to_chrome_trace(events, counters=counters, obs_events=obs_events,
                        metadata=metadata),
        encoding="utf-8",
    )
    return path


def _prec_name(precision) -> str:
    return precision.name if precision is not None else ""


def trace_to_csv(events: Sequence) -> str:
    """Render the event stream as a flat CSV (one row per event)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(_CSV_FIELDS)
    for ev in sorted(events, key=lambda e: (e.t_start, e.rank, e.engine)):
        writer.writerow(
            [
                ev.rank,
                ev.engine,
                ev.kind,
                repr(ev.t_start),
                repr(ev.t_end),
                repr(ev.duration),
                ev.precision.name if ev.precision is not None else "",
                ev.bytes,
                repr(ev.flops),
                getattr(ev, "site", None) or "",
                _prec_name(getattr(ev, "src_precision", None)),
                _prec_name(getattr(ev, "dst_precision", None)),
            ]
        )
    return buf.getvalue()


def write_trace_csv(events: Sequence, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(trace_to_csv(events), encoding="utf-8")
    return path


def run_summary(
    *,
    stats=None,
    trace=None,
    manifest: Mapping | None = None,
    registry=None,
) -> dict:
    """Assemble the JSON-summary document of one run.

    Any section may be omitted; ``registry`` defaults to the process
    registry so a bare ``run_summary()`` still captures live metrics.
    """
    if registry is None:
        from ._runtime import get_registry

        registry = get_registry()
    doc: dict[str, object] = {"schema": "repro.obs.run_summary/1"}
    if manifest is not None:
        doc["manifest"] = dict(manifest)
    if stats is not None:
        doc["stats"] = stats.to_dict() if hasattr(stats, "to_dict") else dict(stats)
    if trace is not None:
        doc["trace"] = trace.summary() if hasattr(trace, "summary") else dict(trace)
    doc["metrics"] = registry.to_dict()
    return doc


def write_run_summary(path: str | Path, **kwargs) -> Path:
    """Build :func:`run_summary` and write it as pretty JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(run_summary(**kwargs), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


# -- Prometheus text exposition --------------------------------------------

def _prom_name(name: str) -> str:
    """A metric name Prometheus accepts: [a-zA-Z_:][a-zA-Z0-9_:]*."""
    out = "".join(c if c.isalnum() or c in "_:" else "_" for c in name)
    if not out or not (out[0].isalpha() or out[0] in "_:"):
        out = "_" + out
    return out


def _prom_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(labels: Mapping[str, str], extra: Mapping[str, str] | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    body = ",".join(
        f'{_prom_name(k)}="{_prom_label_value(str(v))}"'
        for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _prom_number(value) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus_text(registry=None) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    Counters get the conventional ``_total`` suffix; histograms and
    timers are exported as *summaries* (``{quantile="..."}`` series plus
    ``_sum``/``_count``), matching what their bounded reservoir can
    answer.  This is the payload the future serving layer's ``/metrics``
    endpoint will scrape; until then ``repro report --format prom``
    writes it to stdout or a file.
    """
    if registry is None:
        from ._runtime import get_registry

        registry = get_registry()
    snapshot = registry.to_dict() if hasattr(registry, "to_dict") else dict(registry)
    lines: list[str] = []
    for name in sorted(snapshot):
        metric = snapshot[name]
        kind = metric.get("type", "gauge")
        base = _prom_name(name)
        if kind == "counter" and not base.endswith("_total"):
            base += "_total"
        prom_type = {
            "counter": "counter",
            "gauge": "gauge",
            "histogram": "summary",
            "timer": "summary",
        }.get(kind, "untyped")
        if metric.get("help"):
            lines.append(f"# HELP {base} {metric['help']}")
        lines.append(f"# TYPE {base} {prom_type}")
        for series in metric.get("series", []):
            labels = {str(k): str(v) for k, v in (series.get("labels") or {}).items()}
            value = series.get("value")
            if prom_type == "summary" and isinstance(value, Mapping):
                for q_label, q_key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
                    q_value = value.get(q_key)
                    if q_value is not None:
                        lines.append(
                            f"{base}{_prom_labels(labels, {'quantile': q_label})}"
                            f" {_prom_number(q_value)}"
                        )
                lines.append(f"{base}_sum{_prom_labels(labels)} {_prom_number(value.get('sum', 0.0))}")
                lines.append(f"{base}_count{_prom_labels(labels)} {_prom_number(value.get('count', 0))}")
            else:
                scalar = value if isinstance(value, (int, float)) else 0.0
                lines.append(f"{base}{_prom_labels(labels)} {_prom_number(scalar)}")
    return "\n".join(lines) + ("\n" if lines else "")
