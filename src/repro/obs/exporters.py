"""Exporters: Perfetto traces, CSV event dumps, JSON run summaries.

These sit on top of the simulator's :class:`~repro.runtime.tracing.TraceEvent`
stream and the metrics registry, and are what ``repro simulate
--trace-out/--metrics-out`` and ``repro report`` call into.  Runtime
imports happen inside the functions so ``repro.obs`` stays a leaf
package every layer may import without cycles.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Mapping, Sequence

__all__ = [
    "trace_to_csv",
    "run_summary",
    "write_perfetto_trace",
    "write_run_summary",
    "write_trace_csv",
]

_CSV_FIELDS = (
    "rank",
    "engine",
    "kind",
    "t_start",
    "t_end",
    "duration",
    "precision",
    "bytes",
    "flops",
    "site",
    "src_precision",
    "dst_precision",
)


def write_perfetto_trace(
    events: Sequence,
    path: str | Path,
    *,
    counters: bool = True,
    obs_events: Sequence[Mapping] | None = None,
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Write a Perfetto/Chrome trace JSON with metadata + counter tracks.

    ``obs_events`` (records from :func:`repro.obs.read_events`) renders
    fault/retry telemetry as instant markers alongside the slices;
    ``metadata`` (e.g. the scheduling policy) lands in the trace's
    top-level ``"metadata"`` object.
    """
    from ..runtime.gantt import to_chrome_trace

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        to_chrome_trace(events, counters=counters, obs_events=obs_events,
                        metadata=metadata),
        encoding="utf-8",
    )
    return path


def _prec_name(precision) -> str:
    return precision.name if precision is not None else ""


def trace_to_csv(events: Sequence) -> str:
    """Render the event stream as a flat CSV (one row per event)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(_CSV_FIELDS)
    for ev in sorted(events, key=lambda e: (e.t_start, e.rank, e.engine)):
        writer.writerow(
            [
                ev.rank,
                ev.engine,
                ev.kind,
                repr(ev.t_start),
                repr(ev.t_end),
                repr(ev.duration),
                ev.precision.name if ev.precision is not None else "",
                ev.bytes,
                repr(ev.flops),
                getattr(ev, "site", None) or "",
                _prec_name(getattr(ev, "src_precision", None)),
                _prec_name(getattr(ev, "dst_precision", None)),
            ]
        )
    return buf.getvalue()


def write_trace_csv(events: Sequence, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(trace_to_csv(events), encoding="utf-8")
    return path


def run_summary(
    *,
    stats=None,
    trace=None,
    manifest: Mapping | None = None,
    registry=None,
) -> dict:
    """Assemble the JSON-summary document of one run.

    Any section may be omitted; ``registry`` defaults to the process
    registry so a bare ``run_summary()`` still captures live metrics.
    """
    if registry is None:
        from ._runtime import get_registry

        registry = get_registry()
    doc: dict[str, object] = {"schema": "repro.obs.run_summary/1"}
    if manifest is not None:
        doc["manifest"] = dict(manifest)
    if stats is not None:
        doc["stats"] = stats.to_dict() if hasattr(stats, "to_dict") else dict(stats)
    if trace is not None:
        doc["trace"] = trace.summary() if hasattr(trace, "summary") else dict(trace)
    doc["metrics"] = registry.to_dict()
    return doc


def write_run_summary(path: str | Path, **kwargs) -> Path:
    """Build :func:`run_summary` and write it as pretty JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(run_summary(**kwargs), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
