"""The regression sentinel: diff BENCH/run-summary documents, gate CI.

PR 2 made every campaign drop a ``BENCH_*.json`` perf-trajectory
document; this module makes two such documents *comparable*: per-metric
deltas with configurable relative thresholds and a machine-readable
verdict, so "did this PR regress the trajectory?" is a command
(``repro compare baseline candidate --fail-on-regress``) instead of a
diff eyeballed by a reviewer.

Inputs may be ``repro.bench/1`` documents (compared per cached run key
*and* at the aggregate level), ``repro.obs.run_summary/1`` documents, or
bare ``RunStats.to_dict()`` files.  Only deterministic simulator metrics
are compared by default — wall-clock numbers (``plan_seconds``,
``wall_seconds``, …) are machine noise and excluded unless explicitly
thresholded.

A *regression* is a delta beyond the metric's relative threshold in its
bad direction (makespan up, tflops down, bytes up…); an improvement
beyond threshold is reported but never fails the gate.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

__all__ = [
    "DEFAULT_THRESHOLDS",
    "MetricDelta",
    "RegressionReport",
    "Threshold",
    "TrendDelta",
    "WindowedReport",
    "compare_against_window",
    "compare_docs",
    "compare_files",
    "load_metric_scopes",
    "parse_threshold_args",
]


@dataclass(frozen=True)
class Threshold:
    """Tolerance and direction for one metric."""

    rel_tol: float
    #: "lower" = smaller is better (makespan, bytes); "higher" = larger
    #: is better (tflops)
    direction: str = "lower"

    def __post_init__(self) -> None:
        if self.direction not in ("lower", "higher"):
            raise ValueError(f"direction must be 'lower' or 'higher', got {self.direction!r}")
        if self.rel_tol < 0.0:
            raise ValueError(f"rel_tol must be non-negative, got {self.rel_tol}")


#: metrics the sentinel watches by default; everything else in a document
#: is carried along informationally but never gates.
DEFAULT_THRESHOLDS: dict[str, Threshold] = {
    "makespan_seconds": Threshold(0.02, "lower"),
    "tflops": Threshold(0.02, "higher"),
    "gflops": Threshold(0.02, "higher"),
    "best_tflops": Threshold(0.02, "higher"),
    "total_sim_makespan_seconds": Threshold(0.02, "lower"),
    "h2d_bytes": Threshold(0.0, "lower"),
    "d2h_bytes": Threshold(0.0, "lower"),
    "nic_bytes": Threshold(0.0, "lower"),
    "n_conversions": Threshold(0.0, "lower"),
    "conversion_seconds": Threshold(0.02, "lower"),
    "n_evictions": Threshold(0.0, "lower"),
    "n_failed": Threshold(0.0, "lower"),
    # bench floors (``repro simbench``): scheduling throughput and peak
    # resident set.  Wide tolerances — these run on shared CI machines —
    # but a 30% tasks/sec collapse or a 25% RSS blow-up is a real
    # hot-path or memory regression, not noise.
    "tasks_per_second": Threshold(0.30, "higher"),
    "peak_rss_bytes": Threshold(0.25, "lower"),
    "peak_live_tasks": Threshold(0.10, "lower"),
}


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared in one scope."""

    scope: str  # "aggregate", a run label, or "run"
    metric: str
    baseline: float
    candidate: float
    rel_delta: float  # (candidate - baseline) / |baseline|
    rel_tol: float
    direction: str
    regressed: bool
    improved: bool

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline

    def to_dict(self) -> dict:
        return {
            "scope": self.scope,
            "metric": self.metric,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "delta": self.delta,
            "rel_delta": self.rel_delta if math.isfinite(self.rel_delta) else None,
            "rel_tol": self.rel_tol,
            "direction": self.direction,
            "regressed": self.regressed,
            "improved": self.improved,
        }


@dataclass
class RegressionReport:
    """Machine-readable verdict of one baseline/candidate comparison."""

    baseline: str
    candidate: str
    deltas: list[MetricDelta] = field(default_factory=list)
    #: scopes present on one side only (grid changed between runs)
    missing_in_candidate: list[str] = field(default_factory=list)
    added_in_candidate: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.improved]

    @property
    def n_regressions(self) -> int:
        return len(self.regressions)

    @property
    def verdict(self) -> str:
        return "regressed" if self.n_regressions else "ok"

    def to_dict(self) -> dict:
        return {
            "schema": "repro.obs.regress/1",
            "baseline": self.baseline,
            "candidate": self.candidate,
            "verdict": self.verdict,
            "n_compared": len(self.deltas),
            "n_regressions": self.n_regressions,
            "n_improvements": len(self.improvements),
            "missing_in_candidate": list(self.missing_in_candidate),
            "added_in_candidate": list(self.added_in_candidate),
            "deltas": [d.to_dict() for d in self.deltas],
        }

    def table(self, *, all_metrics: bool = False) -> str:
        """Human table: regressions and improvements (or everything)."""
        from ..bench.reporting import format_table

        shown = (
            self.deltas
            if all_metrics
            else [d for d in self.deltas if d.regressed or d.improved]
        )
        rows = [
            (
                d.scope,
                d.metric,
                d.baseline,
                d.candidate,
                f"{d.rel_delta * 100.0:+.2f}%",
                f"±{d.rel_tol * 100.0:g}%",
                "REGRESSED" if d.regressed else ("improved" if d.improved else "ok"),
            )
            for d in sorted(
                shown, key=lambda d: (not d.regressed, not d.improved, d.scope, d.metric)
            )
        ]
        title = (
            f"compare {self.baseline} → {self.candidate}: "
            f"{len(self.deltas)} metrics, {self.n_regressions} regression(s), "
            f"{len(self.improvements)} improvement(s) — verdict {self.verdict.upper()}"
        )
        if not rows:
            return title + "\n(all compared metrics within thresholds)"
        return format_table(
            ["scope", "metric", "baseline", "candidate", "delta", "tol", "status"],
            rows,
            title=title,
        )


# -- loading ---------------------------------------------------------------

#: wall-clock metrics never compared by default (machine noise)
_NOISY = frozenset({
    "plan_seconds", "sim_seconds", "wall_seconds", "total_plan_seconds",
    "total_sim_seconds",
})


def _numeric_metrics(mapping: Mapping) -> dict[str, float]:
    out: dict[str, float] = {}
    for key, value in mapping.items():
        if key in _NOISY:
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        out[key] = float(value)
    return out


def load_metric_scopes(doc: Mapping) -> dict[str, dict[str, float]]:
    """``{scope: {metric: value}}`` from any supported document form.

    * ``repro.bench/1`` — one scope per non-failed run (keyed by the
      run's spec label when available, else its cache key) plus an
      ``aggregate`` scope;
    * ``repro.obs.run_summary/1`` — one ``run`` scope from the embedded
      stats section;
    * a bare stats dict (has ``makespan_seconds``) — one ``run`` scope.
    """
    schema = doc.get("schema", "")
    if schema == "repro.bench/1" or "runs" in doc and "aggregates" in doc:
        scopes: dict[str, dict[str, float]] = {}
        agg = _numeric_metrics(doc.get("aggregates") or {})
        counts = _numeric_metrics(
            {k: doc.get(k) for k in ("n_runs", "n_failed") if doc.get(k) is not None}
        )
        agg.update(counts)
        if agg:
            scopes["aggregate"] = agg
        for run in doc.get("runs") or []:
            if run.get("failed"):
                continue
            spec = run.get("spec") or {}
            label = "/".join(
                str(spec[k]) for k in ("config", "strategy", "n", "nb", "gpu") if k in spec
            ) or str(run.get("key", "?"))
            metrics = _numeric_metrics(run.get("metrics") or {})
            if metrics:
                scopes[label] = metrics
        return scopes
    stats = None
    if isinstance(doc.get("stats"), Mapping):
        stats = doc["stats"]
    elif isinstance(doc.get("trace"), Mapping) and isinstance(doc["trace"].get("stats"), Mapping):
        stats = doc["trace"]["stats"]
    elif "makespan_seconds" in doc:
        stats = doc
    if stats is None:
        raise ValueError(
            "unsupported document: expected repro.bench/1, repro.obs.run_summary/1, "
            "or a RunStats dict"
        )
    return {"run": _numeric_metrics(stats)}


# -- comparison ------------------------------------------------------------

def _compare_metric(
    scope: str,
    metric: str,
    baseline: float,
    candidate: float,
    threshold: Threshold,
) -> MetricDelta:
    if baseline == candidate:
        rel = 0.0
    elif baseline == 0.0:
        rel = math.inf if candidate > 0.0 else -math.inf
    else:
        rel = (candidate - baseline) / abs(baseline)
    if threshold.direction == "lower":
        regressed = rel > threshold.rel_tol
        improved = rel < -threshold.rel_tol if threshold.rel_tol > 0.0 else rel < 0.0
    else:
        regressed = rel < -threshold.rel_tol
        improved = rel > threshold.rel_tol if threshold.rel_tol > 0.0 else rel > 0.0
    return MetricDelta(
        scope=scope,
        metric=metric,
        baseline=baseline,
        candidate=candidate,
        rel_delta=rel,
        rel_tol=threshold.rel_tol,
        direction=threshold.direction,
        regressed=regressed,
        improved=improved,
    )


def compare_docs(
    baseline: Mapping,
    candidate: Mapping,
    *,
    thresholds: Mapping[str, Threshold] | None = None,
    baseline_name: str = "baseline",
    candidate_name: str = "candidate",
) -> RegressionReport:
    """Compare two documents; only thresholded metrics can regress."""
    thresholds = dict(DEFAULT_THRESHOLDS if thresholds is None else thresholds)
    base_scopes = load_metric_scopes(baseline)
    cand_scopes = load_metric_scopes(candidate)
    report = RegressionReport(baseline=baseline_name, candidate=candidate_name)
    report.missing_in_candidate = sorted(set(base_scopes) - set(cand_scopes))
    report.added_in_candidate = sorted(set(cand_scopes) - set(base_scopes))
    for scope in sorted(set(base_scopes) & set(cand_scopes)):
        base_metrics = base_scopes[scope]
        cand_metrics = cand_scopes[scope]
        for metric in sorted(set(base_metrics) & set(cand_metrics)):
            threshold = thresholds.get(metric)
            if threshold is None:
                continue
            report.deltas.append(
                _compare_metric(
                    scope, metric, base_metrics[metric], cand_metrics[metric], threshold
                )
            )
    return report


def compare_files(
    baseline: str | Path,
    candidate: str | Path,
    *,
    thresholds: Mapping[str, Threshold] | None = None,
) -> RegressionReport:
    """Load two JSON documents from disk and compare them."""
    base_doc = json.loads(Path(baseline).read_text(encoding="utf-8"))
    cand_doc = json.loads(Path(candidate).read_text(encoding="utf-8"))
    return compare_docs(
        base_doc,
        cand_doc,
        thresholds=thresholds,
        baseline_name=str(baseline),
        candidate_name=str(candidate),
    )


# -- windowed trend sentinel ------------------------------------------------
#
# Pairwise compare catches one bad PR; it cannot catch five PRs each
# drifting a metric by 1.5% under a 2% gate.  The windowed sentinel
# compares a candidate against an N-run rolling history (fed from the
# warehouse, ``repro compare --against-history``) on two axes at once:
#
# * **level** — candidate vs the window *mean*, through the exact same
#   `_compare_metric` the pairwise gate uses; and
# * **trend** — the least-squares slope of the history-plus-candidate
#   series, expressed as total relative drift across the window.  A
#   drift beyond the metric's threshold in its bad direction flags even
#   when the final level step is individually under tolerance.

@dataclass(frozen=True)
class TrendDelta:
    """Least-squares drift of one metric across the window + candidate."""

    scope: str
    metric: str
    values: tuple[float, ...]  # history values, oldest first, then candidate
    slope: float  # fitted change per run
    rel_drift: float  # fitted total change across the series / |fitted start|
    rel_tol: float
    direction: str
    drifting: bool  # drift beyond tolerance in the bad direction

    def to_dict(self) -> dict:
        return {
            "scope": self.scope,
            "metric": self.metric,
            "values": list(self.values),
            "slope": self.slope,
            "rel_drift": self.rel_drift if math.isfinite(self.rel_drift) else None,
            "rel_tol": self.rel_tol,
            "direction": self.direction,
            "drifting": self.drifting,
        }


@dataclass
class WindowedReport:
    """Verdict of one candidate against an N-run rolling history."""

    history_name: str
    candidate: str
    window: int  # runs of history actually used
    deltas: list[MetricDelta] = field(default_factory=list)  # vs window mean
    trends: list[TrendDelta] = field(default_factory=list)
    missing_in_candidate: list[str] = field(default_factory=list)
    added_in_candidate: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def drifts(self) -> list[TrendDelta]:
        return [t for t in self.trends if t.drifting]

    @property
    def verdict(self) -> str:
        return "regressed" if self.regressions or self.drifts else "ok"

    def to_dict(self) -> dict:
        return {
            "schema": "repro.obs.regress.window/1",
            "history": self.history_name,
            "candidate": self.candidate,
            "window": self.window,
            "verdict": self.verdict,
            "n_compared": len(self.deltas),
            "n_regressions": len(self.regressions),
            "n_drifting": len(self.drifts),
            "missing_in_candidate": list(self.missing_in_candidate),
            "added_in_candidate": list(self.added_in_candidate),
            "deltas": [d.to_dict() for d in self.deltas],
            "trends": [t.to_dict() for t in self.trends],
        }

    def table(self, *, all_metrics: bool = False) -> str:
        """Human view: level deltas vs window mean, then drifting trends."""
        from ..bench.reporting import format_table

        shown = (
            self.deltas
            if all_metrics
            else [d for d in self.deltas if d.regressed or d.improved]
        )
        parts = []
        title = (
            f"compare {self.candidate} against {self.history_name} "
            f"(window of {self.window}): {len(self.deltas)} metrics, "
            f"{len(self.regressions)} level regression(s), "
            f"{len(self.drifts)} drifting trend(s) — verdict {self.verdict.upper()}"
        )
        rows = [
            (
                d.scope,
                d.metric,
                d.baseline,
                d.candidate,
                f"{d.rel_delta * 100.0:+.2f}%",
                f"±{d.rel_tol * 100.0:g}%",
                "REGRESSED" if d.regressed else ("improved" if d.improved else "ok"),
            )
            for d in sorted(
                shown, key=lambda d: (not d.regressed, not d.improved, d.scope, d.metric)
            )
        ]
        if rows:
            parts.append(format_table(
                ["scope", "metric", "window mean", "candidate", "delta", "tol", "status"],
                rows,
                title=title,
            ))
        else:
            parts.append(title + "\n(all level comparisons within thresholds)")
        trend_rows = [
            (
                t.scope,
                t.metric,
                len(t.values),
                f"{t.slope:+.4g}/run",
                f"{t.rel_drift * 100.0:+.2f}%",
                f"±{t.rel_tol * 100.0:g}%",
                "DRIFTING" if t.drifting else "ok",
            )
            for t in sorted(
                self.trends if all_metrics else self.drifts,
                key=lambda t: (not t.drifting, t.scope, t.metric),
            )
        ]
        if trend_rows:
            parts.append(format_table(
                ["scope", "metric", "points", "slope", "total drift", "tol", "status"],
                trend_rows,
                title="least-squares drift over the window",
            ))
        return "\n\n".join(parts)


def _fit_line(values: Sequence[float]) -> tuple[float, float]:
    """Least-squares ``(slope, intercept)`` of values over x = 0..n-1."""
    n = len(values)
    if n < 2:
        return 0.0, (values[0] if values else 0.0)
    mean_x = (n - 1) / 2.0
    mean_y = sum(values) / n
    sxx = sum((i - mean_x) ** 2 for i in range(n))
    sxy = sum((i - mean_x) * (y - mean_y) for i, y in enumerate(values))
    slope = sxy / sxx if sxx else 0.0
    return slope, mean_y - slope * mean_x


def _trend(
    scope: str,
    metric: str,
    series: Sequence[float],
    threshold: Threshold,
) -> TrendDelta:
    slope, intercept = _fit_line(series)
    total = slope * (len(series) - 1)  # fitted change across the series
    if total == 0.0:
        rel = 0.0
    elif intercept == 0.0:
        rel = math.inf if total > 0.0 else -math.inf
    else:
        rel = total / abs(intercept)
    if threshold.direction == "lower":
        drifting = rel > threshold.rel_tol
    else:
        drifting = rel < -threshold.rel_tol
    return TrendDelta(
        scope=scope,
        metric=metric,
        values=tuple(series),
        slope=slope,
        rel_drift=rel,
        rel_tol=threshold.rel_tol,
        direction=threshold.direction,
        drifting=drifting,
    )


def compare_against_window(
    history: Sequence[Mapping[str, Mapping[str, float]]],
    candidate: Mapping,
    *,
    thresholds: Mapping[str, Threshold] | None = None,
    window: int = 5,
    history_name: str = "history",
    candidate_name: str = "candidate",
) -> WindowedReport:
    """Compare a candidate document against an N-run rolling history.

    ``history`` is a sequence of ``{scope: {metric: value}}`` dicts,
    oldest first — exactly what :meth:`Warehouse.window_scopes` returns;
    the last ``window`` entries are used.  ``candidate`` is any document
    :func:`load_metric_scopes` understands.  Each thresholded metric is
    judged on level (vs the window mean) and on trend (least-squares
    drift across history + candidate); either failing regresses.
    """
    if window < 1:
        raise ValueError("window must be positive")
    used = [dict(scopes) for scopes in history[-window:]]
    if not used:
        raise ValueError("history is empty: ingest runs before comparing against it")
    thresholds = dict(DEFAULT_THRESHOLDS if thresholds is None else thresholds)
    cand_scopes = load_metric_scopes(candidate)

    hist_scopes = set()
    for scopes in used:
        hist_scopes.update(scopes)
    report = WindowedReport(
        history_name=history_name,
        candidate=candidate_name,
        window=len(used),
        missing_in_candidate=sorted(hist_scopes - set(cand_scopes)),
        added_in_candidate=sorted(set(cand_scopes) - hist_scopes),
    )
    for scope in sorted(hist_scopes & set(cand_scopes)):
        cand_metrics = cand_scopes[scope]
        for metric in sorted(cand_metrics):
            threshold = thresholds.get(metric)
            if threshold is None:
                continue
            series = [
                float(scopes[scope][metric])
                for scopes in used
                if scope in scopes and metric in scopes[scope]
            ]
            if not series:
                continue
            mean = sum(series) / len(series)
            report.deltas.append(
                _compare_metric(scope, metric, mean, cand_metrics[metric], threshold)
            )
            if len(series) >= 2:
                report.trends.append(
                    _trend(scope, metric, [*series, cand_metrics[metric]], threshold)
                )
    return report


def parse_threshold_args(args: Sequence[str] | None) -> dict[str, Threshold]:
    """CLI ``--threshold metric=rel[:direction]`` overrides on the defaults.

    ``repro compare --threshold tflops=0.10 --threshold my_metric=0.05:higher``
    """
    thresholds = dict(DEFAULT_THRESHOLDS)
    for item in args or []:
        if "=" not in item:
            raise ValueError(f"--threshold expects METRIC=REL[:DIRECTION], got {item!r}")
        metric, _, value = item.partition("=")
        direction = None
        if ":" in value:
            value, _, direction = value.partition(":")
        default = thresholds.get(metric)
        thresholds[metric.strip()] = Threshold(
            rel_tol=float(value),
            direction=direction or (default.direction if default else "lower"),
        )
    return thresholds
