"""repro.obs.analysis — turn captured traces into the paper's evidence.

PR 1 (capture) and PR 2 (perf trajectory) record what happened; this
subpackage *explains* it, the way Sections VII-D/E argue the paper's
claims:

* :mod:`~repro.obs.analysis.ledger` — the **data-motion ledger**: bytes
  per link (h2d/d2h/nic) per precision per rank, conversion passes
  attributed to sender-side (STC) vs receiver-side (TTC) sites, and the
  "bytes saved vs all-FP64" delta;
* :mod:`~repro.obs.analysis.critical_path` — the **critical path** of
  the simulated schedule (the longest end-time chain through
  compute/transfer events), per-engine slack, and bucketed utilization
  timelines, so occupancy/bottleneck claims are queryable instead of
  eyeballed from Perfetto;
* :mod:`~repro.obs.analysis.report` — loaders (Perfetto trace JSON,
  run-summary JSON, run directories) and the text/JSON rendering behind
  ``repro analyze``.

The regression sentinel that *gates* the perf trajectory lives beside
this package in :mod:`repro.obs.regress` (``repro compare``).
"""

from .critical_path import (
    CriticalPathResult,
    critical_path,
    engine_slack,
    utilization_timeline,
)
from .ledger import ConversionRow, DataMotionLedger, LedgerRow, build_ledger
from .report import analyze_path, analyze_trace, load_trace_events, render_analysis

__all__ = [
    "ConversionRow",
    "CriticalPathResult",
    "DataMotionLedger",
    "LedgerRow",
    "analyze_path",
    "analyze_trace",
    "build_ledger",
    "critical_path",
    "engine_slack",
    "load_trace_events",
    "render_analysis",
    "utilization_timeline",
]
