"""Critical-path and occupancy analysis of a simulated schedule.

The simulator's list schedule has the property that every busy interval
starts either at t=0 or exactly when its binding constraint — a
predecessor kernel, an inbound transfer, or the engine's previous event
— ends.  The critical path is therefore recoverable from the event
stream alone: walk backwards from the event that ends at the makespan,
at each step jumping to the latest-ending event that finishes at (or
before) the current event's start.  The resulting chain spans the whole
run — its length equals the makespan within float tolerance — and its
per-engine/per-kind composition says *what* the run was bound by
(compute vs copies vs NIC), which is the queryable form of the paper's
Figs. 8–9 occupancy arguments.

Also here: per-(rank, engine) slack over the makespan and bucketed
utilization timelines (busy fraction per engine per time bucket), the
numeric backing for "occupancy moves as precision drops" claims.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Sequence

__all__ = [
    "CriticalPathResult",
    "critical_path",
    "engine_slack",
    "utilization_timeline",
]


@dataclass
class CriticalPathResult:
    """The longest end-time chain through a trace."""

    #: chain events in chronological order (empty for an empty trace)
    events: list = field(default_factory=list)
    makespan: float = 0.0
    #: time spanned by the chain: last t_end − first t_start
    length: float = 0.0
    #: idle time encountered along the walk (0 for simulator schedules)
    gap_seconds: float = 0.0
    time_by_engine: dict[str, float] = field(default_factory=dict)
    time_by_kind: dict[str, float] = field(default_factory=dict)

    @property
    def n_events(self) -> int:
        return len(self.events)

    def to_dict(self) -> dict:
        return {
            "n_events": self.n_events,
            "makespan_seconds": self.makespan,
            "length_seconds": self.length,
            "gap_seconds": self.gap_seconds,
            "time_by_engine": dict(sorted(self.time_by_engine.items())),
            "time_by_kind": dict(sorted(self.time_by_kind.items())),
            "events": [
                {
                    "rank": ev.rank,
                    "engine": ev.engine,
                    "kind": ev.kind,
                    "t_start": ev.t_start,
                    "t_end": ev.t_end,
                }
                for ev in self.events
            ],
        }


def critical_path(events: Sequence, *, tol: float | None = None) -> CriticalPathResult:
    """Recover the critical path from a trace's busy intervals.

    ``tol`` absorbs float association noise when matching an event's
    start against candidate predecessors' ends; it defaults to
    ``1e-9 × max(makespan, 1)``.  Zero-duration events are legal chain
    members (each event is visited at most once, so the walk always
    terminates).
    """
    evs = list(events)
    if not evs:
        return CriticalPathResult()
    makespan = max(e.t_end for e in evs)
    if tol is None:
        tol = 1e-9 * max(makespan, 1.0)

    order = sorted(range(len(evs)), key=lambda i: evs[i].t_end)
    ends = [evs[i].t_end for i in order]
    visited: set[int] = set()

    cur = max(range(len(evs)), key=lambda i: (evs[i].t_end, -evs[i].t_start))
    chain = [cur]
    visited.add(cur)
    gaps = 0.0
    while evs[cur].t_start > tol:
        target = evs[cur].t_start
        # latest-ending unvisited event finishing at/before the current start
        pos = bisect.bisect_right(ends, target + tol) - 1
        best = None
        while pos >= 0:
            idx = order[pos]
            if idx not in visited:
                best = idx
                break
            pos -= 1
        if best is None:
            gaps += target  # nothing earlier: leading idle gap
            break
        gap = target - evs[best].t_end
        if gap > tol:
            gaps += gap
        chain.append(best)
        visited.add(best)
        cur = best

    chain.reverse()
    chain_events = [evs[i] for i in chain]
    by_engine: dict[str, float] = {}
    by_kind: dict[str, float] = {}
    for ev in chain_events:
        dur = max(0.0, ev.t_end - ev.t_start)
        by_engine[ev.engine] = by_engine.get(ev.engine, 0.0) + dur
        by_kind[ev.kind] = by_kind.get(ev.kind, 0.0) + dur
    return CriticalPathResult(
        events=chain_events,
        makespan=makespan,
        length=chain_events[-1].t_end - chain_events[0].t_start,
        gap_seconds=gaps,
        time_by_engine=by_engine,
        time_by_kind=by_kind,
    )


def engine_slack(events: Sequence, makespan: float | None = None) -> dict[tuple[int, str], float]:
    """Idle seconds per (rank, engine) over the makespan."""
    evs = list(events)
    if not evs:
        return {}
    if makespan is None:
        makespan = max(e.t_end for e in evs)
    busy: dict[tuple[int, str], float] = {}
    for ev in evs:
        key = (ev.rank, ev.engine)
        busy[key] = busy.get(key, 0.0) + max(0.0, ev.t_end - ev.t_start)
    return {key: max(0.0, makespan - b) for key, b in sorted(busy.items())}


def utilization_timeline(
    events: Sequence,
    *,
    makespan: float | None = None,
    n_buckets: int = 20,
) -> dict[str, list[float]]:
    """Busy fraction per engine per time bucket over [0, makespan].

    Each engine's busy time is averaged over the ranks that have that
    engine, so a fully-busy engine reads 1.0 regardless of rank count.
    """
    evs = list(events)
    if not evs or n_buckets <= 0:
        return {}
    if makespan is None:
        makespan = max(e.t_end for e in evs)
    if makespan <= 0.0:
        return {}
    dt = makespan / n_buckets
    ranks_per_engine: dict[str, set[int]] = {}
    busy: dict[str, list[float]] = {}
    for ev in evs:
        ranks_per_engine.setdefault(ev.engine, set()).add(ev.rank)
        buckets = busy.setdefault(ev.engine, [0.0] * n_buckets)
        lo = max(0.0, ev.t_start)
        hi = min(makespan, ev.t_end)
        if hi <= lo:
            continue
        first = min(n_buckets - 1, int(lo / dt))
        last = min(n_buckets - 1, int((hi - 1e-18) / dt))
        for b in range(first, last + 1):
            overlap = min(hi, (b + 1) * dt) - max(lo, b * dt)
            if overlap > 0.0:
                buckets[b] += overlap
    return {
        engine: [
            min(1.0, seconds / (dt * len(ranks_per_engine[engine])))
            for seconds in buckets
        ]
        for engine, buckets in sorted(busy.items())
    }
