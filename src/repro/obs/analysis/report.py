"""Loaders and rendering behind ``repro analyze``.

``repro analyze <path>`` accepts:

* a Perfetto/Chrome trace JSON written by ``--trace-out`` (the slices
  are parsed back into :class:`~repro.runtime.tracing.TraceEvent`-shaped
  records, CONVERT site tags included);
* a run-summary JSON written by ``--metrics-out`` (stats counters only —
  the ledger loses per-rank detail but keeps per-link per-precision
  totals);
* a directory holding either or both — with both, the event-derived
  ledger is *reconciled* against the stats counters and any discrepancy
  is reported.

The output is a text report (data-motion ledger, conversion-site table,
critical path, per-engine slack, utilization timeline) plus a
machine-readable document (``--json-out``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from ...precision.formats import Precision
from .critical_path import critical_path, engine_slack, utilization_timeline
from .ledger import build_ledger

__all__ = ["analyze_path", "analyze_trace", "load_trace_events", "render_analysis"]


def _parse_precision(name) -> Precision | None:
    if not name:
        return None
    try:
        return Precision[name]
    except KeyError:
        return None


def load_trace_events(path: str | Path) -> list:
    """Parse a Perfetto trace JSON back into :class:`TraceEvent` records.

    Inverse of :func:`repro.obs.write_perfetto_trace` for the slice
    events (counters/metadata/instants are derived, so they are simply
    skipped on read).
    """
    from ...runtime.tracing import TraceEvent

    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    slices = [e for e in doc.get("traceEvents", []) if e.get("ph") == "X"]
    events = []
    for sl in slices:
        args = sl.get("args") or {}
        t_start = float(sl["ts"]) / 1e6
        events.append(
            TraceEvent(
                rank=int(sl.get("pid", 0)),
                engine=str(sl.get("cat", "")),
                kind=str(sl.get("name", "")),
                t_start=t_start,
                t_end=t_start + float(sl.get("dur", 0.0)) / 1e6,
                precision=_parse_precision(args.get("precision")),
                bytes=int(args.get("bytes", 0)),
                flops=float(args.get("flops", 0.0)),
                site=args.get("site") or None,
                src_precision=_parse_precision(args.get("src_precision")),
                dst_precision=_parse_precision(args.get("dst_precision")),
            )
        )
    return events


def _stats_from_doc(doc: dict) -> dict | None:
    """Pull a RunStats-dict out of a run-summary / metrics document."""
    stats = doc.get("stats")
    if isinstance(stats, dict) and "makespan_seconds" in stats:
        return stats
    trace = doc.get("trace")
    if isinstance(trace, dict) and isinstance(trace.get("stats"), dict):
        return trace["stats"]
    if "makespan_seconds" in doc:  # a bare RunStats.to_dict() file
        return doc
    return None


def analyze_trace(
    events: Sequence | None = None,
    stats: dict | None = None,
    *,
    n_buckets: int = 20,
) -> dict:
    """Assemble the full analysis document from events and/or stats."""
    ledger = build_ledger(events=events, stats=stats)
    doc: dict = {
        "schema": "repro.obs.analysis/1",
        "ledger": ledger.to_dict(),
    }
    if events and stats is not None:
        mismatches = ledger.reconcile(stats)
        doc["reconciliation"] = {"checked": True, "mismatches": mismatches}
    else:
        doc["reconciliation"] = {"checked": False, "mismatches": []}
    if events:
        cp = critical_path(events)
        doc["critical_path"] = cp.to_dict()
        doc["slack_seconds"] = {
            f"rank{rank}/{engine}": slack
            for (rank, engine), slack in engine_slack(events, cp.makespan).items()
        }
        doc["utilization"] = utilization_timeline(
            events, makespan=cp.makespan, n_buckets=n_buckets
        )
    if stats is not None:
        doc["stats"] = dict(stats)
    return doc


def _sparkline(fractions: Sequence[float]) -> str:
    glyphs = " ▁▂▃▄▅▆▇█"
    return "".join(glyphs[min(8, int(f * 8.999))] for f in fractions)


def render_analysis(doc: dict) -> str:
    """Human-readable rendering of an :func:`analyze_trace` document."""
    from .ledger import ConversionRow, DataMotionLedger, LedgerRow

    lines: list[str] = []
    led = doc.get("ledger") or {}
    ledger = DataMotionLedger(
        rows=[
            LedgerRow(
                r["link"],
                _parse_precision(r.get("precision")),
                r.get("rank"),
                int(r.get("bytes", 0)),
                int(r.get("n_events", 0)),
            )
            for r in led.get("rows", [])
        ],
        conversions=[
            ConversionRow(
                c["site"],
                _parse_precision(c.get("src")),
                _parse_precision(c.get("dst")),
                int(c.get("count", 0)),
                float(c.get("seconds", 0.0)),
            )
            for c in led.get("conversions", [])
        ],
        source=led.get("source", "events"),
    )
    if ledger.rows or ledger.conversions:
        lines.append(ledger.table())
        saved = led.get("total_saved_bytes_vs_fp64", 0)
        total = led.get("total_bytes", 0)
        denom = total + saved
        pct = (saved / denom * 100.0) if denom else 0.0
        lines.append(
            f"total {total / 1e9:.3f} GB moved; "
            f"{saved / 1e9:.3f} GB ({pct:.1f}%) saved vs all-FP64"
        )
    else:
        lines.append("(no data-motion events)")

    rec = doc.get("reconciliation") or {}
    if rec.get("checked"):
        mism = rec.get("mismatches") or []
        if mism:
            lines.append("RECONCILIATION FAILED:")
            lines.extend(f"  {m}" for m in mism)
        else:
            lines.append("ledger reconciles exactly with RunStats counters ✓")

    cp = doc.get("critical_path")
    if cp:
        lines.append("")
        lines.append(
            f"critical path: {cp['n_events']} events, "
            f"{cp['length_seconds']:.6f} s of {cp['makespan_seconds']:.6f} s makespan "
            f"(gaps {cp['gap_seconds']:.2e} s)"
        )
        for title, key in (("by engine", "time_by_engine"), ("by kind", "time_by_kind")):
            parts = ", ".join(
                f"{name} {seconds:.4f}s"
                for name, seconds in sorted(
                    (cp.get(key) or {}).items(), key=lambda kv: -kv[1]
                )
            )
            if parts:
                lines.append(f"  {title}: {parts}")

    util = doc.get("utilization")
    if util:
        lines.append("")
        lines.append("utilization over the makespan (one cell per bucket):")
        for engine, fractions in util.items():
            mean = sum(fractions) / len(fractions) if fractions else 0.0
            lines.append(f"  {engine:<8}|{_sparkline(fractions)}| mean {mean * 100:5.1f}%")

    slack = doc.get("slack_seconds")
    if slack:
        worst = sorted(slack.items(), key=lambda kv: kv[1])[:4]
        lines.append(
            "least slack: "
            + ", ".join(f"{name} {seconds:.4f}s" for name, seconds in worst)
        )
    return "\n".join(lines)


def analyze_path(path: str | Path, *, n_buckets: int = 20) -> dict:
    """Analyze a trace file, summary file, or run directory.

    Returns the analysis document; raises ``ValueError`` when the path
    holds nothing analyzable.
    """
    path = Path(path)
    trace_file: Path | None = None
    stats: dict | None = None

    def classify(file: Path) -> None:
        nonlocal trace_file, stats
        try:
            doc = json.loads(file.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return
        if not isinstance(doc, dict):
            return
        if "traceEvents" in doc:
            trace_file = trace_file or file
        elif stats is None:
            found = _stats_from_doc(doc)
            if found is not None:
                stats = found

    if path.is_dir():
        for file in sorted(path.glob("*.json")):
            classify(file)
    elif path.is_file():
        classify(path)
    else:
        raise ValueError(f"no such file or directory: {path}")

    if trace_file is None and stats is None:
        raise ValueError(
            f"nothing analyzable under {path}: expected a Perfetto trace JSON "
            "(--trace-out) and/or a run-summary JSON (--metrics-out)"
        )
    events = load_trace_events(trace_file) if trace_file is not None else None
    doc = analyze_trace(events=events, stats=stats, n_buckets=n_buckets)
    doc["source"] = {
        "trace": str(trace_file) if trace_file else None,
        "stats": "embedded" if stats is not None else None,
        "path": str(path),
    }
    return doc
