"""The data-motion ledger: per-link, per-precision byte attribution.

Section VII-D argues the paper's data-motion reduction by counting the
bytes every link moves in every precision and crediting the delta
against an all-FP64 run; Section VI attributes conversion cost to the
strategy that placed it (STC converts once at the sender, TTC converts
at every consumer).  :func:`build_ledger` derives exactly those numbers
from a captured trace — and reconciles them against the simulator's own
:class:`~repro.runtime.tracing.RunStats` counters, so the ledger is an
independently-checkable account rather than a reprint.

The ledger is built either from trace *events* (full per-rank detail,
conversion src→dst splits) or, when a run was captured without events,
from the aggregated *stats* counters (per-link per-precision totals
only).  ``ledger.reconcile(stats)`` returns the list of discrepancies —
empty iff every per-link per-precision byte total matches exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ...precision.formats import Precision, bytes_per_element

__all__ = ["LedgerRow", "ConversionRow", "DataMotionLedger", "build_ledger"]

#: the links of the simulated memory hierarchy, in report order; the
#: disk pair only carries bytes in out-of-core runs (host-tier spills)
LINKS = ("h2d", "d2h", "nic", "disk_read", "disk_write")


def _fp64_bytes(precision: Precision | None, nbytes: int) -> int:
    """Bytes the same payloads would occupy travelling in FP64."""
    if precision is None:
        return nbytes
    width = bytes_per_element(precision)
    elements, rem = divmod(nbytes, width)
    fp64 = elements * bytes_per_element(Precision.FP64)
    if rem:  # partial element (shouldn't happen on simulator output)
        fp64 += rem * bytes_per_element(Precision.FP64) // width
    return fp64


@dataclass(frozen=True)
class LedgerRow:
    """Bytes moved over one link in one precision (by one rank)."""

    link: str
    precision: Precision | None
    rank: int | None  # None = aggregated over ranks (stats-derived)
    bytes: int
    n_events: int = 0

    @property
    def fp64_bytes(self) -> int:
        return _fp64_bytes(self.precision, self.bytes)

    @property
    def saved_bytes(self) -> int:
        """Bytes this row avoided moving versus an all-FP64 payload."""
        return self.fp64_bytes - self.bytes


@dataclass(frozen=True)
class ConversionRow:
    """Conversion passes attributed to one (site, src→dst) combination."""

    site: str  # "stc" | "ttc" | "?" when untagged
    src: Precision | None
    dst: Precision | None
    count: int
    seconds: float


@dataclass
class DataMotionLedger:
    """Per-link/precision/rank byte ledger + conversion-site attribution."""

    rows: list[LedgerRow] = field(default_factory=list)
    conversions: list[ConversionRow] = field(default_factory=list)
    source: str = "events"  # "events" | "stats"

    # -- aggregations -----------------------------------------------------
    def bytes_by_link_precision(self) -> dict[tuple[str, str], int]:
        """``{(link, precision_name): bytes}`` summed over ranks."""
        out: dict[tuple[str, str], int] = {}
        for row in self.rows:
            key = (row.link, row.precision.name if row.precision is not None else "?")
            out[key] = out.get(key, 0) + row.bytes
        return out

    def bytes_by_link(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for row in self.rows:
            out[row.link] = out.get(row.link, 0) + row.bytes
        return out

    def saved_bytes_by_link(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for row in self.rows:
            out[row.link] = out.get(row.link, 0) + row.saved_bytes
        return out

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes for r in self.rows)

    @property
    def total_saved_bytes(self) -> int:
        return sum(r.saved_bytes for r in self.rows)

    def conversion_totals_by_site(self) -> dict[str, tuple[int, float]]:
        """``{site: (count, seconds)}`` over all src→dst combinations."""
        out: dict[str, tuple[int, float]] = {}
        for conv in self.conversions:
            count, seconds = out.get(conv.site, (0, 0.0))
            out[conv.site] = (count + conv.count, seconds + conv.seconds)
        return out

    # -- reconciliation ---------------------------------------------------
    def reconcile(self, stats) -> list[str]:
        """Cross-check the ledger against :class:`RunStats` counters.

        ``stats`` is a :class:`RunStats` or its ``to_dict()`` form.
        Returns human-readable discrepancy descriptions; an empty list
        means every per-link per-precision byte total (and the
        conversion site counts, when the ledger carries them) matches
        the stats *exactly* — the acceptance bar for ``repro analyze``.
        """
        by_link, conv_counts, _ = _normalize_stats(stats)
        problems: list[str] = []
        have = {k: v for k, v in self.bytes_by_link_precision().items() if v}
        want: dict[tuple[str, str], int] = {}
        for link, by_precision in by_link.items():
            for precision, nbytes in by_precision.items():
                if nbytes:
                    want[(link, precision.name if precision is not None else "?")] = int(nbytes)
        for key in sorted(set(have) | set(want)):
            h, w = have.get(key, 0), want.get(key, 0)
            if h != w:
                problems.append(
                    f"{key[0]}/{key[1]}: ledger {h} bytes != stats {w} bytes"
                )
        if self.conversions:
            totals = self.conversion_totals_by_site()
            n_conv = sum(c for c, _ in totals.values())
            n_want = sum(conv_counts.values())
            if n_conv != n_want:
                problems.append(f"conversions: ledger {n_conv} != stats {n_want}")
            for site, count in sorted(conv_counts.items()):
                if totals.get(site, (0, 0.0))[0] != count:
                    problems.append(
                        f"conversions[{site}]: ledger {totals.get(site, (0, 0.0))[0]}"
                        f" != stats {count}"
                    )
        return problems

    # -- serialisation ----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": "repro.obs.ledger/1",
            "source": self.source,
            "total_bytes": self.total_bytes,
            "total_saved_bytes_vs_fp64": self.total_saved_bytes,
            "bytes_by_link": dict(sorted(self.bytes_by_link().items())),
            "saved_bytes_by_link": dict(sorted(self.saved_bytes_by_link().items())),
            "rows": [
                {
                    "link": r.link,
                    "precision": r.precision.name if r.precision is not None else None,
                    "rank": r.rank,
                    "bytes": r.bytes,
                    "n_events": r.n_events,
                    "fp64_bytes": r.fp64_bytes,
                    "saved_bytes": r.saved_bytes,
                }
                for r in self.rows
            ],
            "conversions": [
                {
                    "site": c.site,
                    "src": c.src.name if c.src is not None else None,
                    "dst": c.dst.name if c.dst is not None else None,
                    "count": c.count,
                    "seconds": c.seconds,
                }
                for c in self.conversions
            ],
        }

    def table(self) -> str:
        """Human-readable ledger (per link/precision, ranks merged)."""
        from ...bench.reporting import format_table

        grouped: dict[tuple[str, str], list[int]] = {}
        for row in self.rows:
            key = (row.link, row.precision.name if row.precision is not None else "?")
            agg = grouped.setdefault(key, [0, 0, 0])
            agg[0] += row.bytes
            agg[1] += row.n_events
            agg[2] += row.saved_bytes
        body = [
            (
                link,
                prec,
                nbytes / 1e9,
                n_events,
                saved / 1e9,
                (saved / (nbytes + saved) * 100.0) if (nbytes + saved) else 0.0,
            )
            for (link, prec), (nbytes, n_events, saved) in sorted(
                grouped.items(), key=lambda kv: (LINKS.index(kv[0][0]), kv[0][1])
            )
        ]
        lines = [
            format_table(
                ["link", "precision", "GB", "events", "saved GB", "saved %"],
                body,
                title="data-motion ledger (vs all-FP64)",
            )
        ]
        if self.conversions:
            conv_body = [
                (
                    c.site,
                    c.src.name if c.src is not None else "?",
                    c.dst.name if c.dst is not None else "?",
                    c.count,
                    c.seconds * 1e3,
                )
                for c in sorted(
                    self.conversions, key=lambda c: (c.site, str(c.src), str(c.dst))
                )
            ]
            lines.append(
                format_table(
                    ["site", "src", "dst", "count", "ms"],
                    conv_body,
                    title="conversion passes by site (stc = sender, ttc = receiver)",
                )
            )
        return "\n\n".join(lines)


def _ledger_from_events(events: Iterable) -> DataMotionLedger:
    rows: dict[tuple[str, Precision | None, int], list[int]] = {}
    convs: dict[tuple[str, Precision | None, Precision | None], list[float]] = {}
    for ev in events:
        if ev.engine in LINKS:
            key = (ev.engine, ev.precision, ev.rank)
            agg = rows.setdefault(key, [0, 0])
            agg[0] += ev.bytes
            agg[1] += 1
        elif ev.engine == "compute" and ev.kind == "CONVERT":
            site = getattr(ev, "site", None) or "?"
            ckey = (site, getattr(ev, "src_precision", None), getattr(ev, "dst_precision", None))
            cagg = convs.setdefault(ckey, [0, 0.0])
            cagg[0] += 1
            cagg[1] += max(0.0, ev.t_end - ev.t_start)
    return DataMotionLedger(
        rows=[
            LedgerRow(link, precision, rank, nbytes, n_events)
            for (link, precision, rank), (nbytes, n_events) in sorted(
                rows.items(),
                key=lambda kv: (LINKS.index(kv[0][0]), str(kv[0][1]), kv[0][2]),
            )
        ],
        conversions=[
            ConversionRow(site, src, dst, int(count), seconds)
            for (site, src, dst), (count, seconds) in sorted(
                convs.items(), key=lambda kv: (kv[0][0], str(kv[0][1]), str(kv[0][2]))
            )
        ],
        source="events",
    )


def _parse_precision_name(name) -> Precision | None:
    if not name:
        return None
    try:
        return Precision[name]
    except KeyError:
        return None


def _normalize_stats(stats):
    """``(by_link, conversions_by_site, conversion_seconds_by_site)`` from
    a :class:`RunStats` or its ``to_dict()`` form."""
    if isinstance(stats, Mapping):
        by_link = {
            link: {
                _parse_precision_name(name): int(nbytes)
                for name, nbytes in (stats.get(f"{link}_bytes_by_precision") or {}).items()
            }
            for link in LINKS
        }
        conv_counts = dict(stats.get("conversions_by_site") or {})
        conv_seconds = dict(stats.get("conversion_seconds_by_site") or {})
    else:
        by_link = {
            "h2d": stats.h2d_bytes_by_precision,
            "d2h": stats.d2h_bytes_by_precision,
            "nic": stats.nic_bytes_by_precision,
            "disk_read": getattr(stats, "disk_read_bytes_by_precision", {}),
            "disk_write": getattr(stats, "disk_write_bytes_by_precision", {}),
        }
        conv_counts = stats.conversions_by_site
        conv_seconds = stats.conversion_seconds_by_site
    return by_link, conv_counts, conv_seconds


def _ledger_from_stats(stats) -> DataMotionLedger:
    """Build the rank-less ledger from RunStats counters (or their dict)."""
    by_link, conv_counts, conv_seconds = _normalize_stats(stats)
    rows = [
        LedgerRow(link, precision, None, int(nbytes))
        for link in LINKS
        for precision, nbytes in sorted(by_link[link].items(), key=lambda kv: str(kv[0]))
        if nbytes
    ]
    conversions = [
        ConversionRow(site, None, None, int(count), float(conv_seconds.get(site, 0.0)))
        for site, count in sorted(conv_counts.items())
    ]
    return DataMotionLedger(rows=rows, conversions=conversions, source="stats")


def build_ledger(
    events: Sequence | None = None,
    stats=None,
) -> DataMotionLedger:
    """Build the data-motion ledger from events (preferred) or stats.

    ``events`` may be any sequence of :class:`TraceEvent`-shaped objects
    (``engine``/``kind``/``rank``/``precision``/``bytes`` plus the
    CONVERT tags); ``stats`` a :class:`RunStats` or its ``to_dict()``
    form.  With both given, the ledger is event-derived — call
    :meth:`DataMotionLedger.reconcile` to cross-check it against stats.
    """
    if events:
        return _ledger_from_events(events)
    if stats is not None:
        return _ledger_from_stats(stats)
    return DataMotionLedger(rows=[], conversions=[], source="events")
