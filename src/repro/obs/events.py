"""Structured JSONL run logs.

One JSON object per line, one line per event.  Every record carries the
run id, a monotonic timestamp (seconds since the log was opened — immune
to wall-clock jumps), a sequence number (total order even when two
events land in the same clock tick), the event type, the span path that
was active when the event fired, and a free-form attribute dict:

    {"run_id": "a1b2c3", "seq": 7, "ts": 0.0123, "type": "mle.iteration",
     "span": "mle.fit", "attrs": {"k": 3, "loglik": -512.4}}

The format is append-only and crash-tolerant: a truncated final line is
skipped on read, everything before it survives.
"""

from __future__ import annotations

import enum
import json
import threading
import time
import uuid
from pathlib import Path
from typing import IO, Iterator, Mapping

__all__ = ["EventLog", "iter_events", "read_events"]


def _jsonable(value: object) -> object:
    """Coerce arbitrary attribute values into JSON-encodable form."""
    if isinstance(value, enum.Enum):  # before int/float — IntEnum subclasses both
        return value.name
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "name") and not isinstance(value, type):  # enums, Precision
        return getattr(value, "name")
    if hasattr(value, "item"):  # numpy scalars
        try:
            return value.item()
        except Exception:
            pass
    if hasattr(value, "tolist"):  # numpy arrays
        try:
            return value.tolist()
        except Exception:
            pass
    return repr(value)


class EventLog:
    """Append-only JSONL sink for one run's telemetry events."""

    def __init__(
        self,
        sink: str | Path | IO[str],
        *,
        run_id: str | None = None,
    ) -> None:
        if hasattr(sink, "write"):
            self._fh: IO[str] = sink  # type: ignore[assignment]
            self._owns_fh = False
            self.path: Path | None = None
        else:
            self.path = Path(sink)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8")
            self._owns_fh = True
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self._lock = threading.Lock()
        self._t0 = time.monotonic()
        self._seq = 0
        self._closed = False

    @property
    def n_events(self) -> int:
        return self._seq

    def elapsed(self) -> float:
        """Seconds on this log's clock (monotonic since the log opened).

        Event ``ts`` fields use the same origin, so callers can stamp
        intervals (e.g. per-rank task start/end in trace shards) that
        line up with the log's own timestamps.
        """
        return time.monotonic() - self._t0

    def emit(
        self,
        type: str,
        *,
        span: str | None = None,
        attrs: Mapping[str, object] | None = None,
        severity: str | None = None,
    ) -> None:
        """Append one event; thread-safe, silently dropped after close.

        ``severity="alert"`` flushes the sink immediately — a crash right
        after a watchdog alert must still leave the alert on disk.
        """
        record: dict[str, object] = {
            "run_id": self.run_id,
            "ts": round(time.monotonic() - self._t0, 9),
            "type": type,
        }
        if span is not None:
            record["span"] = span
        if severity is not None:
            record["severity"] = severity
        record["attrs"] = {str(k): _jsonable(v) for k, v in (attrs or {}).items()}
        with self._lock:
            if self._closed:
                return
            # seq is stamped under the lock, giving events a total order
            record["seq"] = self._seq
            self._seq += 1
            self._fh.write(json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n")
            if severity == "alert":
                self._fh.flush()

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._fh.flush()
            if self._owns_fh:
                self._fh.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_events(path: str | Path) -> Iterator[dict]:
    """Yield the records of a JSONL event log, skipping a torn tail line."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                return  # torn final line from a crash — stop cleanly


def read_events(path: str | Path) -> list[dict]:
    """Load a JSONL event log into memory."""
    return list(iter_events(path))
