"""The live telemetry plane: in-flight progress, scrape endpoints, watchdogs.

Every other :mod:`repro.obs` layer is post-hoc — you learn a run stalled
only after it ends.  This module makes a running process observable
*while it runs*, with near-zero cost when disabled:

* :class:`LiveProgress` — thread-safe in-flight state (tasks done /
  total, live tasks, heartbeat timestamps, free-form gauges) fed by
  heartbeat hooks in the simulator hot loop, the sweep engine, and the
  distributed executor.  When no plane is installed the hooks resolve to
  ``None`` and the hot loops pay a single ``is not None`` test per task.
* :class:`SnapshotBus` — a daemon thread that every ``interval`` seconds
  captures a snapshot: the progress state (tasks/sec EWMA, ETA,
  heartbeat age) plus **monotonic deltas** of every registry counter as
  per-second rates (eviction/spill/host-pressure rates come free from
  the counters the engine already ticks).
* :class:`LiveServer` — a stdlib :mod:`http.server` on a daemon thread
  exposing ``/metrics`` (Prometheus text, reusing
  :func:`~repro.obs.exporters.to_prometheus_text`), ``/progress``
  (the JSON snapshot, schema ``repro.obs.live/1`` — ingestable by the
  warehouse as ``kind="live"``), and ``/healthz``.
* the :class:`~repro.obs.alerts.Watchdog` rides the bus: every snapshot
  is judged against the declarative alert rules, and a fired ``abort``
  rule raises :class:`~repro.obs.alerts.WatchdogAbort` out of the run's
  next heartbeat.

One plane per process, installed with :func:`live_plane` (the CLI's
``--live-port``/``--alert`` flags) — instrumentation sites call
:func:`run_started` / :func:`run_finished` / :func:`set_live_gauge`
unconditionally, exactly like :func:`~repro.obs._runtime.emit_event`.
``repro watch <url>`` polls ``/progress`` and renders
:func:`render_progress_line`.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Iterable, Iterator, Mapping

from ._runtime import get_registry
from .alerts import AlertRule, Watchdog, WatchdogAbort
from .exporters import to_prometheus_text
from .metrics import MetricsRegistry

__all__ = [
    "BEAT_STRIDE",
    "LIVE_SCHEMA",
    "LivePlane",
    "LiveProgress",
    "LiveServer",
    "SnapshotBus",
    "announce_total",
    "campaign",
    "campaign_progress",
    "get_plane",
    "install_plane",
    "live_plane",
    "render_progress_line",
    "run_started",
    "run_finished",
    "set_live_gauge",
]

LIVE_SCHEMA = "repro.obs.live/1"

#: hot loops call their beat hook once per this many tasks — at the
#: ~1e5 tasks/s the simulator sustains that is a few hundred calls per
#: second, far below measurable overhead, yet stall detection still
#: resolves well under one bus interval
BEAT_STRIDE = 256

#: EWMA smoothing factor for the tasks/sec rate (per bus interval)
_RATE_ALPHA = 0.3

#: ignore rate samples shorter than this (an on-demand /progress poll
#: right after a bus tick would otherwise divide by a tiny dt)
_MIN_RATE_DT = 0.1


class LiveProgress:
    """Thread-safe in-flight progress state of the current run.

    Hot loops hold the bound ``beat`` callable returned by
    :meth:`begin` — one heartbeat per :data:`BEAT_STRIDE` tasks updates
    ``done``/``live_tasks`` and the heartbeat timestamp, and raises
    :class:`WatchdogAbort` once an abort rule has fired.  A *held*
    campaign (``repro sweep``) owns the done/total fields at
    point granularity; nested simulator runs then only refresh the
    heartbeat, so stall detection still sees intra-point liveness.
    """

    def __init__(self, *, run_id: str | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.run_id = run_id
        self._clock = clock
        self._lock = threading.Lock()
        self._phase = "idle"
        self._done = 0
        self._total: int | None = None
        self._total_hint: int | None = None
        self._live_tasks = 0
        self._gauges: dict[str, float] = {}
        self._t_begin: float | None = None
        self._last_beat: float | None = None
        self._complete = False
        self._held = False
        self._rate_ewma: float | None = None
        self._rate_mark: tuple[float, int] | None = None
        self._abort_reason: str | None = None
        # synthetic-stall injection (testing / CI live-smoke)
        self._stall_after: int | None = None
        self._stall_seconds = 0.0
        self._stall_fired = False

    # -- lifecycle hooks (called by instrumented run loops) ---------------
    def announce_total(self, total: int) -> None:
        """Pre-announce the task total (callers that know it before the
        loop does — e.g. ``cholesky_task_count`` ahead of a stream run)."""
        with self._lock:
            self._total_hint = int(total)
            if not self._held:
                self._total = int(total)

    def begin(self, total: int | None, phase: str) -> Callable[[int, int], None]:
        """Start (or, under a held campaign, join) a run; returns the beat."""
        with self._lock:
            if self._held:
                return self._touch
            now = self._clock()
            self._phase = phase
            self._done = 0
            self._total = int(total) if total is not None else self._total_hint
            self._live_tasks = 0
            self._t_begin = now
            self._last_beat = now
            self._complete = False
            self._rate_ewma = None
            self._rate_mark = (now, 0)
        return self._beat

    def finish(self, done: int | None = None) -> None:
        with self._lock:
            if self._held:
                return
            if done is not None:
                self._done = int(done)
            if self._total is None:
                self._total = self._done
            self._last_beat = self._clock()
            self._complete = True

    def hold(self, phase: str, total: int) -> None:
        """Enter campaign mode: this layer owns done/total per point."""
        with self._lock:
            now = self._clock()
            self._held = True
            self._phase = phase
            self._done = 0
            self._total = int(total)
            self._live_tasks = 0
            self._t_begin = now
            self._last_beat = now
            self._complete = False
            self._rate_ewma = None
            self._rate_mark = (now, 0)

    def release(self, *, complete: bool = True) -> None:
        with self._lock:
            self._held = False
            self._last_beat = self._clock()
            self._complete = complete

    def set_points(self, done: int, **gauges: float) -> None:
        """Campaign-mode progress: completed points plus counters."""
        with self._lock:
            self._done = int(done)
            self._last_beat = self._clock()
            for name, value in gauges.items():
                self._gauges[name] = float(value)
        self._check_abort()

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def request_abort(self, reason: str) -> None:
        """Arm the abort: the run's next heartbeat raises WatchdogAbort."""
        with self._lock:
            if self._abort_reason is None:
                self._abort_reason = reason

    @property
    def abort_reason(self) -> str | None:
        return self._abort_reason

    # -- the hot-path hooks ------------------------------------------------
    def _beat(self, done: int, live_tasks: int = 0) -> None:
        with self._lock:
            self._done = done
            self._live_tasks = live_tasks
            self._last_beat = self._clock()
            stall = (
                self._stall_after is not None
                and not self._stall_fired
                and done >= self._stall_after
            )
            if stall:
                self._stall_fired = True
        if stall:
            # sleep on the caller's (hot-loop) thread: the loop genuinely
            # stalls while the bus/watchdog threads keep observing it
            time.sleep(self._stall_seconds)
        self._check_abort()

    def _touch(self, done: int, live_tasks: int = 0) -> None:
        """Heartbeat-only beat used under a held campaign."""
        with self._lock:
            self._live_tasks = live_tasks
            self._last_beat = self._clock()
        self._check_abort()

    def _check_abort(self) -> None:
        reason = self._abort_reason
        if reason is not None:
            raise WatchdogAbort(reason)

    def configure_stall(self, after_tasks: int, seconds: float) -> None:
        """(testing) sleep ``seconds`` once ``after_tasks`` tasks complete."""
        with self._lock:
            self._stall_after = int(after_tasks)
            self._stall_seconds = float(seconds)
            self._stall_fired = False

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict:
        """The progress document (schema ``repro.obs.live/1``), updating
        the tasks/sec EWMA from the delta since the previous snapshot."""
        with self._lock:
            now = self._clock()
            done = self._done
            total = self._total
            if self._rate_mark is not None:
                t_mark, done_mark = self._rate_mark
                dt = now - t_mark
                if dt >= _MIN_RATE_DT:
                    inst = max(0.0, (done - done_mark) / dt)
                    if self._rate_ewma is None:
                        self._rate_ewma = inst
                    else:
                        self._rate_ewma += _RATE_ALPHA * (inst - self._rate_ewma)
                    self._rate_mark = (now, done)
            rate = self._rate_ewma
            eta = None
            if rate and total is not None and total > done and not self._complete:
                eta = (total - done) / rate
            fraction = None
            if total:
                fraction = min(1.0, done / total)
            elapsed = (now - self._t_begin) if self._t_begin is not None else None
            age = (now - self._last_beat) if self._last_beat is not None else None
            return {
                "schema": LIVE_SCHEMA,
                "run_id": self.run_id,
                "phase": self._phase,
                "done": done,
                "total": total,
                "fraction": fraction,
                "tasks_per_second": rate,
                "eta_seconds": eta,
                "live_tasks": self._live_tasks,
                "elapsed_seconds": elapsed,
                "heartbeat_age_seconds": age,
                "complete": self._complete,
                "aborting": self._abort_reason,
                "gauges": dict(self._gauges),
            }


class SnapshotBus:
    """Periodic snapshot capture: progress + monotonic counter deltas.

    Every capture diffs the registry's counter totals against the
    previous capture and reports per-second rates, so any counter the
    run already ticks (``sim.evictions``, ``sim.host_evictions``,
    ``sim.spills``, ``sweep.cache_hits``…) becomes a live rate with no
    extra hot-path instrumentation.  Subscribers (the watchdog) run on
    every capture — the periodic daemon-thread tick *and* on-demand
    ``/progress`` polls — so alerts fire at poll granularity, never
    slower than the interval.
    """

    def __init__(
        self,
        progress: LiveProgress,
        *,
        registry: MetricsRegistry | None = None,
        interval: float = 1.0,
        history: int = 120,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval <= 0.0:
            raise ValueError("interval must be positive")
        self.progress = progress
        self.registry = registry if registry is not None else get_registry()
        self.interval = float(interval)
        self._clock = clock
        self._lock = threading.Lock()
        self._subscribers: list[Callable[[dict], None]] = []
        self._history: deque[dict] = deque(maxlen=max(1, history))
        self._prev_totals: dict[str, float] | None = None
        self._prev_t: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def subscribe(self, fn: Callable[[dict], None]) -> None:
        self._subscribers.append(fn)

    @property
    def history(self) -> list[dict]:
        with self._lock:
            return list(self._history)

    def _counter_totals(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for metric in self.registry:
            if metric.kind != "counter":
                continue
            total = 0.0
            for series in metric.to_dict().get("series", []):
                value = series.get("value")
                if isinstance(value, (int, float)):
                    total += value
            totals[metric.name] = total
        return totals

    def capture(self) -> dict:
        """Take one snapshot, append it to history, notify subscribers."""
        with self._lock:
            now = self._clock()
            snap = self.progress.snapshot()
            totals = self._counter_totals()
            rates: dict[str, float] = {}
            if self._prev_t is not None:
                dt = now - self._prev_t
                if dt >= _MIN_RATE_DT:
                    for name, total in totals.items():
                        delta = total - (self._prev_totals or {}).get(name, 0.0)
                        rates[name] = max(0.0, delta / dt)
                    self._prev_totals, self._prev_t = totals, now
                elif self._history:
                    # too soon for a fresh delta: carry the last rates
                    rates = dict(self._history[-1].get("counter_rates") or {})
            else:
                self._prev_totals, self._prev_t = totals, now
            snap["counter_rates"] = rates
            snap["counter_totals"] = totals
            self._history.append(snap)
        for fn in list(self._subscribers):
            try:
                fn(snap)
            except WatchdogAbort:
                raise
            except Exception:
                pass  # a broken subscriber must never kill the bus
        return snap

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-live-bus", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=max(2.0, 2 * self.interval))
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.capture()
            except Exception:
                pass  # the bus outlives any single bad capture


# -- scrape server -----------------------------------------------------------

def _make_handler(plane: "LivePlane") -> type:
    class _LiveHandler(BaseHTTPRequestHandler):
        server_version = "repro-live/1"

        def log_message(self, *args) -> None:  # silence per-request stderr
            pass

        def _send(self, status: int, body: str, content_type: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            try:
                if path == "/metrics":
                    self._send(200, plane.metrics_text(),
                               "text/plain; version=0.0.4; charset=utf-8")
                elif path == "/progress":
                    doc = json.dumps(plane.snapshot(), sort_keys=True) + "\n"
                    self._send(200, doc, "application/json")
                elif path in ("/", "/healthz"):
                    doc = json.dumps(plane.health(), sort_keys=True) + "\n"
                    self._send(200, doc, "application/json")
                else:
                    self._send(404, json.dumps({"error": f"no route {path}"}) + "\n",
                               "application/json")
            except BrokenPipeError:
                pass

    return _LiveHandler


class LiveServer:
    """``/metrics`` + ``/progress`` + ``/healthz`` on a daemon thread.

    Binds ``127.0.0.1`` only — this is a run-local scrape endpoint, not a
    public service.  ``port=0`` asks the OS for an ephemeral port; the
    bound port is ``self.port`` (the CLI prints it and can write it to
    ``--live-port-file`` for pollers).
    """

    def __init__(self, plane: "LivePlane", *, port: int = 0,
                 host: str = "127.0.0.1") -> None:
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(plane))
        self._httpd.daemon_threads = True
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-live-http",
            kwargs={"poll_interval": 0.1}, daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._httpd.shutdown()
        thread.join(timeout=5.0)
        self._httpd.server_close()
        self._thread = None


# -- the plane facade --------------------------------------------------------

class LivePlane:
    """One process's live telemetry: progress + bus + watchdog + server."""

    def __init__(
        self,
        *,
        port: int | None = None,
        interval: float = 1.0,
        rules: Iterable[AlertRule] = (),
        registry: MetricsRegistry | None = None,
        run_id: str | None = None,
        history: int = 120,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry if registry is not None else get_registry()
        self.progress = LiveProgress(run_id=run_id, clock=clock)
        self.bus = SnapshotBus(
            self.progress, registry=self.registry, interval=interval,
            history=history, clock=clock,
        )
        rules = list(rules)
        self.watchdog = (
            Watchdog(rules, abort_hook=self.progress.request_abort, clock=clock)
            if rules else None
        )
        if self.watchdog is not None:
            self.bus.subscribe(self._judge)
        self.server = LiveServer(self, port=port) if port is not None else None
        self._t0 = clock()
        self._clock = clock

    def _judge(self, snap: dict) -> None:
        assert self.watchdog is not None
        snap["alerts"] = self.watchdog.observe(snap)

    @property
    def port(self) -> int | None:
        return self.server.port if self.server is not None else None

    @property
    def url(self) -> str | None:
        return self.server.url if self.server is not None else None

    def start(self) -> None:
        self.bus.start()
        if self.server is not None:
            self.server.start()

    def stop(self) -> None:
        try:
            self.bus.capture()  # final snapshot: the completed state
        except Exception:
            pass
        if self.server is not None:
            self.server.stop()
        self.bus.stop()

    def configure_stall(self, after_tasks: int, seconds: float) -> None:
        self.progress.configure_stall(after_tasks, seconds)

    # -- endpoint payloads -------------------------------------------------
    def snapshot(self) -> dict:
        snap = self.bus.capture()
        snap.setdefault("alerts", [])
        return snap

    def health(self) -> dict:
        active = self.watchdog.active if self.watchdog is not None else []
        return {
            "status": "alerting" if active else "ok",
            "run_id": self.progress.run_id,
            "alerts": active,
            "uptime_seconds": self._clock() - self._t0,
            "n_rules": len(self.watchdog.rules) if self.watchdog is not None else 0,
        }

    def metrics_text(self) -> str:
        """Prometheus exposition: the process registry plus a ``live.*``
        block rendered from the freshest snapshot (separate namespace, so
        the two concatenated expositions never collide)."""
        snap = self.snapshot()
        live = MetricsRegistry()

        def g(name: str, help_: str, value, **labels) -> None:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                live.gauge(name, help_).set(float(value), **labels)

        g("live.tasks_done", "tasks completed by the current run", snap["done"])
        g("live.tasks_total", "task total of the current run", snap["total"])
        g("live.tasks_per_second", "EWMA scheduling rate", snap["tasks_per_second"])
        g("live.eta_seconds", "estimated seconds to completion", snap["eta_seconds"])
        g("live.tasks_in_flight", "tasks live in the scheduling window",
          snap["live_tasks"])
        g("live.heartbeat_age_seconds", "seconds since the last heartbeat",
          snap["heartbeat_age_seconds"])
        g("live.elapsed_seconds", "seconds since the run began",
          snap["elapsed_seconds"])
        g("live.complete", "1 once the run finished", 1 if snap["complete"] else 0)
        g("live.alerts_active", "watchdog rules currently breached",
          len(snap.get("alerts") or []))
        for name, value in (snap.get("gauges") or {}).items():
            g("live.gauge", "free-form live gauges", value, name=name)
        for name, rate in (snap.get("counter_rates") or {}).items():
            g("live.counter_rate", "per-second registry counter rates",
              rate, metric=name)
        return to_prometheus_text(self.registry) + to_prometheus_text(live)


# -- the process-global plane ------------------------------------------------

_plane: LivePlane | None = None
_plane_lock = threading.Lock()


def get_plane() -> LivePlane | None:
    return _plane


def install_plane(plane: LivePlane | None) -> LivePlane | None:
    """Install ``plane`` as the process live plane; returns the previous."""
    global _plane
    with _plane_lock:
        previous = _plane
        _plane = plane
    return previous


@contextmanager
def live_plane(
    *,
    port: int | None = None,
    interval: float = 1.0,
    rules: Iterable[AlertRule] = (),
    run_id: str | None = None,
    registry: MetricsRegistry | None = None,
) -> Iterator[LivePlane]:
    """Run a live plane for the duration of the ``with`` block."""
    plane = LivePlane(port=port, interval=interval, rules=rules,
                      run_id=run_id, registry=registry)
    plane.start()
    previous = install_plane(plane)
    try:
        yield plane
    finally:
        install_plane(previous)
        plane.stop()


def run_started(total: int | None, phase: str) -> Callable[[int, int], None] | None:
    """Hot-loop hook: ``None`` when no plane is installed, else the beat.

    The loop holds the returned callable in a local and calls it every
    :data:`BEAT_STRIDE` tasks — ``beat(done, live_tasks)``.
    """
    plane = _plane
    if plane is None:
        return None
    return plane.progress.begin(total, phase)


def run_finished(done: int | None = None) -> None:
    plane = _plane
    if plane is not None:
        plane.progress.finish(done)


def announce_total(total: int) -> None:
    plane = _plane
    if plane is not None:
        plane.progress.announce_total(total)


def set_live_gauge(name: str, value: float) -> None:
    """Publish one free-form gauge to the live plane (no-op when none)."""
    plane = _plane
    if plane is not None:
        plane.progress.set_gauge(name, value)


@contextmanager
def campaign(phase: str, total: int) -> Iterator[None]:
    """Campaign scope (``run_sweep``): own done/total at point granularity;
    nested simulator runs only refresh the heartbeat."""
    plane = _plane
    if plane is None:
        yield
        return
    plane.progress.hold(phase, total)
    try:
        yield
    finally:
        plane.progress.release()


def campaign_progress(done: int, **gauges: float) -> None:
    """Campaign-mode heartbeat: completed points plus counters (no-op
    without a plane).  Raises WatchdogAbort once an abort rule fired."""
    plane = _plane
    if plane is not None:
        plane.progress.set_points(done, **gauges)


# -- rendering (repro watch) -------------------------------------------------

def render_progress_line(snap: Mapping) -> str:
    """One compact human line for a ``/progress`` snapshot."""
    phase = snap.get("phase") or "?"
    done = snap.get("done") or 0
    total = snap.get("total")
    parts = [f"[{phase}]"]
    if total:
        fraction = snap.get("fraction")
        pct = f" ({fraction * 100.0:.1f}%)" if isinstance(fraction, (int, float)) else ""
        parts.append(f"{done:,}/{total:,}{pct}")
    else:
        parts.append(f"{done:,} done")
    rate = snap.get("tasks_per_second")
    if isinstance(rate, (int, float)):
        parts.append(f"{rate:,.0f} tasks/s")
    eta = snap.get("eta_seconds")
    if isinstance(eta, (int, float)):
        parts.append(f"eta {eta:.0f}s")
    age = snap.get("heartbeat_age_seconds")
    if isinstance(age, (int, float)):
        parts.append(f"hb {age:.1f}s")
    alerts = snap.get("alerts") or []
    if alerts:
        parts.append("ALERTS: " + ",".join(str(a) for a in alerts))
    if snap.get("complete"):
        parts.append("done ✓")
    return "  ".join(parts)
