"""repro.obs.merge — clock-aligned aggregation of distributed trace shards.

A distributed run (:func:`repro.runtime.distributed.execute_numeric_distributed`
with ``shard_dir=...``) leaves one JSONL shard per rank
(``events-rank<k>.jsonl``) plus the parent's ``shard-manifest.json``.
Each shard's timestamps are *process-local* — ``time.monotonic()`` has
an arbitrary per-process origin — so the shards cannot simply be
concatenated.  What they do share is the machine wall clock: each shard
opens with a ``shard.open`` event carrying ``time.time()``, and the
parent manifest records its own reference wall timestamp taken just
before spawning.

:func:`merge_shards` therefore aligns every shard onto the parent's
time axis (``offset_k = shard_open_wall_k − parent_wall``), converts the
per-rank ``rank.task`` / ``rank.send`` / ``rank.convert`` records into
the standard :class:`~repro.runtime.tracing.TraceEvent` schema (one
Perfetto *process* track per rank, the same pid=rank convention the
simulator's traces use), and sums the per-rank ``RunStats`` into one
aggregate.  Because the trace events and the stats derive from the same
send/convert records, the merged ledger ``reconcile()``s *exactly* —
:func:`write_merged` drops ``trace.json`` + ``summary.json`` into a
directory that ``repro analyze`` accepts like any single-run capture.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from ..precision.formats import Precision
from .events import read_events

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.tracing import RunStats, TraceEvent


def _new_run_stats() -> "RunStats":
    # lazy: repro.obs must stay importable without repro.runtime
    # (the runtime itself imports repro.obs at module level)
    from ..runtime.tracing import RunStats

    return RunStats()

__all__ = ["MergedTrace", "ShardInfo", "merge_shards", "render_merge", "write_merged"]

SHARDS_SCHEMA = "repro.obs.shards/1"


@dataclass(frozen=True)
class ShardInfo:
    """One rank's shard and how its clock maps onto the parent's axis."""

    rank: int
    path: Path
    wall_open: float  # shard's time.time() at open
    ts_open: float  # shard-log timestamp of the open event (~0)
    offset: float  # seconds added to shard times on the merged axis
    n_events: int


@dataclass
class MergedTrace:
    """Result of merging a shard directory."""

    events: "list[TraceEvent]" = field(default_factory=list)
    stats: "RunStats" = field(default_factory=_new_run_stats)
    shards: list[ShardInfo] = field(default_factory=list)
    per_rank_stats: dict[int, dict] = field(default_factory=dict)
    policy: str | None = None
    run_id: str | None = None

    @property
    def n_ranks(self) -> int:
        return len(self.shards)


def _parse_precision(name) -> Precision | None:
    if not name:
        return None
    try:
        return Precision[str(name)]
    except KeyError:
        return None


def _sum_stats(per_rank: Mapping[int, Mapping]) -> "RunStats":
    """One :class:`RunStats` summing the per-rank ``to_dict()`` records."""
    total = _new_run_stats()
    for stats in per_rank.values():
        for name, flops in (stats.get("flops_by_precision") or {}).items():
            precision = _parse_precision(name)
            if precision is not None:
                total.add_flops(precision, float(flops))
        for link, adder in (
            ("h2d", total.add_h2d),
            ("d2h", total.add_d2h),
            ("nic", total.add_nic),
        ):
            for name, nbytes in (stats.get(f"{link}_bytes_by_precision") or {}).items():
                precision = _parse_precision(name)
                if precision is not None:
                    adder(precision, int(nbytes))
        for site, count in (stats.get("conversions_by_site") or {}).items():
            seconds = (stats.get("conversion_seconds_by_site") or {}).get(site, 0.0)
            each = float(seconds) / count if count else 0.0
            for _ in range(int(count)):
                total.add_conversion(str(site), each)
        total.n_tasks += int(stats.get("n_tasks", 0))
        total.n_evictions += int(stats.get("n_evictions", 0))
    return total


def merge_shards(shard_dir: str | Path) -> MergedTrace:
    """Merge every ``events-rank<k>.jsonl`` under ``shard_dir``.

    Raises :class:`ValueError` when the directory holds no shards, a
    shard lacks its ``shard.open`` anchor, or the parent manifest is
    missing/incompatible.
    """
    shard_dir = Path(shard_dir)
    manifest_path = shard_dir / "shard-manifest.json"
    if not manifest_path.is_file():
        raise ValueError(f"no shard-manifest.json under {shard_dir}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("schema") != SHARDS_SCHEMA:
        raise ValueError(
            f"unexpected shard manifest schema {manifest.get('schema')!r}, "
            f"expected {SHARDS_SCHEMA!r}"
        )
    parent_wall = float(manifest["wall_time"])

    shard_files = sorted(shard_dir.glob("events-rank*.jsonl"))
    if not shard_files:
        raise ValueError(f"no events-rank*.jsonl shards under {shard_dir}")

    from ..runtime.tracing import TraceEvent

    merged = MergedTrace(
        policy=manifest.get("policy"), run_id=manifest.get("run_id")
    )
    for path in shard_files:
        records = read_events(path)
        opens = [r for r in records if r.get("type") == "shard.open"]
        if not opens:
            raise ValueError(f"shard {path.name} has no shard.open anchor event")
        open_rec = opens[0]
        attrs = open_rec.get("attrs") or {}
        rank = int(attrs["rank"])
        wall_open = float(attrs["wall_time"])
        ts_open = float(open_rec.get("ts", 0.0))
        # the shard's clock, re-anchored to the parent's reference
        # timestamp: local elapsed-since-open plus the wall-clock lag
        # between the parent's reference instant and the shard opening
        offset = wall_open - parent_wall
        merged.shards.append(
            ShardInfo(
                rank=rank,
                path=path,
                wall_open=wall_open,
                ts_open=ts_open,
                offset=offset,
                n_events=len(records),
            )
        )

        def align(t: float) -> float:
            return (float(t) - ts_open) + offset

        for rec in records:
            rtype = rec.get("type")
            attrs = rec.get("attrs") or {}
            if rtype == "rank.task":
                merged.events.append(
                    TraceEvent(
                        rank=rank,
                        engine="compute",
                        kind=str(attrs.get("kind", "TASK")),
                        t_start=align(attrs.get("t_start", 0.0)),
                        t_end=align(attrs.get("t_end", 0.0)),
                        precision=_parse_precision(attrs.get("precision")),
                        flops=float(attrs.get("flops", 0.0)),
                    )
                )
            elif rtype == "rank.send":
                merged.events.append(
                    TraceEvent(
                        rank=rank,
                        engine="nic",
                        kind="SEND",
                        t_start=align(attrs.get("t_start", 0.0)),
                        t_end=align(attrs.get("t_end", 0.0)),
                        precision=_parse_precision(attrs.get("precision")),
                        bytes=int(attrs.get("bytes", 0)),
                    )
                )
            elif rtype == "rank.convert":
                merged.events.append(
                    TraceEvent(
                        rank=rank,
                        engine="compute",
                        kind="CONVERT",
                        t_start=align(attrs.get("t_start", 0.0)),
                        t_end=align(attrs.get("t_end", 0.0)),
                        site=str(attrs.get("site", "stc")),
                        src_precision=_parse_precision(attrs.get("src")),
                        dst_precision=_parse_precision(attrs.get("dst")),
                    )
                )
            elif rtype == "rank.stats":
                merged.per_rank_stats[rank] = dict(attrs.get("stats") or {})

    merged.events.sort(key=lambda e: (e.t_start, e.rank, e.engine, e.kind))
    merged.stats = _sum_stats(merged.per_rank_stats)
    merged.stats.makespan = max((e.t_end for e in merged.events), default=0.0)
    return merged


def write_merged(
    merged: MergedTrace,
    out_dir: str | Path,
    *,
    manifest: Mapping | None = None,
) -> dict[str, Path]:
    """Write ``trace.json`` + ``summary.json`` for ``repro analyze``.

    The trace gets one Perfetto process track per rank (pid = rank, the
    simulator's convention); the summary embeds the summed stats so the
    analyzer can reconcile the event-derived ledger against them.
    """
    from .exporters import run_summary, write_perfetto_trace

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = write_perfetto_trace(
        merged.events,
        out_dir / "trace.json",
        counters=False,
        metadata={
            "merged_from": [s.path.name for s in merged.shards],
            "n_ranks": merged.n_ranks,
            "policy": merged.policy,
            "clock_offsets": {str(s.rank): s.offset for s in merged.shards},
        },
    )
    summary = run_summary(stats=merged.stats)
    summary["merge"] = {
        "schema": SHARDS_SCHEMA,
        "n_ranks": merged.n_ranks,
        "run_id": merged.run_id,
        "policy": merged.policy,
        "per_rank_stats": {str(r): s for r, s in sorted(merged.per_rank_stats.items())},
        "shards": [
            {
                "rank": s.rank,
                "path": s.path.name,
                "offset_seconds": s.offset,
                "n_events": s.n_events,
            }
            for s in merged.shards
        ],
    }
    if manifest is not None:
        summary["manifest"] = dict(manifest)
    summary_path = out_dir / "summary.json"
    summary_path.write_text(
        json.dumps(summary, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    return {"trace": trace_path, "summary": summary_path}


def render_merge(merged: MergedTrace) -> str:
    """Human summary of a merge (``repro merge-shards`` output)."""
    from ..bench.reporting import format_table

    rows = [
        (
            s.rank,
            s.path.name,
            s.n_events,
            f"{s.offset * 1e3:+.2f} ms",
            f"{(merged.per_rank_stats.get(s.rank) or {}).get('n_tasks', 0)}",
        )
        for s in sorted(merged.shards, key=lambda s: s.rank)
    ]
    title = (
        f"merged {merged.n_ranks} shard(s): {len(merged.events)} trace events, "
        f"{merged.stats.n_tasks} tasks, {merged.stats.nic_bytes / 1e6:.2f} MB over nic, "
        f"makespan {merged.stats.makespan:.4f} s"
    )
    return format_table(
        ["rank", "shard", "events", "clock offset", "tasks"], rows, title=title
    )
