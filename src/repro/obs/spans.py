"""Span instrumentation: nested timing contexts that feed metrics + logs.

A *span* is one timed region of a run — a simulated factorization, one
task execution, one MLE fit.  Spans nest per thread; the active path is
slash-joined (``"mle.fit/simulate"``).  Closing a span

* observes its wall time into the registry timer ``span.duration_seconds``
  (labeled by span name), and
* emits a ``"span"`` event to the active JSONL log (if any) carrying the
  full path, duration, and user attributes.

Use the :func:`span` context manager for ad-hoc regions and the
:func:`traced` decorator for whole functions.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar

from ._runtime import (
    _pop_span,
    _push_span,
    current_span_path,
    emit_event,
    get_registry,
)

__all__ = ["Span", "span", "traced"]

F = TypeVar("F", bound=Callable)


class Span:
    """Handle yielded by :func:`span`; attributes may be added mid-flight."""

    __slots__ = ("name", "path", "attrs", "duration")

    def __init__(self, name: str, path: str, attrs: dict) -> None:
        self.name = name
        self.path = path
        self.attrs = attrs
        self.duration: float | None = None

    def set(self, **attrs: object) -> "Span":
        """Attach extra attributes to the span's completion event."""
        self.attrs.update(attrs)
        return self


@contextmanager
def span(name: str, **attrs: object) -> Iterator[Span]:
    """Open a nested, timed span named ``name``.

    ``attrs`` become the attributes of the emitted span event; the
    measured duration is always appended as ``duration_seconds``.
    """
    parent = current_span_path()
    path = f"{parent}/{name}" if parent else name
    handle = Span(name, path, dict(attrs))
    _push_span(path)
    t0 = time.perf_counter()
    error: str | None = None
    try:
        yield handle
    except BaseException as exc:
        error = type(exc).__name__
        raise
    finally:
        duration = time.perf_counter() - t0
        _pop_span()
        handle.duration = duration
        get_registry().timer(
            "span.duration_seconds", "wall time of instrumented spans"
        ).observe(duration, span=name)
        payload = dict(handle.attrs)
        payload["duration_seconds"] = duration
        if error is not None:
            payload["error"] = error
        emit_event("span", payload, span=path)


def traced(name: str | Callable | None = None, **attrs: object):
    """Decorator form of :func:`span`.

    Works bare (``@traced``) or parameterised
    (``@traced("solver.plan", layer="core")``); the span name defaults to
    the function's qualified name.
    """

    def decorate(fn: F, span_name: str | None = None) -> F:
        label = span_name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    if callable(name):  # @traced with no parentheses
        return decorate(name)
    return lambda fn: decorate(fn, name)
