"""Benchmark harness: experiment drivers and reporting for every table/figure."""

from .apps import APPLICATIONS, AppConfig, app_kernel_map, get_app
from .figures_accuracy import (
    FIG5_CONFIGS,
    FIG6_CONFIGS,
    MCConfig,
    fig7_fraction_rows,
    run_fig5_config,
    run_fig6_config,
)
from .figures_micro import (
    example_precision_maps,
    fig1_accuracy_rows,
    fig1_performance_rows,
    fig3_dag_summary,
    table1_rows,
    table2_rows,
)
from .figures_perf import (
    PerfPoint,
    ablation_band_vs_norm_rows,
    ablation_scheduler_rows,
    ablation_tile_size_rows,
    fig8_configs,
    fig8_rows,
    fig9_occupancy_rows,
    fig10_energy_rows,
    fig11_rows,
    fig12_mp_rows,
    fig12_strong_rows,
    fig12_weak_rows,
)
from .reporting import ascii_series, format_table, write_csv

__all__ = [
    "APPLICATIONS",
    "AppConfig",
    "FIG5_CONFIGS",
    "FIG6_CONFIGS",
    "MCConfig",
    "PerfPoint",
    "ablation_band_vs_norm_rows",
    "ablation_scheduler_rows",
    "ablation_tile_size_rows",
    "app_kernel_map",
    "ascii_series",
    "example_precision_maps",
    "fig1_accuracy_rows",
    "fig1_performance_rows",
    "fig3_dag_summary",
    "fig7_fraction_rows",
    "fig8_configs",
    "fig8_rows",
    "fig9_occupancy_rows",
    "fig10_energy_rows",
    "fig11_rows",
    "fig12_mp_rows",
    "fig12_strong_rows",
    "fig12_weak_rows",
    "format_table",
    "get_app",
    "run_fig5_config",
    "run_fig6_config",
    "table1_rows",
    "table2_rows",
    "write_csv",
]
