"""Experiment drivers for the accuracy studies (Figs. 5, 6, 7).

Figs. 5/6 are Monte Carlo parameter-estimation studies over the paper's
weak/strong × rough/smooth configurations; Fig. 7 is the kernel-precision
heatmap of the three applications at full scale (sampled-norm pipeline).

The Monte Carlo defaults are scaled down from the paper's 100 replicas ×
40,000 locations to keep the harness runnable on one CPU; every knob is
exposed so a larger machine can push toward paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geostats.covariance import Matern, SquaredExponential
from ..geostats.generator import SyntheticField
from ..geostats.montecarlo import MonteCarloStudy, run_monte_carlo
from .apps import APPLICATIONS, app_kernel_map

__all__ = [
    "MCConfig",
    "FIG5_CONFIGS",
    "FIG6_CONFIGS",
    "run_fig5_config",
    "run_fig6_config",
    "fig7_fraction_rows",
]

#: nugget used by the sqexp Monte Carlo configurations (the nugget-free
#: squared exponential is numerically singular in FP64 — see DESIGN.md)
SQEXP_NUGGET = 0.01


@dataclass(frozen=True)
class MCConfig:
    """One Monte Carlo panel of Fig. 5/6."""

    key: str
    model_kind: str  # "sqexp" | "matern"
    dim: int
    theta: tuple[float, ...]
    accuracies: tuple
    nugget: float = 0.0

    def field(self, n: int, seed: int = 0) -> SyntheticField:
        if self.model_kind == "sqexp":
            model = SquaredExponential(dim=self.dim)
        else:
            model = Matern(dim=self.dim)
        return SyntheticField(model, self.theta, n, seed=seed, nugget=self.nugget)


#: Fig. 5 panels: 2D-sqexp weak/strong; 2D-Matérn weak/strong × rough/smooth.
FIG5_CONFIGS: dict[str, MCConfig] = {
    "sqexp-weak": MCConfig(
        "sqexp-weak", "sqexp", 2, (1.0, 0.03), (1e-1, 1e-2, 1e-4, "exact"), SQEXP_NUGGET
    ),
    "sqexp-strong": MCConfig(
        "sqexp-strong", "sqexp", 2, (1.0, 0.3), (1e-1, 1e-2, 1e-4, "exact"), SQEXP_NUGGET
    ),
    "matern-weak-rough": MCConfig(
        "matern-weak-rough", "matern", 2, (1.0, 0.03, 0.5), (1e-2, 1e-4, 1e-9, "exact")
    ),
    "matern-weak-smooth": MCConfig(
        "matern-weak-smooth", "matern", 2, (1.0, 0.03, 1.0), (1e-2, 1e-4, 1e-9, "exact")
    ),
    "matern-strong-rough": MCConfig(
        "matern-strong-rough", "matern", 2, (1.0, 0.3, 0.5), (1e-2, 1e-4, 1e-9, "exact")
    ),
    "matern-strong-smooth": MCConfig(
        "matern-strong-smooth", "matern", 2, (1.0, 0.3, 1.0), (1e-2, 1e-4, 1e-9, "exact")
    ),
}

#: Fig. 6 panels: 3D-sqexp weak/strong.
FIG6_CONFIGS: dict[str, MCConfig] = {
    "sqexp3d-weak": MCConfig(
        "sqexp3d-weak", "sqexp", 3, (1.0, 0.03), (1e-2, 1e-4, 1e-8, "exact"), SQEXP_NUGGET
    ),
    "sqexp3d-strong": MCConfig(
        "sqexp3d-strong", "sqexp", 3, (1.0, 0.3), (1e-2, 1e-4, 1e-8, "exact"), SQEXP_NUGGET
    ),
}


def run_fig5_config(
    key: str,
    *,
    n: int = 256,
    replicas: int = 8,
    tile_size: int = 32,
    max_evals: int = 150,
    seed: int = 0,
) -> MonteCarloStudy:
    """Run one Fig. 5 panel at reproduction scale."""
    cfg = FIG5_CONFIGS[key]
    field = cfg.field(n, seed=seed)
    return run_monte_carlo(
        field, cfg.accuracies, replicas=replicas, tile_size=tile_size, max_evals=max_evals
    )


def run_fig6_config(
    key: str,
    *,
    n: int = 343,
    replicas: int = 8,
    tile_size: int = 49,
    max_evals: int = 150,
    seed: int = 0,
) -> MonteCarloStudy:
    """Run one Fig. 6 panel (3D locations) at reproduction scale."""
    cfg = FIG6_CONFIGS[key]
    field = cfg.field(n, seed=seed)
    return run_monte_carlo(
        field, cfg.accuracies, replicas=replicas, tile_size=tile_size, max_evals=max_evals
    )


def fig7_fraction_rows(
    n: int = 409600,
    nb: int = 2048,
    *,
    samples_per_tile: int = 32,
    seed: int = 0,
) -> list[list]:
    """Fig. 7: per-application tile fractions at the paper's matrix size.

    Returns rows ``[app, FP64 %, FP32 %, FP16_32 %, FP16 %]``.
    """
    from ..precision.formats import Precision

    rows = []
    for key in ("2d-sqexp", "2d-matern", "3d-sqexp"):
        kmap = app_kernel_map(
            APPLICATIONS[key], n, nb, samples_per_tile=samples_per_tile, seed=seed
        )
        fr = kmap.tile_fractions()
        rows.append(
            [
                APPLICATIONS[key].label,
                100.0 * fr.get(Precision.FP64, 0.0),
                100.0 * fr.get(Precision.FP32, 0.0),
                100.0 * fr.get(Precision.FP16_32, 0.0),
                100.0 * fr.get(Precision.FP16, 0.0),
            ]
        )
    return rows
