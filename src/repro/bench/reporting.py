"""Table/CSV reporting helpers shared by the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures as a
text table (and optionally CSV for downstream plotting); these helpers
keep the formatting uniform.
"""

from __future__ import annotations

import csv
import os
from typing import Iterable, Sequence

__all__ = ["format_table", "write_csv", "ascii_series", "results_dir"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None) -> str:
    """Render a fixed-width text table."""
    rows = [[_fmt(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    lines = []
    if title:
        lines.append(title)
    lines.append(sep.join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep.join("-" * w for w in widths))
    for row in rows:
        lines.append(sep.join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0.0:
            return "0"
        if abs(cell) >= 1e5 or abs(cell) < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def results_dir() -> str:
    """Directory where benchmarks drop their CSV outputs."""
    path = os.environ.get("REPRO_RESULTS_DIR", os.path.join(os.getcwd(), "results"))
    os.makedirs(path, exist_ok=True)
    return path


def write_csv(name: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Write rows to ``results/<name>.csv``; returns the path."""
    path = os.path.join(results_dir(), f"{name}.csv")
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return path


def ascii_series(xs: Sequence[float], ys: Sequence[float], *, width: int = 60, height: int = 12,
                 label: str = "") -> str:
    """Tiny ASCII line plot for quick visual inspection of a series."""
    if not xs or not ys or len(xs) != len(ys):
        return "(empty series)"
    lo, hi = min(ys), max(ys)
    span = hi - lo if hi > lo else 1.0
    grid = [[" "] * width for _ in range(height)]
    n = len(xs)
    for i, y in enumerate(ys):
        col = int(i * (width - 1) / max(1, n - 1))
        row = height - 1 - int((y - lo) / span * (height - 1))
        grid[row][col] = "*"
    lines = ["".join(r) for r in grid]
    header = f"{label}  [min={lo:.4g}, max={hi:.4g}]"
    return header + "\n" + "\n".join(lines)
