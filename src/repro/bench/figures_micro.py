"""Experiment drivers for the microbenchmark tables/figures.

Covers Table I (GPU peaks), Table II (V100 move/GEMM times), Fig. 1
(GEMM accuracy & performance per precision), Fig. 2 (precision maps),
Fig. 3 (DAG pattern of the first iterations), and Fig. 4 (automated
conversion maps).  Each driver returns plain rows so the pytest-benchmark
wrappers and the examples can share them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import ConversionStrategy
from ..core.conversion import CommPrecisionMap, build_comm_precision_map
from ..core.dag_cholesky import build_cholesky_dag
from ..core.precision_map import KernelPrecisionMap, build_precision_map
from ..geostats.covariance import Matern
from ..geostats.generator import build_tiled_covariance
from ..geostats.locations import generate_locations
from ..perfmodel.gpus import GPU_BY_NAME, GPUSpec, V100
from ..perfmodel.kernels import gemm_time
from ..perfmodel.transfers import h2d_time, tile_bytes
from ..precision.formats import Precision
from ..precision.gemm import gemm_relative_error
from ..tiles.norms import tile_norms

__all__ = [
    "table1_rows",
    "table2_rows",
    "fig1_accuracy_rows",
    "fig1_performance_rows",
    "example_precision_maps",
    "fig3_dag_summary",
]

#: the six formats of the Section IV GEMM study, presentation order
_FIG1_FORMATS = (
    Precision.FP64,
    Precision.FP32,
    Precision.TF32,
    Precision.FP16_32,
    Precision.BF16_32,
    Precision.FP16,
)


def table1_rows() -> list[list]:
    """Table I: theoretical peaks (Tflop/s) per GPU and precision."""
    rows = []
    display = [
        ("FP64", Precision.FP64),
        ("FP32", Precision.FP32),
        ("TF32 Tensor", Precision.TF32),
        ("FP16 Tensor", Precision.FP16),
        ("BF16 Tensor", Precision.BF16_32),
    ]
    for label, prec in display:
        row = [label]
        for name in ("V100", "A100", "H100"):
            row.append(GPU_BY_NAME[name].peak(prec) / 1e12)
        rows.append(row)
    return rows


def table2_rows(sizes: tuple[int, ...] = (2048, 4096, 6144, 8192, 10240)) -> list[list]:
    """Table II: V100 tile-move and GEMM times (ms) per precision."""
    rows = []
    for prec in (Precision.FP64, Precision.FP32, Precision.FP16):
        rows.append(
            [f"Move one tile/matrix in {prec.name}"]
            + [h2d_time(V100, n, prec) * 1e3 for n in sizes]
        )
    for prec in (Precision.FP64, Precision.FP32, Precision.FP16):
        rows.append(
            [f"Execute GEMM in {prec.name}"] + [gemm_time(V100, n, prec) * 1e3 for n in sizes]
        )
    return rows


def fig1_accuracy_rows(
    sizes: tuple[int, ...] = (256, 512, 1024, 2048),
    *,
    seed: int = 0,
) -> list[list]:
    """Fig. 1 (top): emulated GEMM accuracy vs FP64 per format and size."""
    rng = np.random.default_rng(seed)
    rows = []
    for n in sizes:
        row = [n]
        for prec in _FIG1_FORMATS:
            row.append(gemm_relative_error(n, prec, rng=rng))
        rows.append(row)
    return rows


def fig1_performance_rows(
    gpus: tuple[str, ...] = ("V100", "A100", "H100"),
    sizes: tuple[int, ...] = (1024, 2048, 4096, 8192, 16384),
) -> list[list]:
    """Fig. 1 (bottom): modeled GEMM Tflop/s per GPU, format, size."""
    rows = []
    for name in gpus:
        gpu = GPU_BY_NAME[name]
        for n in sizes:
            row = [name, n]
            for prec in _FIG1_FORMATS:
                flops = 2.0 * float(n) ** 3
                row.append(flops / gemm_time(gpu, n, prec) / 1e12)
            rows.append(row)
    return rows


@dataclass
class ExampleMaps:
    """The Fig. 2/Fig. 4 running example: an NT×NT Matérn covariance."""

    kernel_map: KernelPrecisionMap
    comm_map: CommPrecisionMap
    nt: int

    def renders(self) -> dict[str, str]:
        return {
            "kernel (Fig. 2a)": self.kernel_map.render(),
            "communication (Fig. 4b)": self.comm_map.render(),
        }


def example_precision_maps(
    nt: int = 8,
    nb: int = 32,
    *,
    accuracy: float = 1e-4,
    seed: int = 0,
) -> ExampleMaps:
    """Build the small demonstration maps of Figs. 2 and 4.

    A Matérn covariance over Morton-ordered locations gives the
    diagonal-heavy decay pattern the figures illustrate; range 0.1 at
    u_req = 1e-4 produces all four adaptive formats at NT = 8 like the
    paper's example.
    """
    n = nt * nb
    locs = generate_locations(n, 2, seed=seed)
    model = Matern(dim=2)
    cov = build_tiled_covariance(locs, model, (1.0, 0.1, 0.5), nb)
    kmap = build_precision_map(tile_norms(cov), accuracy)
    cmap = build_comm_precision_map(kmap)
    return ExampleMaps(kernel_map=kmap, comm_map=cmap, nt=nt)


def fig3_dag_summary(nt: int = 4, nb: int = 32) -> dict:
    """Fig. 3: task counts and dependency pattern of the first iterations."""
    kmap = build_precision_map(np.ones((nt, nt)), 1e-9)
    dag = build_cholesky_dag(nt * nb, nb, kmap, strategy=ConversionStrategy.AUTO)
    graph = dag.graph
    per_iteration: dict[int, dict[str, int]] = {}
    for task in graph:
        k = task.params[-1] if task.kind != "POTRF" else task.params[0]
        per_iteration.setdefault(k, {})
        per_iteration[k][task.kind] = per_iteration[k].get(task.kind, 0) + 1
    edges = sum(len(graph.predecessors(t)) for t in range(len(graph)))
    return {
        "n_tasks": len(graph),
        "n_edges": edges,
        "per_iteration": per_iteration,
        "counts": graph.counts_by_kind(),
        "critical_path_tasks": graph.critical_path_length(lambda t: 1.0),
    }
