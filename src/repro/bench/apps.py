"""The paper's three evaluation applications at performance scale.

Figs. 7, 10, and 12c are driven by three geospatial configurations:

* **2D-sqexp** at required accuracy 1e-4 — the most precision-tolerant
  (paper: 46.7 % of tiles in FP16, 29.5 % in FP16_32);
* **2D-Matérn** at 1e-9 — intermediate;
* **3D-sqexp** at 1e-8 — the most precision-hungry (>60 % of tiles in
  FP64/FP32; 3D neighbourhoods keep more tiles strongly correlated).

At these scales (matrix 409,600–798,720) the covariance matrix is never
materialised: kernel-precision maps are built from *sampled* tile norms
through the covariance entry oracle (:func:`repro.tiles.norms.sampled_tile_norms`),
which is exact in expectation and cheap.  The correlation ranges below
were chosen so the resulting tile fractions land near the paper's Fig. 7
percentages; they are recorded here as the reproduction's application
definitions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.precision_map import KernelPrecisionMap, build_precision_map
from ..geostats.covariance import CovarianceModel, Matern, SquaredExponential
from ..geostats.locations import generate_locations
from ..precision.formats import ADAPTIVE_FORMATS, Precision
from ..tiles.norms import sampled_tile_norms

__all__ = ["AppConfig", "APPLICATIONS", "app_kernel_map", "get_app"]


@dataclass(frozen=True)
class AppConfig:
    """One evaluation application: model, parameters, required accuracy."""

    key: str
    model: CovarianceModel
    theta: tuple[float, ...]
    accuracy: float

    @property
    def label(self) -> str:
        return {"2d-sqexp": "2D-sqexp", "2d-matern": "2D-Matern", "3d-sqexp": "3D-sqexp"}[
            self.key
        ]


APPLICATIONS: dict[str, AppConfig] = {
    # u_req values straight from Section VII-C; θ chosen so the sampled
    # maps land on the Fig. 7 tile-fraction profile: 2D-sqexp ≈ 46/24 %
    # FP16/FP16_32 (paper: 46.7/29.5 %), 3D-sqexp > 60 % in FP64/FP32,
    # 2D-Matérn in between.
    "2d-sqexp": AppConfig("2d-sqexp", SquaredExponential(dim=2), (1.0, 0.1), 1e-4),
    "2d-matern": AppConfig("2d-matern", Matern(dim=2), (1.0, 0.03, 0.5), 1e-9),
    "3d-sqexp": AppConfig("3d-sqexp", SquaredExponential(dim=3), (1.0, 0.05), 1e-8),
}


def get_app(key: str) -> AppConfig:
    k = key.strip().lower()
    if k not in APPLICATIONS:
        raise ValueError(f"unknown application {key!r}; expected one of {sorted(APPLICATIONS)}")
    return APPLICATIONS[k]


def app_kernel_map(
    app: AppConfig | str,
    n: int,
    nb: int,
    *,
    samples_per_tile: int = 64,
    formats=ADAPTIVE_FORMATS,
    seed: int = 0,
    locations: np.ndarray | None = None,
    ordering: str | None = "morton",
) -> KernelPrecisionMap:
    """Kernel-precision map of one application at matrix size ``n``.

    Locations are generated synthetically (or passed via ``locations``,
    e.g. from a dataplane manifest), spatially sorted per ``ordering``
    (``morton``/``hilbert``/``random``; ``None`` keeps the given order),
    tile norms estimated by sampling, and the Higham–Mary rule applied
    at the application's required accuracy — the Fig. 7 pipeline.  The
    default (synthetic, Morton) reproduces the original behaviour
    bit-for-bit.
    """
    if isinstance(app, str):
        app = get_app(app)
    if locations is None:
        locs = generate_locations(n, app.model.dim, seed=seed, sort=False)
    else:
        locs = np.asarray(locations, dtype=np.float64)
        if locs.shape != (n, app.model.dim):
            raise ValueError(
                f"locations must be ({n}, {app.model.dim}), got {locs.shape}"
            )
    if ordering is not None:
        from ..geostats.dataplane.hilbert import order_locations

        locs = order_locations(locs, ordering, seed=seed)
    oracle = app.model.entry_oracle(locs, app.theta)
    rng = np.random.default_rng(seed + 1)
    norms = sampled_tile_norms(n, nb, oracle, samples_per_tile=samples_per_tile, rng=rng)
    return build_precision_map(norms, app.accuracy, formats)
