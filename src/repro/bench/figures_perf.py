"""Experiment drivers for the performance/energy/scaling studies.

Covers Fig. 8 (STC vs TTC on one V100/A100/H100), Fig. 9 (H100
occupancy), Fig. 10 (power/energy, FP64 vs the mixed-precision
applications), Fig. 11 (single-node multi-GPU), Fig. 12 (Summit
weak/strong scaling and the mixed-precision effect on 384 GPUs), and the
design-choice ablations DESIGN.md lists (tile size, band-vs-norm
assignment, scheduler priority).

Every driver prices DAGs through the calibrated simulator (event-level
for single-node runs, the analytic panel model for cluster scale) and
returns plain rows for the pytest-benchmark wrappers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.config import ConversionStrategy
from ..core.precision_map import (
    KernelPrecisionMap,
    band_precision_map,
    two_precision_map,
    uniform_map,
)
from ..core.solver import simulate_cholesky
from ..perfmodel.analytic import analytic_cholesky
from ..perfmodel.energy import EnergyReport, energy_report
from ..perfmodel.gpus import GPU_BY_NAME, GUYOT_NODE, SUMMIT_NODE
from ..perfmodel.occupancy import mean_occupancy, occupancy_trace
from ..precision.formats import Precision
from ..runtime.platform import Platform
from .apps import APPLICATIONS, app_kernel_map

__all__ = [
    "PerfPoint",
    "fig8_configs",
    "fig8_rows",
    "fig9_occupancy_rows",
    "fig10_energy_rows",
    "fig11_rows",
    "fig12_weak_rows",
    "fig12_strong_rows",
    "fig12_mp_rows",
    "ablation_tile_size_rows",
    "ablation_band_vs_norm_rows",
    "ablation_scheduler_rows",
]

NB = 2048


@dataclass(frozen=True)
class PerfPoint:
    """One simulated data point of a performance figure."""

    label: str
    gpu: str
    n: int
    strategy: str
    tflops: float
    seconds: float
    h2d_gb: float
    conversions: int

    def row(self) -> list:
        return [
            self.label,
            self.gpu,
            self.n,
            self.strategy,
            self.tflops,
            self.seconds,
            self.h2d_gb,
            self.conversions,
        ]


def _extreme_map(nt: int, label: str) -> KernelPrecisionMap:
    return {
        "FP64": uniform_map(nt, Precision.FP64),
        "FP32": uniform_map(nt, Precision.FP32),
        "FP64/FP16_32": two_precision_map(nt, Precision.FP16_32),
        "FP64/FP16": two_precision_map(nt, Precision.FP16),
    }[label]


def fig8_configs() -> list[tuple[str, ConversionStrategy]]:
    """The Fig. 8 series: pure precisions plus STC/TTC extreme pairs."""
    return [
        ("FP64", ConversionStrategy.AUTO),
        ("FP32", ConversionStrategy.AUTO),
        ("FP64/FP16_32", ConversionStrategy.AUTO),  # all-STC in the extreme map
        ("FP64/FP16_32", ConversionStrategy.TTC),
        ("FP64/FP16", ConversionStrategy.AUTO),
        ("FP64/FP16", ConversionStrategy.TTC),
    ]


def default_sizes(gpu_name: str) -> tuple[int, ...]:
    """Matrix-size sweep per GPU (V100 capped by its 16 GB memory)."""
    if gpu_name == "V100":
        return (16384, 32768, 49152, 61440)
    return (16384, 32768, 61440, 73728)


def fig8_rows(
    gpu_name: str,
    sizes: tuple[int, ...] | None = None,
    *,
    nb: int = NB,
) -> list[PerfPoint]:
    """Fig. 8: STC vs TTC across precision configs on one GPU."""
    gpu = GPU_BY_NAME[gpu_name]
    platform = Platform.single_gpu(gpu)
    sizes = sizes or default_sizes(gpu_name)
    out: list[PerfPoint] = []
    for n in sizes:
        nt = -(-n // nb)
        for label, strategy in fig8_configs():
            kmap = _extreme_map(nt, label)
            rep = simulate_cholesky(
                n, nb, kmap, platform, strategy=strategy, record_events=False
            )
            out.append(
                PerfPoint(
                    label=label,
                    gpu=gpu_name,
                    n=n,
                    strategy="STC" if strategy == ConversionStrategy.AUTO else "TTC",
                    tflops=rep.stats.tflops,
                    seconds=rep.makespan,
                    h2d_gb=rep.stats.h2d_bytes / 1e9,
                    conversions=rep.stats.n_conversions,
                )
            )
    return out


def fig9_occupancy_rows(
    *,
    gpu_name: str = "H100",
    n: int = 73728,
    nb: int = NB,
    n_windows: int = 60,
) -> dict[str, list[tuple[float, float]]]:
    """Fig. 9: windowed GPU occupancy per configuration on one H100."""
    gpu = GPU_BY_NAME[gpu_name]
    platform = Platform.single_gpu(gpu)
    nt = -(-n // nb)
    out: dict[str, list[tuple[float, float]]] = {}
    for label in ("FP64", "FP32", "FP64/FP16_32", "FP64/FP16"):
        kmap = _extreme_map(nt, label)
        rep = simulate_cholesky(n, nb, kmap, platform, strategy=ConversionStrategy.AUTO)
        rank_events = rep.trace.events_of_rank(0)
        samples = occupancy_trace(rank_events, rep.makespan, n_windows=n_windows)
        out[label] = [(s.time, s.occupancy) for s in samples]
    return out


def fig10_energy_rows(
    gpu_name: str,
    *,
    n: int | None = None,
    nb: int = NB,
    samples_per_tile: int = 32,
) -> list[tuple[str, EnergyReport]]:
    """Fig. 10: energy of FP64 vs the MP approach for the three apps.

    Matrix sizes follow the paper: 61,440 on V100 (largest FP64 fit),
    122,880 on A100/H100 (Haxane host-memory limit).
    """
    gpu = GPU_BY_NAME[gpu_name]
    platform = Platform.single_gpu(gpu)
    if n is None:
        n = 61440 if gpu_name == "V100" else 122880
    nt = -(-n // nb)
    runs: list[tuple[str, KernelPrecisionMap]] = [("FP64", uniform_map(nt, Precision.FP64))]
    for key in ("2d-sqexp", "2d-matern", "3d-sqexp"):
        runs.append(
            (
                APPLICATIONS[key].label,
                app_kernel_map(APPLICATIONS[key], n, nb, samples_per_tile=samples_per_tile),
            )
        )
    out = []
    for label, kmap in runs:
        rep = simulate_cholesky(n, nb, kmap, platform, strategy=ConversionStrategy.AUTO)
        report = energy_report(
            gpu,
            rep.trace.events_of_rank(0),
            rep.makespan,
            total_flops=rep.stats.total_flops,
        )
        out.append((label, report))
    return out


def fig11_rows(
    node_name: str,
    sizes: tuple[int, ...] = (32768, 61440, 90112),
    *,
    nb: int = NB,
) -> list[PerfPoint]:
    """Fig. 11: single-node multi-GPU STC vs TTC (Summit 6×V100, Guyot 8×A100)."""
    node = {"summit": SUMMIT_NODE, "guyot": GUYOT_NODE}[node_name]
    platform = Platform(node=node, n_nodes=1)
    out: list[PerfPoint] = []
    for n in sizes:
        nt = -(-n // nb)
        for label, strategy in fig8_configs():
            kmap = _extreme_map(nt, label)
            rep = simulate_cholesky(
                n, nb, kmap, platform, strategy=strategy, record_events=False
            )
            out.append(
                PerfPoint(
                    label=label,
                    gpu=f"{node.gpu.name}x{node.gpus_per_node}",
                    n=n,
                    strategy="STC" if strategy == ConversionStrategy.AUTO else "TTC",
                    tflops=rep.stats.tflops,
                    seconds=rep.makespan,
                    h2d_gb=rep.stats.h2d_bytes / 1e9,
                    conversions=rep.stats.n_conversions,
                )
            )
    return out


def fig12_weak_rows(
    node_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    *,
    nb: int = NB,
    base_nt_per_gpu: float = 14.0,
) -> list[list]:
    """Fig. 12a: weak scaling on Summit (memory per GPU held constant).

    The tile count grows as sqrt(GPUs), keeping n²/GPU fixed.  Rows:
    ``[nodes, gpus, n, config, Tflop/s, Tflop/s per GPU]``.
    """
    rows = []
    for nodes in node_counts:
        gpus = nodes * SUMMIT_NODE.gpus_per_node
        nt = max(4, int(base_nt_per_gpu * math.sqrt(gpus)))
        n = nt * nb
        platform = Platform(node=SUMMIT_NODE, n_nodes=nodes)
        for label in ("FP64", "FP64/FP16"):
            kmap = _extreme_map(nt, label)
            rep = analytic_cholesky(n, nb, kmap, platform)
            rows.append([nodes, gpus, n, label, rep.tflops, rep.tflops / gpus])
    return rows


def fig12_strong_rows(
    node_counts: tuple[int, ...] = (4, 8, 16, 32, 64),
    *,
    n: int = 798720,
    nb: int = NB,
) -> list[list]:
    """Fig. 12b: strong scaling at the paper's fixed matrix size 798,720."""
    nt = -(-n // nb)
    rows = []
    for nodes in node_counts:
        platform = Platform(node=SUMMIT_NODE, n_nodes=nodes)
        for label in ("FP64", "FP64/FP16"):
            kmap = _extreme_map(nt, label)
            rep = analytic_cholesky(n, nb, kmap, platform)
            rows.append([nodes, nodes * 6, label, rep.seconds, rep.tflops])
    return rows


def fig12_mp_rows(
    sizes: tuple[int, ...] = (262144, 524288, 798720),
    *,
    nodes: int = 64,
    nb: int = NB,
    samples_per_tile: int = 24,
) -> list[list]:
    """Fig. 12c: MP effect on 64 Summit nodes (384 GPUs) vs FP64/FP32.

    Rows: ``[n, config, Tflop/s, speedup over FP64]``.
    """
    platform = Platform(node=SUMMIT_NODE, n_nodes=nodes)
    rows = []
    for n in sizes:
        nt = -(-n // nb)
        base = analytic_cholesky(n, nb, uniform_map(nt, Precision.FP64), platform)
        rows.append([n, "FP64", base.tflops, 1.0])
        fp32 = analytic_cholesky(n, nb, uniform_map(nt, Precision.FP32), platform)
        rows.append([n, "FP32", fp32.tflops, base.seconds / fp32.seconds])
        for key in ("2d-sqexp", "2d-matern", "3d-sqexp"):
            kmap = app_kernel_map(
                APPLICATIONS[key], n, nb, samples_per_tile=samples_per_tile
            )
            rep = analytic_cholesky(n, nb, kmap, platform)
            rows.append([n, APPLICATIONS[key].label, rep.tflops, base.seconds / rep.seconds])
    return rows


# -- ablations ---------------------------------------------------------------


def ablation_tile_size_rows(
    tile_sizes: tuple[int, ...] = (512, 1024, 2048, 4096),
    *,
    n: int = 49152,
    gpu_name: str = "V100",
) -> list[list]:
    """Tile-size sensitivity (the paper fixes nb = 2048 empirically)."""
    gpu = GPU_BY_NAME[gpu_name]
    platform = Platform.single_gpu(gpu)
    rows = []
    for nb in tile_sizes:
        nt = -(-n // nb)
        kmap = two_precision_map(nt, Precision.FP16)
        rep = simulate_cholesky(n, nb, kmap, platform, record_events=False)
        rows.append([nb, nt, rep.stats.tflops, rep.makespan])
    return rows


def ablation_band_vs_norm_rows(
    *,
    n: int = 409600,
    nb: int = NB,
    app_key: str = "2d-sqexp",
    samples_per_tile: int = 32,
) -> list[list]:
    """Norm-rule assignment vs the band-based related work ([12], [13]).

    The band map is matched to use the *same overall tile fractions* as
    the norm map, so the comparison isolates placement, not budget.
    Rows: ``[scheme, FP64 %, FP16-class %, Tflop/s]``.
    """
    app = APPLICATIONS[app_key]
    nt = -(-n // nb)
    kmap = app_kernel_map(app, n, nb, samples_per_tile=samples_per_tile)
    fr = kmap.tile_fractions()
    # translate fractions into band widths with the same budget
    n_low = fr.get(Precision.FP16, 0.0) + fr.get(Precision.FP16_32, 0.0)
    band_fp64 = 0
    band_fp32 = max(1, int(round((1.0 - n_low) * nt / 2)))
    bmap = band_precision_map(
        nt,
        [(band_fp64, Precision.FP64), (band_fp32, Precision.FP32), (nt, Precision.FP16)],
    )
    platform = Platform(node=SUMMIT_NODE, n_nodes=4)
    rows = []
    for scheme, m in (("norm-rule", kmap), ("band", bmap)):
        rep = analytic_cholesky(n, nb, m, platform)
        f = m.tile_fractions()
        rows.append(
            [
                scheme,
                100.0 * f.get(Precision.FP64, 0.0),
                100.0 * (f.get(Precision.FP16, 0.0) + f.get(Precision.FP16_32, 0.0)),
                rep.tflops,
            ]
        )
    return rows


def ablation_scheduler_rows(
    *,
    n: int = 32768,
    nb: int = NB,
    gpu_name: str = "V100",
) -> list[list]:
    """Cholesky panel priority vs FIFO dispatch in the simulator."""
    from ..core.dag_cholesky import build_cholesky_dag
    from ..runtime.simulator import simulate

    gpu = GPU_BY_NAME[gpu_name]
    platform = Platform(node=SUMMIT_NODE, n_nodes=1)
    nt = -(-n // nb)
    kmap = two_precision_map(nt, Precision.FP16)
    rows = []
    for scheme in ("panel-priority", "fifo"):
        dag = build_cholesky_dag(n, nb, kmap, grid=platform.process_grid())
        if scheme == "fifo":
            for task in dag.graph:
                task.priority = 0
        rep = simulate(dag.graph, platform, nb, record_events=False)
        rows.append([scheme, rep.stats.tflops, rep.makespan])
    return rows
