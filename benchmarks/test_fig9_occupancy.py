"""Fig. 9: GPU occupancy of one H100 during the factorization.

The paper observes 100 % compute occupancy for FP64/FP32 (all transfers
fully overlapped) and >80 % for the FP64/FP16_32 and FP64/FP16
configurations, whose kernels are fast enough that data motion starts to
peek through.
"""

import numpy as np

from repro.bench import ascii_series, fig9_occupancy_rows, write_csv
from repro.perfmodel.occupancy import OccupancySample


def _mean(series):
    return float(np.mean([occ for _t, occ in series]))


def _steady(series):
    """Windows in the bulk of the run (skip pipeline fill and drain)."""
    t_end = series[-1][0]
    return [(t, o) for t, o in series if 0.2 * t_end <= t <= 0.85 * t_end]


def test_fig9_occupancy(once):
    traces = once(fig9_occupancy_rows)
    print()
    rows = []
    for label, series in traces.items():
        mean = _mean(series)
        print(ascii_series(
            [t for t, _ in series], [o for _, o in series],
            label=f"{label}: mean occupancy {mean * 100:.1f}%",
        ))
        for t, o in series:
            rows.append([label, t, o])
    write_csv("fig9_occupancy", ["config", "time_s", "occupancy"], rows)

    # FP64/FP32: fully compute-bound — occupancy ≈ 100 % through the bulk
    # of the run (the initial host→device fill and the final drain are
    # excluded, as in any sampled trace they show as ramp windows)
    for label in ("FP64", "FP32"):
        steady = _mean(_steady(traces[label]))
        assert steady > 0.95, f"{label} steady-state occupancy {steady:.2f}"
    # FP16-class configs stay high but below the FP64 level on average
    for label in ("FP64/FP16_32", "FP64/FP16"):
        mean = _mean(_steady(traces[label]))
        assert mean > 0.55, f"{label} steady occupancy {mean:.2f}"
        assert mean <= _mean(_steady(traces["FP64"])) + 1e-9
    # ... and a majority of steady windows exceed the paper's 80 % mark
    for label in ("FP64/FP16_32", "FP64/FP16"):
        steady = _steady(traces[label])
        frac_above = np.mean([o > 0.8 for _t, o in steady])
        assert frac_above > 0.4, f"{label}: only {frac_above:.0%} of windows above 80%"
