"""Fig. 4: automated precision conversion — STC instances and the
communication-precision map.

Runs Algorithm 2 on the Fig. 2 example and checks the properties the
figure demonstrates: communication precision never exceeds storage
precision, never falls below what any successor operates at, diagonal
broadcasts drop to FP32 whenever no TRSM in the column needs FP64, and
STC appears exactly where communication < storage.
"""

from repro.bench import example_precision_maps, write_csv
from repro.core import ConversionStrategy, two_precision_map, build_comm_precision_map
from repro.precision import Precision


def test_fig4_conversion_map(benchmark):
    maps = benchmark(example_precision_maps)
    kmap, cmap, nt = maps.kernel_map, maps.comm_map, maps.nt
    print()
    print("Fig. 4b — communication precision (lowercase = STC):")
    print(cmap.render())

    n_stc = 0
    for i in range(nt):
        for j in range(i + 1):
            comm = cmap.comm(i, j)
            storage = cmap.storage(i, j)
            assert comm <= storage, f"tile ({i},{j}): comm {comm} above storage {storage}"
            if cmap.is_stc(i, j):
                n_stc += 1
            if i == j and i < nt - 1:
                needs64 = any(
                    kmap.kernel(m, i) == Precision.FP64 for m in range(i + 1, nt)
                )
                assert comm == (Precision.FP64 if needs64 else Precision.FP32)
            elif i > j:
                # no successor may need more than the payload provides
                # (successor requirement capped at the sender's storage)
                succ = [kmap.kernel(i, c) for c in range(j + 1, i)]
                succ += [kmap.kernel(r, i) for r in range(i + 1, nt)]
                succ.append(kmap.kernel(i, j))
                assert comm >= min(storage, max(succ))
    assert n_stc > 0, "the example must exhibit STC instances (Fig. 4a)"

    # extreme configuration: every communication qualifies for STC
    # ("In this case, all communications can employ the STC strategy.")
    ext = build_comm_precision_map(two_precision_map(8, Precision.FP16))
    for i in range(8):
        for j in range(i + 1):
            if i == j and i == 7:
                continue  # last POTRF issues no broadcast
            assert ext.is_stc(i, j), f"extreme map tile ({i},{j}) should be STC"
    assert ext.payload(3, 1, ConversionStrategy.TTC) == Precision.FP32
    assert ext.payload(3, 1, ConversionStrategy.AUTO) == Precision.FP16

    rows = [
        [i, j, cmap.comm(i, j).name, cmap.storage(i, j).name, cmap.is_stc(i, j)]
        for i in range(nt)
        for j in range(i + 1)
    ]
    write_csv("fig4_conversion_map", ["i", "j", "comm", "storage", "stc"], rows)
