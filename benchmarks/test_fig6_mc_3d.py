"""Fig. 6: Monte Carlo parameter estimation for the 3D synthetic datasets.

3D-sqexp at weak/strong correlation; the paper finds an accuracy of 1e-8
"yields estimations that are highly close to the exact solution".
Default scale: weak panel only, 4 replicas of 343 (7³) locations; set
``REPRO_FULL=1`` for both panels.
"""

from conftest import full_mode
from repro.bench import FIG6_CONFIGS, run_fig6_config, write_csv


def _panel_keys():
    return tuple(FIG6_CONFIGS) if full_mode() else ("sqexp3d-weak",)


def test_fig6_mc_3d(once):
    def run_all():
        return {
            key: run_fig6_config(key, n=343, replicas=4, tile_size=49, max_evals=120)
            for key in _panel_keys()
        }

    studies = once(run_all)
    print()
    rows = []
    for key, study in studies.items():
        print(study.render())
        print()
        for s in study.box_stats():
            rows.append([key, s.parameter, s.accuracy_label, s.median, s.q1, s.q3, s.mean, s.std])
    write_csv(
        "fig6_mc_3d",
        ["panel", "parameter", "accuracy", "median", "q1", "q3", "mean", "std"],
        rows,
    )

    for key, study in studies.items():
        exact_bias = study.median_bias("exact")
        tight_bias = study.median_bias("1e-08")
        for param in exact_bias:
            spread = max(
                (s.iqr for s in study.box_stats()
                 if s.accuracy_label == "exact" and s.parameter == param),
                default=0.0,
            )
            tol = max(3.0 * spread, 0.15, 3.0 * exact_bias[param])
            assert abs(tight_bias[param] - exact_bias[param]) <= tol, (
                f"{key}/{param}: 1e-8 bias {tight_bias[param]:.3f} vs exact {exact_bias[param]:.3f}"
            )
