"""Fig. 1: GEMM accuracy and performance per precision format.

Top row (accuracy): emulated mixed-precision GEMMs against the FP64
reference — error ordering FP64 < FP32 < {TF32, FP16_32, BF16_32} < FP16
must hold, with each family sitting near its unit roundoff.

Bottom row (performance): the modeled sustained GEMM rate approaches each
format's theoretical peak with tile size, with tensor-core formats
saturating later — the paper's "near-theoretical peak performance is
achieved for each precision" observation.
"""

import numpy as np

from repro.bench import (
    fig1_accuracy_rows,
    fig1_performance_rows,
    format_table,
    write_csv,
)
from repro.perfmodel import GPU_BY_NAME
from repro.precision import Precision

_FORMATS = ["FP64", "FP32", "TF32", "FP16_32", "BF16_32", "FP16"]


def test_fig1_gemm_accuracy(benchmark):
    rows = benchmark.pedantic(fig1_accuracy_rows, rounds=1, iterations=1)
    print()
    print(format_table(["n", *_FORMATS], rows, title="Fig. 1 (top): GEMM relative error vs FP64"))
    write_csv("fig1_gemm_accuracy", ["n", *_FORMATS], rows)
    for row in rows:
        n, e64, e32, etf32, e16_32, eb16_32, e16 = row
        assert e64 == 0.0
        assert e32 < etf32 < e16, f"error ordering violated at n={n}"
        assert e32 < e16_32 <= e16, f"FP16_32 must sit between FP32 and FP16 at n={n}"
        # error magnitudes near the respective unit roundoffs
        assert 1e-8 < e32 < 1e-5
        assert 1e-5 < e16_32 < 1e-2
        assert e16 < 0.2


def test_fig1_gemm_performance(benchmark):
    rows = benchmark(fig1_performance_rows)
    print()
    print(format_table(["gpu", "n", *_FORMATS], rows, title="Fig. 1 (bottom): GEMM Tflop/s"))
    write_csv("fig1_gemm_performance", ["gpu", "n", *_FORMATS], rows)
    by_gpu: dict[str, list] = {}
    for row in rows:
        by_gpu.setdefault(row[0], []).append(row)
    for gpu_name, gpu_rows in by_gpu.items():
        gpu = GPU_BY_NAME[gpu_name]
        largest = gpu_rows[-1]
        # near-peak at the largest size for the vector formats
        frac64 = largest[2] / (gpu.peak(Precision.FP64) / 1e12)
        assert 0.6 < frac64 <= 1.0, f"{gpu_name} FP64 sustained fraction {frac64:.2f}"
        # monotone non-decreasing rate with size, per format
        for col in range(2, 8):
            series = [r[col] for r in gpu_rows]
            assert all(a <= b * 1.0001 for a, b in zip(series, series[1:])), (
                f"{gpu_name} col {col} not monotone: {series}"
            )
        # tensor-core FP16 beats FP64 by >10x at the largest size on every GPU
        assert largest[7] > 4 * largest[2]
