"""Table I: theoretical peak performance of V100/A100/H100 per precision.

Regenerates the paper's Table I from the encoded GPU specifications and
checks the paper's stated values cell-by-cell (these are the calibration
anchors of the whole performance model, so they must match exactly).
"""

from repro.bench import format_table, table1_rows, write_csv

#: (row label, V100, A100, H100) — Tflop/s from the paper's Table I
_PAPER = {
    "FP64": (7.8, 19.5, 51.2),
    "FP32": (15.7, 19.5, 51.2),
    "TF32 Tensor": (None, 156.0, 378.0),
    "FP16 Tensor": (125.0, 312.0, 756.0),
    "BF16 Tensor": (None, 312.0, 756.0),
}


def test_table1_peaks(benchmark):
    rows = benchmark(table1_rows)
    print()
    print(format_table(["Precision", "V100", "A100", "H100"], rows, title="Table I (Tflop/s)"))
    write_csv("table1_peaks", ["precision", "V100", "A100", "H100"], rows)
    for row in rows:
        label, *values = row
        paper = _PAPER[label]
        for got, want in zip(values, paper):
            if want is None:
                continue  # '-' in the paper (no such unit on that GPU)
            assert got == want, f"{label}: modeled {got} vs paper {want}"
