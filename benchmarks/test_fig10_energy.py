"""Fig. 10: power consumption of FP64 vs the mixed-precision approach.

Per GPU generation, integrates the activity-based power model over the
simulated timeline for the FP64 baseline and the three applications.
Paper shapes asserted:

* the MP approach consumes (much) less total energy than FP64;
* Gflops/Watt improves with MP, most on V100 and least on A100/H100 for
  3D-sqexp (whose tiles concentrate in FP64/FP32, and FP64 already runs
  on tensor cores there);
* no sampled power exceeds ~1.1 × TDP, and H100 stays below TDP.
"""

import pytest

from conftest import full_mode
from repro.bench import fig10_energy_rows, format_table, write_csv
from repro.perfmodel import GPU_BY_NAME

_HEADERS = ["config", "seconds", "kJ", "Gflops/W", "avg W"]


@pytest.mark.parametrize("gpu_name", ["V100", "A100", "H100"])
def test_fig10_energy(once, gpu_name):
    n = None if full_mode() else (61440 if gpu_name == "V100" else 73728)
    reports = once(fig10_energy_rows, gpu_name, n=n)
    gpu = GPU_BY_NAME[gpu_name]
    rows = [
        [label, r.makespan, r.total_joules / 1e3, r.gflops_per_watt, r.average_watts]
        for label, r in reports
    ]
    print()
    print(format_table(_HEADERS, rows, title=f"Fig. 10 — {gpu_name} energy"))
    write_csv(f"fig10_energy_{gpu_name.lower()}", _HEADERS, rows)

    by_label = dict(reports)
    fp64 = by_label["FP64"]
    for label, rep in reports:
        if label == "FP64":
            continue
        if label == "3D-sqexp" and gpu_name != "V100":
            # paper, Section VII-E: on A100/H100 FP64 already runs on
            # tensor cores and 3D-sqexp's tiles concentrate in FP64/FP32,
            # so its energy savings all but vanish there — parity expected
            assert rep.total_joules < fp64.total_joules * 1.10, (
                f"{label} should be near FP64 energy on {gpu_name}"
            )
        else:
            assert rep.total_joules < fp64.total_joules, f"{label} must save energy vs FP64"
            assert rep.gflops_per_watt > fp64.gflops_per_watt, f"{label} must improve Gflops/W"
        # power samples bounded by the TDP clamp
        assert all(s.watts <= gpu.tdp_watts * 1.1 + 1e-9 for s in rep.samples)

    # 2D-sqexp (most low-precision tiles) saves the most energy of the apps
    assert by_label["2D-sqexp"].total_joules <= by_label["3D-sqexp"].total_joules
