"""Extension bench: classical variogram fitting vs mixed-precision MLE.

The moment-based weighted-least-squares variogram fit is the classical
cheap baseline for covariance-parameter estimation.  This bench compares
it against the adaptive mixed-precision MLE on the same replicas:
likelihood-based estimation should match or beat the variogram fit in
range accuracy while costing a factorization per evaluation — the
trade-off that motivates the paper's HPC effort in the first place.
"""

import numpy as np

from repro.bench import format_table, write_csv
from repro.geostats import SyntheticField, fit_mle, fit_variogram


def test_ext_variogram_vs_mle(once):
    def run():
        field = SyntheticField.matern_2d(n=256, range_=0.15, smoothness=0.5, seed=29)
        rows = []
        v_err, m_err = [], []
        for r in range(4):
            ds = field.sample(r)
            theta_v, _ = fit_variogram(ds)
            mle = fit_mle(ds, accuracy=1e-9, tile_size=32, max_evals=150,
                          xtol=1e-6, restarts=0)
            rows.append([r, *np.round(theta_v, 3), *np.round(mle.theta_hat, 3)])
            v_err.append(abs(theta_v[1] - 0.15))
            m_err.append(abs(mle.theta_hat[1] - 0.15))
        return rows, float(np.median(v_err)), float(np.median(m_err))

    rows, v_err, m_err = once(run)
    print()
    print(format_table(
        ["replica", "vario σ̂²", "vario β̂", "vario ν̂", "MLE σ̂²", "MLE β̂", "MLE ν̂"],
        rows, title="Extension: variogram WLS vs mixed-precision MLE (θ_true=(1, 0.15, 0.5))",
    ))
    print(f"median |β̂ − β| : variogram {v_err:.3f}, MLE {m_err:.3f}")
    write_csv("ext_variogram_vs_mle",
              ["replica", "v_var", "v_range", "v_smooth", "m_var", "m_range", "m_smooth"],
              rows)

    # both estimators land in a sane neighbourhood of the truth
    assert v_err < 0.25 and m_err < 0.25
    # MLE is competitive with (usually better than) the moment baseline
    assert m_err <= v_err * 2.0
