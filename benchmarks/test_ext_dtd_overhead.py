"""Extension bench: DSL unrolling cost — PTG vs Dynamic Task Discovery.

The paper (Section III-B) notes that task-insertion interfaces like DTD
"might encounter similar scalability issues as seen with other
distributed task-insertion runtimes": every rank replays the *whole*
sequential insertion, whereas the PTG's algebraic description is
unrolled per-rank.  At this reproduction's fidelity both front ends
materialise the full graph, so the measurable claims are (a) both scale
as Θ(NT³) in graph-build time and (b) they produce identical graphs at
every size — the correctness backstop for the scalability discussion.
"""

import time

from repro.bench import format_table, write_csv
from repro.core import build_cholesky_dag, build_cholesky_dag_dtd, two_precision_map
from repro.precision import Precision

NB = 256


def test_ext_dtd_vs_ptg_build(once):
    def run():
        rows = []
        for nt in (8, 16, 24, 32):
            kmap = two_precision_map(nt, Precision.FP16)
            t0 = time.perf_counter()
            ptg = build_cholesky_dag(nt * NB, NB, kmap)
            t_ptg = time.perf_counter() - t0
            t0 = time.perf_counter()
            dtd = build_cholesky_dag_dtd(nt * NB, NB, kmap)
            t_dtd = time.perf_counter() - t0
            rows.append([nt, len(ptg.graph), t_ptg, t_dtd,
                         len(ptg.graph) == len(dtd.graph)])
        return rows

    rows = once(run)
    print()
    print(format_table(["NT", "tasks", "PTG s", "DTD s", "same census"], rows,
                       title="Extension: DSL graph-build cost"))
    write_csv("ext_dtd_overhead", ["nt", "tasks", "ptg_s", "dtd_s", "same"], rows)

    # identical graphs at every size
    assert all(r[4] for r in rows)
    # both front ends scale superlinearly in NT (Θ(NT³) task count)
    tasks = [r[1] for r in rows]
    assert tasks[-1] > 8 * tasks[0]
    for col in (2, 3):
        times = [r[col] for r in rows]
        assert times[-1] > times[0]
    # build time stays tiny next to the paper's <0.1 s Algorithm 2 budget
    assert all(r[2] < 5.0 and r[3] < 5.0 for r in rows)
