"""Schedule-compare smoke: policy ordering on the 16×16-tile Cholesky.

Two guarantees the scheduling subsystem ships with (see
``docs/SCHEDULING.md``):

* ``critical-path`` lookahead strictly beats the ``fifo`` baseline on
  the 16×16-tile reference factorization — the lookahead must buy real
  makespan, not just reorder equal schedules;
* ``panel-first`` reproduces its pinned pre-refactor makespan *exactly*
  (same constant as ``tests/test_runtime_policies.py``), so the default
  schedule never drifts under refactoring.
"""

from __future__ import annotations

from repro.core import simulate_cholesky, two_precision_map
from repro.perfmodel import GPU_BY_NAME, NodeSpec
from repro.precision import Precision
from repro.runtime import POLICY_NAMES, Platform

N, NB = 2048, 128  # 16×16 tiles
PINNED_PANEL_FIRST_MAKESPAN = 0.0034016082320134913


def _simulate(policy: str, gpus_per_node: int = 1):
    node = NodeSpec("bench", GPU_BY_NAME["V100"], gpus_per_node, 256e9, 25e9, 1.5e-6)
    platform = Platform(node=node, n_nodes=1)
    kmap = two_precision_map(-(-N // NB), Precision.FP16_32)
    return simulate_cholesky(N, NB, kmap, platform, policy=policy)


def test_critical_path_beats_fifo_single_gpu():
    cp = _simulate("critical-path")
    fifo = _simulate("fifo")
    assert cp.makespan < fifo.makespan, (
        f"critical-path {cp.makespan} must beat fifo {fifo.makespan}"
    )


def test_critical_path_beats_fifo_multi_gpu():
    cp = _simulate("critical-path", gpus_per_node=4)
    fifo = _simulate("fifo", gpus_per_node=4)
    assert cp.makespan <= fifo.makespan


def test_panel_first_matches_pinned_makespan():
    assert _simulate("panel-first").makespan == PINNED_PANEL_FIRST_MAKESPAN


def test_every_policy_prices_the_reference(once=None):
    makespans = {pol: _simulate(pol).makespan for pol in POLICY_NAMES}
    assert all(m > 0 for m in makespans.values())
    # fifo is the degenerate baseline: nothing should be slower by >2×
    worst = max(makespans.values())
    assert worst <= 2.0 * makespans["fifo"]
