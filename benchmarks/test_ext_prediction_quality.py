"""Extension bench: prediction quality under mixed precision.

The paper's companion works (ExaGeoStat line, refs [12], [13], [41])
evaluate approximation schemes by the mean squared prediction error
(MSPE) of kriging at held-out locations.  This bench closes the loop for
the adaptive framework: fit θ̂ and predict at each accuracy level, then
check that the tight-accuracy MSPE matches the exact pipeline while the
loosest level degrades.
"""

import numpy as np

from repro.bench import format_table, write_csv
from repro.core.config import MPConfig
from repro.geostats import Dataset, SyntheticField, fit_mle, krige
from repro.precision import Precision


def test_ext_prediction_quality(once):
    def run():
        field = SyntheticField.matern_2d(n=324, range_=0.15, smoothness=0.5, seed=17)
        full = field.sample()
        rng = np.random.default_rng(3)
        idx = rng.permutation(full.n)
        train = Dataset(full.locations[idx[:260]], full.z[idx[:260]], full.model,
                        full.theta_true)
        test_locs = full.locations[idx[260:]]
        test_z = full.z[idx[260:]]

        rows = []
        for label in ("exact", 1e-9, 1e-2):
            if label == "exact":
                fit = fit_mle(train, exact=True, tile_size=33, max_evals=150, xtol=1e-6)
                cfg = MPConfig(accuracy=1e-15, formats=(Precision.FP64,), tile_size=33)
            else:
                fit = fit_mle(train, accuracy=label, tile_size=33, max_evals=150,
                              xtol=1e-6)
                cfg = MPConfig(accuracy=label, tile_size=33)
            pred = krige(train, test_locs, fit.theta_hat, config=cfg)
            mspe = float(np.mean((pred.mean - test_z) ** 2))
            cover = float(np.mean(
                np.abs(test_z - pred.mean) <= 1.96 * np.maximum(pred.stddev, 1e-12)
            ))
            rows.append([str(label), mspe, cover, *fit.theta_hat])
        return rows, float(np.var(test_z))

    rows, prior_var = once(run)
    print()
    print(format_table(
        ["accuracy", "MSPE", "95% coverage", "σ̂²", "β̂", "ν̂"], rows,
        title="Extension: kriging MSPE vs required accuracy",
    ))
    write_csv("ext_prediction_quality",
              ["accuracy", "mspe", "coverage", "var", "range", "smooth"], rows)

    by = {r[0]: r for r in rows}
    # kriging beats the prior variance at every accuracy
    for r in rows:
        assert r[1] < prior_var
    # tight accuracy reproduces the exact pipeline
    assert by["1e-09"][1] <= by["exact"][1] * 1.1
    # loose accuracy never *improves* on exact (within noise)
    assert by["0.01"][1] >= by["exact"][1] * 0.8
    # coverage stays meaningful
    assert by["1e-09"][2] > 0.7
