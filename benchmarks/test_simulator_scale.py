"""Simulator scale benchmarks: throughput floor + streaming memory wins.

The streaming unroll (``simulate_cholesky(..., stream=True)``) exists so
million-task DAGs can be priced without materialising the O(NT³) task
list.  This harness pins the acceptance criteria:

* scheduling throughput must clear a conservative tasks/sec floor in
  both modes (the CI-gated floors live in the warehouse via ``repro
  simbench``; this is the hard backstop);
* at NT=96 the streaming mode's peak RSS — measured in a *separate
  subprocess per mode*, since ``ru_maxrss`` is monotonic over a process
  lifetime — must come in below the materialising mode's;
* (``slow``) a ~1.2-million-task streamed run completes with a live-task
  window orders of magnitude below the DAG size.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro.core import (
    cholesky_task_count,
    simulate_cholesky,
    two_precision_map,
)
from repro.perfmodel import GPU_BY_NAME, NodeSpec
from repro.precision import Precision
from repro.runtime import Platform

#: conservative: local runs sustain ~20k tasks/s, shared CI is slower
TASKS_PER_SECOND_FLOOR = 2_000.0


def _platform(n_gpus: int = 2, n_nodes: int = 2) -> Platform:
    node = NodeSpec("bench", GPU_BY_NAME["V100"], n_gpus, 256e9, 25e9, 1.5e-6)
    return Platform(node=node, n_nodes=n_nodes)


def _throughput(nt: int, *, stream: bool) -> float:
    nb = 512
    kmap = two_precision_map(nt, Precision.FP16)
    t0 = time.perf_counter()
    rep = simulate_cholesky(
        nt * nb, nb, kmap, _platform(), record_events=False, stream=stream
    )
    wall = time.perf_counter() - t0
    assert rep.stats.n_tasks == cholesky_task_count(nt)
    return rep.stats.n_tasks / wall


class TestThroughputFloor:
    @pytest.mark.parametrize("stream", [False, True], ids=["materialize", "stream"])
    def test_tasks_per_second_floor(self, stream):
        best = max(_throughput(48, stream=stream) for _ in range(2))
        assert best >= TASKS_PER_SECOND_FLOOR, (
            f"{'stream' if stream else 'materialize'} mode scheduled only "
            f"{best:,.0f} tasks/s (floor {TASKS_PER_SECOND_FLOOR:,.0f})"
        )


def _simbench_subprocess(mode: str, tmp_path, nt: int = 96) -> dict:
    out = tmp_path / f"BENCH_simbench-{mode}.json"
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run(
        [sys.executable, "-m", "repro", "simbench",
         "--nt", str(nt), "--nb", "512", "--mode", mode,
         "--metrics-out", str(out)],
        check=True, env=env, timeout=600,
    )
    return json.loads(out.read_text(encoding="utf-8"))["stats"]


class TestStreamingMemory:
    def test_stream_rss_below_materialize(self, tmp_path):
        """One subprocess per mode; streaming must win on peak RSS and
        live-task count while producing the identical schedule."""
        mat = _simbench_subprocess("materialize", tmp_path)
        stm = _simbench_subprocess("stream", tmp_path)
        assert stm["makespan_seconds"] == mat["makespan_seconds"]
        assert stm["n_tasks"] == mat["n_tasks"] == cholesky_task_count(96)
        assert stm["peak_live_tasks"] < mat["peak_live_tasks"]
        assert stm["peak_rss_bytes"] < mat["peak_rss_bytes"], (
            f"streaming RSS {stm['peak_rss_bytes'] / 1e6:.0f} MB not below "
            f"materializing {mat['peak_rss_bytes'] / 1e6:.0f} MB"
        )


@pytest.mark.slow
class TestMillionTaskScale:
    def test_streamed_million_task_run(self):
        """NT=192 → ~1.2M tasks: must complete streamed with the live
        window a small fraction of the DAG."""
        nt, nb = 192, 512
        n_tasks = cholesky_task_count(nt)
        assert n_tasks > 1_000_000
        kmap = two_precision_map(nt, Precision.FP16)
        rep = simulate_cholesky(
            nt * nb, nb, kmap, _platform(), record_events=False, stream=True
        )
        assert rep.stats.n_tasks == n_tasks
        assert rep.peak_live_tasks < n_tasks // 10
