"""Fig. 8: performance of the precision conversion strategies on one GPU.

For each GPU generation, sweeps matrix size across FP64, FP32, and the
two extreme adaptive configurations (FP64/FP16_32, FP64/FP16) under STC
and TTC.  Paper shapes asserted:

* STC ≥ TTC at every point (lower data motion + one-time conversion);
* STC/TTC speedup in the 1.05–1.6× band at the largest size (paper: up
  to 1.3× V100, 1.41× A100, 1.27× H100);
* FP64 runs at high efficiency vs peak (84.2 % V100, >85 % A100, ≈62 %
  H100-PCIe, which is >82 % of its sustained GEMM rate);
* FP64/FP16 delivers a large speedup over FP64 (paper: >11× on
  V100/A100 at sizes where FP64 is memory-bound, 4.7× on H100).
"""

import pytest

from conftest import full_mode
from repro.bench import fig8_rows, format_table, write_csv
from repro.perfmodel import GPU_BY_NAME
from repro.precision import Precision

_HEADERS = ["config", "gpu", "n", "strategy", "Tflop/s", "seconds", "H2D GB", "conversions"]


@pytest.mark.parametrize("gpu_name", ["V100", "A100", "H100"])
def test_fig8_stc_ttc(once, gpu_name):
    sizes = None if full_mode() else ((16384, 32768, 61440) if gpu_name == "V100"
                                      else (16384, 32768, 73728))
    points = once(fig8_rows, gpu_name, sizes)
    rows = [p.row() for p in points]
    print()
    print(format_table(_HEADERS, rows, title=f"Fig. 8 — {gpu_name}, one GPU"))
    write_csv(f"fig8_{gpu_name.lower()}", _HEADERS, rows)

    gpu = GPU_BY_NAME[gpu_name]
    largest = max(p.n for p in points)
    at = {(p.label, p.strategy): p for p in points if p.n == largest}

    # STC never loses to TTC, anywhere
    for p_stc in points:
        if p_stc.strategy != "STC" or p_stc.label not in ("FP64/FP16_32", "FP64/FP16"):
            continue
        p_ttc = next(
            q for q in points
            if q.label == p_stc.label and q.n == p_stc.n and q.strategy == "TTC"
        )
        assert p_stc.tflops >= p_ttc.tflops * 0.999
        # STC never moves more payload bytes; the small slack covers extra
        # eviction traffic from the transient dual-precision copy at the
        # producer when the GPU is memory-tight
        assert p_stc.h2d_gb <= p_ttc.h2d_gb * 1.05

    # STC/TTC speedup band at the largest size
    for label in ("FP64/FP16_32", "FP64/FP16"):
        ratio = at[(label, "STC")].tflops / at[(label, "TTC")].tflops
        assert 1.02 <= ratio <= 1.8, f"{gpu_name} {label}: STC/TTC {ratio:.2f}"

    # FP64 efficiency vs theoretical peak
    fp64 = at[("FP64", "STC")]
    eff = fp64.tflops / (gpu.peak(Precision.FP64) / 1e12)
    if gpu_name == "H100":
        assert 0.35 <= eff <= 0.85, f"H100 FP64 efficiency {eff:.2f}"
    else:
        assert 0.6 <= eff <= 1.0, f"{gpu_name} FP64 efficiency {eff:.2f}"

    # big win of FP64/FP16 over FP64
    speedup = at[("FP64/FP16", "STC")].tflops / fp64.tflops
    assert speedup > 3.0, f"{gpu_name} FP64/FP16 vs FP64 speedup {speedup:.1f}"
    # FP32 sits between FP64 and the FP16-class configs
    assert at[("FP32", "STC")].tflops > fp64.tflops
    assert at[("FP64/FP16", "STC")].tflops > at[("FP64/FP16_32", "STC")].tflops * 0.95
