"""Ablation benches for the design choices DESIGN.md calls out.

* tile size — the paper fixes nb = 2048 empirically; the sweep shows the
  throughput plateau around that value (small tiles are launch/panel
  bound, huge tiles lose parallelism);
* norm-rule vs band-based precision assignment (related work [12], [13])
  at an equal low-precision budget;
* panel-priority scheduling vs FIFO dispatch.
"""

from repro.bench import (
    ablation_band_vs_norm_rows,
    ablation_scheduler_rows,
    ablation_tile_size_rows,
    format_table,
    write_csv,
)


def test_ablation_tile_size(once):
    rows = once(ablation_tile_size_rows)
    print()
    print(format_table(["nb", "NT", "Tflop/s", "seconds"], rows, title="Ablation: tile size"))
    write_csv("ablation_tile_size", ["nb", "nt", "tflops", "seconds"], rows)
    by_nb = {r[0]: r[2] for r in rows}
    # 2048 clearly beats the smallest tile and is within 25 % of the best
    assert by_nb[2048] > by_nb[512]
    assert by_nb[2048] >= max(by_nb.values()) * 0.75


def test_ablation_band_vs_norm(once):
    rows = once(ablation_band_vs_norm_rows)
    print()
    print(format_table(["scheme", "FP64 %", "FP16-class %", "Tflop/s"], rows,
                       title="Ablation: norm rule vs band assignment"))
    write_csv("ablation_band_vs_norm", ["scheme", "fp64_pct", "low_pct", "tflops"], rows)
    norm = next(r for r in rows if r[0] == "norm-rule")
    band = next(r for r in rows if r[0] == "band")
    # comparable budgets by construction
    assert abs(norm[2] - band[2]) < 35.0
    # both run; the norm rule should not be slower given the same budget
    assert norm[3] >= band[3] * 0.8


def test_ablation_scheduler(once):
    rows = once(ablation_scheduler_rows)
    print()
    print(format_table(["scheme", "Tflop/s", "seconds"], rows, title="Ablation: scheduler priority"))
    write_csv("ablation_scheduler", ["scheme", "tflops", "seconds"], rows)
    panel = next(r for r in rows if r[0] == "panel-priority")
    fifo = next(r for r in rows if r[0] == "fifo")
    # panel priority should never lose badly to FIFO
    assert panel[1] >= fifo[1] * 0.9
