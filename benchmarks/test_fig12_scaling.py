"""Fig. 12: performance evaluation on Summit (up to 64 nodes / 384 GPUs).

(a) weak scalability — memory per GPU held constant (n ∝ √GPUs): total
    Tflop/s grows near-linearly with GPU count;
(b) strong scalability — matrix 798,720 on 4…64 nodes: time keeps
    dropping, with the expected flattening at 384 GPUs ("running out of
    work");
(c) mixed-precision effect on 384 GPUs: the three applications beat FP32
    at large sizes, with up to ~3× speedup over FP64 (paper: 3.2×), and
    2D-sqexp fastest / 3D-sqexp slowest.

Uses the analytic panel model (the event simulator is exact but
O(#tasks); NT = 390 on 384 ranks is its documented hand-off point).
"""

from conftest import full_mode
from repro.bench import (
    fig12_mp_rows,
    fig12_strong_rows,
    fig12_weak_rows,
    format_table,
    write_csv,
)


def test_fig12a_weak_scaling(once):
    counts = (1, 4, 16, 64) if not full_mode() else (1, 2, 4, 8, 16, 32, 64)
    rows = once(fig12_weak_rows, counts)
    print()
    print(format_table(["nodes", "gpus", "n", "config", "Tflop/s", "Tflop/s/GPU"], rows,
                       title="Fig. 12a — weak scaling"))
    write_csv("fig12a_weak", ["nodes", "gpus", "n", "config", "tflops", "tflops_per_gpu"], rows)

    for label in ("FP64", "FP64/FP16"):
        series = [(r[1], r[4]) for r in rows if r[3] == label]
        # total throughput grows with GPU count...
        assert all(a[1] < b[1] for a, b in zip(series, series[1:])), series
        # ...and per-GPU throughput stays within 2.5x of the single-node level
        per_gpu = [r[5] for r in rows if r[3] == label]
        assert max(per_gpu) / min(per_gpu) < 3.0, f"{label} weak scaling too lossy: {per_gpu}"


def test_fig12b_strong_scaling(once):
    counts = (4, 16, 64) if not full_mode() else (4, 8, 16, 32, 64)
    rows = once(fig12_strong_rows, counts)
    print()
    print(format_table(["nodes", "gpus", "config", "seconds", "Tflop/s"], rows,
                       title="Fig. 12b — strong scaling, n=798,720"))
    write_csv("fig12b_strong", ["nodes", "gpus", "config", "seconds", "tflops"], rows)

    for label in ("FP64", "FP64/FP16"):
        secs = [r[3] for r in rows if r[2] == label]
        assert all(a > b for a, b in zip(secs, secs[1:])), f"{label} time must drop: {secs}"
        # sub-linear at the top end (paper: 384 GPUs fall short of linear)
        total_speedup = secs[0] / secs[-1]
        resource_ratio = counts[-1] / counts[0]
        assert total_speedup < resource_ratio, "strong scaling should be sub-linear"
        assert total_speedup > 0.2 * resource_ratio, "strong scaling collapsed"


def test_fig12c_mp_effect(once):
    sizes = (262144, 798720) if not full_mode() else (131072, 262144, 524288, 798720)
    rows = once(fig12_mp_rows, sizes)
    print()
    print(format_table(["n", "config", "Tflop/s", "speedup vs FP64"], rows,
                       title="Fig. 12c — MP effect on 64 nodes (384 GPUs)"))
    write_csv("fig12c_mp", ["n", "config", "tflops", "speedup"], rows)

    largest = max(r[0] for r in rows)
    at = {r[1]: r for r in rows if r[0] == largest}
    # applications beat FP32 at the largest size
    for app in ("2D-sqexp", "2D-Matern"):
        assert at[app][2] > at["FP32"][2] * 0.95, f"{app} should be at least FP32-fast"
    # speedup over FP64 lands in the paper's band (up to 3.2x)
    assert 1.5 <= at["2D-sqexp"][3] <= 4.5, f"2D-sqexp speedup {at['2D-sqexp'][3]:.2f}"
    # app ordering: 2D-sqexp fastest, 3D-sqexp slowest
    assert at["2D-sqexp"][2] >= at["2D-Matern"][2] >= at["3D-sqexp"][2] * 0.999
    # FP64 baseline efficiency comparable to the paper's 68 % of peak
    fp64_eff = at["FP64"][2] / (384 * 7.8)
    assert 0.5 <= fp64_eff <= 1.0, f"FP64 cluster efficiency {fp64_eff:.2f}"
