"""Fig. 3: task/communication pattern of the first Cholesky iterations.

The figure shows, for NT=4, which kernels run per iteration and the
POTRF→TRSM / TRSM→{GEMM, SYRK} broadcasts.  We unroll the PTG at NT=4 and
assert the exact task census and dependency pattern the figure depicts.
"""

from repro.bench import fig3_dag_summary, write_csv


def test_fig3_dag_pattern(benchmark):
    nt = 4
    summary = benchmark(fig3_dag_summary, nt)
    print()
    print("Fig. 3 — task census per iteration:", summary["per_iteration"])

    counts = summary["counts"]
    assert counts["POTRF"] == nt
    assert counts["TRSM"] == nt * (nt - 1) // 2
    assert counts["SYRK"] == nt * (nt - 1) // 2
    assert counts["GEMM"] == nt * (nt - 1) * (nt - 2) // 6
    assert summary["n_tasks"] == sum(counts.values())

    # iteration k=0: 1 POTRF, NT-1 TRSMs, NT-1 SYRKs, C(NT-1,2) GEMMs
    it0 = summary["per_iteration"][0]
    assert it0 == {
        "POTRF": 1,
        "TRSM": nt - 1,
        "SYRK": nt - 1,
        "GEMM": (nt - 1) * (nt - 2) // 2,
    }
    # the dependency chain POTRF→TRSM→{SYRK,GEMM}→POTRF makes the critical
    # path 3 tasks per iteration plus the final POTRF
    assert summary["critical_path_tasks"] == 3 * (nt - 1) + 1
    write_csv(
        "fig3_dag_pattern",
        ["iteration", "POTRF", "TRSM", "SYRK", "GEMM"],
        [
            [k, v.get("POTRF", 0), v.get("TRSM", 0), v.get("SYRK", 0), v.get("GEMM", 0)]
            for k, v in sorted(summary["per_iteration"].items())
        ],
    )
