"""Extension benches: TLR compression (Section VIII future work) and
mixed-precision iterative refinement (related work [33]).

* TLR — for a Matérn covariance, sweep the compression tolerance and
  report memory compression, mean rank, factorization residual, and
  flop savings; the mixed-precision + TLR combination must stay within
  its precision budget.
* Iterative refinement — an FP16-heavy factorization plus FP64
  refinement recovers working accuracy at a fraction of the simulated
  FP64 factorization time (the energy argument of Haidar et al.).
"""

import numpy as np

from repro.bench import format_table, write_csv
from repro.core import (
    build_precision_map,
    mp_cholesky,
    refine_solve,
    simulate_cholesky,
    two_precision_map,
    uniform_map,
)
from repro.geostats.covariance import Matern
from repro.geostats.generator import build_tiled_covariance
from repro.geostats.locations import generate_locations
from repro.perfmodel import V100
from repro.precision import Precision
from repro.runtime import Platform
from repro.tiles.norms import tile_norms
from repro.tiles.tilematrix import TiledSymmetricMatrix
from repro.tlr import TLRSymmetricMatrix, tlr_cholesky


def _matern_matrix(n=400, nb=50):
    locs = generate_locations(n, 2, seed=3)
    cov = build_tiled_covariance(locs, Matern(dim=2), (1.0, 0.1, 0.5), nb)
    dense = cov.to_dense() + 0.01 * np.eye(n)
    return TiledSymmetricMatrix.from_dense(dense, nb), dense


def test_ext_tlr_sweep(once):
    def run():
        mat, dense = _matern_matrix()
        rows = []
        for tol in (1e-10, 1e-8, 1e-6, 1e-4, 1e-2):
            tlr = TLRSymmetricMatrix.from_tiled(mat, tol)
            res = tlr_cholesky(tlr)
            l = np.tril(res.factor.to_dense())
            rel = np.linalg.norm(l @ l.T - dense) / np.linalg.norm(dense)
            rows.append([tol, tlr.compression_ratio(), tlr.mean_rank(), rel,
                         res.flop_savings])
        return rows

    rows = once(run)
    print()
    print(format_table(
        ["tol", "compression x", "mean rank", "residual", "flop savings x"],
        rows, title="Extension: TLR Cholesky sweep (Matérn, n=400, nb=50)",
    ))
    write_csv("ext_tlr_sweep", ["tol", "compression", "mean_rank", "residual",
                                "flop_savings"], rows)
    # looser tolerance → more compression, lower rank, bigger flop savings
    comp = [r[1] for r in rows]
    ranks = [r[2] for r in rows]
    resid = [r[3] for r in rows]
    savings = [r[4] for r in rows]
    assert all(a <= b * 1.001 for a, b in zip(comp, comp[1:]))
    assert all(a >= b for a, b in zip(ranks, ranks[1:]))
    assert all(a <= b * 10 for a, b in zip(resid, resid[1:]))  # monotone-ish
    assert savings[-1] > savings[0]
    # residual tracks the tolerance within two orders of magnitude
    for (tol, _c, _r, rel, _s) in rows:
        assert rel < tol * 100


def test_ext_mixed_precision_tlr(once):
    def run():
        mat, dense = _matern_matrix()
        kmap = build_precision_map(tile_norms(mat), 1e-4)
        tlr = TLRSymmetricMatrix.from_tiled(mat, 1e-8)
        plain = tlr_cholesky(tlr)
        mixed = tlr_cholesky(tlr, kernel_map=kmap)
        out = []
        for name, res in (("TLR", plain), ("MP+TLR", mixed)):
            l = np.tril(res.factor.to_dense())
            out.append([name, np.linalg.norm(l @ l.T - dense) / np.linalg.norm(dense),
                        res.max_rank])
        return out

    rows = once(run)
    print()
    print(format_table(["variant", "residual", "max rank"], rows,
                       title="Extension: mixed-precision + TLR"))
    tlr_only = rows[0][1]
    mp_tlr = rows[1][1]
    assert tlr_only < mp_tlr < 1e-2  # precision budget dominates, still accurate


def test_ext_iterative_refinement(once):
    def run():
        mat, dense = _matern_matrix()
        rng = np.random.default_rng(0)
        b = rng.standard_normal(mat.n)
        nt = mat.nt
        rows = []
        # FP64 direct
        res64 = mp_cholesky(mat, uniform_map(nt, Precision.FP64))
        ref = refine_solve(mat, res64, b)
        rows.append(["FP64 direct", ref.iterations, ref.final_residual])
        # FP16-heavy factor + refinement
        res16 = mp_cholesky(mat, two_precision_map(nt, Precision.FP16))
        ref16 = refine_solve(mat, res16, b, tol=1e-12, max_iterations=60)
        rows.append(["FP64/FP16 + IR", ref16.iterations, ref16.final_residual])
        # simulated factorization times at paper scale for the energy claim
        platform = Platform.single_gpu(V100)
        t64 = simulate_cholesky(49152, 2048, uniform_map(24, Precision.FP64),
                                platform, record_events=False).makespan
        t16 = simulate_cholesky(49152, 2048, two_precision_map(24, Precision.FP16),
                                platform, record_events=False).makespan
        return rows, t64, t16, ref16.converged

    (rows, t64, t16, converged) = once(run)
    print()
    print(format_table(["solver", "iterations", "final residual"], rows,
                       title="Extension: iterative refinement"))
    print(f"simulated factor time @49k on V100: FP64 {t64:.2f}s vs FP64/FP16 {t16:.2f}s")
    assert converged
    assert rows[1][2] < 1e-11  # FP64 accuracy recovered from the cheap factor
    assert t16 < t64 / 2  # the factorization that feeds IR is much cheaper
