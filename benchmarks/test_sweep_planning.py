"""Planning and sweep throughput benchmarks.

The precision-planning hot path (Algorithm 2's communication map) was
rewritten from a Python triple loop into a NumPy suffix-max scan.  This
harness pins the acceptance criterion — the vectorized builder must be
at least 10× faster than the reference loop at NT = 256 — and records
planning / simulation throughput for the perf trajectory
(``results/sweep_planning.csv`` plus the ``BENCH_*.json`` files the
sweep engine itself emits).
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import write_csv
from repro.core.conversion import _build_comm_precision_map_loop, build_comm_precision_map
from repro.core.precision_map import KernelPrecisionMap, band_precision_map
from repro.precision import ADAPTIVE_FORMATS, Precision
from repro.sweep import RunSpec, execute_spec

from conftest import full_mode

NT = 256
SPEEDUP_FLOOR = 10.0


def _random_kmap(nt: int, seed: int = 0) -> KernelPrecisionMap:
    rng = np.random.default_rng(seed)
    codes = rng.choice([int(p) for p in ADAPTIVE_FORMATS], size=(nt, nt)).astype(np.int8)
    codes = np.maximum(codes, codes.T)
    np.fill_diagonal(codes, int(Precision.FP64))
    return KernelPrecisionMap(nt=nt, codes=codes)


def _best_of(fn, *args, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def test_comm_map_vectorized_speedup(benchmark):
    """Acceptance: vectorized comm-map builder ≥ 10× the loop at NT=256."""
    kmap = _random_kmap(NT)
    build_comm_precision_map(kmap)  # warm the LUT / allocator

    t_fast = _best_of(build_comm_precision_map, kmap)
    t_loop = _best_of(_build_comm_precision_map_loop, kmap, repeats=1)
    speedup = t_loop / t_fast
    benchmark(build_comm_precision_map, kmap)

    rows = [
        ["comm_map_loop", NT, t_loop, NT * (NT + 1) / 2 / t_loop],
        ["comm_map_vectorized", NT, t_fast, NT * (NT + 1) / 2 / t_fast],
    ]
    write_csv("sweep_planning", ["stage", "nt", "seconds", "tiles_per_s"], rows)
    print(f"\nNT={NT}: loop {t_loop:.4f}s  vectorized {t_fast:.6f}s  speedup {speedup:.1f}x")
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized comm map only {speedup:.1f}x faster than loop (need ≥ {SPEEDUP_FLOOR}x)"
    )


def test_band_map_planning_throughput(benchmark):
    """Planning throughput of the banded kernel-map builder at NT=256."""
    bands = [(0, Precision.FP64), (8, Precision.FP32), (32, Precision.FP16_32),
             (NT, Precision.FP16)]
    kmap = benchmark(band_precision_map, NT, bands)
    assert kmap.nt == NT


def test_sweep_run_throughput(once):
    """End-to-end single-spec throughput: planning + simulation seconds as
    reported by the sweep worker (feeds the BENCH_*.json trajectory)."""
    n = 16384 if full_mode() else 4096
    spec = RunSpec(n=n, nb=512, config="FP64/FP16_32", strategy="auto")
    result = once(execute_spec, spec.to_dict())
    assert result["plan_seconds"] > 0.0
    assert result["sim_seconds"] > 0.0
    write_csv(
        "sweep_run_throughput",
        ["n", "nb", "nt", "plan_seconds", "sim_seconds", "tflops"],
        [[n, 512, result["nt"], result["plan_seconds"], result["sim_seconds"],
          result.get("tflops", 0.0)]],
    )
