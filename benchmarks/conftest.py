"""Shared helpers for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Environment knobs:

* ``REPRO_FULL=1`` — run every Monte Carlo panel / the full size sweeps
  (the defaults are scaled to finish on one laptop CPU in minutes).
* ``REPRO_RESULTS_DIR`` — where CSV outputs land (default ``./results``).
"""

from __future__ import annotations

import os

import pytest


def full_mode() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")


@pytest.fixture
def once(benchmark):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
