"""Fig. 7: kernel precision executed on each tile, per application.

Runs at the *paper's* matrix size (409,600 with 2048 tiles — NT = 200)
because the sampled-norm pipeline never materialises the matrix.  Shape
assertions from the paper's text:

* 2D-sqexp is the most cost-effective — ≈46.7 % of tiles in FP16 and
  ≈29.5 % in FP16_32;
* 3D-sqexp is the most resource-intensive — over 60 % of tiles in FP64
  or FP32;
* 2D-Matérn sits in between.
"""

from repro.bench import fig7_fraction_rows, format_table, write_csv

_HEADERS = ["application", "FP64 %", "FP32 %", "FP16_32 %", "FP16 %"]


def test_fig7_kernel_precision_stats(once):
    rows = once(fig7_fraction_rows)
    print()
    print(format_table(_HEADERS, rows, title="Fig. 7 — tile fractions at n=409,600"))
    write_csv("fig7_kernel_precision", _HEADERS, rows)

    by_app = {row[0]: row[1:] for row in rows}
    sq2 = by_app["2D-sqexp"]
    mat = by_app["2D-Matern"]
    sq3 = by_app["3D-sqexp"]

    # 2D-sqexp: cheapest — FP16 ≈ 46.7 %, FP16_32 ≈ 29.5 % (paper)
    assert 30.0 <= sq2[3] <= 65.0, f"2D-sqexp FP16 share {sq2[3]:.1f}%"
    assert 10.0 <= sq2[2] <= 45.0, f"2D-sqexp FP16_32 share {sq2[2]:.1f}%"
    # 3D-sqexp: most expensive — >60 % of tiles in FP64 or FP32
    assert sq3[0] + sq3[1] > 60.0, f"3D-sqexp high-precision share {sq3[0] + sq3[1]:.1f}%"
    # ordering: low-precision share decreases sqexp2D → Matérn → sqexp3D
    low2 = sq2[2] + sq2[3]
    lowm = mat[2] + mat[3]
    low3 = sq3[2] + sq3[3]
    assert low2 > lowm > low3, f"low-precision ordering violated: {low2}, {lowm}, {low3}"
    # every row sums to ~100 %
    for row in rows:
        assert abs(sum(row[1:]) - 100.0) < 0.5
