"""Fig. 2: precision map of kernel execution and data storage.

Rebuilds the small demonstration example: a Matérn covariance whose
tile-centric rule yields FP64 on the diagonal with precision decaying
away from it (Fig. 2a), and the storage map collapsing every FP16-class
tile to FP32 (Fig. 2b).
"""

from repro.bench import example_precision_maps, write_csv
from repro.precision import Precision, get_storage_precision


def test_fig2_precision_maps(benchmark):
    maps = benchmark(example_precision_maps)
    kmap = maps.kernel_map
    print()
    print("Fig. 2a — kernel precision map:")
    print(kmap.render())

    nt = maps.nt
    # diagonal pinned to FP64
    for k in range(nt):
        assert kmap.kernel(k, k) == Precision.FP64
    # precision must not increase moving away from the diagonal within a
    # column (monotone norm decay under Morton ordering) — allow equality
    violations = 0
    for j in range(nt):
        for i in range(j + 1, nt - 1):
            if kmap.kernel(i + 1, j) > kmap.kernel(i, j):
                violations += 1
    assert violations <= nt  # jitter may flip isolated pairs, not the trend

    # at least three distinct precisions appear (the figure shows four)
    fractions = kmap.tile_fractions()
    assert len(fractions) >= 3, f"degenerate example map: {fractions}"

    # Fig. 2b: storage is FP64 for FP64 tiles, FP32 for everything else
    for i in range(nt):
        for j in range(i + 1):
            expected = (
                Precision.FP64 if kmap.kernel(i, j) == Precision.FP64 else Precision.FP32
            )
            assert kmap.storage(i, j) == expected
            assert get_storage_precision(kmap.kernel(i, j)) == expected

    rows = [[i, j, kmap.kernel(i, j).name, kmap.storage(i, j).name]
            for i in range(nt) for j in range(i + 1)]
    write_csv("fig2_precision_map", ["i", "j", "kernel", "storage"], rows)
