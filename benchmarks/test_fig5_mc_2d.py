"""Fig. 5: Monte Carlo parameter estimation for the 2D datasets.

Boxplots of θ̂ across replicas at several required accuracies vs the
exact FP64 computation.  The paper's shape claims, asserted here:

* at the tightest accuracy the estimates match the exact computation
  (medians within statistical noise);
* 2D-sqexp tolerates 1e-4 ("a satisfactory level of application
  accuracy");
* loosening accuracy never *shrinks* the deviation from the exact-run
  median (the boxes drift/widen as precision drops).

Default scale: 2 representative panels, 5 replicas of 256 locations
(the paper: 6 panels, 100 replicas of 40,000).  Set ``REPRO_FULL=1`` for
all six panels.
"""

import numpy as np

from conftest import full_mode
from repro.bench import FIG5_CONFIGS, format_table, run_fig5_config, write_csv

# Default panels use the paper's *strong*-correlation presets: at the
# reproduction's n=256 the weak preset (β = 0.03 ≈ half the grid spacing)
# is statistically unidentifiable — every estimator pegs the range at the
# lower bound regardless of precision, which exercises nothing.  The weak
# panels remain available under REPRO_FULL=1 with that caveat.
_DEFAULT_PANELS = ("sqexp-strong", "matern-strong-rough")


def _panel_keys():
    return tuple(FIG5_CONFIGS) if full_mode() else _DEFAULT_PANELS


def test_fig5_mc_2d(once):
    def run_all():
        return {key: run_fig5_config(key, n=256, replicas=5, tile_size=32, max_evals=120)
                for key in _panel_keys()}

    studies = once(run_all)
    print()
    rows = []
    for key, study in studies.items():
        print(study.render())
        print()
        for s in study.box_stats():
            rows.append([key, s.parameter, s.accuracy_label, s.median, s.q1, s.q3, s.mean, s.std])
    write_csv(
        "fig5_mc_2d",
        ["panel", "parameter", "accuracy", "median", "q1", "q3", "mean", "std"],
        rows,
    )

    for key, study in studies.items():
        labels = study.accuracy_labels()
        assert "exact" in labels
        exact_bias = study.median_bias("exact")
        tight = [l for l in labels if l != "exact"][-1]  # tightest non-exact level
        tight_bias = study.median_bias(tight)
        for param, b in tight_bias.items():
            # tightest accuracy reproduces the exact estimator up to MC noise
            spread = max(
                (s.iqr for s in study.box_stats() if s.accuracy_label == "exact"
                 and s.parameter == param),
                default=0.0,
            )
            tol = max(3.0 * spread, 0.15, 3.0 * exact_bias[param])
            assert abs(b - exact_bias[param]) <= tol, (
                f"{key}/{param}: bias at {tight} = {b:.3f} vs exact {exact_bias[param]:.3f}"
            )
