"""Fig. 11: precision conversion strategies on one multi-GPU node.

Summit node (6 × V100) and Guyot (8 × A100).  Paper shapes: near-linear
scaling from one GPU to the full node, >80 % FP64/FP32 efficiency vs the
node's aggregate peak, STC over TTC up to 1.66×, and ~10× from FP64 to
FP64/FP16.
"""

import pytest

from conftest import full_mode
from repro.bench import fig11_rows, fig8_rows, format_table, write_csv
from repro.perfmodel import GUYOT_NODE, SUMMIT_NODE
from repro.precision import Precision

_HEADERS = ["config", "gpus", "n", "strategy", "Tflop/s", "seconds", "H2D GB", "conversions"]


@pytest.mark.parametrize("node_name", ["summit", "guyot"])
def test_fig11_single_node(once, node_name):
    sizes = (61440, 90112) if not full_mode() else (32768, 61440, 90112, 122880)
    points = once(fig11_rows, node_name, sizes)
    rows = [p.row() for p in points]
    print()
    print(format_table(_HEADERS, rows, title=f"Fig. 11 — {node_name} node"))
    write_csv(f"fig11_{node_name}", _HEADERS, rows)

    node = {"summit": SUMMIT_NODE, "guyot": GUYOT_NODE}[node_name]
    peak64_node = node.gpus_per_node * node.gpu.peak(Precision.FP64) / 1e12
    largest = max(p.n for p in points)
    at = {(p.label, p.strategy): p for p in points if p.n == largest}

    # FP64 efficiency vs the node's aggregate peak
    eff = at[("FP64", "STC")].tflops / peak64_node
    assert eff > 0.55, f"{node_name} node FP64 efficiency {eff:.2f}"

    # STC ≥ TTC throughout; ratio within the paper's observed band
    for label in ("FP64/FP16_32", "FP64/FP16"):
        ratio = at[(label, "STC")].tflops / at[(label, "TTC")].tflops
        assert 1.0 <= ratio <= 1.8, f"{node_name} {label} STC/TTC {ratio:.2f}"

    # multi-GPU speedup over a single GPU of the same model (near-linear)
    single = fig8_rows(node.gpu.name, (largest,))
    s64 = next(p for p in single if p.label == "FP64" and p.strategy == "STC")
    scaling = at[("FP64", "STC")].tflops / s64.tflops
    assert scaling > 0.55 * node.gpus_per_node, (
        f"{node_name}: only {scaling:.1f}x over 1 GPU with {node.gpus_per_node} GPUs"
    )

    # FP64 → FP64/FP16 gain on the full node
    gain = at[("FP64/FP16", "STC")].tflops / at[("FP64", "STC")].tflops
    assert gain > 2.5, f"{node_name} FP64→FP64/FP16 gain {gain:.1f}"
