"""Table II: time to move a tile to one Summit V100 and run a GEMM on it.

The transfer/kernel time model regenerates the paper's measurements; the
assertions pin each cell to within 10 % of the published value — these
numbers are the primary calibration anchors of the simulator.
"""

import pytest

from repro.bench import format_table, table2_rows, write_csv

_SIZES = (2048, 4096, 6144, 8192, 10240)

#: the paper's Table II, milliseconds
_PAPER = {
    "Move one tile/matrix in FP64": (0.67, 2.68, 6.04, 10.74, 16.78),
    "Move one tile/matrix in FP32": (0.34, 1.34, 3.02, 5.37, 8.39),
    "Move one tile/matrix in FP16": (0.17, 0.67, 1.51, 2.68, 4.19),
    "Execute GEMM in FP64": (2.2, 17.62, 59.47, 140.96, 275.32),
    "Execute GEMM in FP32": (1.09, 8.75, 29.54, 70.03, 136.78),
    "Execute GEMM in FP16": (0.14, 1.1, 3.71, 8.8, 17.18),
}


def test_table2_v100_times(benchmark):
    rows = benchmark(table2_rows, _SIZES)
    print()
    print(format_table(["operation", *map(str, _SIZES)], rows, title="Table II (ms, V100)"))
    write_csv("table2_v100_times", ["operation", *map(str, _SIZES)], rows)
    for row in rows:
        label, *values = row
        for got, want, n in zip(values, _PAPER[label], _SIZES):
            assert got == pytest.approx(want, rel=0.15), (
                f"{label} @ {n}: modeled {got:.3f} ms vs paper {want} ms"
            )
