"""Unit and property tests for the emulated mixed-precision GEMM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precision.errors import relative_frobenius_error
from repro.precision.formats import FORMAT_INFO, Precision
from repro.precision.gemm import gemm_relative_error, mixed_gemm, mixed_syrk


class TestMixedGemmBasics:
    def test_fp64_is_exact(self, rng):
        a, b = rng.standard_normal((32, 24)), rng.standard_normal((24, 40))
        assert np.array_equal(mixed_gemm(a, b, precision=Precision.FP64), a @ b)

    def test_shapes_checked(self, rng):
        a, b = rng.standard_normal((4, 4)), rng.standard_normal((5, 4))
        with pytest.raises(ValueError, match="incompatible"):
            mixed_gemm(a, b)

    def test_beta_requires_c(self, rng):
        a = rng.standard_normal((4, 4))
        with pytest.raises(ValueError, match="beta"):
            mixed_gemm(a, a, beta=1.0)

    def test_c_shape_checked(self, rng):
        a = rng.standard_normal((4, 4))
        with pytest.raises(ValueError, match="shape"):
            mixed_gemm(a, a, rng.standard_normal((3, 3)), beta=1.0)

    def test_alpha_beta_fp64(self, rng):
        a, b, c = (rng.standard_normal((8, 8)) for _ in range(3))
        out = mixed_gemm(a, b, c, precision=Precision.FP64, alpha=-1.0, beta=1.0)
        assert np.allclose(out, c - a @ b)

    @pytest.mark.parametrize("prec", list(Precision))
    def test_returns_float64(self, prec, rng):
        a = rng.standard_normal((16, 16))
        assert mixed_gemm(a, a, precision=prec).dtype == np.float64


class TestErrorScaling:
    @pytest.mark.parametrize(
        "prec,lo,hi",
        [
            (Precision.FP32, 1e-8, 1e-5),
            (Precision.TF32, 1e-5, 1e-2),
            (Precision.FP16_32, 1e-5, 1e-2),
            (Precision.BF16_32, 1e-4, 1e-1),
            (Precision.FP16, 1e-4, 1e-1),
        ],
    )
    def test_error_near_unit_roundoff(self, prec, lo, hi):
        err = gemm_relative_error(256, prec)
        assert lo < err < hi, f"{prec}: {err}"

    def test_error_ordering_matches_fig1(self):
        """Fig. 1 top row: FP64 < FP32 < TF32/FP16_32 < FP16."""
        errs = {p: gemm_relative_error(256, p) for p in Precision}
        assert errs[Precision.FP64] == 0.0
        assert errs[Precision.FP32] < errs[Precision.TF32]
        assert errs[Precision.FP32] < errs[Precision.FP16_32]
        assert errs[Precision.FP16_32] <= errs[Precision.FP16]
        assert errs[Precision.TF32] < errs[Precision.BF16_32]

    def test_fp16_error_grows_with_k(self):
        """Half-precision accumulation error grows with the inner dim."""
        e_small = gemm_relative_error(64, Precision.FP16)
        e_large = gemm_relative_error(512, Precision.FP16)
        assert e_large > e_small

    def test_fp32_accumulated_formats_insensitive_to_chunk(self, rng):
        a = rng.standard_normal((64, 64))
        out1 = mixed_gemm(a, a, precision=Precision.FP16_32, fp16_chunk=8)
        out2 = mixed_gemm(a, a, precision=Precision.FP16_32, fp16_chunk=64)
        assert np.array_equal(out1, out2)  # chunking only affects pure FP16


class TestSyrk:
    def test_matches_gemm(self, rng):
        a = rng.standard_normal((16, 16))
        c = rng.standard_normal((16, 16))
        out = mixed_syrk(a, c, precision=Precision.FP64)
        assert np.allclose(out, c - a @ a.T)

    def test_fp64_syrk_symmetric_on_symmetric_c(self, rng):
        a = rng.standard_normal((12, 12))
        c0 = rng.standard_normal((12, 12))
        c = c0 + c0.T
        out = mixed_syrk(a, c, precision=Precision.FP64)
        assert np.allclose(out, out.T)


@given(
    st.integers(4, 24),
    st.sampled_from([Precision.FP32, Precision.FP16_32, Precision.FP16, Precision.TF32]),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_error_within_theory(n, prec, seed):
    """Emulated GEMM error stays within the classical k·u bound."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, size=(n, n))
    b = rng.uniform(-1, 1, size=(n, n))
    exact = a @ b
    approx = mixed_gemm(a, b, precision=prec)
    info = FORMAT_INFO[prec]
    # inputs rounded at input_bits, accumulation at accum_bits
    u_in = 2.0 ** (1 - info.input_bits)
    u_acc = 2.0 ** (1 - info.accum_bits)
    bound = (2 * u_in + (n + 2) * u_acc) * 4.0  # generous constant
    err = relative_frobenius_error(approx, exact)
    # normalise by the product's condition: |a||b| vs |ab|
    amp = float(np.linalg.norm(np.abs(a) @ np.abs(b)) / max(np.linalg.norm(exact), 1e-30))
    assert err <= bound * max(amp, 1.0)
