"""Scheduling policies: registry, tie-breaking, pinning, determinism.

The heap comparator is the explicit triple ``(*policy.key, tid)``; these
tests pin its exact semantics:

* ``panel-first`` is bit-identical to the pre-policy scheduler (and to
  ``policy=None``) — pinned by an exact makespan constant *and* a trace
  hash on the 16×16-tile reference configuration;
* ties are broken ``(ready, priority, tid)`` — pinned on hand-built
  graphs where the pop order is fully predictable;
* the same seed + policy reproduces the trace byte-for-byte, in-process
  and across fork/forkserver/spawn child processes.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp

import pytest

from repro.core import simulate_cholesky, two_precision_map
from repro.perfmodel import GPU_BY_NAME, NodeSpec
from repro.precision import Precision
from repro.runtime import (
    POLICY_NAMES,
    CriticalPathPolicy,
    FifoPolicy,
    PanelFirstPolicy,
    Platform,
    SchedulePolicy,
    TaskGraph,
    TaskInput,
    TileRef,
    get_policy,
    policy_topological_order,
    simulate,
    to_chrome_trace,
)
from repro.runtime.policies import resolve_policy

# the 16×16-tile reference configuration (n=2048, nb=128, FP64/FP16_32,
# 1×1×V100) and its pre-refactor schedule, pinned exactly: any drift in
# the panel-first comparator, the engine model, or the perfmodel shows
# up as a failure here before it can silently shift the paper's figures
REF = dict(n=2048, nb=128)
PINNED_MAKESPAN = 0.0034016082320134913
PINNED_TRACE_SHA256 = "a0820ac78b1ec412369a0ee21bed7db4bd2390c6c5f127a63ec4939a050ac9b2"


def _ref_platform() -> Platform:
    node = NodeSpec("t", GPU_BY_NAME["V100"], 1, 256e9, 25e9, 1.5e-6)
    return Platform(node=node, n_nodes=1)


def _ref_report(policy=None):
    kmap = two_precision_map(16, Precision.FP16_32)
    return simulate_cholesky(REF["n"], REF["nb"], kmap, _ref_platform(), policy=policy)


def trace_hash(trace) -> str:
    """Order-independent content hash of a trace's event stream."""
    tuples = sorted(
        (e.rank, e.engine, e.kind, e.t_start, e.t_end,
         e.precision, e.bytes, e.flops, e.site)
        for e in trace.events
    )
    return hashlib.sha256(repr(tuples).encode()).hexdigest()


def _child_trace_hash(policy: str, queue) -> None:
    """Target for start-method determinism: hash the reference trace."""
    rep = _ref_report(policy)
    queue.put((rep.makespan, trace_hash(rep.trace)))


class TestRegistry:
    def test_shipped_policies(self):
        assert POLICY_NAMES == (
            "panel-first", "fifo", "critical-path", "comm-aware-eft", "ooc-static"
        )
        for name in POLICY_NAMES:
            pol = get_policy(name)
            assert isinstance(pol, SchedulePolicy) and pol.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            get_policy("hope-for-the-best")

    def test_resolve(self):
        assert isinstance(resolve_policy(None), PanelFirstPolicy)
        assert isinstance(resolve_policy("fifo"), FifoPolicy)
        inst = CriticalPathPolicy()
        assert resolve_policy(inst) is inst

    def test_fresh_instance_per_call(self):
        assert get_policy("critical-path") is not get_policy("critical-path")


class TestPanelFirstPinned:
    def test_none_and_panel_first_bit_identical(self):
        default = _ref_report(None)
        named = _ref_report("panel-first")
        assert default.policy == named.policy == "panel-first"
        assert default.makespan == named.makespan
        assert trace_hash(default.trace) == trace_hash(named.trace)

    def test_pinned_makespan_and_trace(self):
        rep = _ref_report("panel-first")
        assert rep.makespan == PINNED_MAKESPAN
        assert trace_hash(rep.trace) == PINNED_TRACE_SHA256


def _chain_free_graph(priorities):
    """Independent single-source tasks on rank 0, one per priority."""
    graph = TaskGraph()
    for tid, prio in enumerate(priorities):
        graph.new_task(
            kind="GEMM",
            params=(tid,),
            rank=0,
            precision=Precision.FP64,
            flops=1e6,
            output=TileRef(tid, 0, 1),
            output_precision=Precision.FP64,
            inputs=[TaskInput(None, TileRef(tid, 1, 0),
                              Precision.FP64, Precision.FP64, 64 * 64)],
            priority=prio,
        )
    graph.finalize()
    return graph


class TestTieBreaking:
    """The comparator is the explicit triple (ready, priority, tid)."""

    def test_priority_breaks_ready_ties(self):
        graph = _chain_free_graph([5, 5, 1])
        assert policy_topological_order(graph, "panel-first", nb=64) == [2, 0, 1]

    def test_tid_breaks_priority_ties(self):
        graph = _chain_free_graph([3, 3, 3])
        assert policy_topological_order(graph, "panel-first", nb=64) == [0, 1, 2]
        assert policy_topological_order(graph, "fifo", nb=64) == [0, 1, 2]

    def test_fifo_ignores_priority(self):
        graph = _chain_free_graph([9, 0, 4])
        assert policy_topological_order(graph, "fifo", nb=64) == [0, 1, 2]

    def test_simulator_commits_in_comparator_order(self):
        graph = _chain_free_graph([2, 1, 1])
        rep = simulate(graph, _ref_platform(), 64, policy="panel-first")
        kernels = sorted(
            (e for e in rep.trace.events if e.kind == "GEMM"),
            key=lambda e: e.t_start,
        )
        # priority 1 first (tid 1 then tid 2), the priority-2 task last
        assert [e.flops for e in kernels] == [1e6] * 3
        assert rep.task_end[1] <= rep.task_end[2] <= rep.task_end[0]


class TestDeterminism:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_same_process_replay(self, policy):
        a, b = _ref_report(policy), _ref_report(policy)
        assert a.makespan == b.makespan
        assert trace_hash(a.trace) == trace_hash(b.trace)

    @pytest.mark.slow
    @pytest.mark.parametrize("method", ["fork", "forkserver", "spawn"])
    def test_across_start_methods(self, method):
        if method not in mp.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        ctx = mp.get_context(method)
        queue = ctx.Queue()
        proc = ctx.Process(target=_child_trace_hash, args=("panel-first", queue))
        proc.start()
        try:
            makespan, digest = queue.get(timeout=120)
        finally:
            proc.join(timeout=30)
        assert makespan == PINNED_MAKESPAN
        assert digest == PINNED_TRACE_SHA256


class TestPolicyDivergence:
    """Policies must actually reorder work, not just relabel it."""

    def test_critical_path_beats_panel_first_here(self):
        pf = _ref_report("panel-first")
        cp = _ref_report("critical-path")
        assert cp.makespan < pf.makespan
        assert trace_hash(cp.trace) != trace_hash(pf.trace)

    def test_report_carries_policy_name(self):
        for pol in POLICY_NAMES:
            assert _ref_report(pol).policy == pol


class TestCustomPolicy:
    def test_register_and_use(self):
        from repro.runtime import policies as policies_mod
        from repro.runtime import register_policy

        class ReverseTid(SchedulePolicy):
            name = "reverse-tid-test"

            def key(self, task, ready_t, state=None):
                return (ready_t, -task.tid)

        register_policy(ReverseTid)
        try:
            assert "reverse-tid-test" in policies_mod.POLICY_NAMES
            graph = _chain_free_graph([0, 0, 0])
            assert policy_topological_order(graph, "reverse-tid-test", nb=64) == [2, 1, 0]
            rep = simulate(graph, _ref_platform(), 64, policy="reverse-tid-test")
            assert rep.policy == "reverse-tid-test"
        finally:
            policies_mod._REGISTRY.pop("reverse-tid-test", None)
            policies_mod.POLICY_NAMES = tuple(policies_mod._REGISTRY)


class TestTraceMetadata:
    def test_policy_lands_in_chrome_trace(self):
        import json

        rep = _ref_report("critical-path")
        doc = json.loads(to_chrome_trace(rep.trace.events,
                                         metadata={"policy": rep.policy}))
        assert doc["metadata"] == {"policy": "critical-path"}
        assert doc["traceEvents"]

    def test_perfetto_writer_passthrough(self, tmp_path):
        import json

        from repro.obs import write_perfetto_trace

        rep = _ref_report("fifo")
        path = write_perfetto_trace(rep.trace.events, tmp_path / "t.json",
                                    metadata={"policy": rep.policy})
        doc = json.loads(path.read_text())
        assert doc["metadata"]["policy"] == "fifo"

    def test_no_metadata_key_without_metadata(self):
        import json

        rep = _ref_report(None)
        doc = json.loads(to_chrome_trace(rep.trace.events))
        assert "metadata" not in doc


class TestDistributedPolicyOrder:
    def test_global_order_shared_by_all_policies(self):
        from repro.core import build_cholesky_dag, uniform_map

        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64))
        for pol in POLICY_NAMES:
            order = policy_topological_order(dag.graph, pol, nb=16)
            assert sorted(order) == list(range(len(dag.graph)))

    def test_distributed_policy_matches_sequential(self, tiled_96):
        from repro.core import build_cholesky_dag, uniform_map
        from repro.runtime import execute_numeric
        from repro.runtime.distributed import execute_numeric_distributed
        from repro.tiles import ProcessGrid

        import numpy as np

        grid = ProcessGrid(2, 1)
        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64), grid=grid)
        seq = execute_numeric(dag.graph, tiled_96)
        dist = execute_numeric_distributed(
            dag.graph, tiled_96, grid.size, timeout=60.0, policy="critical-path"
        )
        assert np.array_equal(dist.lower_dense(), seq.lower_dense())


class TestNullStateThreading:
    """Regression battery for ``SchedulePolicy.key`` called without a
    ``SchedState``: both ``policy_topological_order`` and the parallel
    executor now thread the explicit null state (nothing resident), so
    residency-aware policies get a real state object instead of crashing
    or silently receiving ``None``."""

    def test_null_state_reports_nothing_resident(self):
        from repro.runtime.policies import SchedState

        state = SchedState.null()
        assert not state.resident(0, TileRef(0, 0, 1))
        assert not state.host_resident(0, TileRef(0, 0, 1))

    @pytest.mark.parametrize("pol", list(POLICY_NAMES))
    def test_topological_order_valid_per_policy(self, pol):
        from repro.core import build_cholesky_dag, two_precision_map as tpm

        dag = build_cholesky_dag(96 * 4, 96, tpm(4, Precision.FP16),
                                 grid=_ref_platform().process_grid())
        order = policy_topological_order(dag.graph, pol, nb=96,
                                         platform=_ref_platform())
        assert sorted(order) == list(range(len(dag.graph)))
        pos = {tid: k for k, tid in enumerate(order)}
        for tid in range(len(dag.graph)):
            for p in dag.graph.predecessors(tid):
                assert pos[p] < pos[tid], f"{pol}: {p} must precede {tid}"

    @pytest.mark.parametrize("pol", list(POLICY_NAMES))
    def test_topological_order_deterministic_per_policy(self, pol):
        from repro.core import build_cholesky_dag, uniform_map

        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64))
        a = policy_topological_order(dag.graph, pol, nb=16)
        b = policy_topological_order(dag.graph, pol, nb=16)
        assert a == b

    @pytest.mark.parametrize("pol", list(POLICY_NAMES))
    def test_parallel_executor_bit_identical_per_policy(self, pol, tiled_96):
        import numpy as np

        from repro.core import build_cholesky_dag, uniform_map
        from repro.runtime import execute_numeric
        from repro.runtime.parallel_executor import execute_numeric_parallel

        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64))
        seq = execute_numeric(dag.graph, tiled_96)
        par = execute_numeric_parallel(dag.graph, tiled_96, n_threads=3, policy=pol)
        assert np.array_equal(par.lower_dense(), seq.lower_dense())
