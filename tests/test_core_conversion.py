"""Unit and property tests for Algorithm 2 (automated precision conversion)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ConversionStrategy
from repro.core.conversion import (
    _build_comm_precision_map_loop,
    accumulator_encoding,
    build_comm_precision_map,
    encoding_width,
    input_encoding,
    needs_conversion,
    payload_encoding,
)
from repro.core.precision_map import (
    KernelPrecisionMap,
    build_precision_map,
    two_precision_map,
    uniform_map,
)
from repro.precision import ADAPTIVE_FORMATS, Precision, get_storage_precision


def random_kmap(nt: int, seed: int) -> KernelPrecisionMap:
    rng = np.random.default_rng(seed)
    codes = rng.choice([int(p) for p in ADAPTIVE_FORMATS], size=(nt, nt)).astype(np.int8)
    codes = np.maximum(codes, codes.T)  # symmetric
    np.fill_diagonal(codes, int(Precision.FP64))
    return KernelPrecisionMap(nt=nt, codes=codes)


class TestEncodings:
    def test_payload_encodings(self):
        assert payload_encoding(Precision.FP64) == "f64"
        assert payload_encoding(Precision.FP32) == "f32"
        assert payload_encoding(Precision.TF32) == "f32"
        assert payload_encoding(Precision.FP16_32) == "f16"
        assert payload_encoding(Precision.FP16) == "f16"
        assert payload_encoding(Precision.BF16_32) == "bf16"

    def test_input_encodings(self):
        assert input_encoding(Precision.TF32) == "f32"  # truncation inside the core
        assert input_encoding(Precision.FP16_32) == "f16"

    def test_accumulator_encodings(self):
        assert accumulator_encoding(Precision.FP64) == "f64"
        assert accumulator_encoding(Precision.FP16_32) == "f32"
        assert accumulator_encoding(Precision.FP16) == "f16"

    def test_encoding_width_roundtrip(self):
        for enc in ("f64", "f32", "f16", "bf16"):
            assert payload_encoding(encoding_width(enc)) == enc

    def test_needs_conversion(self):
        assert needs_conversion(Precision.FP32, Precision.FP16)
        assert not needs_conversion(Precision.FP32, Precision.TF32)
        assert not needs_conversion(Precision.FP16, Precision.FP16_32)
        # inout role: FP16_32's accumulator is f32
        assert not needs_conversion(Precision.FP32, Precision.FP16_32, "inout")
        assert needs_conversion(Precision.FP32, Precision.FP16, "inout")


class TestDiagonalRule:
    def test_fp32_when_no_fp64_successor(self):
        cmap = build_comm_precision_map(two_precision_map(6, Precision.FP16))
        for k in range(5):
            assert cmap.comm(k, k) == Precision.FP32
            assert cmap.is_stc(k, k)

    def test_fp64_when_any_fp64_successor(self):
        kmap = uniform_map(6, Precision.FP64)
        cmap = build_comm_precision_map(kmap)
        for k in range(5):
            assert cmap.comm(k, k) == Precision.FP64
            assert not cmap.is_stc(k, k)

    def test_last_diagonal_no_broadcast(self):
        cmap = build_comm_precision_map(two_precision_map(6, Precision.FP16))
        assert cmap.comm(5, 5) == Precision.FP64  # no successors; storage precision


class TestExtremeConfigurations:
    """Section VII-D: 'In this case, all communications can employ STC.'"""

    @pytest.mark.parametrize("low", [Precision.FP16, Precision.FP16_32])
    def test_all_stc(self, low):
        nt = 8
        cmap = build_comm_precision_map(two_precision_map(nt, low))
        for i in range(nt):
            for j in range(i + 1):
                if i == j == nt - 1:
                    continue
                assert cmap.is_stc(i, j), f"tile ({i},{j})"
        assert cmap.stc_fraction() == 1.0

    def test_fp64_uniform_all_ttc(self):
        cmap = build_comm_precision_map(uniform_map(8, Precision.FP64))
        assert cmap.stc_fraction() == 0.0

    def test_payload_strategy_switch(self):
        cmap = build_comm_precision_map(two_precision_map(8, Precision.FP16))
        assert cmap.payload(4, 2, ConversionStrategy.TTC) == Precision.FP32
        assert cmap.payload(4, 2, ConversionStrategy.STC) == Precision.FP16
        assert cmap.payload(4, 2, ConversionStrategy.AUTO) == Precision.FP16


class TestAlgorithmInvariants:
    @given(st.integers(2, 14), st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_comm_bounded(self, nt, seed):
        """comm ≤ storage, and comm ≥ every successor's need (capped)."""
        kmap = random_kmap(nt, seed)
        cmap = build_comm_precision_map(kmap)
        for m in range(nt):
            for k in range(m):
                comm = cmap.comm(m, k)
                storage = get_storage_precision(kmap.kernel(m, k))
                assert comm <= storage
                succ = [kmap.kernel(m, n) for n in range(k + 1, m)]
                succ += [kmap.kernel(n, m) for n in range(m + 1, nt)]
                succ.append(kmap.kernel(m, k))  # SYRK consumes at own precision
                need = min(storage, max(succ))
                assert comm >= need

    @given(st.integers(2, 12), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_no_information_loss(self, nt, seed):
        """STC payloads carry at least the sender tile's own precision."""
        kmap = random_kmap(nt, seed)
        cmap = build_comm_precision_map(kmap)
        for m in range(nt):
            for k in range(m):
                assert cmap.comm(m, k) >= min(
                    kmap.kernel(m, k), get_storage_precision(kmap.kernel(m, k))
                )

    @given(st.integers(2, 10), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, nt, seed):
        kmap = random_kmap(nt, seed)
        a = build_comm_precision_map(kmap)
        b = build_comm_precision_map(kmap)
        assert np.array_equal(a.comm_codes, b.comm_codes)
        assert np.array_equal(a.storage_codes, b.storage_codes)

    def test_render_marks_stc_lowercase(self):
        cmap = build_comm_precision_map(two_precision_map(4, Precision.FP16))
        out = cmap.render()
        assert "q" in out  # lowercase = STC FP16 payload

    def test_render_legend_covers_every_glyph(self):
        """Regression: the legend must name every format the glyph table
        defines (TF32 and BF16_32 used to be omitted)."""
        cmap = build_comm_precision_map(uniform_map(4, Precision.FP64))
        legend = cmap.render().rsplit("[", 1)[1]
        for prec in Precision:
            assert prec.name in legend, f"{prec.name} missing from legend"

    def test_upper_triangle_access_rejected(self):
        cmap = build_comm_precision_map(uniform_map(4, Precision.FP64))
        with pytest.raises(IndexError):
            cmap.comm(0, 2)


class TestVectorizedEquivalence:
    """The NumPy suffix-max formulation is bit-identical to Algorithm 2's
    reference loop implementation (same values, same dtype)."""

    @given(st.integers(1, 24), st.integers(0, 10**6))
    @settings(max_examples=80, deadline=None)
    def test_bit_identical_on_random_maps(self, nt, seed):
        rng = np.random.default_rng(seed)
        codes = rng.choice([int(p) for p in Precision], size=(nt, nt)).astype(np.int8)
        codes = np.maximum(codes, codes.T)
        np.fill_diagonal(codes, int(Precision.FP64))
        kmap = KernelPrecisionMap(nt=nt, codes=codes)
        fast = build_comm_precision_map(kmap)
        ref = _build_comm_precision_map_loop(kmap)
        assert np.array_equal(fast.comm_codes, ref.comm_codes)
        assert np.array_equal(fast.storage_codes, ref.storage_codes)
        assert fast.comm_codes.dtype == ref.comm_codes.dtype == np.int8
        assert fast.storage_codes.dtype == ref.storage_codes.dtype == np.int8

    @pytest.mark.parametrize("low", [Precision.FP32, Precision.FP16_32, Precision.FP16])
    def test_bit_identical_on_extreme_maps(self, low):
        for nt in (1, 2, 3, 8, 17):
            kmap = two_precision_map(nt, low)
            fast = build_comm_precision_map(kmap)
            ref = _build_comm_precision_map_loop(kmap)
            assert np.array_equal(fast.comm_codes, ref.comm_codes)
            assert np.array_equal(fast.storage_codes, ref.storage_codes)

    def test_bit_identical_on_adaptive_map(self, matern_cov_160):
        from repro.tiles.norms import tile_norms

        kmap = build_precision_map(tile_norms(matern_cov_160), 1e-6)
        fast = build_comm_precision_map(kmap)
        ref = _build_comm_precision_map_loop(kmap)
        assert np.array_equal(fast.comm_codes, ref.comm_codes)

    def test_stc_fraction_matches_loop_count(self):
        """Vectorized stc_fraction equals the explicit per-tile count."""
        kmap = random_kmap(13, 42)
        cmap = build_comm_precision_map(kmap)
        total = stc = 0
        for i in range(cmap.nt):
            for j in range(i + 1):
                if i == j == cmap.nt - 1:
                    continue
                total += 1
                stc += int(cmap.is_stc(i, j))
        assert cmap.stc_counts() == (stc, total)
        assert cmap.stc_fraction() == stc / total


class TestRealisticMap:
    def test_matern_map_mixed_strategies(self, matern_cov_160):
        from repro.tiles.norms import tile_norms

        # at 1e-6 the map mixes FP32 with FP16-class tiles, so some panel
        # broadcasts hit FP32 successors (TTC) while others qualify for STC
        kmap = build_precision_map(tile_norms(matern_cov_160), 1e-6)
        cmap = build_comm_precision_map(kmap)
        frac = cmap.stc_fraction()
        assert 0.0 < frac < 1.0  # realistic maps mix STC and TTC
