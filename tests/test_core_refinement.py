"""Unit tests for mixed-precision iterative refinement."""

import numpy as np
import pytest

from repro.core.cholesky import mp_cholesky, solve_with_factor
from repro.core.precision_map import build_precision_map, two_precision_map
from repro.core.refinement import refine_solve
from repro.precision import Precision
from repro.tiles.norms import tile_norms
from repro.tiles.tilematrix import TiledSymmetricMatrix
from tests.conftest import random_spd


@pytest.fixture
def problem(rng):
    spd = random_spd(96, rng)
    mat = TiledSymmetricMatrix.from_dense(spd, 16)
    b = rng.standard_normal(96)
    return spd, mat, b


class TestRefineSolve:
    def test_fp64_factor_converges_immediately(self, problem):
        spd, mat, b = problem
        res = refine_solve(mat, mp_cholesky(mat), b)
        assert res.converged
        assert res.iterations <= 2
        assert np.linalg.norm(spd @ res.x - b) / np.linalg.norm(b) < 1e-12

    def test_low_precision_factor_recovers_fp64_accuracy(self, problem):
        """The headline property of [33]: FP16-heavy factor + refinement
        reaches working accuracy."""
        spd, mat, b = problem
        result = mp_cholesky(mat, two_precision_map(6, Precision.FP16))
        # direct solve with the cheap factor is only ~FP16-accurate
        direct = solve_with_factor(result.factor, b)
        direct_rel = np.linalg.norm(spd @ direct - b) / np.linalg.norm(b)
        assert direct_rel > 1e-10
        # refinement recovers
        res = refine_solve(mat, result, b, tol=1e-12)
        assert res.converged
        assert res.final_residual < 1e-12
        assert res.iterations > 1

    def test_residual_decreases_monotonically(self, problem):
        spd, mat, b = problem
        result = mp_cholesky(mat, two_precision_map(6, Precision.FP16_32))
        res = refine_solve(mat, result, b, tol=1e-13)
        assert all(a >= b_ for a, b_ in zip(res.residual_norms, res.residual_norms[1:]))

    def test_adaptive_map_refines(self, matern_cov_160, rng):
        dense = matern_cov_160.to_dense() + 0.01 * np.eye(160)
        mat = TiledSymmetricMatrix.from_dense(dense, 20)
        kmap = build_precision_map(tile_norms(mat), 1e-2)
        result = mp_cholesky(mat, kmap)
        b = rng.standard_normal(160)
        res = refine_solve(mat, result, b, tol=1e-11, max_iterations=100)
        assert res.converged, f"residuals: {res.residual_norms[-3:]}"

    def test_zero_rhs(self, problem):
        _spd, mat, _b = problem
        res = refine_solve(mat, mp_cholesky(mat), np.zeros(96))
        assert res.converged
        assert np.array_equal(res.x, np.zeros(96))

    def test_divergence_detected(self, rng):
        """A factor far too inaccurate for the conditioning stops early."""
        # build an ill-conditioned SPD matrix
        q, _ = np.linalg.qr(rng.standard_normal((64, 64)))
        w = np.logspace(0, -9, 64)
        spd = (q * w) @ q.T
        spd = (spd + spd.T) / 2
        mat = TiledSymmetricMatrix.from_dense(spd, 16)
        try:
            result = mp_cholesky(mat, two_precision_map(4, Precision.FP16))
        except Exception:
            pytest.skip("factorization itself failed — nothing to refine")
        b = rng.standard_normal(64)
        res = refine_solve(mat, result, b, tol=1e-14, max_iterations=30)
        # either it converges (lucky rounding) or it reports divergence
        if not res.converged:
            assert res.iterations <= 30
            assert np.isfinite(res.final_residual)
