"""Regression: parallel executor write-back on partially-covered graphs.

``execute_numeric_parallel``'s final write-back loop walks the ``values``
dict, which holds quantized version-0 seeds for every tile a task merely
*reads*; those seeds are written back into the output matrix.  On a
graph where some matrix tiles are touched by no task (and some only as
read-only inputs) this must not diverge from the sequential executor's
handling — same tiles written, same quantisation, bit-identical result.
"""

import numpy as np
import pytest

from repro.precision import Precision
from repro.precision.emulate import quantize
from repro.runtime.executor import execute_numeric
from repro.runtime.parallel_executor import execute_numeric_parallel
from repro.runtime.task import Task, TaskGraph, TaskInput, TileRef
from repro.tiles.tilematrix import TiledSymmetricMatrix

NB = 16
NT = 3
N = NB * NT


@pytest.fixture
def spd_48(rng):
    a = rng.standard_normal((N, N))
    return TiledSymmetricMatrix.from_dense(a @ a.T + N * np.eye(N), NB)


def _inp(producer, i, j, v, payload, storage, role="in"):
    return TaskInput(
        producer=producer,
        tile=TileRef(i, j, v),
        payload_precision=payload,
        storage_precision=storage,
        elements=NB * NB,
        role=role,
    )


def partial_graph() -> TaskGraph:
    """A 3×3-tile graph covering only the first panel.

    * POTRF(0) writes (0,0); TRSM(1,0) writes (1,0); GEMM(2,1,0) writes
      (2,1) while reading tile (2,0) as a version-0 input that **no task
      ever writes**;
    * tiles (1,1) and (2,2) are touched by no task at all.
    """
    g = TaskGraph()
    g.new_task(
        kind="POTRF", params=(0,), rank=0, precision=Precision.FP64,
        flops=float(NB**3) / 3, output=TileRef(0, 0, 1),
        output_precision=Precision.FP64,
        inputs=[_inp(None, 0, 0, 0, Precision.FP64, Precision.FP64, "inout")],
    )
    g.new_task(
        kind="TRSM", params=(1, 0), rank=0, precision=Precision.FP32,
        flops=float(NB**3), output=TileRef(1, 0, 1),
        output_precision=Precision.FP32,
        inputs=[
            _inp(0, 0, 0, 1, Precision.FP32, Precision.FP64),
            _inp(None, 1, 0, 0, Precision.FP32, Precision.FP32, "inout"),
        ],
    )
    g.new_task(
        kind="GEMM", params=(2, 1, 0), rank=0, precision=Precision.FP16_32,
        flops=2.0 * NB**3, output=TileRef(2, 1, 1),
        output_precision=Precision.FP32,
        inputs=[
            _inp(None, 2, 0, 0, Precision.FP16, Precision.FP32),
            _inp(1, 1, 0, 1, Precision.FP16, Precision.FP32),
            _inp(None, 2, 1, 0, Precision.FP32, Precision.FP32, "inout"),
        ],
    )
    g.finalize()
    return g


class TestPartialGraphWriteback:
    def test_parallel_matches_sequential(self, spd_48):
        graph = partial_graph()
        ref = execute_numeric(graph, spd_48)
        for n_threads in (1, 2, 4):
            out = execute_numeric_parallel(graph, spd_48, n_threads=n_threads)
            assert np.array_equal(out.to_dense(), ref.to_dense()), n_threads

    def test_untouched_tiles_keep_original_values(self, spd_48):
        graph = partial_graph()
        for execute in (execute_numeric,
                        lambda g, m: execute_numeric_parallel(g, m, n_threads=3)):
            out = execute(graph, spd_48)
            for i, j in ((1, 1), (2, 2)):
                assert np.array_equal(out.get(i, j), spd_48.get(i, j)), (i, j)

    def test_read_only_tile_written_back_quantized(self, spd_48):
        """Both executors write the storage-quantized seed of a tile that
        is read but never produced — the documented (shared) semantics."""
        graph = partial_graph()
        expected = quantize(spd_48.get(2, 0), Precision.FP32)
        seq = execute_numeric(graph, spd_48)
        par = execute_numeric_parallel(graph, spd_48, n_threads=3)
        assert np.array_equal(seq.get(2, 0), expected)
        assert np.array_equal(par.get(2, 0), expected)

    def test_input_matrix_unmodified(self, spd_48):
        graph = partial_graph()
        before = spd_48.to_dense()
        execute_numeric_parallel(graph, spd_48, n_threads=2)
        assert np.array_equal(spd_48.to_dense(), before)
