"""Unit tests for the benchmark harness drivers and reporting."""

import os

import numpy as np
import pytest

from repro.bench.apps import APPLICATIONS, app_kernel_map, get_app
from repro.bench.figures_micro import (
    example_precision_maps,
    fig1_performance_rows,
    fig3_dag_summary,
    table1_rows,
    table2_rows,
)
from repro.bench.reporting import ascii_series, format_table, write_csv
from repro.precision import Precision


class TestReporting:
    def test_format_table_aligns(self):
        out = format_table(["a", "bbbb"], [[1, 2.5], [300, 0.001]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len({len(l) for l in lines[1:]}) == 1  # uniform width

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456789e-7], [0.0], [123456.0]])
        assert "1.235e-07" in out and "1.235e+05" in out

    def test_write_csv(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = write_csv("unit", ["a", "b"], [[1, 2], [3, 4]])
        assert os.path.exists(path)
        content = open(path).read()
        assert "a,b" in content and "3,4" in content

    def test_ascii_series(self):
        out = ascii_series([0, 1, 2, 3], [0.0, 1.0, 0.5, 1.0], label="demo")
        assert "demo" in out and "*" in out

    def test_ascii_series_empty(self):
        assert "empty" in ascii_series([], [])


class TestMicroDrivers:
    def test_table1_shape(self):
        rows = table1_rows()
        assert len(rows) == 5 and all(len(r) == 4 for r in rows)

    def test_table2_shape(self):
        rows = table2_rows((2048, 4096))
        assert len(rows) == 6 and all(len(r) == 3 for r in rows)

    def test_fig1_perf_monotone_generations(self):
        rows = fig1_performance_rows(gpus=("V100", "H100"), sizes=(2048,))
        v100 = next(r for r in rows if r[0] == "V100")
        h100 = next(r for r in rows if r[0] == "H100")
        assert all(h >= v for v, h in zip(v100[2:], h100[2:]))

    def test_example_maps_have_four_formats(self):
        maps = example_precision_maps()
        assert len(maps.kernel_map.tile_fractions()) >= 4

    def test_fig3_summary_counts(self):
        s = fig3_dag_summary(5)
        assert s["counts"]["POTRF"] == 5
        assert s["n_tasks"] == 5 + 10 + 10 + 10


class TestApplications:
    def test_registry(self):
        assert set(APPLICATIONS) == {"2d-sqexp", "2d-matern", "3d-sqexp"}
        assert get_app("2D-SQEXP").label == "2D-sqexp"
        with pytest.raises(ValueError):
            get_app("4d-thing")

    def test_accuracies_match_paper(self):
        assert APPLICATIONS["2d-sqexp"].accuracy == 1e-4
        assert APPLICATIONS["2d-matern"].accuracy == 1e-9
        assert APPLICATIONS["3d-sqexp"].accuracy == 1e-8

    def test_app_kernel_map_small(self):
        kmap = app_kernel_map("2d-matern", 4096, 512, samples_per_tile=16)
        assert kmap.nt == 8
        assert kmap.kernel(0, 0) == Precision.FP64
        assert sum(kmap.tile_fractions().values()) == pytest.approx(1.0)

    def test_app_maps_deterministic(self):
        a = app_kernel_map("2d-sqexp", 4096, 512, samples_per_tile=16, seed=3)
        b = app_kernel_map("2d-sqexp", 4096, 512, samples_per_tile=16, seed=3)
        assert np.array_equal(a.codes, b.codes)

    def test_3d_more_conservative_than_2d(self):
        sq2 = app_kernel_map("2d-sqexp", 16384, 1024, samples_per_tile=24)
        sq3 = app_kernel_map("3d-sqexp", 16384, 1024, samples_per_tile=24)
        f2 = sq2.tile_fractions()
        f3 = sq3.tile_fractions()
        high2 = f2.get(Precision.FP64, 0) + f2.get(Precision.FP32, 0)
        high3 = f3.get(Precision.FP64, 0) + f3.get(Precision.FP32, 0)
        assert high3 > high2
