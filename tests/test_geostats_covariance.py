"""Unit and property tests for the covariance models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geostats.covariance import Matern, SquaredExponential, get_model
from repro.geostats.locations import generate_locations


class TestSquaredExponential:
    def test_formula(self):
        model = SquaredExponential(dim=2)
        h = np.array([0.0, 0.1, 1.0])
        out = model.correlation(h, np.array([2.0, 0.5]))
        assert np.allclose(out, 2.0 * np.exp(-h**2 / 0.5))

    def test_at_zero_is_variance(self):
        model = SquaredExponential(dim=2)
        assert model.correlation(np.array([0.0]), np.array([1.7, 0.3]))[0] == 1.7

    def test_presets(self):
        _, weak = SquaredExponential.weak()
        _, strong = SquaredExponential.strong()
        assert weak == (1.0, 0.03) and strong == (1.0, 0.3)

    def test_cov_matrix_spd_with_jitter(self):
        model = SquaredExponential(dim=2)
        locs = generate_locations(50, 2, seed=0)
        cov = model.cov_matrix(locs, (1.0, 0.03)) + 1e-8 * np.eye(50)
        np.linalg.cholesky(cov)  # must not raise

    def test_names(self):
        assert SquaredExponential(dim=2).name == "2D-sqexp"
        assert SquaredExponential(dim=3).name == "3D-sqexp"
        assert SquaredExponential(dim=2).param_names == ("variance", "range")


class TestMatern:
    def test_at_zero_is_variance(self):
        model = Matern(dim=2)
        out = model.correlation(np.array([0.0, 1e-300]), np.array([1.5, 0.1, 0.5]))
        assert out[0] == 1.5

    def test_nu_half_is_exponential(self):
        """ν = 0.5 reduces to σ² exp(−h/β)."""
        model = Matern(dim=2)
        h = np.linspace(0.01, 1.0, 20)
        out = model.correlation(h, np.array([1.0, 0.2, 0.5]))
        assert np.allclose(out, np.exp(-h / 0.2), rtol=1e-10)

    def test_smoothness_effect(self):
        """Higher ν concentrates correlation (smoother field)."""
        model = Matern(dim=2)
        h = np.array([0.05])
        rough = model.correlation(h, np.array([1.0, 0.1, 0.5]))[0]
        smooth = model.correlation(h, np.array([1.0, 0.1, 1.0]))[0]
        assert smooth > rough

    def test_monotone_decreasing(self):
        model = Matern(dim=2)
        h = np.linspace(0.0, 2.0, 50)
        out = model.correlation(h, np.array([1.0, 0.3, 1.0]))
        assert np.all(np.diff(out) <= 1e-12)

    def test_huge_distance_underflows_to_zero(self):
        model = Matern(dim=2)
        out = model.correlation(np.array([1e6]), np.array([1.0, 0.01, 0.5]))
        assert out[0] == 0.0

    def test_cov_matrix_spd(self):
        model = Matern(dim=2)
        locs = generate_locations(60, 2, seed=1)
        cov = model.cov_matrix(locs, (1.0, 0.1, 0.5))
        w = np.linalg.eigvalsh(cov)
        assert w[0] > 0

    def test_presets(self):
        _, t = Matern.preset("weak", "rough")
        assert t == (1.0, 0.03, 0.5)
        _, t = Matern.preset("strong", "smooth")
        assert t == (1.0, 0.3, 1.0)


class TestValidation:
    def test_theta_length(self):
        with pytest.raises(ValueError, match="length"):
            SquaredExponential(dim=2).validate_theta((1.0, 0.1, 0.5))

    def test_theta_positive(self):
        with pytest.raises(ValueError, match="positive"):
            Matern(dim=2).validate_theta((1.0, -0.1, 0.5))

    def test_bounds(self):
        bounds = Matern(dim=2).bounds()
        assert bounds == [(0.01, 2.0)] * 3  # the paper's box

    def test_registry(self):
        assert get_model("2d-sqexp").name == "2D-sqexp"
        assert get_model("2D_MATERN").dim == 2
        assert get_model("3d-sqexp").dim == 3
        with pytest.raises(ValueError):
            get_model("5d-foo")


class TestEntryOracle:
    def test_matches_cov_matrix(self):
        model = Matern(dim=2)
        locs = generate_locations(30, 2, seed=2)
        theta = (1.0, 0.1, 0.5)
        cov = model.cov_matrix(locs, theta)
        entry = model.entry_oracle(locs, theta)
        rows = np.array([0, 3, 7, 29])
        cols = np.array([1, 3, 0, 15])
        assert np.allclose(entry(rows, cols), cov[rows, cols])

    def test_cross_cov(self):
        model = SquaredExponential(dim=2)
        a = generate_locations(10, 2, seed=0)
        b = generate_locations(8, 2, seed=1)
        cc = model.cross_cov(a, b, (1.0, 0.1))
        assert cc.shape == (10, 8)
        assert np.all(cc > 0) and np.all(cc <= 1.0)


@given(
    st.floats(0.05, 2.0), st.floats(0.02, 2.0), st.floats(0.1, 3.0),
    st.lists(st.floats(0.0, 3.0), min_size=1, max_size=10),
)
@settings(max_examples=50, deadline=None)
def test_property_matern_bounded_by_variance(sigma2, beta, nu, hs):
    """0 ≤ C(h) ≤ σ² everywhere, with equality only at h = 0."""
    model = Matern(dim=2)
    out = model.correlation(np.array(hs), np.array([sigma2, beta, nu]))
    assert np.all(out >= 0.0)
    assert np.all(out <= sigma2 * (1.0 + 1e-9))
