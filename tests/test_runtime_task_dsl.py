"""Unit tests for the task graph and the PTG DSL."""

import pytest

from repro.precision import Precision
from repro.runtime.dsl import TaskClassSpec, TaskInstance, unroll
from repro.runtime.task import Task, TaskGraph, TaskInput, TileRef


def _task(tid, kind="GEMM", inputs=(), rank=0):
    return Task(
        tid=tid,
        kind=kind,
        params=(tid,),
        rank=rank,
        precision=Precision.FP64,
        flops=1.0,
        output=TileRef(tid, 0, 1),
        output_precision=Precision.FP64,
        inputs=list(inputs),
    )


def _inp(producer, i=0, j=0, v=1):
    return TaskInput(
        producer=producer,
        tile=TileRef(i, j, v),
        payload_precision=Precision.FP64,
        storage_precision=Precision.FP64,
        elements=4,
    )


class TestTaskGraph:
    def test_add_and_finalize(self):
        g = TaskGraph()
        g.add(_task(0))
        g.add(_task(1, inputs=[_inp(0)]))
        g.finalize()
        assert g.successors(0) == [1]
        assert g.predecessors(1) == [0]
        assert len(g) == 2

    def test_dense_ids_enforced(self):
        g = TaskGraph()
        with pytest.raises(ValueError, match="dense"):
            g.add(_task(3))

    def test_forward_dependency_rejected(self):
        g = TaskGraph()
        g.add(_task(0, inputs=[_inp(1)]))
        g.add(_task(1))
        with pytest.raises(ValueError, match="not a DAG"):
            g.finalize()

    def test_unknown_producer_rejected(self):
        g = TaskGraph()
        g.add(_task(0, inputs=[_inp(5)]))
        with pytest.raises(ValueError, match="unknown producer"):
            g.finalize()

    def test_add_after_finalize_rejected(self):
        g = TaskGraph()
        g.add(_task(0))
        g.finalize()
        with pytest.raises(RuntimeError):
            g.add(_task(1))

    def test_topology_requires_finalize(self):
        g = TaskGraph()
        g.add(_task(0))
        with pytest.raises(RuntimeError):
            g.successors(0)

    def test_flops_and_counts(self):
        g = TaskGraph()
        g.add(_task(0, kind="POTRF"))
        g.add(_task(1, kind="GEMM", inputs=[_inp(0)]))
        g.finalize()
        assert g.total_flops() == 2.0
        assert g.counts_by_kind() == {"POTRF": 1, "GEMM": 1}
        assert g.flops_by_precision() == {Precision.FP64: 2.0}

    def test_critical_path(self):
        g = TaskGraph()
        g.add(_task(0))
        g.add(_task(1, inputs=[_inp(0)]))
        g.add(_task(2, inputs=[_inp(0)]))
        g.add(_task(3, inputs=[_inp(1), _inp(2)]))
        g.finalize()
        assert g.critical_path_length(lambda t: 1.0) == 3.0
        assert g.critical_path_length(lambda t: 2.0) == 6.0


def _mk_instance(name, params, reads, rank=0):
    return TaskInstance(
        cls=name,
        params=params,
        rank=rank,
        precision=Precision.FP64,
        flops=1.0,
        writes=TileRef(params[0], 0, 1),
        output_precision=Precision.FP64,
        reads=reads,
    )


class TestDSL:
    def test_unroll_forward_references(self):
        """Classes may reference instances emitted later (topological sort)."""
        consumer = TaskClassSpec(
            "B",
            lambda: [(0,)],
            lambda p: _mk_instance(
                "B", p,
                [(("A", (0,)), TileRef(0, 0, 1), Precision.FP64, Precision.FP64, 4, "in")],
            ),
        )
        producer = TaskClassSpec("A", lambda: [(0,)], lambda p: _mk_instance("A", p, []))
        graph = unroll([consumer, producer])  # consumer listed first
        assert len(graph) == 2
        kinds = [graph.tasks[t].kind for t in graph.topological_order()]
        assert kinds == ["A", "B"]

    def test_duplicate_instance_rejected(self):
        dup = TaskClassSpec(
            "A", lambda: [(0,), (0,)], lambda p: _mk_instance("A", p, [])
        )
        with pytest.raises(ValueError, match="duplicate"):
            unroll([dup])

    def test_unknown_producer_rejected(self):
        bad = TaskClassSpec(
            "B",
            lambda: [(0,)],
            lambda p: _mk_instance(
                "B", p,
                [(("X", (9,)), TileRef(0, 0, 1), Precision.FP64, Precision.FP64, 4, "in")],
            ),
        )
        with pytest.raises(ValueError, match="unknown producer"):
            unroll([bad])

    def test_cycle_rejected(self):
        a = TaskClassSpec(
            "A",
            lambda: [(0,)],
            lambda p: _mk_instance(
                "A", p,
                [(("B", (0,)), TileRef(0, 0, 1), Precision.FP64, Precision.FP64, 4, "in")],
            ),
        )
        b = TaskClassSpec(
            "B",
            lambda: [(0,)],
            lambda p: _mk_instance(
                "B", p,
                [(("A", (0,)), TileRef(1, 0, 1), Precision.FP64, Precision.FP64, 4, "in")],
            ),
        )
        with pytest.raises(ValueError, match="cycle"):
            unroll([a, b])

    def test_host_reads_allowed(self):
        spec = TaskClassSpec(
            "A",
            lambda: [(0,)],
            lambda p: _mk_instance(
                "A", p, [(None, TileRef(0, 0, 0), Precision.FP64, Precision.FP64, 4, "inout")]
            ),
        )
        graph = unroll([spec])
        assert graph.tasks[0].inputs[0].producer is None
