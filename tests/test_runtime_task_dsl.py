"""Unit tests for the task graph and the PTG DSL."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precision import Precision
from repro.runtime.dsl import StreamOrderError, TaskClassSpec, TaskInstance, unroll, unroll_stream
from repro.runtime.task import Task, TaskGraph, TaskInput, TileRef


def _task(tid, kind="GEMM", inputs=(), rank=0):
    return Task(
        tid=tid,
        kind=kind,
        params=(tid,),
        rank=rank,
        precision=Precision.FP64,
        flops=1.0,
        output=TileRef(tid, 0, 1),
        output_precision=Precision.FP64,
        inputs=list(inputs),
    )


def _inp(producer, i=0, j=0, v=1):
    return TaskInput(
        producer=producer,
        tile=TileRef(i, j, v),
        payload_precision=Precision.FP64,
        storage_precision=Precision.FP64,
        elements=4,
    )


class TestTaskGraph:
    def test_add_and_finalize(self):
        g = TaskGraph()
        g.add(_task(0))
        g.add(_task(1, inputs=[_inp(0)]))
        g.finalize()
        assert g.successors(0) == [1]
        assert g.predecessors(1) == [0]
        assert len(g) == 2

    def test_dense_ids_enforced(self):
        g = TaskGraph()
        with pytest.raises(ValueError, match="dense"):
            g.add(_task(3))

    def test_forward_dependency_rejected(self):
        g = TaskGraph()
        g.add(_task(0, inputs=[_inp(1)]))
        g.add(_task(1))
        with pytest.raises(ValueError, match="not a DAG"):
            g.finalize()

    def test_unknown_producer_rejected(self):
        g = TaskGraph()
        g.add(_task(0, inputs=[_inp(5)]))
        with pytest.raises(ValueError, match="unknown producer"):
            g.finalize()

    def test_add_after_finalize_rejected(self):
        g = TaskGraph()
        g.add(_task(0))
        g.finalize()
        with pytest.raises(RuntimeError):
            g.add(_task(1))

    def test_topology_requires_finalize(self):
        g = TaskGraph()
        g.add(_task(0))
        with pytest.raises(RuntimeError):
            g.successors(0)

    def test_flops_and_counts(self):
        g = TaskGraph()
        g.add(_task(0, kind="POTRF"))
        g.add(_task(1, kind="GEMM", inputs=[_inp(0)]))
        g.finalize()
        assert g.total_flops() == 2.0
        assert g.counts_by_kind() == {"POTRF": 1, "GEMM": 1}
        assert g.flops_by_precision() == {Precision.FP64: 2.0}

    def test_critical_path(self):
        g = TaskGraph()
        g.add(_task(0))
        g.add(_task(1, inputs=[_inp(0)]))
        g.add(_task(2, inputs=[_inp(0)]))
        g.add(_task(3, inputs=[_inp(1), _inp(2)]))
        g.finalize()
        assert g.critical_path_length(lambda t: 1.0) == 3.0
        assert g.critical_path_length(lambda t: 2.0) == 6.0


class TestFinalizeDedupe:
    def test_duplicate_producer_reads_collapse_to_one_edge(self):
        """Regression: two reads from one producer used to double the edge."""
        g = TaskGraph()
        g.add(_task(0))
        g.add(_task(1, inputs=[_inp(0, i=0), _inp(0, i=1)]))
        g.finalize()
        assert g.successors(0) == [1]
        assert g.predecessors(1) == [0]
        # degree-sensitive consumers (in_count draining, critical path)
        # must see one dependency, not two
        assert g.critical_path_length(lambda t: 1.0) == 2.0

    def test_dedupe_preserves_first_seen_order(self):
        g = TaskGraph()
        g.add(_task(0))
        g.add(_task(1))
        g.add(_task(2, inputs=[_inp(1), _inp(0), _inp(1)]))
        g.finalize()
        assert g.predecessors(2) == [1, 0]

    def test_simulator_drains_deduped_graph(self):
        """A duplicate-producer graph must simulate to completion with
        task-level (not payload-level) dependency accounting."""
        from repro.perfmodel.gpus import V100
        from repro.runtime.platform import Platform
        from repro.runtime.simulator import simulate

        g = TaskGraph()
        g.add(_task(0, kind="POTRF"))
        g.add(_task(1, kind="SYRK", inputs=[_inp(0), _inp(0)]))
        g.finalize()
        assert g.predecessors(1) == [0]
        rep = simulate(g, Platform.single_gpu(V100), 4, record_events=False)
        assert rep.stats.n_tasks == 2


class TestAppendFrontier:
    def test_append_matches_add_finalize(self):
        tasks = [
            _task(0),
            _task(1, inputs=[_inp(0)]),
            _task(2, inputs=[_inp(0), _inp(1)]),
            _task(3, inputs=[_inp(2), _inp(2)]),  # duplicate producer read
        ]
        g_add = TaskGraph()
        for t in tasks:
            g_add.add(t)
        g_add.finalize()
        g_app = TaskGraph()
        for t in tasks:
            g_app.append(t)
        assert g_app.finalized
        for tid in range(len(tasks)):
            assert list(g_app.successors(tid)) == list(g_add.successors(tid))
            assert list(g_app.predecessors(tid)) == list(g_add.predecessors(tid))

    def test_adjacency_usable_mid_stream(self):
        g = TaskGraph()
        g.append(_task(0))
        g.append(_task(1, inputs=[_inp(0)]))
        assert g.successors(0) == [1]  # before emission is finished

    def test_append_rejects_forward_producer(self):
        g = TaskGraph()
        g.append(_task(0))
        with pytest.raises(ValueError, match="unknown or later producer"):
            g.append(_task(1, inputs=[_inp(5)]))

    def test_append_rejects_sparse_ids(self):
        g = TaskGraph()
        g.append(_task(0))
        with pytest.raises(ValueError, match="dense"):
            g.append(_task(2))

    def test_mixing_modes_rejected(self):
        g = TaskGraph()
        g.add(_task(0))
        with pytest.raises(RuntimeError, match="mix"):
            g.append(_task(1))
        g2 = TaskGraph()
        g2.append(_task(0))
        with pytest.raises(RuntimeError, match="finalized"):
            g2.add(_task(1))

    def test_finalize_is_noop_seal(self):
        g = TaskGraph()
        g.append(_task(0))
        g.finalize()
        assert g.successors(0) == []

    def test_retire_drops_payload_keeps_preds(self):
        g = TaskGraph()
        g.append(_task(0))
        g.append(_task(1, inputs=[_inp(0)]))
        g.retire(0)
        assert g.tasks[0] is None
        assert g.n_retired == 1
        assert g.successors(0) == []
        assert g.predecessors(1) == [0]  # successors still need ready bookkeeping


def _mk_instance(name, params, reads, rank=0):
    return TaskInstance(
        cls=name,
        params=params,
        rank=rank,
        precision=Precision.FP64,
        flops=1.0,
        writes=TileRef(params[0], 0, 1),
        output_precision=Precision.FP64,
        reads=reads,
    )


class TestDSL:
    def test_unroll_forward_references(self):
        """Classes may reference instances emitted later (topological sort)."""
        consumer = TaskClassSpec(
            "B",
            lambda: [(0,)],
            lambda p: _mk_instance(
                "B", p,
                [(("A", (0,)), TileRef(0, 0, 1), Precision.FP64, Precision.FP64, 4, "in")],
            ),
        )
        producer = TaskClassSpec("A", lambda: [(0,)], lambda p: _mk_instance("A", p, []))
        graph = unroll([consumer, producer])  # consumer listed first
        assert len(graph) == 2
        kinds = [graph.tasks[t].kind for t in graph.topological_order()]
        assert kinds == ["A", "B"]

    def test_duplicate_instance_rejected(self):
        dup = TaskClassSpec(
            "A", lambda: [(0,), (0,)], lambda p: _mk_instance("A", p, [])
        )
        with pytest.raises(ValueError, match="duplicate"):
            unroll([dup])

    def test_unknown_producer_rejected(self):
        bad = TaskClassSpec(
            "B",
            lambda: [(0,)],
            lambda p: _mk_instance(
                "B", p,
                [(("X", (9,)), TileRef(0, 0, 1), Precision.FP64, Precision.FP64, 4, "in")],
            ),
        )
        with pytest.raises(ValueError, match="unknown producer"):
            unroll([bad])

    def test_cycle_rejected(self):
        a = TaskClassSpec(
            "A",
            lambda: [(0,)],
            lambda p: _mk_instance(
                "A", p,
                [(("B", (0,)), TileRef(0, 0, 1), Precision.FP64, Precision.FP64, 4, "in")],
            ),
        )
        b = TaskClassSpec(
            "B",
            lambda: [(0,)],
            lambda p: _mk_instance(
                "B", p,
                [(("A", (0,)), TileRef(1, 0, 1), Precision.FP64, Precision.FP64, 4, "in")],
            ),
        )
        with pytest.raises(ValueError, match="cycle"):
            unroll([a, b])

    def test_host_reads_allowed(self):
        spec = TaskClassSpec(
            "A",
            lambda: [(0,)],
            lambda p: _mk_instance(
                "A", p, [(None, TileRef(0, 0, 0), Precision.FP64, Precision.FP64, 4, "inout")]
            ),
        )
        graph = unroll([spec])
        assert graph.tasks[0].inputs[0].producer is None


# -- streamed unroll ≡ materialising baseline --------------------------------

def _topo_ptg(pred_sets):
    """One task class over a random DAG whose emission order (ascending
    task index) is topological: task ``i`` reads from ``pred_sets[i]``,
    every predecessor < i, plus one host tile so sources have inputs."""

    def inst(params):
        (i,) = params
        reads = [(None, TileRef(i, i, 0), Precision.FP64, Precision.FP64, 4, "inout")]
        reads += [
            (("T", (p,)), TileRef(p, p, 1), Precision.FP64, Precision.FP64, 4, "in")
            for p in sorted(pred_sets[i])
        ]
        return _mk_instance("T", params, reads)

    return TaskClassSpec("T", lambda: [(i,) for i in range(len(pred_sets))], inst)


def _assert_graphs_identical(a, b):
    assert len(a) == len(b)
    for ta, tb in zip(a.tasks, b.tasks):
        assert ta == tb  # dataclass equality: tid, kind, params, inputs, …
    for tid in range(len(a)):
        assert list(a.predecessors(tid)) == list(b.predecessors(tid))
        assert list(a.successors(tid)) == list(b.successors(tid))
    assert a.topological_order() == b.topological_order()


@st.composite
def _random_dag(draw):
    n = draw(st.integers(1, 24))
    preds = []
    for i in range(n):
        if i == 0:
            preds.append(set())
        else:
            preds.append(set(draw(st.lists(st.integers(0, i - 1), max_size=4))))
    return preds


class TestStreamedUnroll:
    @given(_random_dag())
    @settings(max_examples=60, deadline=None)
    def test_stream_equals_materialize_on_topological_emission(self, pred_sets):
        """For a topologically-emitted PTG the streamed build and the
        Kahn materialising build produce bit-identical graphs."""
        streamed = unroll([_topo_ptg(pred_sets)], stream=True)
        baseline = unroll([_topo_ptg(pred_sets)])
        _assert_graphs_identical(streamed, baseline)

    @given(_random_dag())
    @settings(max_examples=30, deadline=None)
    def test_unroll_stream_generator_matches_materialized_tasks(self, pred_sets):
        tasks = list(unroll_stream([_topo_ptg(pred_sets)]))
        baseline = unroll([_topo_ptg(pred_sets)])
        assert [t.tid for t in tasks] == list(range(len(baseline)))
        assert tasks == list(baseline.tasks)

    def test_cholesky_stream_equals_materialize(self):
        """The k-major Cholesky PTG streams to the same graph the
        class-major PTG materialises to (same canonical task set)."""
        from repro.core import build_cholesky_dag, cholesky_task_count, two_precision_map

        n, nb = 8 * 64, 64
        kmap = two_precision_map(8, Precision.FP16)
        base = build_cholesky_dag(n, nb, kmap).graph
        stream = build_cholesky_dag(n, nb, kmap, stream=True).graph
        assert len(base) == len(stream) == cholesky_task_count(8)

        def canon(g):
            by_key = {}
            key_of = {t.tid: (t.kind, t.params) for t in g.tasks}
            for t in g.tasks:
                by_key[(t.kind, t.params)] = (
                    t.rank, t.precision, t.flops, t.output, t.output_precision,
                    t.priority, t.sender_conversion,
                    [
                        (None if i.producer is None else key_of[i.producer],
                         i.tile, i.payload_precision, i.storage_precision,
                         i.elements, i.role)
                        for i in t.inputs
                    ],
                )
            return by_key

        assert canon(base) == canon(stream)

    def test_forward_reference_falls_back_to_kahn(self):
        """Cross-class forward reference: unroll(stream=True) silently
        falls back to the materialising path and matches unroll()."""
        consumer = TaskClassSpec(
            "B",
            lambda: [(0,)],
            lambda p: _mk_instance(
                "B", p,
                [(("A", (0,)), TileRef(0, 0, 1), Precision.FP64, Precision.FP64, 4, "in")],
            ),
        )
        producer = TaskClassSpec("A", lambda: [(0,)], lambda p: _mk_instance("A", p, []))
        streamed = unroll([consumer, producer], stream=True)
        baseline = unroll([consumer, producer])
        _assert_graphs_identical(streamed, baseline)

    def test_unroll_stream_raises_on_forward_reference(self):
        consumer = TaskClassSpec(
            "B",
            lambda: [(0,)],
            lambda p: _mk_instance(
                "B", p,
                [(("A", (0,)), TileRef(0, 0, 1), Precision.FP64, Precision.FP64, 4, "in")],
            ),
        )
        producer = TaskClassSpec("A", lambda: [(0,)], lambda p: _mk_instance("A", p, []))
        with pytest.raises(StreamOrderError):
            list(unroll_stream([consumer, producer]))
        # StreamOrderError is a ValueError so existing catch-alls still work
        assert issubclass(StreamOrderError, ValueError)

    def test_unroll_stream_duplicate_instance_rejected(self):
        dup = TaskClassSpec("A", lambda: [(0,), (0,)], lambda p: _mk_instance("A", p, []))
        with pytest.raises(ValueError, match="duplicate"):
            list(unroll_stream([dup]))
