"""Edge-case and failure-injection tests for the runtime layer."""

import numpy as np
import pytest

from repro.core import (
    build_cholesky_dag,
    simulate_cholesky,
    two_precision_map,
    uniform_map,
)
from repro.perfmodel import V100
from repro.precision import Precision
from repro.runtime import Platform, TaskGraph, execute_numeric, simulate
from repro.runtime.task import Task, TaskInput, TileRef
from repro.tiles.tilematrix import TiledSymmetricMatrix


class TestDegenerateGraphs:
    def test_single_tile_matrix(self):
        """NT = 1: one POTRF, nothing else."""
        plat = Platform.single_gpu(V100)
        rep = simulate_cholesky(512, 512, uniform_map(1, Precision.FP64), plat)
        assert rep.stats.n_tasks == 1
        assert rep.makespan > 0

    def test_empty_graph(self):
        g = TaskGraph()
        g.finalize()
        plat = Platform.single_gpu(V100)
        rep = simulate(g, plat, 512)
        assert rep.makespan == 0.0
        assert rep.stats.n_tasks == 0

    def test_two_tile_matrix_numeric(self, rng):
        a = rng.standard_normal((32, 32))
        spd = a @ a.T + 32 * np.eye(32)
        mat = TiledSymmetricMatrix.from_dense(spd, 16)
        dag = build_cholesky_dag(32, 16, two_precision_map(2, Precision.FP16))
        out = execute_numeric(dag.graph, mat).lower_dense()
        rel = np.linalg.norm(out @ out.T - spd) / np.linalg.norm(spd)
        assert rel < 1e-2


class TestSimulatorRobustness:
    def test_unknown_payload_origin_detected(self):
        """A consumer whose payload was never produced nor host-seeded."""
        g = TaskGraph()
        g.add(Task(
            tid=0, kind="POTRF", params=(0,), rank=0, precision=Precision.FP64,
            flops=1.0, output=TileRef(0, 0, 1), output_precision=Precision.FP64,
            inputs=[TaskInput(None, TileRef(0, 0, 0), Precision.FP64,
                              Precision.FP64, 4, "inout")],
        ))
        g.add(Task(
            tid=1, kind="TRSM", params=(1, 0), rank=0, precision=Precision.FP64,
            flops=1.0, output=TileRef(1, 0, 1), output_precision=Precision.FP64,
            inputs=[
                TaskInput(0, TileRef(0, 0, 1), Precision.FP32,  # wrong key!
                          Precision.FP64, 4, "in"),
                TaskInput(None, TileRef(1, 0, 0), Precision.FP64,
                          Precision.FP64, 4, "inout"),
            ],
        ))
        g.finalize()
        plat = Platform.single_gpu(V100)
        with pytest.raises(KeyError, match="no origin"):
            simulate(g, plat, 2)

    def test_priority_affects_order_not_results(self):
        """Scrambling priorities changes scheduling, never correctness."""
        nt, nb = 8, 512
        plat = Platform.single_gpu(V100)
        kmap = two_precision_map(nt, Precision.FP16)
        base = simulate_cholesky(nt * nb, nb, kmap, plat, record_events=False)
        dag = build_cholesky_dag(nt * nb, nb, kmap, grid=plat.process_grid())
        rng = np.random.default_rng(0)
        for t in dag.graph:
            t.priority = int(rng.integers(0, 100))
        scrambled = simulate(dag.graph, plat, nb, record_events=False)
        assert scrambled.stats.n_tasks == base.stats.n_tasks
        assert scrambled.stats.total_flops == base.stats.total_flops
        # makespan may differ (scheduling) but stays within 2x
        assert scrambled.makespan < base.makespan * 2

    def test_many_gpus_few_tiles(self):
        """More ranks than tiles: idle ranks must not deadlock anything."""
        from repro.perfmodel.gpus import NodeSpec

        node = NodeSpec("wide", V100, 8, 256e9, 25e9, 1.5e-6)
        plat = Platform(node=node, n_nodes=2)  # 16 ranks
        rep = simulate_cholesky(3 * 512, 512, uniform_map(3, Precision.FP64), plat)
        assert rep.stats.n_tasks == 3 + 3 + 3 + 1

    def test_zero_memory_gpu_unbounded_mode(self):
        """enforce_memory=False must work even for huge matrices."""
        plat = Platform.single_gpu(V100)
        rep = simulate_cholesky(
            16 * 2048, 2048, uniform_map(16, Precision.FP64), plat,
            enforce_memory=False, record_events=False,
        )
        assert rep.stats.n_evictions == 0


class TestTraceAccounting:
    def test_compute_busy_le_makespan(self):
        plat = Platform.single_gpu(V100)
        rep = simulate_cholesky(6 * 512, 512, uniform_map(6, Precision.FP64), plat)
        busy = rep.trace.busy_seconds("compute", 0)
        assert busy <= rep.makespan * (1 + 1e-9)

    def test_events_sorted_within_engine(self):
        plat = Platform.single_gpu(V100)
        rep = simulate_cholesky(5 * 512, 512, uniform_map(5, Precision.FP64), plat)
        compute = [e for e in rep.trace.events if e.engine == "compute"]
        # the compute engine is serial: events must not overlap
        ordered = sorted(compute, key=lambda e: e.t_start)
        for a, b in zip(ordered, ordered[1:]):
            assert a.t_end <= b.t_start + 1e-12
