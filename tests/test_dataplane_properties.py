"""Property battery for the geospatial dataplane (ISSUE 10).

Invariants under test:

* Hilbert encode is a bijection on the grid (and decode its inverse);
* ``hilbert_order`` is deterministic, canonical under input permutation,
  and permutation-only (values bit-identical);
* the locality invariant: mean nearest-neighbour *index* distance after
  a Hilbert sort never exceeds a random sort's;
* partition round-trips preserve the exact multiset of points;
* manifest totals reconcile with per-partition counts.
"""

import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geostats.dataplane import (
    PointSet,
    check_spatial_order,
    grid_partition,
    hilbert_decode,
    hilbert_encode,
    hilbert_order,
    kdtree_partition,
    nn_index_distance,
    order_locations,
    read_partition,
    validate_manifest,
    write_partitions,
)


def _points(n: int, dim: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=(n, dim))


# -- Hilbert bijection ----------------------------------------------------


@given(st.sampled_from([2, 3]), st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_hilbert_encode_bijection_on_full_grid(dim, bits):
    """Encode maps the full grid onto 0..2^(dim*bits)-1 exactly once."""
    side = 1 << bits
    axes = np.meshgrid(*[np.arange(side)] * dim, indexing="ij")
    grid = np.stack([a.ravel() for a in axes], axis=1).astype(np.uint64)
    code = hilbert_encode(grid, bits)
    assert sorted(code.tolist()) == list(range(side**dim))


@given(st.sampled_from([2, 3]), st.integers(1, 10), st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_hilbert_decode_inverts_encode(dim, bits, seed):
    rng = np.random.default_rng(seed)
    grid = rng.integers(0, 1 << bits, size=(200, dim), dtype=np.uint64)
    code = hilbert_encode(grid, bits)
    assert np.array_equal(hilbert_decode(code, dim, bits), grid)


@given(st.sampled_from([2, 3]), st.integers(2, 5))
@settings(max_examples=12, deadline=None)
def test_hilbert_curve_is_contiguous(dim, bits):
    """Consecutive Hilbert codes are L1-adjacent grid cells — the property
    Morton lacks and the reason the ordering tightens precision maps."""
    side = 1 << bits
    axes = np.meshgrid(*[np.arange(side)] * dim, indexing="ij")
    grid = np.stack([a.ravel() for a in axes], axis=1).astype(np.uint64)
    code = hilbert_encode(grid, bits)
    path = grid[np.argsort(code)].astype(np.int64)
    steps = np.abs(np.diff(path, axis=0)).sum(axis=1)
    assert np.all(steps == 1)


# -- sort determinism and permutation-only --------------------------------


@given(st.sampled_from([2, 3]), st.integers(2, 300), st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_hilbert_sort_is_permutation_only(dim, n, seed):
    """The sort only rearranges rows: the multiset of points is preserved
    bit-for-bit, and the index vector is a true permutation."""
    pts = _points(n, dim, seed)
    order = hilbert_order(pts)
    assert sorted(order.tolist()) == list(range(n))
    out = pts[order]
    key = np.lexsort(tuple(pts[:, d] for d in range(dim - 1, -1, -1)))
    key2 = np.lexsort(tuple(out[:, d] for d in range(dim - 1, -1, -1)))
    assert np.array_equal(pts[key], out[key2])


@given(st.sampled_from([2, 3]), st.integers(2, 300), st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_hilbert_sort_canonical_under_permutation(dim, n, seed):
    """Any shuffle of the same point set sorts to the identical sequence —
    what makes permuted-then-reordered covariance bit-identical."""
    pts = _points(n, dim, seed)
    rng = np.random.default_rng(seed + 1)
    shuffled = pts[rng.permutation(n)]
    a = pts[hilbert_order(pts)]
    b = shuffled[hilbert_order(shuffled)]
    assert a.tobytes() == b.tobytes()


@given(st.integers(2, 200), st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_hilbert_sort_deterministic(n, seed):
    pts = _points(n, 2, seed)
    assert np.array_equal(hilbert_order(pts), hilbert_order(pts))


# -- locality invariant ---------------------------------------------------


@given(st.sampled_from([2, 3]), st.integers(32, 256), st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_locality_hilbert_beats_random(dim, n, seed):
    """Mean NN index distance after a Hilbert sort ≤ after a random sort."""
    pts = _points(n, dim, seed)
    hil = order_locations(pts, "hilbert")
    rnd = order_locations(pts, "random", seed=seed + 7)
    assert nn_index_distance(hil) <= nn_index_distance(rnd)


@given(st.integers(64, 512), st.integers(0, 10**6))
@settings(max_examples=15, deadline=None)
def test_spatial_order_score_hilbert_beats_random(n, seed):
    pts = _points(n, 2, seed)
    hil = check_spatial_order(order_locations(pts, "hilbert"))
    rnd = check_spatial_order(order_locations(pts, "random", seed=seed + 7))
    assert hil <= rnd


# -- partition round-trip -------------------------------------------------


def _roundtrip(ps: PointSet, parts, scheme: str) -> None:
    with tempfile.TemporaryDirectory() as d:
        manifest = write_partitions(ps, parts, d, scheme=scheme, format="npz")
        validate_manifest(manifest, d)
        assert sum(p["n_points"] for p in manifest["partitions"]) == ps.n
        pieces = [read_partition(d, p) for p in manifest["partitions"]]
        coords = np.concatenate([p.coords for p in pieces]) if pieces else np.zeros((0, ps.dim))
        values = np.concatenate([p.values for p in pieces]) if pieces else np.zeros(0)
        rows = np.concatenate([p.rows for p in pieces]) if pieces else np.zeros(0, np.int64)
        assert sorted(rows.tolist()) == list(range(ps.n))
        inv = np.argsort(rows)
        assert coords[inv].tobytes() == ps.coords.tobytes()
        assert values[inv].tobytes() == ps.values.tobytes()


@given(st.sampled_from([2, 3]), st.integers(1, 400), st.integers(1, 128),
       st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_kdtree_partition_roundtrip_exact_multiset(dim, n, max_points, seed):
    pts = _points(n, dim, seed)
    rng = np.random.default_rng(seed + 3)
    ps = PointSet(coords=pts, values=rng.standard_normal(n))
    parts = kdtree_partition(pts, max_points)
    assert all(len(p) <= max_points for p in parts)
    _roundtrip(ps, parts, "kdtree")


@given(st.sampled_from([2, 3]), st.integers(1, 400), st.integers(1, 6),
       st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_grid_partition_roundtrip_exact_multiset(dim, n, cells, seed):
    pts = _points(n, dim, seed)
    rng = np.random.default_rng(seed + 3)
    ps = PointSet(coords=pts, values=rng.standard_normal(n))
    _roundtrip(ps, grid_partition(pts, cells), "grid")


def test_manifest_reconciliation_detects_count_drift():
    pts = _points(100, 2, 0)
    ps = PointSet(coords=pts, values=np.zeros(100))
    with tempfile.TemporaryDirectory() as d:
        manifest = write_partitions(ps, kdtree_partition(pts, 32), d,
                                    scheme="kdtree", format="npz")
        validate_manifest(manifest, d)
        manifest["partitions"][0]["n_points"] += 1
        with pytest.raises(ValueError, match="reconcil"):
            validate_manifest(manifest)


def test_manifest_reconciliation_detects_missing_rows():
    pts = _points(64, 2, 1)
    ps = PointSet(coords=pts, values=np.zeros(64))
    with tempfile.TemporaryDirectory() as d:
        parts = kdtree_partition(pts, 16)
        manifest = write_partitions(ps, parts, d, scheme="kdtree", format="npz")
        dropped = dict(manifest)
        kept = manifest["partitions"][1:]
        dropped["partitions"] = kept
        dropped["n_points"] = sum(p["n_points"] for p in kept)
        with pytest.raises(ValueError, match="lost|outside|reconcil"):
            validate_manifest(dropped, d)
