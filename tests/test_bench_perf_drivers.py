"""Fast unit tests for the performance-figure drivers (small workloads).

The benchmark files exercise these drivers at figure scale; these tests
pin their contracts at toy scale so regressions surface in seconds.
"""

import pytest

from repro.bench.figures_perf import (
    PerfPoint,
    _extreme_map,
    ablation_scheduler_rows,
    default_sizes,
    fig8_configs,
    fig8_rows,
    fig12_strong_rows,
    fig12_weak_rows,
)
from repro.precision import Precision


class TestHelpers:
    def test_fig8_configs_cover_strategies(self):
        cfgs = fig8_configs()
        labels = [c[0] for c in cfgs]
        assert labels.count("FP64/FP16") == 2  # STC + TTC
        assert "FP64" in labels and "FP32" in labels

    def test_extreme_maps(self):
        m = _extreme_map(4, "FP64/FP16")
        assert m.kernel(0, 0) == Precision.FP64
        assert m.kernel(2, 0) == Precision.FP16
        m32 = _extreme_map(4, "FP32")
        assert m32.kernel(2, 0) == Precision.FP32

    def test_default_sizes_respect_memory(self):
        assert max(default_sizes("V100")) <= 61440  # 16 GB FP64 ceiling zone
        assert max(default_sizes("H100")) > 61440

    def test_perfpoint_row(self):
        p = PerfPoint("FP64", "V100", 1024, "STC", 1.0, 2.0, 3.0, 4)
        assert p.row() == ["FP64", "V100", 1024, "STC", 1.0, 2.0, 3.0, 4]


class TestSmallRuns:
    def test_fig8_rows_small(self):
        points = fig8_rows("V100", (8192,), nb=2048)
        assert len(points) == 6
        by = {(p.label, p.strategy): p for p in points}
        assert by[("FP64/FP16", "STC")].tflops >= by[("FP64/FP16", "TTC")].tflops

    def test_fig12_weak_small(self):
        rows = fig12_weak_rows((1, 2), base_nt_per_gpu=6.0)
        assert len(rows) == 4
        assert all(r[4] > 0 for r in rows)

    def test_fig12_strong_small(self):
        rows = fig12_strong_rows((2, 4), n=131072)
        fp64 = [r for r in rows if r[2] == "FP64"]
        assert fp64[0][3] > fp64[1][3]  # time drops with nodes

    def test_ablation_scheduler_small(self):
        rows = ablation_scheduler_rows(n=8192)
        assert {r[0] for r in rows} == {"panel-priority", "fifo"}
        assert all(r[1] > 0 for r in rows)
