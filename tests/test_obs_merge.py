"""Tests for distributed trace-shard merging and its exact reconciliation."""

import json

import numpy as np
import pytest

from repro.obs.analysis import analyze_path, build_ledger
from repro.obs.merge import SHARDS_SCHEMA, merge_shards, render_merge, write_merged
from repro.precision import Precision
from repro.runtime.tracing import RunStats


def _write_jsonl(path, records):
    with open(path, "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec) + "\n")


def _shard_dir(tmp_path, *, parent_wall=100.0, offsets=(0.5, 1.0)):
    """Two synthetic rank shards with known clock offsets."""
    (tmp_path / "shard-manifest.json").write_text(json.dumps({
        "schema": SHARDS_SCHEMA,
        "wall_time": parent_wall,
        "n_ranks": len(offsets),
        "policy": "panel-first",
        "run_id": "synthetic",
    }), encoding="utf-8")
    for rank, offset in enumerate(offsets):
        stats = RunStats()
        stats.add_flops(Precision.FP64, 1e9)
        stats.n_tasks = 1
        stats.add_conversion("stc", 0.002)
        stats.add_nic(Precision.FP16, 4096)
        stats.makespan = 0.5
        records = [
            {"run_id": "synthetic", "seq": 0, "ts": 0.0, "type": "shard.open",
             "attrs": {"rank": rank, "wall_time": parent_wall + offset,
                       "pid": 1000 + rank, "policy": "panel-first"}},
            {"run_id": "synthetic", "seq": 1, "ts": 0.2, "type": "rank.task",
             "attrs": {"tid": f"POTRF:{rank}", "kind": "POTRF",
                       "precision": "FP64", "flops": 1e9,
                       "t_start": 0.1, "t_end": 0.2}},
            {"run_id": "synthetic", "seq": 2, "ts": 0.3, "type": "rank.convert",
             "attrs": {"tid": f"POTRF:{rank}", "site": "stc", "src": "FP64",
                       "dst": "FP16", "t_start": 0.2, "t_end": 0.25}},
            {"run_id": "synthetic", "seq": 3, "ts": 0.4, "type": "rank.send",
             "attrs": {"tid": f"POTRF:{rank}", "dest": 1 - rank, "bytes": 4096,
                       "precision": "FP16", "t_start": 0.25, "t_end": 0.3}},
            {"run_id": "synthetic", "seq": 4, "ts": 0.5, "type": "rank.stats",
             "attrs": {"rank": rank, "stats": stats.to_dict()}},
        ]
        _write_jsonl(tmp_path / f"events-rank{rank}.jsonl", records)
    return tmp_path


class TestMergeSynthetic:
    def test_clock_offsets(self, tmp_path):
        merged = merge_shards(_shard_dir(tmp_path))
        offsets = {s.rank: s.offset for s in merged.shards}
        assert offsets[0] == pytest.approx(0.5)
        assert offsets[1] == pytest.approx(1.0)
        assert merged.n_ranks == 2
        assert merged.policy == "panel-first"
        assert merged.run_id == "synthetic"

    def test_events_aligned_to_parent_axis(self, tmp_path):
        merged = merge_shards(_shard_dir(tmp_path))
        tasks = [e for e in merged.events if e.kind == "POTRF"]
        by_rank = {e.rank: e for e in tasks}
        # rank 0 opened 0.5 s after the parent's reference, task at +0.1
        assert by_rank[0].t_start == pytest.approx(0.6)
        assert by_rank[1].t_start == pytest.approx(1.1)
        # sorted by aligned start time
        starts = [e.t_start for e in merged.events]
        assert starts == sorted(starts)

    def test_stats_are_summed(self, tmp_path):
        merged = merge_shards(_shard_dir(tmp_path))
        d = merged.stats.to_dict()
        assert d["n_tasks"] == 2
        assert d["nic_bytes"] == 8192
        assert d["n_conversions"] == 2
        assert d["conversion_seconds"] == pytest.approx(0.004)
        assert d["total_flops"] == pytest.approx(2e9)
        # makespan spans the latest aligned event end
        assert merged.stats.makespan == pytest.approx(1.3)

    def test_ledger_reconciles_exactly(self, tmp_path):
        merged = merge_shards(_shard_dir(tmp_path))
        ledger = build_ledger(merged.events)
        assert ledger.reconcile(merged.stats) == []

    def test_write_merged_analyzable(self, tmp_path):
        merged = merge_shards(_shard_dir(tmp_path))
        out = tmp_path / "merged"
        paths = write_merged(merged, out)
        assert paths["trace"].is_file() and paths["summary"].is_file()
        summary = json.loads(paths["summary"].read_text(encoding="utf-8"))
        assert summary["merge"]["n_ranks"] == 2
        assert set(summary["merge"]["per_rank_stats"]) == {"0", "1"}
        doc = analyze_path(out)
        assert doc["reconciliation"]["checked"]
        assert doc["reconciliation"]["mismatches"] == []

    def test_render(self, tmp_path):
        merged = merge_shards(_shard_dir(tmp_path))
        text = render_merge(merged)
        assert "merged 2 shard(s)" in text
        assert "events-rank0.jsonl" in text
        assert "clock offset" in text


class TestMergeErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ValueError, match="shard-manifest"):
            merge_shards(tmp_path)

    def test_wrong_manifest_schema(self, tmp_path):
        (tmp_path / "shard-manifest.json").write_text(
            json.dumps({"schema": "bogus/1", "wall_time": 0.0}), encoding="utf-8")
        with pytest.raises(ValueError, match="schema"):
            merge_shards(tmp_path)

    def test_no_shards(self, tmp_path):
        (tmp_path / "shard-manifest.json").write_text(
            json.dumps({"schema": SHARDS_SCHEMA, "wall_time": 0.0}),
            encoding="utf-8")
        with pytest.raises(ValueError, match="no events-rank"):
            merge_shards(tmp_path)

    def test_shard_without_open_anchor(self, tmp_path):
        (tmp_path / "shard-manifest.json").write_text(
            json.dumps({"schema": SHARDS_SCHEMA, "wall_time": 0.0}),
            encoding="utf-8")
        _write_jsonl(tmp_path / "events-rank0.jsonl",
                     [{"run_id": "x", "seq": 0, "ts": 0.1, "type": "rank.task",
                       "attrs": {}}])
        with pytest.raises(ValueError, match="shard.open"):
            merge_shards(tmp_path)


class TestDistributedShards:
    """End-to-end: a real 2-rank run writes shards that merge + reconcile."""

    def test_two_rank_run_merges_and_reconciles(self, rng, tmp_path):
        from repro.core import build_cholesky_dag, two_precision_map
        from repro.runtime import execute_numeric
        from repro.runtime.distributed import execute_numeric_distributed
        from repro.tiles import ProcessGrid
        from repro.tiles.tilematrix import TiledSymmetricMatrix

        n, nb = 96, 16
        a = rng.standard_normal((n, n))
        mat = TiledSymmetricMatrix.from_dense(a @ a.T + n * np.eye(n), nb)
        g = ProcessGrid(1, 2)
        dag = build_cholesky_dag(n, nb, two_precision_map(6, Precision.FP16),
                                 grid=g)
        shard_dir = tmp_path / "shards"
        dist = execute_numeric_distributed(dag.graph, mat, g.size,
                                           shard_dir=shard_dir,
                                           run_id="dist-test")
        # numerics unchanged by shard capture
        seq = execute_numeric(dag.graph, mat)
        assert np.array_equal(dist.lower_dense(), seq.lower_dense())

        assert (shard_dir / "shard-manifest.json").is_file()
        assert sorted(p.name for p in shard_dir.glob("events-rank*.jsonl")) == \
            ["events-rank0.jsonl", "events-rank1.jsonl"]

        merged = merge_shards(shard_dir)
        assert merged.n_ranks == 2
        assert merged.run_id == "dist-test"
        assert merged.stats.n_tasks == sum(
            s.get("n_tasks", 0) for s in merged.per_rank_stats.values())
        # the merged ledger reconciles *exactly* against the summed stats
        assert build_ledger(merged.events).reconcile(merged.stats) == []

        out = tmp_path / "merged"
        write_merged(merged, out)
        doc = analyze_path(out)
        assert doc["reconciliation"]["checked"]
        assert doc["reconciliation"]["mismatches"] == []

    def test_single_rank_shortcut_writes_no_shards(self, rng, tmp_path):
        from repro.core import build_cholesky_dag, uniform_map
        from repro.runtime.distributed import execute_numeric_distributed
        from repro.tiles.tilematrix import TiledSymmetricMatrix

        n, nb = 96, 16
        a = rng.standard_normal((n, n))
        mat = TiledSymmetricMatrix.from_dense(a @ a.T + n * np.eye(n), nb)
        dag = build_cholesky_dag(n, nb, uniform_map(6, Precision.FP64))
        shard_dir = tmp_path / "shards"
        execute_numeric_distributed(dag.graph, mat, 1, shard_dir=shard_dir)
        # the in-process shortcut has no ranks to shard
        assert not list(shard_dir.glob("events-rank*.jsonl")) \
            if shard_dir.exists() else True
