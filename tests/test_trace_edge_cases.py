"""Trace schema and exporter edge cases.

Empty traces, zero-duration events, and ``precision=None`` events must
survive every consumer of the :class:`TraceEvent` schema — summary,
Chrome/Perfetto export, CSV, ASCII Gantt, counters, and the analysis
layer — without crashing or mis-counting.
"""

import csv
import io
import json

import pytest

from repro.obs import trace_to_csv, write_perfetto_trace
from repro.obs.analysis import build_ledger, critical_path, load_trace_events
from repro.precision import Precision
from repro.runtime.gantt import ascii_gantt, to_chrome_trace
from repro.runtime.tracing import Trace, TraceEvent


def _parse(events, ph="X", **kwargs):
    out = json.loads(to_chrome_trace(events, **kwargs))["traceEvents"]
    return [e for e in out if ph is None or e.get("ph") == ph]


class TestEmptyTrace:
    def test_summary(self):
        s = Trace().summary()
        assert s["n_events"] == 0
        assert s["n_ranks"] == 0
        assert s["makespan_seconds"] == 0.0
        assert s["busy_seconds_by_engine"] == {}

    def test_chrome_trace_is_valid_and_empty(self):
        assert _parse([], ph=None, counters=True) == []

    def test_csv_is_header_only(self):
        text = trace_to_csv([])
        rows = list(csv.reader(io.StringIO(text)))
        assert len(rows) == 1 and rows[0][0] == "rank"

    def test_ascii_gantt(self):
        assert ascii_gantt([]) == "(empty trace)"

    def test_perfetto_write_and_load_round_trip(self, tmp_path):
        path = write_perfetto_trace([], tmp_path / "empty.json")
        assert load_trace_events(path) == []

    def test_analysis_layers_accept_empty(self):
        assert build_ledger([]).rows == []
        assert critical_path([]).n_events == 0


class TestZeroDurationEvents:
    def _event(self, t=0.5):
        return TraceEvent(0, "compute", "POTRF", t, t,
                          precision=Precision.FP64, flops=10.0)

    def test_summary_counts_event_with_zero_busy_time(self):
        trace = Trace(events=[self._event()])
        s = trace.summary()
        assert s["n_events"] == 1
        assert s["busy_seconds_by_engine"]["compute"] == 0.0
        assert s["makespan_seconds"] == 0.5  # falls back to max t_end

    def test_chrome_trace_emits_zero_duration_slice(self):
        (sl,) = _parse([self._event()])
        assert sl["ph"] == "X" and sl["dur"] == 0.0

    def test_csv_round_trip(self):
        text = trace_to_csv([self._event()])
        (_, row) = list(csv.reader(io.StringIO(text)))
        assert float(row[3]) == float(row[4]) == 0.5
        assert float(row[5]) == 0.0

    def test_ascii_gantt_renders(self):
        chart = ascii_gantt([self._event(), TraceEvent(0, "compute", "GEMM", 0.0, 1.0)])
        assert "r0" in chart

    def test_zero_length_trace_gantt(self):
        assert ascii_gantt([self._event(t=0.0)]) == "(zero-length trace)"

    def test_perfetto_round_trip_preserves_times(self, tmp_path):
        path = write_perfetto_trace([self._event()], tmp_path / "t.json")
        (ev,) = load_trace_events(path)
        assert ev.t_start == ev.t_end == pytest.approx(0.5)
        assert ev.duration == 0.0

    def test_counters_handle_zero_duration_transfers(self):
        events = [TraceEvent(0, "h2d", "LOAD", 0.2, 0.2, bytes=64)]
        counters = _parse(events, ph="C", counters=True)
        inflight = [e["args"]["value"] for e in counters
                    if e["name"] == "h2d inflight bytes"]
        assert inflight[-1] == 0  # +64 and −64 both fire


class TestPrecisionNoneEvents:
    def _event(self):
        return TraceEvent(1, "nic", "SEND", 0.0, 0.25, precision=None, bytes=128)

    def test_summary(self):
        s = Trace(events=[self._event()]).summary()
        assert s["busy_seconds_by_engine"]["nic"] == 0.25
        assert s["events_by_kind"]["SEND"] == 1

    def test_chrome_trace_blank_precision(self):
        (sl,) = _parse([self._event()])
        assert sl["args"]["precision"] == ""

    def test_csv_blank_precision(self):
        (_, row) = list(csv.reader(io.StringIO(trace_to_csv([self._event()]))))
        assert row[6] == ""

    def test_perfetto_round_trip_keeps_none(self, tmp_path):
        path = write_perfetto_trace([self._event()], tmp_path / "t.json")
        (ev,) = load_trace_events(path)
        assert ev.precision is None and ev.bytes == 128

    def test_ledger_buckets_untyped_bytes(self):
        ledger = build_ledger([self._event()])
        assert ledger.bytes_by_link_precision() == {("nic", "?"): 128}
        # untyped bytes save nothing vs FP64 (width unknown)
        assert ledger.total_saved_bytes == 0

    def test_fp16_precision_is_not_dropped(self):
        # Precision.FP16 is falsy (IntEnum value 0): every consumer must
        # use `is not None`, not truthiness
        ev = TraceEvent(0, "h2d", "LOAD", 0.0, 0.1,
                        precision=Precision.FP16, bytes=64)
        (sl,) = _parse([ev])
        assert sl["args"]["precision"] == "FP16"
        (_, row) = list(csv.reader(io.StringIO(trace_to_csv([ev]))))
        assert row[6] == "FP16"
        assert build_ledger([ev]).bytes_by_link_precision() == {("h2d", "FP16"): 64}

    def test_convert_tags_with_fp16_endpoints(self, tmp_path):
        ev = TraceEvent(0, "compute", "CONVERT", 0.0, 0.1, site="stc",
                        src_precision=Precision.FP64, dst_precision=Precision.FP16)
        (sl,) = _parse([ev])
        assert sl["args"]["src_precision"] == "FP64"
        assert sl["args"]["dst_precision"] == "FP16"
        path = write_perfetto_trace([ev], tmp_path / "t.json")
        (back,) = load_trace_events(path)
        assert back.site == "stc"
        assert back.dst_precision is Precision.FP16
