"""CLI coverage for the observability verbs added with the warehouse:
``history``, ``profile``, ``merge-shards``, ``compare --against-history``,
``report --format prom`` and the ``--profile-out`` flags."""

import json

from repro.cli import main


def _summary(makespan=1.0, tflops=10.0, policy="panel-first"):
    return {
        "schema": "repro.obs.run_summary/1",
        "manifest": {
            "run_id": None,
            "command": "simulate",
            "policy": policy,
            "cache_schema": 4,
            "config": {"n": 8192, "nb": 512, "config": "FP64/FP16",
                       "gpu": "V100"},
        },
        "stats": {"makespan_seconds": makespan, "tflops": tflops},
        "metrics": {},
    }


def _write(path, doc):
    path.write_text(json.dumps(doc), encoding="utf-8")
    return str(path)


class TestProfileVerb:
    def test_profile_prints_frames_and_rate(self, capsys):
        assert main(["profile", "--nt", "8", "--nb", "256"]) == 0
        out = capsys.readouterr().out
        assert "tasks/s" in out
        assert "measured overhead" in out
        assert "NT=8" in out

    def test_profile_out_document(self, tmp_path, capsys):
        out_path = tmp_path / "prof.json"
        assert main(["profile", "--nt", "8", "--nb", "256",
                     "--policy", "critical-path",
                     "--profile-out", str(out_path)]) == 0
        doc = json.loads(out_path.read_text(encoding="utf-8"))
        assert doc["schema"] == "repro.obs.profile/1"
        assert doc["tasks_per_second"] > 0
        assert doc["manifest"]["policy"] == "critical-path"
        assert doc["manifest"]["config"]["n"] == 8 * 256

    def test_simulate_profile_out(self, tmp_path, capsys):
        out_path = tmp_path / "prof.json"
        assert main(["simulate", "--n", "4096", "--nb", "1024",
                     "--profile-out", str(out_path)]) == 0
        assert "profile →" in capsys.readouterr().out
        doc = json.loads(out_path.read_text(encoding="utf-8"))
        assert doc["schema"] == "repro.obs.profile/1"
        assert doc["manifest"]["command"] == "simulate"

    def test_sweep_profile_out(self, tmp_path, capsys):
        out_path = tmp_path / "prof.json"
        assert main(["sweep", "--n", "2048", "--nb", "512",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--profile-out", str(out_path)]) == 0
        doc = json.loads(out_path.read_text(encoding="utf-8"))
        assert doc["schema"] == "repro.obs.profile/1"
        assert doc["manifest"]["command"] == "sweep"


class TestHistoryVerb:
    def test_ingest_and_list(self, tmp_path, capsys):
        db = str(tmp_path / "wh.db")
        runs = [_write(tmp_path / f"run{i}.json", _summary(1.0 + i * 0.1))
                for i in range(3)]
        args = ["history", db]
        for r in runs:
            args += ["--ingest", r]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "ingested" in out
        assert "3 runs" in out
        assert "panel-first" in out

    def test_filters_and_json_out(self, tmp_path, capsys):
        db = str(tmp_path / "wh.db")
        a = _write(tmp_path / "a.json", _summary(policy="panel-first"))
        b = _write(tmp_path / "b.json", _summary(policy="critical-path"))
        assert main(["history", db, "--ingest", a, "--ingest", b]) == 0
        capsys.readouterr()
        json_out = tmp_path / "hist.json"
        assert main(["history", db, "--policy", "critical-path",
                     "--json-out", str(json_out)]) == 0
        out = capsys.readouterr().out
        assert "(1 shown)" in out
        doc = json.loads(json_out.read_text(encoding="utf-8"))
        assert len(doc["runs"]) == 1
        assert doc["runs"][0]["policy"] == "critical-path"
        assert doc["counts"]["runs"] == 2

    def test_missing_ingest_file(self, tmp_path, capsys):
        assert main(["history", str(tmp_path / "wh.db"),
                     "--ingest", str(tmp_path / "nope.json")]) == 2
        assert "no such file" in capsys.readouterr().err


class TestCompareAgainstHistory:
    def _seed(self, tmp_path, makespans):
        db = str(tmp_path / "wh.db")
        args = ["history", db]
        for i, makespan in enumerate(makespans):
            args += ["--ingest",
                     _write(tmp_path / f"h{i}.json", _summary(makespan))]
        assert main(args) == 0
        return db

    def test_flat_history_passes(self, tmp_path, capsys):
        db = self._seed(tmp_path, [1.0] * 5)
        candidate = _write(tmp_path / "cand.json", _summary(1.0))
        assert main(["compare", candidate, "--against-history", db,
                     "--window", "5", "--fail-on-regress"]) == 0
        assert "verdict OK" in capsys.readouterr().out

    def test_drift_fails_gate(self, tmp_path, capsys):
        db = self._seed(tmp_path, [1.00, 1.04, 1.08, 1.12, 1.16])
        candidate = _write(tmp_path / "cand.json", _summary(1.20))
        report_out = tmp_path / "verdict.json"
        assert main(["compare", candidate, "--against-history", db,
                     "--window", "5", "--fail-on-regress",
                     "--report-out", str(report_out)]) == 1
        captured = capsys.readouterr()
        assert "DRIFTING" in captured.out
        doc = json.loads(report_out.read_text(encoding="utf-8"))
        assert doc["verdict"] == "regressed"

    def test_rejects_extra_candidates(self, tmp_path, capsys):
        db = self._seed(tmp_path, [1.0] * 2)
        c1 = _write(tmp_path / "c1.json", _summary())
        c2 = _write(tmp_path / "c2.json", _summary())
        assert main(["compare", c1, c2, "--against-history", db]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_compare_without_candidates_errors(self, tmp_path, capsys):
        doc = _write(tmp_path / "base.json", _summary())
        assert main(["compare", doc]) == 2
        assert "at least one candidate" in capsys.readouterr().err


class TestReportProm:
    def test_prom_exposition(self, tmp_path, capsys):
        metrics_doc = {
            "schema": "repro.obs.run_summary/1",
            "metrics": {
                "sim_bytes_moved": {
                    "name": "sim_bytes_moved", "type": "counter",
                    "help": "bytes moved per link",
                    "series": [{"labels": {"link": "h2d", "precision": "FP64"},
                                "value": 1024}],
                },
                "sim_task_seconds": {
                    "name": "sim_task_seconds", "type": "timer", "help": "",
                    "series": [{"labels": {},
                                "value": {"count": 4, "sum": 0.4, "p50": 0.1,
                                          "p90": 0.15, "p99": 0.2}}],
                },
            },
        }
        path = _write(tmp_path / "metrics.json", metrics_doc)
        assert main(["report", "--metrics", path, "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert 'sim_bytes_moved_total{link="h2d",precision="FP64"} 1024' in out
        assert "# TYPE sim_task_seconds summary" in out
        assert 'sim_task_seconds{quantile="0.5"} 0.1' in out
        assert "sim_task_seconds_count 4" in out

    def test_prom_needs_metrics(self, capsys, tmp_path):
        events = tmp_path / "events.jsonl"
        events.write_text("", encoding="utf-8")
        assert main(["report", "--events", str(events),
                     "--format", "prom"]) == 2
        assert "--format prom needs --metrics" in capsys.readouterr().err


class TestMergeShardsVerb:
    def test_missing_dir(self, tmp_path, capsys):
        assert main(["merge-shards", str(tmp_path)]) == 2
        assert "shard-manifest" in capsys.readouterr().err

    def test_merge_and_default_out(self, tmp_path, capsys):
        from repro.obs.merge import SHARDS_SCHEMA

        (tmp_path / "shard-manifest.json").write_text(json.dumps({
            "schema": SHARDS_SCHEMA, "wall_time": 10.0, "n_ranks": 1,
            "policy": "panel-first", "run_id": "cli-merge"}), encoding="utf-8")
        records = [
            {"run_id": "cli-merge", "seq": 0, "ts": 0.0, "type": "shard.open",
             "attrs": {"rank": 0, "wall_time": 10.25, "pid": 1,
                       "policy": "panel-first"}},
            {"run_id": "cli-merge", "seq": 1, "ts": 0.2, "type": "rank.task",
             "attrs": {"tid": "POTRF:0", "kind": "POTRF", "precision": "FP64",
                       "flops": 1e9, "t_start": 0.1, "t_end": 0.2}},
        ]
        with open(tmp_path / "events-rank0.jsonl", "w", encoding="utf-8") as fh:
            for rec in records:
                fh.write(json.dumps(rec) + "\n")
        assert main(["merge-shards", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "merged 1 shard(s)" in out
        assert (tmp_path / "merged" / "trace.json").is_file()
        assert (tmp_path / "merged" / "summary.json").is_file()
