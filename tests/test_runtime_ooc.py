"""Out-of-core scheduling: bounded host memory, the disk spill tier, the
``ooc-static`` policy, and exported/replayed static schedules.

The capacity-constrained platform used throughout shrinks the V100 to a
dozen tiles of device memory and the host to a few dozen, so evictions
cascade through the host LRU into the disk tier — the regime the
out-of-core policy exists for.  The paper-scale test prices the 798 720²
Fig. 11 matrix (5.1 TB at FP64) against 352 GB of device+host memory.
"""

import dataclasses

import pytest

from repro.core.precision_map import two_precision_map
from repro.core.solver import replay_cholesky, simulate_cholesky
from repro.obs.analysis import build_ledger
from repro.perfmodel.gpus import NodeSpec, V100
from repro.precision import Precision
from repro.runtime import POLICY_NAMES, Platform, StaticSchedule
from repro.runtime.simulator import simulate_replay

NB = 128
TILE_BYTES = NB * NB * 8


def _tight_platform(gpu_tiles=12, host_tiles=32, n_gpus=1, n_nodes=1):
    gpu = dataclasses.replace(V100, memory_bytes=gpu_tiles * TILE_BYTES)
    node = NodeSpec(
        name="tight",
        gpu=gpu,
        gpus_per_node=n_gpus,
        host_memory_bytes=host_tiles * TILE_BYTES,
        nic_bandwidth=25e9,
        nic_latency=1.5e-6,
    )
    return Platform(node=node, n_nodes=n_nodes)


def _run(policy, platform=None, n=2048, nb=NB, **kw):
    kmap = two_precision_map(-(-n // nb), Precision.FP16_32)
    return simulate_cholesky(n, nb, kmap, platform or _tight_platform(),
                             policy=policy, record_events=True, **kw)


def _traffic(stats) -> float:
    """Total data motion caused by capacity pressure and staging."""
    d = stats.to_dict()
    return (d["h2d_bytes"] + d["d2h_bytes"]
            + d["disk_read_bytes"] + d["disk_write_bytes"])


class TestDiskTier:
    def test_tight_host_spills_to_disk(self):
        rep = _run("panel-first")
        d = rep.stats.to_dict()
        assert d["n_host_evictions"] > 0
        assert d["n_spills"] > 0
        assert d["disk_write_bytes"] > 0
        assert d["disk_read_bytes"] > 0

    def test_ample_memory_never_touches_disk(self):
        node = NodeSpec("roomy", V100, 1, 256e9, 25e9, 1.5e-6)
        rep = _run("panel-first", platform=Platform(node=node, n_nodes=1))
        d = rep.stats.to_dict()
        assert d["n_host_evictions"] == 0
        assert d["n_spills"] == 0
        assert d["disk_read_bytes"] == 0.0
        assert d["disk_write_bytes"] == 0.0

    def test_disk_events_reconcile_with_ledger(self):
        rep = _run("panel-first")
        ledger = build_ledger(rep.trace.events, stats=rep.stats)
        assert ledger.reconcile(rep.stats) == []

    def test_disk_traffic_in_trace(self):
        rep = _run("panel-first")
        engines = {e.engine for e in rep.trace.events}
        assert "disk_write" in engines
        assert "disk_read" in engines


class TestOocStaticPolicy:
    def test_beats_baselines_under_capacity_pressure(self):
        """The acceptance bar: strictly less eviction+spill traffic than
        panel-first AND critical-path on the same starved platform."""
        reps = {pol: _run(pol) for pol in ("panel-first", "critical-path",
                                           "ooc-static")}
        traffic = {pol: _traffic(rep.stats) for pol, rep in reps.items()}
        assert traffic["ooc-static"] < traffic["panel-first"]
        assert traffic["ooc-static"] < traffic["critical-path"]
        # same work was done either way
        flops = {pol: rep.stats.total_flops for pol, rep in reps.items()}
        assert flops["ooc-static"] == pytest.approx(flops["panel-first"])

    def test_registered_and_in_memory_neutral(self):
        """With ample memory ooc-static degrades gracefully to a valid
        (and competitive) schedule."""
        assert "ooc-static" in POLICY_NAMES
        node = NodeSpec("roomy", V100, 1, 256e9, 25e9, 1.5e-6)
        platform = Platform(node=node, n_nodes=1)
        base = _run("panel-first", platform=platform)
        ooc = _run("ooc-static", platform=platform)
        assert ooc.stats.n_tasks == base.stats.n_tasks
        assert ooc.makespan <= 2.0 * base.makespan

    def test_paper_scale_symbolic(self):
        """798 720² (Fig. 11 scale): the 5.1 TB FP64 matrix factors
        through 352 GB of device+host memory; every spilled byte lands
        in the ledger exactly."""
        n, nb = 798_720, 20_480
        node = NodeSpec("summit-like", V100, 6, 256e9, 25e9, 1.5e-6)
        platform = Platform(node=node, n_nodes=1)
        kmap = two_precision_map(-(-n // nb), Precision.FP16_32)
        matrix_bytes = n * n * 8 / 2  # lower-triangular at FP64
        capacity = node.host_memory_bytes + 6 * V100.memory_bytes
        assert matrix_bytes > 5 * capacity  # genuinely out of core

        rep = simulate_cholesky(n, nb, kmap, platform, policy="ooc-static",
                                record_events=True)
        d = rep.stats.to_dict()
        assert d["n_tasks"] == 10_660
        assert d["n_spills"] > 0
        assert d["disk_read_bytes"] > 0
        assert build_ledger(rep.trace.events, stats=rep.stats).reconcile(rep.stats) == []


class TestStaticSchedule:
    def test_from_report_and_roundtrip(self, tmp_path):
        rep = _run("ooc-static")
        sched = StaticSchedule.from_report(rep, nb=NB, n=2048,
                                           platform=_tight_platform())
        assert sched.policy == "ooc-static"
        assert len(sched.order) == rep.stats.n_tasks
        assert sched.makespan == rep.makespan
        for suffix in (".json", ".npz"):
            path = tmp_path / f"sched{suffix}"
            sched.save(path)
            loaded = StaticSchedule.load(path)
            assert loaded == sched

    def test_validate_against_rejects_mismatch(self):
        rep = _run("panel-first")
        platform = _tight_platform()
        sched = StaticSchedule.from_report(rep, nb=NB, n=2048, platform=platform)
        with pytest.raises(ValueError, match="task"):
            sched.validate_against(len(sched.order) + 1, platform)
        other = _tight_platform(n_gpus=2)
        with pytest.raises(ValueError, match="platform"):
            sched.validate_against(len(sched.order), other)

    def test_from_dict_schema_guard(self):
        rep = _run("panel-first")
        sched = StaticSchedule.from_report(rep, nb=NB, n=2048)
        doc = sched.to_dict()
        doc["schema"] = "bogus/9"
        with pytest.raises(ValueError, match="schema"):
            StaticSchedule.from_dict(doc)

    def test_replay_rejects_invalid_orders(self):
        from repro.core.dag_cholesky import build_cholesky_dag

        platform = _tight_platform()
        kmap = two_precision_map(4, Precision.FP16_32)
        dag = build_cholesky_dag(4 * NB, NB, kmap, grid=platform.process_grid())
        n_tasks = len(dag.graph)
        good = list(range(n_tasks))
        with pytest.raises(ValueError):  # dependency-violating order
            simulate_replay(dag.graph, platform, NB, list(reversed(good)))
        with pytest.raises(ValueError):  # duplicate tid
            simulate_replay(dag.graph, platform, NB, [good[0]] + good)
        with pytest.raises(ValueError):  # truncated order
            simulate_replay(dag.graph, platform, NB, good[:-1])


class TestReplayBitIdentity:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_replay_matches_live_run(self, policy):
        """Replaying an exported schedule reproduces the live run bit
        for bit — makespan, full stats, and trace hash — without any
        ready-heap or policy-key work."""
        platform = _tight_platform()
        live = _run(policy, platform=platform)
        sched = StaticSchedule.from_report(live, nb=NB, n=2048, platform=platform)
        replay = replay_cholesky(
            2048, NB, two_precision_map(16, Precision.FP16_32), platform, sched,
        )
        assert replay.makespan == live.makespan
        assert replay.stats.to_dict() == live.stats.to_dict()
        assert replay.trace.content_hash() == live.trace.content_hash()
        assert replay.policy == f"replay:{policy}"

    @pytest.mark.parametrize("policy", ["panel-first", "ooc-static"])
    def test_replay_survives_file_roundtrip(self, policy, tmp_path):
        platform = _tight_platform()
        live = _run(policy, platform=platform)
        path = tmp_path / "sched.npz"
        StaticSchedule.from_report(live, nb=NB, n=2048, platform=platform).save(path)
        replay = replay_cholesky(
            2048, NB, two_precision_map(16, Precision.FP16_32), platform,
            StaticSchedule.load(path),
        )
        assert replay.makespan == live.makespan
        assert replay.trace.content_hash() == live.trace.content_hash()
