"""Unit tests for the likelihood and MLE driver."""

import math

import numpy as np
import pytest
import scipy.stats

from repro.core.config import MPConfig
from repro.geostats.generator import SyntheticField
from repro.geostats.likelihood import log_likelihood
from repro.geostats.mle import default_tile_size, fit_mle
from repro.precision import Precision


@pytest.fixture(scope="module")
def dataset():
    return SyntheticField.matern_2d(n=144, range_=0.1, smoothness=0.5, seed=3).sample()


def _exact_config(nb=18):
    return MPConfig(accuracy=1e-15, formats=(Precision.FP64,), tile_size=nb)


class TestLikelihood:
    def test_matches_scipy(self, dataset):
        """Exact FP64 likelihood equals scipy's multivariate normal logpdf."""
        theta = (1.0, 0.1, 0.5)
        ours = log_likelihood(dataset, theta, _exact_config()).value
        cov = dataset.model.cov_matrix(dataset.locations, theta)
        ref = scipy.stats.multivariate_normal(
            mean=np.zeros(dataset.n), cov=cov, allow_singular=False
        ).logpdf(dataset.z)
        assert ours == pytest.approx(ref, rel=1e-9)

    def test_components(self, dataset):
        ev = log_likelihood(dataset, (1.0, 0.1, 0.5), _exact_config())
        n = dataset.n
        assert ev.value == pytest.approx(
            -0.5 * n * math.log(2 * math.pi) - 0.5 * ev.logdet - 0.5 * ev.quadratic
        )
        assert ev.quadratic > 0
        assert ev.feasible

    def test_mixed_precision_close_to_exact(self, dataset):
        theta = (1.0, 0.1, 0.5)
        exact = log_likelihood(dataset, theta, _exact_config()).value
        mp = log_likelihood(dataset, theta, MPConfig(accuracy=1e-9, tile_size=18)).value
        assert mp == pytest.approx(exact, abs=1e-3 * abs(exact) + 1e-3)

    def test_looser_accuracy_larger_deviation(self, dataset):
        theta = (1.0, 0.1, 0.5)
        exact = log_likelihood(dataset, theta, _exact_config()).value
        devs = []
        for acc in (1e-9, 1e-4, 1e-1):
            val = log_likelihood(dataset, theta, MPConfig(accuracy=acc, tile_size=18)).value
            devs.append(abs(val - exact) if math.isfinite(val) else math.inf)
        assert devs[0] <= devs[1] <= devs[2] or devs[2] == math.inf

    def test_infeasible_theta_gives_neg_inf(self, dataset):
        # an invalid θ (zero variance) is reported as an infeasible probe,
        # not an exception — the optimizer depends on this contract
        ev = log_likelihood(dataset, (0.0, 0.1, 0.5), _exact_config())
        assert ev.value == -math.inf

    def test_singular_covariance_gives_neg_inf(self):
        # the nugget-free squared exponential at dense sampling is
        # numerically singular in FP64: POTRF fails, likelihood is -inf
        field = SyntheticField.sqexp_2d(n=144, range_=0.3, seed=0)
        ds = field.sample()
        ev = log_likelihood(ds, (1.0, 0.3), _exact_config())
        assert ev.value == -math.inf

    def test_keep_map(self, dataset):
        ev = log_likelihood(
            dataset, (1.0, 0.1, 0.5), MPConfig(accuracy=1e-4, tile_size=18), keep_map=True
        )
        assert ev.kernel_map is not None
        assert ev.kernel_map.nt == 8

    def test_nugget_changes_value(self, dataset):
        from repro.geostats.generator import Dataset

        noisy = Dataset(dataset.locations, dataset.z, dataset.model,
                        dataset.theta_true, nugget=0.1)
        a = log_likelihood(dataset, (1.0, 0.1, 0.5), _exact_config()).value
        b = log_likelihood(noisy, (1.0, 0.1, 0.5), _exact_config()).value
        assert a != b


class TestFitMLE:
    def test_default_tile_size(self):
        assert default_tile_size(144) == 18
        assert default_tile_size(100000) == 2048
        assert default_tile_size(10) == 16

    def test_recovers_parameters(self, dataset):
        res = fit_mle(dataset, exact=True, tile_size=18, max_evals=250, xtol=1e-7)
        # MLE at n=144 carries sampling error; stay within broad factors
        assert 0.3 < res.theta_hat[0] < 2.0
        assert 0.02 < res.theta_hat[1] < 0.5
        assert 0.2 < res.theta_hat[2] < 1.5
        assert res.accuracy_label == "exact"
        assert math.isfinite(res.loglik)

    def test_tight_accuracy_matches_exact(self, dataset):
        exact = fit_mle(dataset, exact=True, tile_size=18, max_evals=200, xtol=1e-6)
        tight = fit_mle(dataset, accuracy=1e-9, tile_size=18, max_evals=200, xtol=1e-6)
        assert np.allclose(exact.theta_hat, tight.theta_hat, rtol=0.05, atol=0.01)

    def test_fit_improves_on_start(self, dataset):
        res = fit_mle(dataset, exact=True, tile_size=18, max_evals=150, xtol=1e-6)
        start_ll = log_likelihood(dataset, (0.01, 0.01, 0.01), _exact_config()).value
        assert res.loglik > start_ll

    def test_accuracy_label(self, dataset):
        res = fit_mle(dataset, accuracy=1e-4, tile_size=18, max_evals=30, restarts=0)
        assert res.accuracy_label == "1e-04"

    def test_result_iterable(self, dataset):
        res = fit_mle(dataset, exact=True, tile_size=18, max_evals=30, restarts=0)
        assert len(list(res)) == 3
