"""Partition-driven ingest: streaming assembly, per-rank seeding, and the
16×16 reference ordering experiment (ISSUE 10 acceptance criteria)."""

import numpy as np
import pytest

from repro.geostats import build_tiled_covariance, dataplane as dp
from repro.geostats.covariance import get_model
from repro.geostats.locations import generate_locations
from repro.tiles.distribution import ProcessGrid

THETA = (1.0, 0.1, 0.5)


def _partition_dir(tmp_path, n=256, nb=32, seed=3, scheme="kdtree"):
    rng = np.random.default_rng(seed)
    coords = generate_locations(n, 2, seed=seed, sort=False)
    ps = dp.PointSet(coords=coords, values=rng.standard_normal(n))
    ordered, _perm, score = dp.reorder_pointset(ps, "hilbert")
    parts = (dp.kdtree_partition(ordered.coords, 64) if scheme == "kdtree"
             else dp.grid_partition(ordered.coords, 4))
    out = str(tmp_path / "parts")
    manifest = dp.write_partitions(ordered, parts, out, scheme=scheme,
                                   ordering="hilbert", ordering_score=score,
                                   format="npz")
    return out, manifest, ordered


def test_ingest_tiled_covariance_bit_identical(tmp_path):
    out, _manifest, ordered = _partition_dir(tmp_path)
    model = get_model("2d-matern")
    streamed = dp.ingest_tiled_covariance(out, "2d-matern", THETA, 32)
    direct = build_tiled_covariance(ordered.coords, model, THETA, 32)
    assert streamed.nt == direct.nt
    for i in range(direct.nt):
        for j in range(i + 1):
            assert streamed.get(i, j).tobytes() == direct.get(i, j).tobytes()


def test_rank_ingest_tiles_match_direct(tmp_path):
    out, _manifest, ordered = _partition_dir(tmp_path, scheme="grid")
    model = get_model("2d-matern")
    direct = build_tiled_covariance(ordered.coords, model, THETA, 32)
    grid = ProcessGrid(2, 2)
    ingest = dp.RankIngest(out, "2d-matern", THETA, 32)
    assert ingest.matrix_n() == 256
    for rank in range(grid.size):
        tiles = grid.tiles_owned(rank, direct.nt)
        built = ingest.build_tiles(tiles)
        assert set(built) == set(tiles)
        for (i, j), tile in built.items():
            assert tile.tobytes() == direct.get(i, j).tobytes()


def test_rank_partition_plan_covers_rank_footprint(tmp_path):
    out, manifest, _ordered = _partition_dir(tmp_path)
    grid = ProcessGrid(2, 2)
    plan = dp.rank_partition_plan(manifest, grid, 256, 32)
    assert set(plan) == {0, 1, 2, 3}
    known = {p["id"] for p in manifest["partitions"]}
    for ids in plan.values():
        assert ids and set(ids) <= known


def test_load_row_blocks_detects_missing_rows(tmp_path):
    out, manifest, _ordered = _partition_dir(tmp_path)
    # ask beyond the dataset: rows [256, 288) exist in no partition
    with pytest.raises(ValueError, match="missing"):
        dp.load_row_blocks(out, {0: (250, 288)}, manifest=manifest)


def test_distributed_ingest_bit_identical_to_mat_seeding(tmp_path):
    """Per-rank streaming ingest produces the same factor, bit for bit,
    as shipping tiles from the parent matrix."""
    from repro.core import build_cholesky_dag, build_precision_map
    from repro.runtime.distributed import execute_numeric_distributed
    from repro.tiles.norms import tile_norms

    n, nb = 192, 48
    out, _manifest, ordered = _partition_dir(tmp_path, n=n)
    model = get_model("2d-matern")
    mat = build_tiled_covariance(ordered.coords, model, THETA, nb)
    # SPD lift so the Cholesky is well-posed at this tiny scale
    for i in range(mat.nt):
        d = mat.get(i, i)
        mat.set(i, i, d + 0.5 * np.eye(d.shape[0]), precision=mat.precision_of(i, i))
    kmap = build_precision_map(tile_norms(mat), 1e-9)
    grid = ProcessGrid(1, 2)
    dag = build_cholesky_dag(n, nb, kmap, grid=grid)

    baseline = execute_numeric_distributed(dag.graph, mat, grid.size)

    # the ingest recipe's nugget reproduces the diagonal lift exactly
    ingest = dp.RankIngest(out, "2d-matern", THETA, nb, nugget=0.5)
    streamed = execute_numeric_distributed(dag.graph, mat, grid.size, ingest=ingest)

    for i in range(mat.nt):
        for j in range(i + 1):
            assert streamed.get(i, j).tobytes() == baseline.get(i, j).tobytes()


# -- the 16×16 reference ordering experiment ------------------------------


@pytest.mark.slow
def test_reference_config_hilbert_beats_random():
    """On the 16×16 reference config (n=1024, nb=64, 2d-matern adaptive),
    Hilbert ordering must yield ≥ as many low-precision tiles as random
    and move ≤ as many bytes (the repro-analyze ledger total)."""
    from repro.bench.apps import app_kernel_map
    from repro.core import simulate_cholesky
    from repro.obs.analysis import build_ledger
    from repro.perfmodel import GPU_BY_NAME, NodeSpec
    from repro.precision import Precision
    from repro.runtime import Platform

    n, nb = 1024, 64
    locs = generate_locations(n, 2, seed=0, sort=False)
    node = NodeSpec("test", GPU_BY_NAME["V100"], 1, 256e9, 25e9, 1.5e-6)
    platform = Platform(node=node, n_nodes=1)

    results = {}
    for ordering in ("random", "hilbert"):
        ordered = dp.order_locations(locs, ordering, seed=0)
        kmap = app_kernel_map("2d-matern", n, nb, samples_per_tile=32,
                              seed=0, locations=ordered, ordering=None)
        report = simulate_cholesky(n, nb, kmap, platform, record_events=True)
        ledger = build_ledger(report.trace.events, stats=report.stats)
        results[ordering] = {
            "low": kmap.count_below(Precision.FP32),
            "band": kmap.fp64_band_width(),
            "bytes": ledger.total_bytes,
        }

    assert results["hilbert"]["low"] >= results["random"]["low"]
    assert results["hilbert"]["band"] <= results["random"]["band"]
    assert results["hilbert"]["bytes"] <= results["random"]["bytes"]
    # and the effect is real, not a tie
    assert results["hilbert"]["low"] > results["random"]["low"]
    assert results["hilbert"]["bytes"] < results["random"]["bytes"]


def test_sweep_ordering_axis_round_trip():
    """The ordering axis flows grid → spec → cache key → result dict."""
    from repro.sweep import SweepGrid
    from repro.sweep.engine import execute_spec

    grid = SweepGrid.from_axes(n=256, nb=64, config="adaptive",
                               app="2d-matern", ordering=["random", "hilbert"])
    specs = grid.expand()
    assert [s.ordering for s in specs] == ["random", "hilbert"]
    assert specs[0].cache_key() != specs[1].cache_key()
    assert "ord=hilbert" in specs[1].label
    res = execute_spec(specs[1].to_dict())
    assert res["ordering"] == "hilbert"
    assert 0.0 < res["ordering_score"] < 0.5
    assert res["n_low_precision_tiles"] >= 0
    assert res["fp64_band_width"] >= 1
